//! Mesh routing comparison: the paper's § 4 fully-adaptive two-queue
//! algorithm vs the partially-adaptive static hang vs oblivious XY
//! routing, on transpose and hotspot traffic over a 16×16 mesh.
//!
//! ```text
//! cargo run --release --example mesh_traffic
//! ```

use fadroute::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run<RF: RoutingFunction>(rf: RF, backlog: &[Vec<NodeId>]) -> (String, StaticResult) {
    let name = rf.name();
    let mut sim = Simulator::new(rf, SimConfig::default());
    let res = sim.run_static(backlog);
    assert!(res.drained, "{name} failed to drain");
    (name, res)
}

fn main() {
    let side = 16;
    let nodes = side * side;
    let workloads: Vec<(&str, Pattern)> = vec![
        ("grid transpose", Pattern::grid_transpose(side)),
        (
            "hotspot(center)",
            Pattern::Hotspot(side * side / 2 + side / 2),
        ),
        ("random", Pattern::Random),
    ];
    for (wname, pattern) in &workloads {
        let mut rng = StdRng::seed_from_u64(99);
        let backlog = static_backlog(pattern, nodes, 4, &mut rng);
        println!("{side}x{side} mesh, {wname}, 4 packets per node:");
        let runs = [
            run(MeshFullyAdaptive::new(side, side), &backlog),
            run(MeshStaticHang::new(side, side), &backlog),
            run(MeshXY::new(side, side), &backlog),
        ];
        for (name, res) in &runs {
            println!(
                "  {name:<28} L_avg = {:>7.2}  L_max = {:>4}  drained in {:>4} cycles",
                res.stats.mean(),
                res.stats.max(),
                res.cycles
            );
        }
        // The fully-adaptive scheme should not lose to its own underlying
        // static hang.
        assert!(runs[0].1.stats.mean() <= runs[1].1.stats.mean() + 0.5);
        println!();
    }
}
