//! Quickstart: verify the paper's fully-adaptive hypercube algorithm on
//! a small instance, then simulate it at scale.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fadroute::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Machine-check Theorem 1 on a 4-cube: deadlock-free, minimal,
    //    livelock-free, fully adaptive.
    let report = fadroute::qdg::verify::verify_all(&HypercubeFullyAdaptive::new(4), true)
        .expect("Theorem 1 holds");
    println!(
        "verified {} on {}: {} queues, {} static + {} dynamic QDG edges",
        report.algorithm,
        report.topology,
        report.num_queues,
        report.static_edges,
        report.dynamic_edges
    );

    // 2. Simulate a 1024-node hypercube under the paper's four patterns,
    //    one packet per node (§ 7, Tables 1-4).
    let n = 10;
    let size = 1usize << n;
    let mut seed_rng = StdRng::seed_from_u64(2026);
    let patterns: Vec<(&str, Pattern)> = vec![
        ("random", Pattern::Random),
        ("complement", Pattern::complement(n)),
        ("transpose", Pattern::transpose(n)),
        ("leveled", Pattern::leveled_permutation(n, &mut seed_rng)),
    ];
    println!("\nstatic injection, 1 packet per node, n = {n} ({size} nodes):");
    for (name, pattern) in &patterns {
        let mut sim = Simulator::new(HypercubeFullyAdaptive::new(n), SimConfig::default());
        let mut rng = StdRng::seed_from_u64(42);
        let backlog = static_backlog(pattern, size, 1, &mut rng);
        let res = sim.run_static(&backlog);
        assert!(res.drained);
        println!(
            "  {name:<11} L_avg = {:>6.2}  L_max = {:>3}  ({} packets, {} routing cycles)",
            res.stats.mean(),
            res.stats.max(),
            res.delivered,
            res.cycles
        );
    }

    // 3. Saturation: dynamic injection at lambda = 1 (§ 7, Table 9).
    let mut sim = Simulator::new(HypercubeFullyAdaptive::new(n), SimConfig::default());
    let res = sim.run_dynamic(1.0, |src, rng| Pattern::Random.draw(src, size, rng), 500);
    println!(
        "\ndynamic random, lambda = 1: L_avg = {:.2}, L_max = {}, I_r = {:.0}%",
        res.stats.mean(),
        res.stats.max(),
        100.0 * res.injection_rate()
    );
}
