//! Wormhole routing demo: the paper's routing functions driving a
//! flit-level wormhole network (the [GPS91] generalization the paper's
//! introduction points to), with the adaptive and the provably-safe
//! escape-only modes side by side.
//!
//! ```text
//! cargo run --release --example wormhole_demo
//! ```

use fadroute::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 7;
    let size = 1usize << n;
    println!("wormhole routing on the {n}-cube, 2 worms per node, 8-flit messages:\n");
    for (wname, pattern) in [
        ("random", Pattern::Random),
        ("complement", Pattern::complement(n)),
        ("transpose", Pattern::transpose(n)),
    ] {
        let mut rng = StdRng::seed_from_u64(33);
        let backlog = static_backlog(&pattern, size, 2, &mut rng);
        let mut line = format!("  {wname:<11}");
        for (mode, dynamic) in [("adaptive", true), ("escape-only", false)] {
            let cfg = WormConfig {
                message_length: 8,
                use_dynamic_vcs: dynamic,
                ..WormConfig::default()
            };
            let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(n), cfg);
            let res = sim.run_static(&backlog);
            assert!(res.drained, "{wname}/{mode} stalled");
            line.push_str(&format!(
                "  {mode}: L_avg = {:>6.2}, L_max = {:>3}",
                res.stats.mean(),
                res.stats.max()
            ));
        }
        println!("{line}");
    }
    println!("\n(latency = header injection to tail delivery, in cycles; minimum = hops + 8)");
}
