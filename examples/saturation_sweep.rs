//! Saturation sweep (extension experiment): offered load λ vs delivered
//! throughput and latency, for the paper's 2-queue fully-adaptive
//! algorithm against the (n+1)-queue adaptive structured buffer pool and
//! the partially-adaptive static hang.
//!
//! The paper only reports λ = 1; sweeping λ locates the saturation point
//! of each scheme and shows that the 2-queue construction gives up
//! essentially nothing against the resource-hungry SBP.
//!
//! ```text
//! cargo run --release --example saturation_sweep
//! ```

use fadroute::prelude::*;
use fadroute::topology::Hypercube;

const N: usize = 8;
const CYCLES: u64 = 400;

fn sweep<RF: RoutingFunction>(rf: RF) -> (String, Vec<(f64, f64, f64)>) {
    let name = rf.name();
    let size = 1usize << N;
    let mut rows = Vec::new();
    let mut sim = Simulator::new(rf, SimConfig::default());
    for lambda in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let res = sim.run_dynamic(lambda, |s, rng| Pattern::Random.draw(s, size, rng), CYCLES);
        // Delivered throughput in packets per node per cycle.
        let throughput = res.delivered as f64 / (size as f64 * CYCLES as f64);
        rows.push((lambda, throughput, res.stats.mean()));
    }
    (name, rows)
}

fn main() {
    println!("random traffic on the {N}-cube, {CYCLES}-cycle horizon:\n");
    let runs = [
        sweep(HypercubeFullyAdaptive::new(N)),
        sweep(HypercubeStaticHang::new(N)),
        sweep(AdaptiveSbp::new(Hypercube::new(N))),
    ];
    println!(
        "{:>6} | {:>31} | {:>31} | {:>31}",
        "lambda", runs[0].0, runs[1].0, runs[2].0
    );
    println!(
        "{:>6} |    throughput      L_avg        |    throughput      L_avg        |    throughput      L_avg       ",
        ""
    );
    for i in 0..runs[0].1.len() {
        let (lambda, _, _) = runs[0].1[i];
        print!("{lambda:>6.1}");
        for (_, rows) in &runs {
            let (_, thr, lat) = rows[i];
            print!(" | {thr:>13.3} {lat:>12.2}    ");
        }
        println!();
    }
    // The fully-adaptive scheme should track the SBP closely at every
    // load despite using 2 instead of n+1 central queues.
    let last = runs[0].1.len() - 1;
    let (_, thr_fa, _) = runs[0].1[last];
    let (_, thr_sbp, _) = runs[2].1[last];
    println!(
        "\nat lambda = 1: fully-adaptive throughput = {:.3}, SBP = {:.3} ({} central queues vs {})",
        thr_fa,
        thr_sbp,
        2,
        N + 1
    );
}
