//! Deadlock audit: run the § 2 model checker over every routing
//! algorithm in the library — plus a deliberately naive single-queue
//! design, to show the checker catching the classic store-and-forward
//! deadlock that the paper's queue structure exists to prevent.
//!
//! ```text
//! cargo run --release --example deadlock_audit
//! ```

use fadroute::prelude::*;
use fadroute::qdg::verify;
use fadroute::qdg::{HopKind, Transition};

/// A naive minimal adaptive mesh router with ONE central queue per node:
/// messages move toward the destination along any minimal direction.
/// Opposite-direction traffic creates 2-cycles in the queue dependency
/// graph, so this deadlocks under load — the checker must reject it.
struct NaiveMesh {
    mesh: Mesh2D,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct NaiveMsg {
    dst: NodeId,
}

impl RoutingFunction for NaiveMesh {
    type Msg = NaiveMsg;

    fn topology(&self) -> &dyn Topology {
        &self.mesh
    }

    fn num_classes(&self) -> usize {
        1
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> NaiveMsg {
        NaiveMsg { dst }
    }

    fn destination(&self, msg: &NaiveMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &NaiveMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &NaiveMsg,
        f: &mut dyn FnMut(Transition<NaiveMsg>),
    ) {
        let internal = |to: QueueId| Transition {
            kind: LinkKind::Static,
            hop: HopKind::Internal,
            to,
            msg: *msg,
        };
        match at.kind {
            QueueKind::Inject => f(internal(QueueId::central(at.node, 0))),
            QueueKind::Central(_) => {
                if at.node == msg.dst {
                    f(internal(QueueId::deliver(at.node)));
                    return;
                }
                for (port, v) in self.mesh.minimal_ports(at.node, msg.dst) {
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Link(port),
                        to: QueueId::central(v, 0),
                        msg: *msg,
                    });
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, _port: Port) -> Vec<BufferClass> {
        vec![BufferClass::Static(0)]
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.mesh.width() + self.mesh.height() - 2
    }

    fn name(&self) -> String {
        "naive-1-queue-mesh (expected to FAIL)".into()
    }
}

fn audit<RF: RoutingFunction>(rf: RF, full_adaptivity: bool) {
    match verify::verify_all(&rf, full_adaptivity) {
        Ok(rep) => println!(
            "PASS  {:<38} {:>3} queues, {:>4} static / {:>3} dynamic edges{}{}",
            rep.algorithm,
            rep.num_queues,
            rep.static_edges,
            rep.dynamic_edges,
            if rep.checked_minimal { ", minimal" } else { "" },
            if rep.checked_fully_adaptive {
                ", fully adaptive"
            } else {
                ""
            },
        ),
        Err(v) => println!("FAIL  {:<38} {v}", rf.name()),
    }
}

fn main() {
    println!("model-checking the paper's Section 2 conditions on small instances:\n");
    audit(HypercubeFullyAdaptive::new(3), true);
    audit(HypercubeFullyAdaptive::new(4), true);
    audit(HypercubeStaticHang::new(3), false);
    audit(EcubeSbp::new(3), false);
    audit(MeshFullyAdaptive::new(4, 4), true);
    audit(MeshStaticHang::new(4, 4), false);
    audit(MeshXY::new(4, 4), false);
    audit(ShuffleExchangeRouting::new(3), false);
    audit(ShuffleExchangeRouting::new(4), false);
    audit(ShuffleExchangeRouting::without_dynamic_links(3), false);
    audit(TorusTwoPhase::new(3, 3), true);
    audit(TorusTwoPhase::new(4, 4), false);
    println!();
    // And the counterexample: minimal adaptivity with a single queue per
    // node is NOT deadlock-free (cyclic queue dependency graph).
    audit(
        NaiveMesh {
            mesh: Mesh2D::square(3),
        },
        false,
    );
}
