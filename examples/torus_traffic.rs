//! Torus routing under adversarial patterns: the two-phase adaptive
//! scheme (the paper's sketched extension) on tornado, grid-complement,
//! transpose, and random traffic.
//!
//! ```text
//! cargo run --release --example torus_traffic
//! ```

use fadroute::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 9; // odd: fully adaptive (no even-ring ties)
    let nodes = side * side;

    // Machine-check the extension on a small odd torus.
    let report = fadroute::qdg::verify::verify_all(&TorusTwoPhase::new(3, 3), true)
        .expect("torus scheme verified");
    println!(
        "verified {}: minimal, fully adaptive, {} static + {} dynamic QDG edges\n",
        report.algorithm, report.static_edges, report.dynamic_edges
    );

    let patterns: Vec<(&str, Pattern)> = vec![
        ("random", Pattern::Random),
        ("tornado", Pattern::tornado(side)),
        ("grid complement", Pattern::grid_complement(side)),
        ("grid transpose", Pattern::grid_transpose(side)),
        ("ring neighbor", Pattern::ring_neighbor(nodes)),
    ];
    println!("{side}x{side} torus, 4 packets per node, two-phase adaptive routing:");
    for (name, pattern) in &patterns {
        let mut rng = StdRng::seed_from_u64(17);
        let backlog = static_backlog(pattern, nodes, 4, &mut rng);
        let mut sim = Simulator::new(TorusTwoPhase::new(side, side), SimConfig::default());
        let res = sim.run_static(&backlog);
        assert!(res.drained);
        println!(
            "  {name:<16} L_avg = {:>6.2}  L_max = {:>3}  ({} cycles to drain)",
            res.stats.mean(),
            res.stats.max(),
            res.cycles
        );
    }

    // Saturation: tornado is the classic torus stress; check λ = 1 keeps
    // delivering (deadlock/livelock freedom under sustained load).
    let pat = Pattern::tornado(side);
    let mut sim = Simulator::new(TorusTwoPhase::new(side, side), SimConfig::default());
    let res = sim.run_dynamic(1.0, move |s, rng| pat.draw(s, nodes, rng), 400);
    println!(
        "\ntornado at lambda = 1: L_avg = {:.2}, I_r = {:.0}%, {} delivered",
        res.stats.mean(),
        100.0 * res.injection_rate(),
        res.delivered
    );
}
