//! Shuffle-exchange routing (§ 5): the 3n-hop two-phase scheme, its
//! queue-class structure, and the effect of the dynamic links.
//!
//! ```text
//! cargo run --release --example shuffle_exchange
//! ```

use fadroute::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Queue structure: the paper's 4 queues suffice exactly when n is
    // prime (every non-degenerate shuffle cycle then has full length n);
    // composite n needs extra wrap classes — a finding of our model
    // checker, see DESIGN.md.
    println!("central queues per node (2 phases x cycle classes):");
    for n in 2..=8 {
        let rf = ShuffleExchangeRouting::new(n);
        println!(
            "  n = {n}: {} queues ({} classes per phase){}",
            rf.num_classes(),
            rf.classes_per_phase(),
            if rf.num_classes() == 4 {
                "  <- the paper's 4"
            } else {
                ""
            }
        );
    }

    // Theorem 3 on the 8-node instance: adaptive, deadlock- and
    // livelock-free, paths of at most 3n hops.
    let report = fadroute::qdg::verify::verify_all(&ShuffleExchangeRouting::new(3), false)
        .expect("Theorem 3 holds");
    println!(
        "\nverified {}: {} queues, {} static + {} dynamic QDG edges",
        report.algorithm, report.num_queues, report.static_edges, report.dynamic_edges
    );

    // Simulate a 32-node shuffle-exchange under random traffic, with and
    // without the phase-1 dynamic exchanges.
    let n = 5;
    let size = 1usize << n;
    for (label, rf) in [
        ("adaptive (dynamic links)", ShuffleExchangeRouting::new(n)),
        (
            "static (two rigid passes)",
            ShuffleExchangeRouting::without_dynamic_links(n),
        ),
    ] {
        let mut sim = Simulator::new(rf, SimConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let backlog = static_backlog(&Pattern::Random, size, n, &mut rng);
        let res = sim.run_static(&backlog);
        assert!(res.drained);
        println!(
            "  {label:<26} L_avg = {:>6.2}  L_max = {:>3}  (3n-hop bound => latency <= {})",
            res.stats.mean(),
            res.stats.max(),
            2 * 3 * n + 1
        );
    }
}
