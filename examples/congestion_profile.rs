//! Congestion profile by Hamming level: the § 3 motivation, measured.
//!
//! Without dynamic links, messages must finish all 0→1 corrections before
//! any 1→0 correction, so "congestion around node 1…1 is likely to take
//! place". This experiment measures mean central-queue occupancy per
//! Hamming level (distance from the hang node) under complement traffic,
//! for the static hang vs the fully-adaptive algorithm.
//!
//! ```text
//! cargo run --release --example congestion_profile
//! ```

use fadroute::prelude::*;
use fadroute::topology::hamming_weight;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn profile<RF: RoutingFunction>(rf: RF, n: usize) -> (String, Vec<f64>) {
    let name = rf.name();
    let size = 1usize << n;
    let cfg = SimConfig {
        track_occupancy: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(rf, cfg);
    let mut rng = StdRng::seed_from_u64(7);
    let backlog = static_backlog(&Pattern::complement(n), size, n, &mut rng);
    let res = sim.run_static(&backlog);
    assert!(res.drained);
    // Aggregate mean occupancy (q_A + q_B) by Hamming level.
    let probe = sim.occupancy();
    let mut by_level = vec![0.0f64; n + 1];
    let mut counts = vec![0usize; n + 1];
    for v in 0..size {
        let lvl = hamming_weight(v);
        by_level[lvl] += probe.mean(v, 2, 0) + probe.mean(v, 2, 1);
        counts[lvl] += 1;
    }
    for (s, c) in by_level.iter_mut().zip(&counts) {
        *s /= *c as f64;
    }
    (name, by_level)
}

fn main() {
    let n = 8;
    println!("mean central-queue occupancy per Hamming level, complement, {n} packets/node:\n");
    let (name_s, static_prof) = profile(HypercubeStaticHang::new(n), n);
    let (name_a, adaptive_prof) = profile(HypercubeFullyAdaptive::new(n), n);
    println!(
        "{:>6}  {:>12}  {:>12}",
        "level", "static-hang", "fully-adapt"
    );
    for lvl in 0..=n {
        let bar = |v: f64| "#".repeat((v * 12.0).round() as usize);
        println!(
            "{lvl:>6}  {:>12.3}  {:>12.3}   {}",
            static_prof[lvl],
            adaptive_prof[lvl],
            bar(static_prof[lvl])
        );
    }
    let peak_s = static_prof.iter().copied().fold(0.0, f64::max);
    let peak_a = adaptive_prof.iter().copied().fold(0.0, f64::max);
    println!(
        "\npeak level-mean occupancy: {name_s} = {peak_s:.3}, {name_a} = {peak_a:.3} \
         ({}x reduction from dynamic links)",
        (peak_s / peak_a.max(1e-9)).round()
    );
}
