//! Cross-validation of the certifier against the exhaustive checker:
//! on every small instance the two must agree on accept/reject, and
//! every emitted certificate must survive the independent checker.

use fadr_core::{
    AdaptiveSbp, EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang, MeshFullyAdaptive,
    MeshKDFullyAdaptive, MeshStaticHang, MeshXY, ShuffleExchangeRouting, TorusTwoPhase,
};
use fadr_qdg::sym::Symmetry;
use fadr_qdg::verify::verify_deadlock_free;
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_topology::{Hypercube, Mesh2D, NodeId, Port, Topology};
use fadr_verify::{certify, check_certificate, ClassifierMode, Outcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Certifier and exhaustive checker must agree; certificates must check.
fn assert_parity<R: Symmetry + ?Sized>(rf: &R) {
    let exhaustive = verify_deadlock_free(rf);
    let outcome = certify(rf);
    match (&exhaustive, &outcome) {
        (Ok(()), Outcome::Certified(cert)) => {
            check_certificate(rf, cert).unwrap_or_else(|e| {
                panic!(
                    "{}: emitted certificate fails its own checker: {e}",
                    rf.name()
                )
            });
        }
        (Err(_), Outcome::Rejected(_)) => {}
        (Ok(()), Outcome::Rejected(r)) => {
            panic!(
                "{}: exhaustive accepts but certifier rejects: {}",
                rf.name(),
                r.violation
            )
        }
        (Err(v), Outcome::Certified(_)) => {
            panic!(
                "{}: exhaustive rejects ({v}) but certifier accepts",
                rf.name()
            )
        }
    }
}

#[test]
fn hypercube_schemes_agree_with_exhaustive() {
    for n in 1..=4 {
        assert_parity(&HypercubeFullyAdaptive::new(n));
        assert_parity(&HypercubeStaticHang::new(n));
        assert_parity(&EcubeSbp::new(n));
    }
}

#[test]
fn mesh_schemes_agree_with_exhaustive() {
    for (w, h) in [(2, 2), (3, 3), (3, 4), (4, 4), (5, 2)] {
        assert_parity(&MeshFullyAdaptive::new(w, h));
        assert_parity(&MeshStaticHang::new(w, h));
        assert_parity(&MeshXY::new(w, h));
    }
    assert_parity(&MeshKDFullyAdaptive::new(&[3, 3, 2]));
    assert_parity(&MeshKDFullyAdaptive::new(&[2, 2, 2, 2]));
}

#[test]
fn torus_and_se_and_sbp_agree_with_exhaustive() {
    for (w, h) in [(3, 3), (4, 4), (5, 3)] {
        assert_parity(&TorusTwoPhase::new(w, h));
    }
    for n in 2..=4 {
        assert_parity(&ShuffleExchangeRouting::new(n));
        assert_parity(&ShuffleExchangeRouting::without_dynamic_links(n));
    }
    // Paper-literal SE: sound for prime n, deadlock-prone for n = 4.
    assert_parity(&ShuffleExchangeRouting::paper_literal(3));
    assert_parity(&ShuffleExchangeRouting::paper_literal(4));
    assert_parity(&AdaptiveSbp::new(Hypercube::new(3)));
    assert_parity(&AdaptiveSbp::new(Mesh2D::new(3, 4)));
}

#[test]
fn random_small_instances_agree_with_exhaustive() {
    // Seeded property coverage, repo idiom: random small shapes, both
    // checkers must agree and every certificate must check.
    let mut rng = StdRng::seed_from_u64(0xfad_5eed_0001);
    const CASES: usize = 24;
    for _ in 0..CASES {
        match rng.gen_range(0..4u8) {
            0 => {
                let n = rng.gen_range(1..=4usize);
                assert_parity(&HypercubeFullyAdaptive::new(n));
            }
            1 => {
                let (w, h) = (rng.gen_range(2..=5usize), rng.gen_range(2..=5usize));
                assert_parity(&MeshFullyAdaptive::new(w, h));
            }
            2 => {
                let (w, h) = (rng.gen_range(3..=5usize), rng.gen_range(3..=5usize));
                assert_parity(&TorusTwoPhase::new(w, h));
            }
            _ => {
                let n = rng.gen_range(2..=4usize);
                assert_parity(&ShuffleExchangeRouting::new(n));
            }
        }
    }
}

#[test]
fn hypercube_representatives_cover_all_destinations() {
    // The trusted boundary: the hypercube schemes nominate one
    // representative destination per Hamming level. Re-running the same
    // classifier over *all* destinations must produce the identical
    // static class-edge set and verdict.
    let rf = HypercubeFullyAdaptive::new(4);
    let reduced = fadr_verify::classgraph::build(&rf, false).unwrap();
    let full = fadr_verify::classgraph::build(&rf, true).unwrap();
    let edge_set = |cg: &fadr_verify::ClassGraph| {
        let mut edges: Vec<(String, String)> = cg
            .witnesses
            .keys()
            .map(|&(a, b)| (cg.classes[a].to_string(), cg.classes[b].to_string()))
            .collect();
        edges.sort();
        edges
    };
    assert!(reduced.dsts.len() < full.dsts.len());
    assert_eq!(edge_set(&reduced), edge_set(&full));
}

#[test]
fn tampered_certificate_is_rejected() {
    let rf = HypercubeFullyAdaptive::new(4);
    let Outcome::Certified(cert) = certify(&rf) else {
        panic!("hypercube must certify")
    };
    check_certificate(&rf, &cert).unwrap();
    // Swap two central-class ranks: some static transition now descends.
    let mut bad = cert.clone();
    let centrals: Vec<usize> = bad
        .ranks
        .iter()
        .enumerate()
        .filter(|(_, (c, _))| matches!(c.kind, QueueKind::Central(_)))
        .map(|(i, _)| i)
        .collect();
    let (i, j) = (centrals[0], centrals[centrals.len() - 1]);
    let (ri, rj) = (bad.ranks[i].1, bad.ranks[j].1);
    bad.ranks[i].1 = rj;
    bad.ranks[j].1 = ri;
    let err = check_certificate(&rf, &bad).expect_err("tampered ranks must fail");
    assert!(err.contains("rank"), "{err}");
    // A certificate for the wrong instance must also fail.
    let other = HypercubeFullyAdaptive::new(3);
    assert!(check_certificate(&other, &cert).is_err());
}

#[test]
fn scheme_classifiers_are_actually_reduced() {
    // The point of the tentpole: certificates for the structured schemes
    // must come from the scheme classifier (no concrete fallback) with a
    // class count independent of (or much smaller than) the queue count.
    let rf = HypercubeFullyAdaptive::new(5);
    let Outcome::Certified(cert) = certify(&rf) else {
        panic!("must certify")
    };
    assert!(matches!(cert.classifier, ClassifierMode::Scheme { .. }));
    assert!(!cert.all_dsts, "hypercube uses level representatives");
    assert!(
        cert.ranks.len() < cert.queues_seen / 4,
        "classes {} vs queues {}",
        cert.ranks.len(),
        cert.queues_seen
    );
    let rf = MeshFullyAdaptive::new(6, 6);
    let Outcome::Certified(cert) = certify(&rf) else {
        panic!("must certify")
    };
    assert!(matches!(cert.classifier, ClassifierMode::Scheme { .. }));
    assert!(cert.ranks.len() < cert.queues_seen / 2);
}

// --- a deliberately broken scheme: single-queue store-and-forward e-cube ---

/// Oblivious ascending-dimension routing with one central queue per node:
/// the classic store-and-forward deadlock (cyclic static QDG).
struct Ecube1Q {
    cube: Hypercube,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Msg {
    dst: NodeId,
}

impl RoutingFunction for Ecube1Q {
    type Msg = Msg;

    fn topology(&self) -> &dyn Topology {
        &self.cube
    }

    fn num_classes(&self) -> usize {
        1
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> Msg {
        Msg { dst }
    }

    fn destination(&self, msg: &Msg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &Msg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(&self, at: QueueId, msg: &Msg, f: &mut dyn FnMut(Transition<Msg>)) {
        match at.kind {
            QueueKind::Inject => f(Transition {
                kind: LinkKind::Static,
                hop: HopKind::Internal,
                to: QueueId::central(at.node, 0),
                msg: *msg,
            }),
            QueueKind::Central(_) => {
                if at.node == msg.dst {
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Internal,
                        to: QueueId::deliver(at.node),
                        msg: *msg,
                    });
                } else {
                    let dim = (at.node ^ msg.dst).trailing_zeros() as usize;
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Link(dim),
                        to: QueueId::central(at.node ^ (1 << dim), 0),
                        msg: *msg,
                    });
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, _port: Port) -> Vec<BufferClass> {
        vec![BufferClass::Static(0)]
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.cube.dims()
    }

    fn name(&self) -> String {
        "ecube-1q".into()
    }
}

impl Symmetry for Ecube1Q {}

#[test]
fn broken_scheme_yields_a_concrete_counterexample() {
    let rf = Ecube1Q {
        cube: Hypercube::new(3),
    };
    assert!(verify_deadlock_free(&rf).is_err());
    let Outcome::Rejected(rej) = certify(&rf) else {
        panic!("store-and-forward e-cube must be rejected")
    };
    assert_eq!(rej.violation.check, "deadlock-free");
    let cx = rej
        .counterexample
        .as_ref()
        .expect("cycle rejection carries a counterexample");
    assert!(cx.cycle.len() >= 2);
    assert_eq!(cx.cycle.len(), cx.edges.len());
    // Every edge witness matches its cycle edge and names a real route.
    for (k, e) in cx.edges.iter().enumerate() {
        assert_eq!(e.from, cx.cycle[k]);
        assert_eq!(e.to, cx.cycle[(k + 1) % cx.cycle.len()]);
        assert!(matches!(e.from.kind, QueueKind::Central(_)));
    }
    // The violation mirrors the cycle and the DOT renders it.
    assert_eq!(rej.violation.queues, cx.cycle);
    assert!(cx.dot.contains("digraph"));
    for q in &cx.cycle {
        assert!(cx.dot.contains(&q.to_string()), "{q} missing from dot");
    }
}
