//! The `certify` binary's exit-code contract: 0 clean, 1 findings
//! (rejection, or a missed `--expect-reject`), 2 on usage or I/O
//! errors — the workspace-wide convention shared with `lint` and
//! `replay`, gated here so the CI scripts can rely on it.

use std::process::Command;

fn certify(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_certify"))
        .args(args)
        .output()
        .expect("spawn certify");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn certified_scheme_exits_zero() {
    let (code, stdout, _) = certify(&["--family", "hypercube", "--n", "3"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("CERTIFIED"));
}

#[test]
fn rejection_exits_one_and_expect_reject_flips() {
    let (code, stdout, _) = certify(&["--family", "se", "--n", "4", "--algo", "paper-literal"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("REJECTED"));
    let (code, _, _) = certify(&[
        "--family",
        "se",
        "--n",
        "4",
        "--algo",
        "paper-literal",
        "--expect-reject",
    ]);
    assert_eq!(code, Some(0));
    // An acceptance under --expect-reject is itself a finding.
    let (code, _, _) = certify(&["--family", "hypercube", "--n", "3", "--expect-reject"]);
    assert_eq!(code, Some(1));
}

#[test]
fn lint_pre_pass_gates_before_certification() {
    let (code, stdout, _) = certify(&[
        "--family",
        "se",
        "--n",
        "4",
        "--algo",
        "paper-literal",
        "--lint",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("LINT-GATED"), "{stdout}");
    assert!(
        !stdout.contains("REJECTED"),
        "certification should be skipped:\n{stdout}"
    );
    // A clean scheme passes the pre-pass and still certifies.
    let (code, stdout, _) = certify(&["--family", "hypercube", "--n", "3", "--lint"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("CERTIFIED"));
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["--bogus"][..],
        &["--family", "klein-bottle", "--n", "4"],
        &["--family", "hypercube", "--n", "notanumber"],
        &["--n"],
    ] {
        let (code, _, stderr) = certify(args);
        assert_eq!(code, Some(2), "args {args:?}: {stderr}");
    }
}

#[test]
fn io_errors_exit_two() {
    let (code, _, stderr) = certify(&[
        "--family",
        "hypercube",
        "--n",
        "3",
        "--faults",
        "/nonexistent/plan.json",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = certify(&[
        "--family",
        "hypercube",
        "--n",
        "3",
        "--out",
        "/nonexistent/dir/cert.json",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
}

#[test]
fn help_exits_zero() {
    let (code, stdout, _) = certify(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage: certify"));
}
