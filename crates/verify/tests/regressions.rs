//! Regression tests re-deriving the two DESIGN.md § 5 model-checking
//! findings through the certifier.

use fadr_core::{HypercubeFullyAdaptive, HypercubeStaticHang, ShuffleExchangeRouting};
use fadr_qdg::verify::verify_deadlock_free;
use fadr_qdg::QueueKind;
use fadr_verify::{certify, check_certificate, Outcome};

/// DESIGN.md § 5 finding 1: the paper's literal "2 classes per phase"
/// shuffle-exchange provisioning deadlocks for composite `n` — a message
/// can wrap a short necklace (period `L | n`, `L < n`) several times in
/// one phase residence, re-crossing the break node and closing a static
/// QDG cycle. The certifier must reject SE(4) with a concrete cycle.
#[test]
fn paper_literal_se4_is_rejected_with_a_short_necklace_cycle() {
    let rf = ShuffleExchangeRouting::paper_literal(4);
    let Outcome::Rejected(rej) = certify(&rf) else {
        panic!("paper-literal SE(4) must be rejected")
    };
    assert_eq!(rej.violation.check, "deadlock-free");
    let cx = rej
        .counterexample
        .as_ref()
        .expect("static-cycle rejection carries a counterexample");
    // The cycle lives among central queues and every edge is witnessed
    // by a concrete (dst, message-state) route.
    assert!(cx.cycle.len() >= 2);
    for q in &cx.cycle {
        assert!(matches!(q.kind, QueueKind::Central(_)), "{q} not central");
    }
    for (k, e) in cx.edges.iter().enumerate() {
        assert_eq!(e.from, cx.cycle[k]);
        assert_eq!(e.to, cx.cycle[(k + 1) % cx.cycle.len()]);
    }
    assert!(cx.dot.contains("digraph"));
    // The exhaustive checker agrees (cross-check of the re-derivation).
    assert!(verify_deadlock_free(&rf).is_err());
}

/// The corrected provisioning certifies for the same composite sizes,
/// and the paper's literal construction *is* sound for prime `n`.
#[test]
fn corrected_se_provisioning_certifies() {
    for n in [4, 6] {
        let rf = ShuffleExchangeRouting::new(n);
        let Outcome::Certified(cert) = certify(&rf) else {
            panic!("corrected SE({n}) must certify")
        };
        check_certificate(&rf, &cert).unwrap();
    }
    let rf = ShuffleExchangeRouting::paper_literal(5);
    let Outcome::Certified(cert) = certify(&rf) else {
        panic!("paper-literal SE(5) (prime) must certify")
    };
    check_certificate(&rf, &cert).unwrap();
}

/// DESIGN.md § 5 finding 2: the packet argument does not transfer to
/// adaptive wormhole switching — dynamic links create indirect
/// (extended) channel dependencies outside the § 2 static-order
/// argument. Certificates flag this: any dynamic class edge puts the
/// adaptive wormhole discipline out of scope, while the static-VC mode
/// (no dynamic links) stays in scope under the same rank function.
#[test]
fn wormhole_scope_is_flagged_by_dynamic_edges() {
    let rf = HypercubeFullyAdaptive::new(4);
    let Outcome::Certified(cert) = certify(&rf) else {
        panic!("must certify")
    };
    assert!(cert.dynamic_class_edges > 0);
    assert!(!cert.adaptive_wormhole_in_scope());
    assert!(cert.to_json().contains("\"adaptive_in_scope\": false"));

    let rf = HypercubeStaticHang::new(4);
    let Outcome::Certified(cert) = certify(&rf) else {
        panic!("must certify")
    };
    assert_eq!(cert.dynamic_class_edges, 0);
    assert!(cert.adaptive_wormhole_in_scope());

    let rf = ShuffleExchangeRouting::without_dynamic_links(4);
    let Outcome::Certified(cert) = certify(&rf) else {
        panic!("must certify")
    };
    assert!(cert.adaptive_wormhole_in_scope());
}

/// The certifier scales where the exhaustive checker cannot: a 7-cube
/// (128 nodes) certifies through the level-representative reduction in
/// well under a second, and its certificate checks independently.
#[test]
fn seven_cube_certifies_via_symmetry() {
    let rf = HypercubeFullyAdaptive::new(7);
    let Outcome::Certified(cert) = certify(&rf) else {
        panic!("must certify")
    };
    assert_eq!(cert.nodes, 128);
    assert!(!cert.all_dsts);
    assert_eq!(cert.dsts.len(), 8); // one representative per Hamming level
    check_certificate(&rf, &cert).unwrap();
    // Certificate JSON is schema-tagged and self-describing.
    let json = cert.to_json();
    assert!(json.contains("\"schema\": \"fadr-verify/1\""));
    assert!(json.contains("\"mode\": \"representatives\""));
    assert!(json.contains("\"ranks\""));
}
