//! Re-certification of degraded (faulted) schemes: every accepted
//! fault plan ships with a rank-function certificate, every rejected
//! one with a concrete counterexample — a dead end when the plan
//! disconnects a destination, a static cycle when the escape fallback
//! bends the phase order back on itself.

use fadr_core::{HypercubeFullyAdaptive, MeshFullyAdaptive, TorusTwoPhase};
use fadr_sim::{FaultKind, FaultPlan};
use fadr_topology::Topology;
use fadr_verify::{certify_plan, check_certificate, Faulted, Outcome};

fn link_down(from: u32, to: u32) -> FaultPlan {
    let mut p = FaultPlan::new(1, 0);
    p.push(5, FaultKind::LinkDown { from, to });
    p
}

/// A plan with only transient faults (freezes, flaky windows) leaves
/// the eventual topology intact: the wrapper is a pass-through and the
/// degraded scheme certifies exactly like the original.
#[test]
fn transient_only_plan_certifies_as_passthrough() {
    let mut plan = FaultPlan::new(7, 2);
    plan.push(
        3,
        FaultKind::QueueFreeze {
            node: 2,
            class: 0,
            duration: 10,
        },
    );
    plan.push(
        0,
        FaultKind::FlakyLink {
            from: 1,
            to: 3,
            until: 30,
            threshold: 50,
        },
    );
    fn assert_passthrough<R: fadr_qdg::RoutingFunction>(label: &str, rf: &R, plan: &FaultPlan) {
        let (f, outcome) = certify_plan(rf, plan).expect("well-formed plan");
        assert!(!f.is_degraded(), "{label}: no permanent fault bit");
        let cert = match outcome {
            Outcome::Certified(c) => c,
            Outcome::Rejected(r) => panic!("{label}: rejected: {}", r.violation),
        };
        assert!(!cert.ranks.is_empty(), "{label}: certificate has ranks");
        check_certificate(&f, &cert).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
    assert_passthrough("cube", &HypercubeFullyAdaptive::new(4), &plan);
    assert_passthrough("torus", &TorusTwoPhase::new(8, 8), &plan);
}

/// Killing a root-outgoing channel forces escapes that align with the
/// phase-A (descending) order, so the degraded static QDG stays
/// acyclic: the plan certifies, and the certificate survives the
/// independent checker against the degraded scheme itself.
#[test]
fn aligned_link_faults_certify_with_rank_function() {
    fn assert_certifies<R: fadr_qdg::RoutingFunction>(label: &str, rf: &R, plan: &FaultPlan) {
        let (f, outcome) = certify_plan(rf, plan).expect("well-formed plan");
        assert!(f.is_degraded(), "{label}: the dead link is a real channel");
        let cert = match outcome {
            Outcome::Certified(c) => c,
            Outcome::Rejected(r) => panic!("{label}: rejected: {}", r.violation),
        };
        assert!(!cert.ranks.is_empty(), "{label}: rank function present");
        assert!(
            cert.algorithm.contains("degraded"),
            "{label}: certificate names the degraded scheme"
        );
        // The certificate JSON carries the explicit rank function (the
        // CI smoke matrix greps for this key).
        assert!(cert.to_json().contains("\"ranks\": ["));
        check_certificate(&f, &cert).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
    let cube = HypercubeFullyAdaptive::new(4);
    let mesh = MeshFullyAdaptive::new(8, 8);
    assert_certifies("cube 0->1", &cube, &link_down(0, 1));
    assert_certifies("cube 0->8", &cube, &link_down(0, 8));
    assert_certifies("mesh 0->1", &mesh, &link_down(0, 1));
}

/// A mid-cube dead link makes some state's only static move die while
/// a dynamic one survives; the escape restart then re-enters phase A
/// *against* the descending order and closes a static 2-cycle. The
/// certifier must reject with the concrete cycle, not accept.
#[test]
fn phase_reversing_escape_is_rejected_with_concrete_cycle() {
    let cube = HypercubeFullyAdaptive::new(4);
    let (_, outcome) = certify_plan(&cube, &link_down(3, 7)).expect("well-formed plan");
    let rej = match outcome {
        Outcome::Certified(_) => panic!("phase-reversing escape must not certify"),
        Outcome::Rejected(r) => r,
    };
    assert!(
        rej.violation.detail.contains("cycle"),
        "got: {}",
        rej.violation.detail
    );
    let cx = rej
        .counterexample
        .expect("static cycles carry a counterexample");
    assert!(cx.cycle.len() >= 2);
    assert_eq!(cx.edges.len(), cx.cycle.len(), "one witness per edge");
}

/// A plan that cuts every in-channel of one node partitions that
/// destination: the degraded QDG has a dead-end state (no surviving
/// move, no escape), which is the concrete counterexample. This is the
/// verify-side twin of the engines' `Partitioned` stop.
#[test]
fn partitioning_plan_is_rejected_with_dead_end() {
    let cube = HypercubeFullyAdaptive::new(4);
    let mut plan = FaultPlan::new(1, 0);
    for d in 0..4u32 {
        plan.push(
            3,
            FaultKind::LinkDown {
                from: 15 ^ (1 << d),
                to: 15,
            },
        );
    }
    let (_, outcome) = certify_plan(&cube, &plan).expect("well-formed plan");
    let rej = match outcome {
        Outcome::Certified(_) => panic!("a partitioning plan must not certify"),
        Outcome::Rejected(r) => r,
    };
    assert!(
        rej.violation.detail.contains("dead end"),
        "got: {}",
        rej.violation.detail
    );
}

/// Node faults compact the surviving network: the wrapper renumbers
/// live nodes densely so every exploration seed and destination is
/// live by construction.
#[test]
fn node_faults_compact_the_surviving_network() {
    let cube = HypercubeFullyAdaptive::new(4);
    let mut plan = FaultPlan::new(1, 0);
    plan.push(2, FaultKind::NodeDown { node: 5 });
    let (f, _) = certify_plan(&cube, &plan).expect("well-formed plan");
    assert_eq!(f.surviving().num_nodes(), 15);
    // No surviving channel touches the dead node's compacted slots.
    let surv = f.surviving();
    for v in 0..surv.num_nodes() {
        for p in 0..surv.max_ports() {
            if let Some(w) = surv.neighbor(v, p) {
                assert!(w < surv.num_nodes());
            }
        }
    }
}

/// Malformed fault sets are reported as errors, not panics.
#[test]
fn malformed_fault_sets_error_cleanly() {
    let cube = HypercubeFullyAdaptive::new(3);
    assert!(
        Faulted::new(&cube, &[false; 4], &[]).is_err(),
        "wrong node count"
    );
    assert!(
        Faulted::new(&cube, &[false; 8], &[(0, 99)]).is_err(),
        "out-of-range link"
    );
    assert!(
        Faulted::new(&cube, &[true; 8], &[]).is_err(),
        "all nodes dead"
    );
}

/// A dead link naming a non-existent channel must not degrade the
/// scheme (the engine's `has_dead` gate only fires on real channels).
#[test]
fn dead_link_on_missing_channel_is_a_noop() {
    let cube = HypercubeFullyAdaptive::new(3);
    // 0 and 3 differ in two bits: no channel connects them.
    let f = Faulted::new(&cube, &[false; 8], &[(0, 3)]).expect("well-formed");
    assert!(!f.is_degraded());
}
