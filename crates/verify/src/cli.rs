//! The `certify` command-line front end (shared by the `certify` bin
//! targets of `fadr-verify` and the root `fadroute` facade).
//!
//! ```text
//! certify --family hypercube --n 10
//! certify --family mesh --width 32 --height 32 --algo static-hang
//! certify --family torus --width 16 --height 16
//! certify --family se --n 12
//! certify --family se --n 4 --algo paper-literal --expect-reject --dot cycle.dot
//! certify --family hypercube --n 8 --faults plan.json --out cert.json
//! ```
//!
//! On acceptance the emitted certificate is immediately re-validated by
//! the independent checker, printed as a summary, and (with `--out` /
//! `--out-dir`) written as `fadr-verify/1` JSON. On rejection the
//! violation, the counterexample cycle with its route witnesses, and
//! (with `--dot`) a Graphviz rendering are produced. With `--lint` the
//! fadr-lint battery runs first and lint errors skip certification.
//!
//! Exit status follows the workspace-wide convention: 0 clean, 1
//! findings (rejection, or acceptance under `--expect-reject`), 2 on
//! usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use crate::{certify, check_certificate, ClassifierMode, Outcome};
use fadr_core::{
    EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang, MeshFullyAdaptive, MeshStaticHang,
    MeshXY, ShuffleExchangeRouting, TorusTwoPhase,
};
use fadr_lint::{lint_scheme, LintConfig};
use fadr_qdg::sym::Symmetry;

struct Opts {
    family: String,
    algo: String,
    n: usize,
    width: usize,
    height: usize,
    out: Option<PathBuf>,
    out_dir: Option<PathBuf>,
    dot: Option<PathBuf>,
    faults: Option<PathBuf>,
    expect_reject: bool,
    lint: bool,
}

fn usage() -> &'static str {
    "usage: certify --family <hypercube|mesh|torus|se> [options]\n\
     \n\
     --family hypercube  --n DIMS   --algo fully-adaptive|static-hang|ecube-sbp\n\
     --family mesh       --width W --height H (or --n for square)\n\
     \x20                           --algo fully-adaptive|static-hang|xy\n\
     --family torus      --width W --height H (or --n for square)\n\
     --family se         --n DIMS   --algo adaptive|static|paper-literal\n\
     \n\
     --out FILE        write the certificate JSON to FILE\n\
     --out-dir DIR     write the certificate JSON to DIR/<scheme>.json\n\
     --dot FILE        write the counterexample cycle as Graphviz on rejection\n\
     --faults FILE     certify the degraded QDG after FILE's fadr-faults/1 plan\n\
     --lint            run the fadr-lint battery first; skip certification on lint errors\n\
     --expect-reject   exit 0 iff the scheme is rejected"
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Opts, String> {
    let mut o = Opts {
        family: String::new(),
        algo: "fully-adaptive".into(),
        n: 0,
        width: 0,
        height: 0,
        out: None,
        out_dir: None,
        dot: None,
        faults: None,
        expect_reject: false,
        lint: false,
    };
    let want = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--family" => o.family = want(&mut args, "--family")?,
            "--algo" => o.algo = want(&mut args, "--algo")?,
            "--n" => o.n = parse_num(&want(&mut args, "--n")?)?,
            "--width" => o.width = parse_num(&want(&mut args, "--width")?)?,
            "--height" => o.height = parse_num(&want(&mut args, "--height")?)?,
            "--out" => o.out = Some(PathBuf::from(want(&mut args, "--out")?)),
            "--out-dir" => o.out_dir = Some(PathBuf::from(want(&mut args, "--out-dir")?)),
            "--dot" => o.dot = Some(PathBuf::from(want(&mut args, "--dot")?)),
            "--faults" => o.faults = Some(PathBuf::from(want(&mut args, "--faults")?)),
            "--expect-reject" => o.expect_reject = true,
            "--lint" => o.lint = true,
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if o.width == 0 {
        o.width = o.n;
    }
    if o.height == 0 {
        o.height = o.width;
    }
    Ok(o)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

/// Parse `std::env::args`, certify the requested instance, and return
/// the process exit code.
pub fn main() -> ExitCode {
    let opts = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            // `--help` surfaces the usage text through the same path but
            // is not an error.
            if e == usage() {
                println!("{e}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let code = match (opts.family.as_str(), opts.algo.as_str()) {
        ("hypercube", "fully-adaptive") => run(&HypercubeFullyAdaptive::new(opts.n), &opts),
        ("hypercube", "static-hang") => run(&HypercubeStaticHang::new(opts.n), &opts),
        ("hypercube", "ecube-sbp") => run(&EcubeSbp::new(opts.n), &opts),
        ("mesh", "fully-adaptive") => run(&MeshFullyAdaptive::new(opts.width, opts.height), &opts),
        ("mesh", "static-hang") => run(&MeshStaticHang::new(opts.width, opts.height), &opts),
        ("mesh", "xy") => run(&MeshXY::new(opts.width, opts.height), &opts),
        ("torus", "fully-adaptive") => run(&TorusTwoPhase::new(opts.width, opts.height), &opts),
        ("se", "adaptive" | "fully-adaptive") => run(&ShuffleExchangeRouting::new(opts.n), &opts),
        ("se", "static") => run(
            &ShuffleExchangeRouting::without_dynamic_links(opts.n),
            &opts,
        ),
        ("se", "paper-literal") => run(&ShuffleExchangeRouting::paper_literal(opts.n), &opts),
        (fam, algo) => {
            eprintln!("unsupported family/algo: {fam}/{algo}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    ExitCode::from(code)
}

/// Dispatch: with `--faults`, certify the degraded scheme after the
/// plan's permanent faults; otherwise certify the scheme as-is.
fn run<R: Symmetry>(rf: &R, opts: &Opts) -> u8 {
    let Some(path) = &opts.faults else {
        return run_scheme(rf, opts);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let plan = match fadr_sim::FaultPlan::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bad fault plan {}: {e}", path.display());
            return 2;
        }
    };
    let n = fadr_qdg::RoutingFunction::topology(rf).num_nodes();
    match crate::Faulted::new(rf, &plan.final_dead_nodes(n), &plan.final_dead_links()) {
        Ok(f) => run_scheme(&f, opts),
        Err(e) => {
            eprintln!("fault plan does not fit {}: {e}", rf.name());
            2
        }
    }
}

fn run_scheme<R: Symmetry + ?Sized>(rf: &R, opts: &Opts) -> u8 {
    if opts.lint {
        // Static pre-pass on the scheme about to be certified (the
        // degraded wrapper when --faults is in play): lint errors are
        // certain rejections with a localized clause, so skip the
        // counterexample search and gate on them directly.
        let report = lint_scheme(rf, &LintConfig::default());
        print!("{}", report.render_text());
        if report.errors() > 0 {
            println!(
                "LINT-GATED {} ({} error(s)); certification skipped",
                rf.name(),
                report.errors()
            );
            return u8::from(!opts.expect_reject);
        }
    }
    let started = std::time::Instant::now();
    let outcome = certify(rf);
    let elapsed = started.elapsed();
    match outcome {
        Outcome::Certified(cert) => {
            if let Err(e) = check_certificate(rf, &cert) {
                eprintln!("INTERNAL ERROR: emitted certificate fails validation: {e}");
                return 1;
            }
            let mode = match &cert.classifier {
                ClassifierMode::Scheme { description } => {
                    format!("scheme symmetry ({description})")
                }
                ClassifierMode::Concrete => "concrete (identity classifier)".into(),
            };
            println!("CERTIFIED  {} on {}", cert.algorithm, cert.topology);
            println!("  classifier:      {mode}");
            println!(
                "  destinations:    {}",
                if cert.all_dsts {
                    format!("all {}", cert.nodes)
                } else {
                    format!("{} representatives of {}", cert.dsts.len(), cert.nodes)
                }
            );
            println!(
                "  classes/queues:  {} ranked classes over {} concrete queues",
                cert.ranks.len(),
                cert.queues_seen
            );
            println!(
                "  class edges:     {} static, {} dynamic",
                cert.static_class_edges, cert.dynamic_class_edges
            );
            println!(
                "  wormhole scope:  adaptive {}, static-VC in scope",
                if cert.adaptive_wormhole_in_scope() {
                    "in scope"
                } else {
                    "OUT of scope (dynamic links add indirect dependencies)"
                }
            );
            println!(
                "  explored:        {} states in {:.2?} (certificate re-validated)",
                cert.states_explored, elapsed
            );
            let json = cert.to_json();
            for path in out_paths(opts, &cert.algorithm) {
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return 2;
                }
                println!("  certificate:     {}", path.display());
            }
            u8::from(opts.expect_reject)
        }
        Outcome::Rejected(rej) => {
            println!("REJECTED   {}", rf.name());
            println!("  violation: {}", rej.violation);
            if let Some(cx) = &rej.counterexample {
                println!("  counterexample cycle ({} queues):", cx.cycle.len());
                for e in &cx.edges {
                    println!(
                        "    {} -> {}  [route to dst {} in state {}]",
                        e.from, e.to, e.dst, e.msg
                    );
                }
                if let Some(path) = &opts.dot {
                    if let Err(e) = std::fs::write(path, &cx.dot) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return 2;
                    }
                    println!("  rendered: {}", path.display());
                }
            }
            u8::from(!opts.expect_reject)
        }
    }
}

/// Where to write the certificate: `--out` verbatim, and/or
/// `--out-dir/<sanitized scheme name>.json`.
fn out_paths(opts: &Opts, algorithm: &str) -> Vec<PathBuf> {
    let mut v = Vec::new();
    if let Some(p) = &opts.out {
        v.push(p.clone());
    }
    if let Some(dir) = &opts.out_dir {
        let safe: String = algorithm
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        v.push(dir.join(format!("{safe}.json")));
    }
    v
}
