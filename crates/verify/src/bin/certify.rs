//! Certify a routing scheme's deadlock freedom — see `fadr_verify::cli`.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    fadr_verify::cli::main()
}
