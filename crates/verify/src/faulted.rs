//! Re-certification of a scheme under permanent faults: the degraded
//! QDG on the surviving network.
//!
//! The simulator's fault layer (`fadr_sim::fault`) restricts routing,
//! once any permanent fault exists, to moves that strictly shorten the
//! **surviving-graph** distance to the destination, with a static
//! escape hop (restarting the routing state at the next node) as
//! fallback whenever no static move survives. [`Faulted`] models that
//! degraded routing function exactly, as a [`RoutingFunction`] over the
//! surviving network, so the ordinary certifier pipeline
//! ([`crate::certify`] + [`crate::check_certificate`]) applies
//! unchanged: an accepted fault plan ships with a rank-function
//! certificate for its degraded QDG, a rejected one with a concrete
//! counterexample (a dead-end state when the plan disconnects some
//! destination, or a static cycle among the degraded edges).
//!
//! Dead nodes are compacted away: the wrapper renumbers the surviving
//! nodes `0..m` and presents a [`SurvivingTopology`] over them, so
//! every exploration seed and destination is live by construction.
//! Messages keep the inner scheme's representation (original node ids);
//! only the queue ids visible to the certifier are compacted. Traffic
//! to a dead node is not modelled — the simulator drops or
//! partition-reports it rather than routing it.
//!
//! Semantics mirrored from the engine's degraded mode, point for point:
//!
//! * link moves survive iff their channel and target node are alive and
//!   the target strictly decreases the surviving-graph distance to the
//!   destination (`d[to] == d[here] - 1`);
//! * in-place class changes (stutters) are dropped;
//! * if no *static* move survives, the escape hop — the lowest-port
//!   live out-channel making shortest-path progress — is appended as a
//!   static transition whose target state is the restarted
//!   `initial_msg` at the receiving node's entry class (the engine's
//!   `accept_arrival` discards the staged state on an escape hop);
//! * a state with no surviving move and no escape emits nothing, which
//!   the class-graph builder reports as a dead end: the concrete
//!   counterexample for a partitioning plan.

use fadr_qdg::sym::Symmetry;
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_topology::{NodeId, Port, Topology};

use crate::hasher::FxHashSet;

/// The surviving network: live nodes renumbered densely, with dead
/// channels removed. Built by [`Faulted::new`].
pub struct SurvivingTopology {
    name: String,
    max_ports: usize,
    /// `adj[compact node][port]` — compact neighbor over a live channel.
    adj: Vec<Vec<Option<NodeId>>>,
}

impl Topology for SurvivingTopology {
    fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    fn max_ports(&self) -> usize {
        self.max_ports
    }

    fn neighbor(&self, node: NodeId, port: Port) -> Option<NodeId> {
        self.adj[node].get(port).copied().flatten()
    }

    fn reverse_port(&self, node: NodeId, port: Port) -> Option<Port> {
        // A channel and its reverse fail independently, so the link is
        // bidirectional only if the reverse channel also survives.
        let w = self.neighbor(node, port)?;
        (0..self.max_ports).find(|&p| self.adj[w].get(p).copied().flatten() == Some(node))
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn as_dyn(&self) -> &dyn Topology {
        self
    }
}

/// A scheme's degraded routing function after a set of permanent faults
/// (see the [module docs](self)). Implements [`RoutingFunction`] over
/// the compacted surviving network and the identity [`Symmetry`]
/// (faults break a scheme's symmetry, so the reduction is never
/// trusted).
pub struct Faulted<'a, R: RoutingFunction + ?Sized> {
    rf: &'a R,
    surv: SurvivingTopology,
    /// Compact node id → original node id.
    orig_of: Vec<NodeId>,
    /// Original node id → compact id (`usize::MAX` = dead).
    comp_of: Vec<usize>,
    /// Permanently dead directed channels, original ids.
    dead_link: FxHashSet<(NodeId, NodeId)>,
    /// `dist[original dst][original node]`: surviving-graph distance to
    /// `dst` (`u32::MAX` = unreachable); empty for dead destinations.
    /// Populated only when `degraded`.
    dist: Vec<Vec<u32>>,
    /// Whether any permanent fault actually bit (a dead node, or a dead
    /// link naming a real channel). Without one the wrapper forwards
    /// the scheme untouched, exactly like the engine's `has_dead` gate.
    degraded: bool,
    name: String,
}

impl<'a, R: RoutingFunction + ?Sized> Faulted<'a, R> {
    /// Wrap `rf` with the permanent faults of a plan: `dead_nodes[v]`
    /// marks node `v` dead, `dead_links` lists dead directed channels
    /// (original node ids — the shapes of
    /// `fadr_sim::FaultPlan::final_dead_nodes` / `final_dead_links`).
    pub fn new(rf: &'a R, dead_nodes: &[bool], dead_links: &[(u32, u32)]) -> Result<Self, String> {
        let topo = rf.topology();
        let n = topo.num_nodes();
        if dead_nodes.len() != n {
            return Err(format!(
                "dead_nodes has {} entries for a {n}-node network",
                dead_nodes.len()
            ));
        }
        let mut dead_link: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
        for &(a, b) in dead_links {
            let (a, b) = (a as usize, b as usize);
            if a >= n || b >= n {
                return Err(format!(
                    "dead link ({a}, {b}) is outside the {n}-node network"
                ));
            }
            dead_link.insert((a, b));
        }
        let orig_of: Vec<NodeId> = (0..n).filter(|&v| !dead_nodes[v]).collect();
        if orig_of.is_empty() {
            return Err("every node is dead; nothing to certify".into());
        }
        let mut comp_of = vec![usize::MAX; n];
        for (c, &v) in orig_of.iter().enumerate() {
            comp_of[v] = c;
        }
        // Surviving adjacency (compact) and reverse adjacency
        // (original) in one pass; count how many dead links name real
        // channels so a plan of no-op link faults stays non-degraded,
        // matching the engine.
        let max_ports = topo.max_ports();
        let mut adj = vec![vec![None; max_ports]; orig_of.len()];
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut dead_edges = 0usize;
        for (c, &u) in orig_of.iter().enumerate() {
            for (port, slot) in adj[c].iter_mut().enumerate() {
                let Some(w) = topo.neighbor(u, port) else {
                    continue;
                };
                if dead_link.contains(&(u, w)) {
                    dead_edges += 1;
                    continue;
                }
                if dead_nodes[w] {
                    continue;
                }
                *slot = Some(comp_of[w]);
                rev[w].push(u);
            }
        }
        let dead_node_count = n - orig_of.len();
        let degraded = dead_node_count > 0 || dead_edges > 0;
        let mut dist = vec![Vec::new(); n];
        if degraded {
            // One reverse BFS per live destination over the surviving
            // channels — the same table the engine's
            // `FaultState::ensure_distances` computes lazily.
            for &dstv in &orig_of {
                let mut d = vec![u32::MAX; n];
                d[dstv] = 0;
                let mut frontier = vec![dstv];
                let mut next = Vec::new();
                let mut depth = 0u32;
                while !frontier.is_empty() {
                    depth += 1;
                    for &v in &frontier {
                        for &u in &rev[v] {
                            if d[u] == u32::MAX {
                                d[u] = depth;
                                next.push(u);
                            }
                        }
                    }
                    frontier.clear();
                    std::mem::swap(&mut frontier, &mut next);
                }
                dist[dstv] = d;
            }
        }
        let name = format!(
            "{} [degraded: {dead_node_count} dead node(s), {dead_edges} dead link(s)]",
            rf.name()
        );
        let surv = SurvivingTopology {
            name: format!("{} [surviving]", topo.name()),
            max_ports,
            adj,
        };
        Ok(Self {
            rf,
            surv,
            orig_of,
            comp_of,
            dead_link,
            dist,
            degraded,
            name,
        })
    }

    /// Whether any permanent fault actually bit (dead node, or dead
    /// link naming a real channel). A non-degraded wrapper forwards the
    /// scheme untouched.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The surviving network (compacted live nodes).
    pub fn surviving(&self) -> &SurvivingTopology {
        &self.surv
    }

    /// Whether the directed original-id channel `u → w` survives.
    fn edge_alive(&self, u: NodeId, w: NodeId) -> bool {
        self.comp_of[w] != usize::MAX && !self.dead_link.contains(&(u, w))
    }

    /// The central class the injection queue's transition enters for
    /// `msg` at original node `node` (the engine's `entry_class`).
    fn entry_class(&self, node: NodeId, msg: &R::Msg) -> u8 {
        let mut entry: Option<u8> = None;
        self.rf
            .for_each_transition(QueueId::inject(node), msg, &mut |t| {
                if let QueueKind::Central(c) = t.to.kind {
                    entry = Some(c);
                }
            });
        entry.expect("injection transition exists")
    }
}

impl<R: RoutingFunction + ?Sized> RoutingFunction for Faulted<'_, R> {
    type Msg = R::Msg;

    fn topology(&self) -> &dyn Topology {
        &self.surv
    }

    fn num_classes(&self) -> usize {
        self.rf.num_classes()
    }

    fn initial_msg(&self, src: NodeId, dst: NodeId) -> Self::Msg {
        self.rf.initial_msg(self.orig_of[src], self.orig_of[dst])
    }

    fn destination(&self, msg: &Self::Msg) -> NodeId {
        self.comp_of[self.rf.destination(msg)]
    }

    fn deliverable(&self, node: NodeId, msg: &Self::Msg) -> bool {
        self.rf.deliverable(self.orig_of[node], msg)
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &Self::Msg,
        f: &mut dyn FnMut(Transition<Self::Msg>),
    ) {
        let u = self.orig_of[at.node];
        let inner_at = QueueId {
            node: u,
            kind: at.kind,
        };
        // Remap a transition target into the compact space; internal
        // hops stay at the node, link hops land on a live neighbor by
        // the filters below.
        let comp_of = &self.comp_of;
        let remap = |t: Transition<R::Msg>| Transition {
            kind: t.kind,
            hop: t.hop,
            to: QueueId {
                node: comp_of[t.to.node],
                kind: t.to.kind,
            },
            msg: t.msg,
        };
        if !self.degraded {
            // No permanent fault bit: the compaction is the identity
            // and the engine routes undegraded — forward everything.
            self.rf
                .for_each_transition(inner_at, msg, &mut |t| f(remap(t)));
            return;
        }
        if at.kind == QueueKind::Inject {
            // Injection transitions are internal (inject → central at
            // the same, live, node): forward them.
            self.rf
                .for_each_transition(inner_at, msg, &mut |t| f(remap(t)));
            return;
        }
        let dst = self.rf.destination(msg);
        if u == dst {
            // At the destination the only transition is the internal
            // delivery hop; degraded mode never filters delivery.
            self.rf
                .for_each_transition(inner_at, msg, &mut |t| f(remap(t)));
            return;
        }
        let d = &self.dist[dst];
        let here = d[u];
        let mut kept_static = false;
        self.rf.for_each_transition(inner_at, msg, &mut |t| {
            match t.hop {
                // Stutters and in-place class changes are dropped: they
                // make no distance progress (engine: `buf == NONE`).
                HopKind::Internal => {}
                HopKind::Link(_) => {
                    let w = t.to.node;
                    if here != u32::MAX && self.edge_alive(u, w) && d[w] == here - 1 {
                        if t.kind == LinkKind::Static {
                            kept_static = true;
                        }
                        f(remap(t));
                    }
                }
            }
        });
        if !kept_static && here != u32::MAX {
            debug_assert!(here > 0, "queued state at its destination");
            // Static escape fallback: the lowest-port live out-channel
            // making shortest-path progress. The receiver restarts the
            // routing state (`accept_arrival` discards the staged one),
            // so the target state is `initial_msg` at its entry class —
            // or delivery, when the hop lands on the destination.
            let topo = self.rf.topology();
            for port in 0..topo.max_ports() {
                let Some(w) = topo.neighbor(u, port) else {
                    continue;
                };
                if !self.edge_alive(u, w) || d[w] != here - 1 {
                    continue;
                }
                if w == dst {
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Link(port),
                        to: QueueId::deliver(self.comp_of[w]),
                        msg: msg.clone(),
                    });
                } else {
                    let restarted = self.rf.initial_msg(w, dst);
                    let entry = self.entry_class(w, &restarted);
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Link(port),
                        to: QueueId::central(self.comp_of[w], entry),
                        msg: restarted,
                    });
                }
                return;
            }
            unreachable!("here < MAX implies a surviving shortest-path hop");
        }
        // here == MAX with nothing kept: emit no transition at all —
        // the class-graph builder reports the dead end, which is the
        // concrete counterexample for a partitioning plan.
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        self.rf.buffer_classes(self.orig_of[node], port)
    }

    fn is_minimal(&self) -> bool {
        // Every degraded hop decreases the surviving-graph distance by
        // exactly one, so the degraded function is minimal on the
        // surviving network even when the original scheme is not.
        self.degraded || self.rf.is_minimal()
    }

    fn max_hops(&self) -> usize {
        if self.degraded {
            // Each link hop strictly decreases a surviving distance,
            // which is at most m - 1 on an m-node network.
            self.orig_of.len()
        } else {
            self.rf.max_hops()
        }
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl<R: RoutingFunction + ?Sized> Symmetry for Faulted<'_, R> {}
