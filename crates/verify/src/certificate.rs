//! Machine-checkable deadlock-freedom certificates (`fadr-verify/1`).
//!
//! A certificate records the *rank function* over queue classes that
//! witnesses acyclicity of the static class-dependency graph (Kahn
//! levels: every static non-stutter transition strictly raises the
//! rank), plus per-class escape witnesses for the § 2 conditions and
//! enough metadata for an independent checker — [`crate::check_certificate`]
//! shares no graph machinery with the constructor — to re-derive every
//! claim against the scheme itself.

use std::fmt::Write as _;

use fadr_qdg::sym::QueueClass;
use fadr_topology::NodeId;

use crate::classgraph::{ClassGraph, EscapeWitness};

/// Certificate schema identifier.
pub const SCHEMA: &str = "fadr-verify/1";

/// How queues were classified during construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifierMode {
    /// The scheme's declared symmetry classifier, with its argument.
    Scheme {
        /// The scheme's human-readable symmetry description.
        description: String,
    },
    /// The identity classifier over all destinations (exact; used when
    /// the scheme declares no reduction or as the fallback pass).
    Concrete,
}

/// A deadlock-freedom certificate for one scheme on one concrete network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Algorithm name (must match the scheme's `name()`).
    pub algorithm: String,
    /// Topology name.
    pub topology: String,
    /// Node count of the instance.
    pub nodes: usize,
    /// How queues were classified.
    pub classifier: ClassifierMode,
    /// Whether every destination was explored.
    pub all_dsts: bool,
    /// The representative destinations (empty when `all_dsts`).
    pub dsts: Vec<NodeId>,
    /// Distinct concrete queues encountered.
    pub queues_seen: usize,
    /// Total states explored during construction.
    pub states_explored: usize,
    /// Distinct static class edges.
    pub static_class_edges: usize,
    /// Distinct dynamic class edges.
    pub dynamic_class_edges: usize,
    /// The rank function: Kahn level of every class in the static class
    /// graph, sorted by class. Every static non-stutter transition maps
    /// a class to a strictly higher-ranked class.
    pub ranks: Vec<(QueueClass, u64)>,
    /// Per-class static-continuation witnesses (§ 2 condition 3).
    pub escapes: Vec<EscapeWitness>,
}

impl Certificate {
    /// Assemble a certificate from an acyclic class graph.
    pub(crate) fn from_class_graph(
        algorithm: String,
        topology: String,
        nodes: usize,
        classifier: ClassifierMode,
        cg: &ClassGraph,
    ) -> Self {
        let levels = cg
            .static_graph
            .levels()
            .expect("certificates are only assembled from acyclic class graphs");
        let mut ranks: Vec<(QueueClass, u64)> = cg
            .classes
            .iter()
            .copied()
            .zip(
                levels
                    .iter()
                    .map(|&l| u64::try_from(l).expect("level fits u64")),
            )
            .collect();
        ranks.sort_unstable();
        Self {
            algorithm,
            topology,
            nodes,
            classifier,
            all_dsts: cg.all_dsts,
            dsts: if cg.all_dsts {
                Vec::new()
            } else {
                cg.dsts.clone()
            },
            queues_seen: cg.queues_seen,
            states_explored: cg.states_explored,
            static_class_edges: cg.static_graph.num_edges(),
            dynamic_class_edges: cg.dynamic_class_edges,
            ranks,
            escapes: cg.escapes.clone(),
        }
    }

    /// Whether the *adaptive wormhole* discipline is within the scope of
    /// the paper's § 2 packet argument: dynamic class edges create the
    /// indirect (extended) channel dependencies that the static-QDG rank
    /// argument does not cover under wormhole switching, so adaptive
    /// wormhole use of a certified scheme is flagged out-of-scope
    /// whenever any dynamic edge exists. The static-VC discipline is
    /// certified by the same rank function either way.
    pub fn adaptive_wormhole_in_scope(&self) -> bool {
        self.dynamic_class_edges == 0
    }

    /// Serialize as `fadr-verify/1` JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"algorithm\": \"{}\",", esc(&self.algorithm));
        let _ = writeln!(s, "  \"topology\": \"{}\",", esc(&self.topology));
        let _ = writeln!(s, "  \"nodes\": {},", self.nodes);
        match &self.classifier {
            ClassifierMode::Scheme { description } => {
                let _ = writeln!(
                    s,
                    "  \"classifier\": {{\"mode\": \"scheme\", \"description\": \"{}\"}},",
                    esc(description)
                );
            }
            ClassifierMode::Concrete => {
                let _ = writeln!(s, "  \"classifier\": {{\"mode\": \"concrete\"}},");
            }
        }
        if self.all_dsts {
            let _ = writeln!(s, "  \"destinations\": {{\"mode\": \"all\"}},");
        } else {
            let reps: Vec<String> = self.dsts.iter().map(ToString::to_string).collect();
            let _ = writeln!(
                s,
                "  \"destinations\": {{\"mode\": \"representatives\", \"nodes\": [{}]}},",
                reps.join(", ")
            );
        }
        let _ = writeln!(s, "  \"queues_seen\": {},", self.queues_seen);
        let _ = writeln!(s, "  \"states_explored\": {},", self.states_explored);
        let _ = writeln!(s, "  \"static_class_edges\": {},", self.static_class_edges);
        let _ = writeln!(
            s,
            "  \"dynamic_class_edges\": {},",
            self.dynamic_class_edges
        );
        let _ = writeln!(
            s,
            "  \"wormhole\": {{\"adaptive_in_scope\": {}, \"dynamic_class_edges\": {}}},",
            self.adaptive_wormhole_in_scope(),
            self.dynamic_class_edges
        );
        s.push_str("  \"ranks\": [\n");
        for (k, (c, r)) in self.ranks.iter().enumerate() {
            let comma = if k + 1 == self.ranks.len() { "" } else { "," };
            let _ = writeln!(s, "    {{\"class\": \"{c}\", \"rank\": {r}}}{comma}");
        }
        s.push_str("  ],\n");
        s.push_str("  \"escapes\": [\n");
        for (k, e) in self.escapes.iter().enumerate() {
            let comma = if k + 1 == self.escapes.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"class\": \"{}\", \"from\": \"{}\", \"to\": \"{}\", \"dst\": {}}}{comma}",
                e.class, e.from, e.to, e.dst
            );
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escape a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn esc_escapes_quotes_and_backslashes() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
    }
}
