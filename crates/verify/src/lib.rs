//! `fadr-verify`: a scalable deadlock-freedom certifier for the SPAA'91
//! routing schemes, with machine-checkable certificates and
//! counterexample extraction.
//!
//! The exhaustive model checker (`fadr_qdg::verify`) enumerates every
//! `(src, dst)` pair — exact but quadratic, topping out around the
//! 5-cube. This crate certifies far larger instances in three layers:
//!
//! 1. **Symmetry-reduced construction** ([`classgraph`]): one BFS per
//!    destination (sources are folded into the seed set — transitions
//!    depend only on the `(queue, message)` state), with queues
//!    quotiented through the scheme's [`Symmetry`] declaration.
//! 2. **Certificates** ([`certificate`]): an accepted scheme yields a
//!    `fadr-verify/1` document with an explicit rank function witnessing
//!    static-DAG acyclicity plus per-class escape witnesses, re-validated
//!    from scratch by the independent [`check_certificate`].
//! 3. **Counterexamples**: a rejected scheme yields the shortest static
//!    class-graph cycle — re-derived over *concrete* queues, since a
//!    quotient cycle need not lift — annotated with the concrete routes
//!    inducing each edge and rendered via `fadr_qdg::dot`.
//!
//! Acceptance is sound unconditionally whenever all destinations are
//! explored (every concrete static edge then contributes a class edge,
//! so class ranks lift to concrete queues); the scheme's symmetry
//! promise is trusted only for schemes nominating a proper subset of
//! representative destinations (see `Symmetry`'s contract).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod check;
pub mod classgraph;
pub mod cli;
pub mod concrete;
pub mod faulted;
pub mod hasher;

use std::collections::HashMap;

use fadr_qdg::dot::{qdg_to_dot, DotOptions};
use fadr_qdg::explore::Qdg;
use fadr_qdg::graph::Digraph;
use fadr_qdg::sym::Symmetry;
use fadr_qdg::verify::Violation;
use fadr_qdg::QueueId;

pub use certificate::{Certificate, ClassifierMode, SCHEMA};
pub use check::check_certificate;
pub use classgraph::{ClassGraph, EdgeWitness, EscapeWitness};
pub use concrete::Concrete;
pub use faulted::{Faulted, SurvivingTopology};

/// A static-QDG cycle over concrete queues, with per-edge witnesses and
/// a Graphviz rendering.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The cycle's queues in order (edge `k` goes `cycle[k] →
    /// cycle[(k+1) % len]`).
    pub cycle: Vec<QueueId>,
    /// One concrete route witness per cycle edge, aligned with `cycle`.
    pub edges: Vec<EdgeWitness>,
    /// Graphviz rendering of the cycle (solid static edges).
    pub dot: String,
}

/// Why a scheme was rejected: the violation, plus — for static-cycle
/// rejections — the extracted concrete counterexample.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// The first violation found.
    pub violation: Violation,
    /// Present iff the violation is a static QDG cycle.
    pub counterexample: Option<Counterexample>,
}

/// The certifier's verdict on a scheme.
pub enum Outcome {
    /// Deadlock-free: here is the machine-checkable witness.
    Certified(Certificate),
    /// Not certifiable: here is why.
    Rejected(Box<Rejection>),
}

impl Outcome {
    /// The certificate, if certified.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Outcome::Certified(c) => Some(c),
            Outcome::Rejected(_) => None,
        }
    }

    /// The rejection, if rejected.
    pub fn rejection(&self) -> Option<&Rejection> {
        match self {
            Outcome::Certified(_) => None,
            Outcome::Rejected(r) => Some(r),
        }
    }
}

/// Certify a scheme's deadlock freedom on its concrete network instance.
///
/// Runs the symmetry-reduced construction first; on a class-graph cycle
/// the construction is repeated with the identity classifier over all
/// destinations (exact), so the final accept/reject matches
/// `fadr_qdg::verify::verify_deadlock_free` whenever the scheme's
/// representative-destination promise holds (trivially, whenever it
/// nominates all destinations).
pub fn certify<R: Symmetry + ?Sized>(rf: &R) -> Outcome {
    match classgraph::build(rf, false) {
        Err(violation) => Outcome::Rejected(Box::new(Rejection {
            violation,
            counterexample: None,
        })),
        Ok(cg) => {
            if cg.static_graph.is_acyclic() {
                let mode = if rf.is_reduced() {
                    ClassifierMode::Scheme {
                        description: rf.symmetry(),
                    }
                } else {
                    ClassifierMode::Concrete
                };
                Outcome::Certified(certificate(rf, mode, &cg))
            } else if rf.is_reduced() {
                // A quotient cycle need not lift to concrete queues:
                // rebuild exactly before rejecting.
                certify_concrete(rf)
            } else {
                Outcome::Rejected(Box::new(extract(rf.name(), &cg)))
            }
        }
    }
}

/// Re-certify a scheme's *degraded* QDG after a fault plan's permanent
/// faults (dead nodes and dead links; transient freezes and flaky
/// windows do not change the eventual topology).
///
/// Returns the [`Faulted`] wrapper alongside the [`Outcome`] so the
/// caller can re-validate an accepted certificate against it with
/// [`check_certificate`]. A plan that disconnects a surviving
/// destination is rejected with a dead-end violation — the concrete
/// counterexample; a connected plan certifies with a rank function for
/// the degraded static QDG. Errors only on a malformed fault set
/// (wrong node count, out-of-range link, all nodes dead).
pub fn certify_plan<'a, R: fadr_qdg::RoutingFunction + ?Sized>(
    rf: &'a R,
    plan: &fadr_sim::FaultPlan,
) -> Result<(faulted::Faulted<'a, R>, Outcome), String> {
    let n = rf.topology().num_nodes();
    let f = faulted::Faulted::new(rf, &plan.final_dead_nodes(n), &plan.final_dead_links())?;
    let outcome = certify(&f);
    Ok((f, outcome))
}

/// The exact fallback pass: identity classifier, all destinations.
fn certify_concrete<R: Symmetry + ?Sized>(rf: &R) -> Outcome {
    let wrapped = Concrete(rf);
    match classgraph::build(&wrapped, true) {
        Err(violation) => Outcome::Rejected(Box::new(Rejection {
            violation,
            counterexample: None,
        })),
        Ok(cg) => {
            if cg.static_graph.is_acyclic() {
                Outcome::Certified(certificate(rf, ClassifierMode::Concrete, &cg))
            } else {
                Outcome::Rejected(Box::new(extract(rf.name(), &cg)))
            }
        }
    }
}

fn certificate<R: Symmetry + ?Sized>(rf: &R, mode: ClassifierMode, cg: &ClassGraph) -> Certificate {
    Certificate::from_class_graph(
        rf.name(),
        rf.topology().name(),
        rf.topology().num_nodes(),
        mode,
        cg,
    )
}

/// Extract the minimal concrete cycle from a cyclic identity-classifier
/// class graph, with per-edge route witnesses and a DOT rendering.
fn extract(name: String, cg: &ClassGraph) -> Rejection {
    let idx = cg
        .static_graph
        .shortest_cycle()
        .expect("extract requires a cyclic graph");
    let cycle: Vec<QueueId> = idx
        .iter()
        .map(|&i| cg.classes[i].as_concrete_queue())
        .collect();
    let edges: Vec<EdgeWitness> = (0..idx.len())
        .map(|k| {
            let pair = (idx[k], idx[(k + 1) % idx.len()]);
            cg.witnesses
                .get(&pair)
                .expect("every static class edge has a witness")
                .clone()
        })
        .collect();
    let dot = render_cycle(&name, &cycle);
    let pretty: Vec<String> = cycle.iter().map(ToString::to_string).collect();
    Rejection {
        violation: Violation {
            check: "deadlock-free",
            detail: format!("static QDG has a cycle: {}", pretty.join(" -> ")),
            queues: cycle.clone(),
        },
        counterexample: Some(Counterexample { cycle, edges, dot }),
    }
}

/// Assemble a one-cycle [`Qdg`] and render it through `fadr_qdg::dot`.
fn render_cycle(name: &str, cycle: &[QueueId]) -> String {
    let mut queues = Vec::with_capacity(cycle.len());
    let mut index = HashMap::new();
    for &q in cycle {
        index.insert(q, queues.len());
        queues.push(q);
    }
    let mut static_graph = Digraph::new(cycle.len());
    let mut full_graph = Digraph::new(cycle.len());
    for k in 0..cycle.len() {
        let b = (k + 1) % cycle.len();
        static_graph.add_edge(k, b);
        full_graph.add_edge(k, b);
    }
    let qdg = Qdg {
        queues,
        index,
        static_graph,
        full_graph,
        dynamic_edges: Vec::new(),
    };
    qdg_to_dot(
        &qdg,
        &format!("{name}: static QDG cycle"),
        &|q| q.to_string(),
        DotOptions {
            show_inject: true,
            show_deliver: true,
        },
    )
}
