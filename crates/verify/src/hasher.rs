//! A small Fx-style hasher for the hot interning maps.
//!
//! The per-destination explorer interns hundreds of millions of
//! `(QueueId, Msg)` states on large instances (e.g. the 4096-node
//! shuffle-exchange); the standard library's SipHash dominates that
//! profile. Keys here are short sequences of machine words from derived
//! `Hash` impls and need no DoS resistance, so a multiply-xor mix in the
//! style of rustc's `FxHasher` is the right trade.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from rustc-hash: a random odd 64-bit constant.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Word-at-a-time multiply-xor hasher (not DoS resistant; interning only).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut set = FxHashSet::default();
        for i in 0..1000u64 {
            set.insert((i, i.wrapping_mul(3)));
        }
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn write_matches_word_path_for_aligned_input() {
        let mut a = FxHasher::default();
        a.write_u64(0xdead_beef);
        let mut b = FxHasher::default();
        b.write(&0xdead_beef_u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
