//! Symmetry-reduced construction of the static class-dependency graph.
//!
//! The exhaustive checker in `fadr_qdg::verify` explores every
//! `(src, dst)` pair — O(N²) explorations. Transitions, however, depend
//! only on the current `(queue, message)` state, never on the source, so
//! one exploration per **destination**, seeded with the injection states
//! of *all* sources at once, visits exactly the union of the per-pair
//! state graphs. That alone is an exact O(N)-exploration construction.
//!
//! On top of it, the scheme's [`Symmetry`] declaration quotients queues
//! into [`QueueClass`]es and may nominate representative destinations.
//! Every concrete static edge observed during exploration contributes its
//! class edge, so when all destinations are explored the class graph is
//! an *invariant abstraction*: acyclicity of the class graph implies
//! acyclicity of the concrete static QDG (ranks over classes lift through
//! the classifier). Scheme-declared trust enters only when the
//! representative set is a proper subset of the destinations.
//!
//! Alongside the graph the builder performs, per destination, the exact
//! per-state checks of the paper's § 2: no dead ends, every non-delivered
//! state keeps a static continuation (condition 3), delivery happens at
//! the destination only — and, because same-queue "stutter" transitions
//! are invisible at the QDG level (matching `build_qdg`), a separate
//! cycle check over the static stutter transitions.

use std::collections::HashMap;

use fadr_qdg::graph::Digraph;
use fadr_qdg::sym::{QueueClass, Symmetry};
use fadr_qdg::verify::Violation;
use fadr_qdg::{LinkKind, QueueId, QueueKind, Transition};
use fadr_topology::NodeId;

use crate::hasher::{FxHashMap, FxHashSet};

/// A concrete static transition witnessing a class edge: the route to
/// `dst` in message state `msg` hops `from → to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWitness {
    /// Concrete source queue of the hop.
    pub from: QueueId,
    /// Concrete target queue of the hop.
    pub to: QueueId,
    /// The destination whose routes induce the edge.
    pub dst: NodeId,
    /// Debug rendering of the message state taking the hop.
    pub msg: String,
}

/// Per-class witness that its states retain a static continuation
/// (evidence for the paper's § 2 condition 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeWitness {
    /// The class being witnessed.
    pub class: QueueClass,
    /// A concrete queue of the class.
    pub from: QueueId,
    /// The static continuation observed from it.
    pub to: QueueId,
    /// The destination the witness route belongs to.
    pub dst: NodeId,
}

/// The static dependency graph over queue classes, with witnesses.
pub struct ClassGraph {
    /// Dense class index → class.
    pub classes: Vec<QueueClass>,
    /// Class → dense index.
    pub index: FxHashMap<QueueClass, usize>,
    /// Static class-dependency graph.
    pub static_graph: Digraph,
    /// Number of distinct dynamic class edges observed.
    pub dynamic_class_edges: usize,
    /// One concrete witness per distinct static class edge.
    pub witnesses: HashMap<(usize, usize), EdgeWitness>,
    /// One static-continuation witness per class, sorted by class.
    pub escapes: Vec<EscapeWitness>,
    /// The destinations explored.
    pub dsts: Vec<NodeId>,
    /// Whether `dsts` covers every node.
    pub all_dsts: bool,
    /// Distinct concrete queues encountered with outgoing transitions.
    pub queues_seen: usize,
    /// Total `(queue, message)` states explored across destinations.
    pub states_explored: usize,
}

impl ClassGraph {
    fn intern(&mut self, c: QueueClass) -> usize {
        if let Some(&i) = self.index.get(&c) {
            return i;
        }
        let i = self.classes.len();
        self.classes.push(c);
        self.index.insert(c, i);
        self.static_graph.ensure_vertex(i);
        i
    }
}

fn violation(detail: String, queues: Vec<QueueId>) -> Violation {
    Violation {
        check: "deadlock-free",
        detail,
        queues,
    }
}

/// Build the class graph and run the per-state § 2 checks.
///
/// With `force_all_dsts` the scheme's representative set is ignored and
/// every destination is explored (the classifier is still applied); the
/// certifier uses this together with [`crate::Concrete`] for the exact
/// fallback pass.
pub fn build<R: Symmetry + ?Sized>(rf: &R, force_all_dsts: bool) -> Result<ClassGraph, Violation> {
    let n = rf.topology().num_nodes();
    let dsts: Vec<NodeId> = if force_all_dsts {
        (0..n).collect()
    } else {
        rf.dst_representatives()
    };
    let all_dsts = dsts.len() == n;
    let mut cg = ClassGraph {
        classes: Vec::new(),
        index: FxHashMap::default(),
        static_graph: Digraph::default(),
        dynamic_class_edges: 0,
        witnesses: HashMap::new(),
        escapes: Vec::new(),
        dsts: dsts.clone(),
        all_dsts,
        queues_seen: 0,
        states_explored: 0,
    };
    let mut dynamic: FxHashSet<(usize, usize)> = FxHashSet::default();
    let mut seen: FxHashSet<QueueId> = FxHashSet::default();
    let mut escapes: HashMap<usize, EscapeWitness> = HashMap::new();
    for &dst in &dsts {
        explore_dst(rf, dst, &mut cg, &mut dynamic, &mut seen, &mut escapes)?;
    }
    cg.dynamic_class_edges = dynamic.len();
    cg.queues_seen = seen.len();
    let mut esc: Vec<EscapeWitness> = escapes.into_values().collect();
    esc.sort_by_key(|e| e.class);
    cg.escapes = esc;
    Ok(cg)
}

/// One BFS per destination, seeded with every source's injection state.
fn explore_dst<R: Symmetry + ?Sized>(
    rf: &R,
    dst: NodeId,
    cg: &mut ClassGraph,
    dynamic: &mut FxHashSet<(usize, usize)>,
    seen: &mut FxHashSet<QueueId>,
    escapes: &mut HashMap<usize, EscapeWitness>,
) -> Result<(), Violation> {
    let n = rf.topology().num_nodes();
    let mut index: FxHashMap<(QueueId, R::Msg), u32> = FxHashMap::default();
    let mut states: Vec<(QueueId, R::Msg)> = Vec::new();
    for src in 0..n {
        if src == dst {
            continue;
        }
        let key = (QueueId::inject(src), rf.initial_msg(src, dst));
        if !index.contains_key(&key) {
            index.insert(
                key.clone(),
                u32::try_from(states.len()).expect("state count fits u32"),
            );
            states.push(key);
        }
    }
    let mut stutter: Vec<(u32, u32)> = Vec::new();
    let mut buf: Vec<Transition<R::Msg>> = Vec::new();
    let mut i = 0usize;
    while i < states.len() {
        let (q, msg) = states[i].clone();
        let cur = u32::try_from(i).expect("state count fits u32");
        i += 1;
        if q.kind == QueueKind::Deliver {
            if q.node != dst {
                return Err(violation(
                    format!(
                        "delivered at wrong node: {} instead of {dst} ({msg:?})",
                        q.node
                    ),
                    vec![q],
                ));
            }
            continue;
        }
        buf.clear();
        rf.for_each_transition(q, &msg, &mut |t| buf.push(t));
        if buf.is_empty() {
            return Err(violation(
                format!("dead end: no transitions at {q} for {msg:?} (dst={dst})"),
                vec![q],
            ));
        }
        seen.insert(q);
        let a = cg.intern(rf.queue_class(q));
        let mut has_static = false;
        for t in &buf {
            let key = (t.to, t.msg.clone());
            let j = match index.get(&key) {
                Some(&j) => j,
                None => {
                    let j = u32::try_from(states.len()).expect("state count fits u32");
                    index.insert(key.clone(), j);
                    states.push(key);
                    j
                }
            };
            if t.to == q {
                // A stutter holds its queue slot: no class edge (matching
                // `build_qdg`), but a possible state-level cycle.
                if t.kind == LinkKind::Static {
                    has_static = true;
                    stutter.push((cur, j));
                }
                continue;
            }
            let b = cg.intern(rf.queue_class(t.to));
            match t.kind {
                LinkKind::Static => {
                    has_static = true;
                    if !cg.static_graph.has_edge(a, b) {
                        cg.static_graph.add_edge(a, b);
                        cg.witnesses.insert(
                            (a, b),
                            EdgeWitness {
                                from: q,
                                to: t.to,
                                dst,
                                msg: format!("{msg:?}"),
                            },
                        );
                    }
                    escapes.entry(a).or_insert_with(|| EscapeWitness {
                        class: cg.classes[a],
                        from: q,
                        to: t.to,
                        dst,
                    });
                }
                LinkKind::Dynamic => {
                    dynamic.insert((a, b));
                }
            }
        }
        if !has_static {
            return Err(violation(
                format!(
                    "condition 3 violated: no static continuation at {q} for {msg:?} (dst={dst})"
                ),
                vec![q],
            ));
        }
    }
    cg.states_explored += states.len();
    if let Some(s) = stutter_cycle(&stutter) {
        let q = states[s as usize].0;
        return Err(violation(
            format!("static stutter cycle at {q} (dst={dst})"),
            vec![q],
        ));
    }
    Ok(())
}

/// Cycle detection over the static stutter transitions of one
/// destination's state graph (iterative three-color DFS over the sparse
/// adjacency; returns a state index on some cycle).
fn stutter_cycle(edges: &[(u32, u32)]) -> Option<u32> {
    let mut adj: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut roots: Vec<u32> = adj.keys().copied().collect();
    roots.sort_unstable();
    let mut color: FxHashMap<u32, u8> = FxHashMap::default(); // 1 = gray, 2 = black
    for &start in &roots {
        if color.contains_key(&start) {
            continue;
        }
        color.insert(start, 1);
        let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
        while let Some(frame) = stack.last_mut() {
            let v = frame.0;
            let next = adj.get(&v).and_then(|s| s.get(frame.1).copied());
            frame.1 += 1;
            match next {
                Some(w) => match color.get(&w).copied() {
                    Some(1) => return Some(w),
                    Some(_) => {}
                    None => {
                        color.insert(w, 1);
                        stack.push((w, 0));
                    }
                },
                None => {
                    color.insert(v, 2);
                    stack.pop();
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stutter_cycle_finds_self_loop() {
        assert!(stutter_cycle(&[(3, 3)]).is_some());
    }

    #[test]
    fn stutter_cycle_finds_two_cycle_but_not_chain() {
        assert_eq!(stutter_cycle(&[(0, 1), (1, 2)]), None);
        assert!(stutter_cycle(&[(0, 1), (1, 0)]).is_some());
    }
}
