//! Identity-classifier wrapper used for the concrete fallback pass.
//!
//! A cyclic *class* graph does not imply a cyclic concrete QDG — the
//! quotient may merge queues that no actual route connects in a cycle.
//! Before rejecting a reduced scheme, the certifier re-runs construction
//! through [`Concrete`], which forwards the routing function untouched
//! but replaces its [`Symmetry`] declaration with the trivially-sound
//! defaults (every queue its own class, every destination explored).

use fadr_qdg::sym::Symmetry;
use fadr_qdg::{BufferClass, QueueId, RoutingFunction, Transition};
use fadr_topology::{NodeId, Port, Topology};

/// Forwards a routing function with the identity [`Symmetry`] defaults.
pub struct Concrete<'a, R: RoutingFunction + ?Sized>(pub &'a R);

impl<R: RoutingFunction + ?Sized> RoutingFunction for Concrete<'_, R> {
    type Msg = R::Msg;

    fn topology(&self) -> &dyn Topology {
        self.0.topology()
    }

    fn num_classes(&self) -> usize {
        self.0.num_classes()
    }

    fn initial_msg(&self, src: NodeId, dst: NodeId) -> Self::Msg {
        self.0.initial_msg(src, dst)
    }

    fn destination(&self, msg: &Self::Msg) -> NodeId {
        self.0.destination(msg)
    }

    fn deliverable(&self, node: NodeId, msg: &Self::Msg) -> bool {
        self.0.deliverable(node, msg)
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &Self::Msg,
        f: &mut dyn FnMut(Transition<Self::Msg>),
    ) {
        self.0.for_each_transition(at, msg, f);
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        self.0.buffer_classes(node, port)
    }

    fn is_minimal(&self) -> bool {
        self.0.is_minimal()
    }

    fn max_hops(&self) -> usize {
        self.0.max_hops()
    }

    fn name(&self) -> String {
        self.0.name()
    }
}

impl<R: RoutingFunction + ?Sized> Symmetry for Concrete<'_, R> {}
