//! Independent certificate validation.
//!
//! [`check_certificate`] is the trusted core of the certifier: it
//! deliberately shares **no** code with the constructor — no `Digraph`,
//! no SCC/Kahn machinery, no class-graph builder. It re-explores the
//! scheme with its own interning loop and verifies the certificate's
//! rank function directly: every static non-stutter transition must map
//! a class to a strictly higher-ranked class, every non-delivered state
//! must keep a static continuation, hops must follow the topology, and
//! delivery must happen at the destination. Checking a rank function is
//! far simpler than computing one, which is what keeps this component
//! small enough to audit (the § 2 argument then rests on it alone).

use std::collections::HashMap;

use fadr_qdg::sym::{QueueClass, Symmetry};
use fadr_qdg::{HopKind, LinkKind, QueueId, QueueKind};

use crate::certificate::{Certificate, ClassifierMode};

/// Validate `cert` against `rf` from scratch. Returns the first defect
/// found, as text; `Ok(())` means every claim was re-derived.
pub fn check_certificate<R: Symmetry + ?Sized>(rf: &R, cert: &Certificate) -> Result<(), String> {
    let topo = rf.topology();
    let n = topo.num_nodes();
    if cert.nodes != n {
        return Err(format!(
            "certificate is for {} nodes, scheme has {n}",
            cert.nodes
        ));
    }
    if cert.algorithm != rf.name() {
        return Err(format!(
            "certificate names '{}', scheme is '{}'",
            cert.algorithm,
            rf.name()
        ));
    }
    let mut rank: HashMap<QueueClass, u64> = HashMap::new();
    for &(c, r) in &cert.ranks {
        if rank.insert(c, r).is_some() {
            return Err(format!("duplicate rank entry for class {c}"));
        }
    }
    let concrete = matches!(cert.classifier, ClassifierMode::Concrete);
    let class_of = |q: QueueId| {
        if concrete {
            QueueClass::concrete(q)
        } else {
            rf.queue_class(q)
        }
    };
    let dsts: Vec<usize> = if concrete || cert.all_dsts {
        (0..n).collect()
    } else {
        let reps = rf.dst_representatives();
        if cert.dsts != reps {
            return Err(
                "certificate's representative destinations differ from the scheme's".into(),
            );
        }
        reps
    };
    for &dst in &dsts {
        let mut index: HashMap<(QueueId, R::Msg), usize> = HashMap::new();
        let mut states: Vec<(QueueId, R::Msg)> = Vec::new();
        for src in 0..n {
            if src == dst {
                continue;
            }
            let key = (QueueId::inject(src), rf.initial_msg(src, dst));
            index.entry(key.clone()).or_insert_with(|| {
                states.push(key.clone());
                states.len() - 1
            });
        }
        let mut stutter: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut i = 0usize;
        while i < states.len() {
            let (q, msg) = states[i].clone();
            let cur = i;
            i += 1;
            if q.kind == QueueKind::Deliver {
                if q.node != dst {
                    return Err(format!(
                        "delivered at wrong node: {} instead of {dst}",
                        q.node
                    ));
                }
                continue;
            }
            let ts = rf.transitions(q, &msg);
            if ts.is_empty() {
                return Err(format!("dead end at {q} for {msg:?} (dst={dst})"));
            }
            let mut has_static = false;
            for t in &ts {
                let hop_ok = match t.hop {
                    HopKind::Internal => t.to.node == q.node,
                    HopKind::Link(p) => topo.neighbor(q.node, p) == Some(t.to.node),
                };
                if !hop_ok {
                    return Err(format!("hop does not follow the topology: {q} -> {}", t.to));
                }
                let key = (t.to, t.msg.clone());
                let j = *index.entry(key.clone()).or_insert_with(|| {
                    states.push(key.clone());
                    states.len() - 1
                });
                if t.kind != LinkKind::Static {
                    continue;
                }
                has_static = true;
                if t.to == q {
                    stutter.entry(cur).or_default().push(j);
                    continue;
                }
                let (a, b) = (class_of(q), class_of(t.to));
                let (Some(&ra), Some(&rb)) = (rank.get(&a), rank.get(&b)) else {
                    return Err(format!(
                        "transition {q} -> {} touches an unranked class",
                        t.to
                    ));
                };
                if ra >= rb {
                    return Err(format!(
                        "rank does not increase on static transition {q} ({a}, rank {ra}) -> {} ({b}, rank {rb})",
                        t.to
                    ));
                }
            }
            if !has_static {
                return Err(format!(
                    "no static continuation at {q} for {msg:?} (dst={dst})"
                ));
            }
        }
        // Stutter transitions are rank-neutral by construction; a cycle
        // among them is a real § 2 violation the ranks cannot see.
        if let Some(s) = stutter_cycle(&stutter) {
            return Err(format!(
                "static stutter cycle at {} (dst={dst})",
                states[s].0
            ));
        }
    }
    Ok(())
}

/// Three-color DFS over the sparse stutter adjacency of one destination.
fn stutter_cycle(adj: &HashMap<usize, Vec<usize>>) -> Option<usize> {
    let mut roots: Vec<usize> = adj.keys().copied().collect();
    roots.sort_unstable();
    let mut color: HashMap<usize, u8> = HashMap::new();
    for &start in &roots {
        if color.contains_key(&start) {
            continue;
        }
        color.insert(start, 1);
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(frame) = stack.last_mut() {
            let v = frame.0;
            let next = adj.get(&v).and_then(|s| s.get(frame.1).copied());
            frame.1 += 1;
            match next {
                Some(w) => match color.get(&w).copied() {
                    Some(1) => return Some(w),
                    Some(_) => {}
                    None => {
                        color.insert(w, 1);
                        stack.push((w, 0));
                    }
                },
                None => {
                    color.insert(v, 2);
                    stack.pop();
                }
            }
        }
    }
    None
}
