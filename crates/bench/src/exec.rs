//! Deterministic parallel execution of independent work items.
//!
//! The harness's unit of work is one simulation run (one table row ×
//! one replication), and every run derives its RNG stream purely from
//! `(seed, table, rep, n)` — no shared mutable state. That makes the
//! fan-out embarrassingly parallel *and* order-independent: workers may
//! finish in any order, but each result lands in the slot of its item
//! index, and callers reduce the slots in the same fixed order a
//! sequential loop would. Output is therefore bit-identical for any
//! `--jobs` value (enforced by `tests/parallel_identity.rs`).
//!
//! Built on `std::thread::scope` only; no external dependencies.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism (1 if it
/// cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Evaluate `f(0), f(1), …, f(count - 1)` on up to `jobs` worker
/// threads and return the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs — e.g. table rows at growing dimension — still load-balance.
/// With `jobs <= 1` the items run inline on the caller's thread, with
/// no thread machinery at all; results are identical either way as long
/// as `f` is a pure function of its index.
///
/// # Panics
///
/// Propagates a panic from any worker (the first one joined).
pub fn run_indexed<T, F>(count: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, count.max(1));
    if jobs == 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    // `forbid(unsafe_code)` rules out writing into shared slots from the
    // workers, so each worker returns its own (index, value) batch and
    // the gather below scatters them back into index order.
    let batches: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(count).collect();
    for batch in batches {
        for (i, v) in batch {
            debug_assert!(slots[i].is_none(), "item {i} computed twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("item {i} never computed")))
        .collect()
}

/// Parse a `--jobs` value: a positive thread count.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs must be a positive integer, got {s:?}")),
    }
}

/// Parse a `--shards` value: a positive intra-simulation shard count
/// (threads *inside* one simulation; composes with `--jobs`, which
/// spreads independent simulations across workers).
pub fn parse_shards(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--shards must be a positive integer, got {s:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = run_indexed(37, jobs, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn handles_empty_and_tiny() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn uneven_items_still_ordered() {
        // Make early items slow so late items finish first on other
        // workers; the gather must still restore index order.
        let out = run_indexed(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn parse_jobs_accepts_positive_only() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert!(parse_jobs("0").is_err());
        assert!(parse_jobs("-2").is_err());
        assert!(parse_jobs("many").is_err());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
