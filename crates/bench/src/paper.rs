//! Reference values of the paper's Tables 1–12, transcribed verbatim.
//!
//! Static tables (1–8) report `(n, N, L_avg, L_max)`; dynamic tables
//! (9–12) additionally report the effective injection rate `I_r` in
//! percent. `N` is always `2^n`.

/// One row of a static table: `(n, L_avg, L_max)`.
pub type StaticRow = (usize, f64, u64);

/// One row of a dynamic table: `(n, L_avg, L_max, I_r%)`.
pub type DynamicRow = (usize, f64, u64, u64);

/// Table 1: Random Routing, 1 packet.
pub const TABLE1: &[StaticRow] = &[
    (10, 10.96, 19),
    (11, 12.09, 21),
    (12, 13.08, 25),
    (13, 14.03, 27),
    (14, 15.04, 29),
];

/// Table 2: Complement, 1 packet.
pub const TABLE2: &[StaticRow] = &[
    (10, 21.0, 21),
    (11, 23.0, 23),
    (12, 25.0, 25),
    (13, 27.0, 27),
    (14, 29.0, 29),
];

/// Table 3: Transpose, 1 packet.
pub const TABLE3: &[StaticRow] = &[
    (10, 11.09, 21),
    (11, 11.09, 21),
    (12, 13.13, 25),
    (13, 13.13, 25),
    (14, 15.23, 29),
];

/// Table 4: Leveled Permutation, 1 packet.
pub const TABLE4: &[StaticRow] = &[
    (10, 10.10, 21),
    (11, 10.98, 21),
    (12, 12.06, 25),
    (13, 13.07, 25),
    (14, 14.03, 29),
];

/// Table 5: Random Routing, n packets.
pub const TABLE5: &[StaticRow] = &[
    (10, 11.33, 22),
    (11, 12.52, 25),
    (12, 13.76, 27),
    (13, 15.02, 30),
    (14, 16.54, 32),
];

/// Table 6: Complement, n packets.
pub const TABLE6: &[StaticRow] = &[
    (10, 21.0, 21),
    (11, 24.99, 30),
    (12, 28.61, 35),
    (13, 32.74, 39),
    (14, 36.23, 44),
];

/// Table 7: Transpose, n packets.
pub const TABLE7: &[StaticRow] = &[
    (10, 12.27, 26),
    (11, 12.40, 32),
    (12, 16.01, 37),
    (13, 16.22, 36),
    (14, 20.49, 43),
];

/// Table 8: Leveled Permutation, n packets.
pub const TABLE8: &[StaticRow] = &[
    (10, 10.78, 23),
    (11, 11.77, 25),
    (12, 13.17, 28),
    (13, 14.60, 32),
    (14, 16.03, 37),
];

/// Table 9: Random Routing, λ = 1.
pub const TABLE9: &[DynamicRow] = &[
    (10, 12.10, 30, 93),
    (11, 13.47, 35, 89),
    (12, 15.01, 37, 85),
    (13, 16.58, 44, 81),
    (14, 18.30, 49, 76),
];

/// Table 10: Complement, λ = 1.
pub const TABLE10: &[DynamicRow] = &[
    (10, 33.32, 52, 55),
    (11, 39.29, 58, 49),
    (12, 45.60, 68, 45),
    (13, 52.87, 79, 41),
    (14, 60.70, 90, 38),
];

/// Table 11: Transpose, λ = 1.
pub const TABLE11: &[DynamicRow] = &[
    (10, 14.67, 36, 83),
    (11, 14.67, 36, 83),
    (12, 15.78, 49, 73),
    (13, 20.31, 54, 71),
    (14, 27.33, 66, 61),
];

/// Table 12: Leveled Permutation, λ = 1 (the paper also reports n = 9).
pub const TABLE12: &[DynamicRow] = &[
    (9, 11.28, 37, 94),
    (10, 12.47, 43, 91),
    (11, 13.50, 48, 89),
    (12, 15.17, 56, 84),
    (13, 16.91, 53, 80),
    (14, 18.46, 57, 75),
];

/// Paper values for a static table by number (1–8).
pub fn static_table(table: usize) -> &'static [StaticRow] {
    match table {
        1 => TABLE1,
        2 => TABLE2,
        3 => TABLE3,
        4 => TABLE4,
        5 => TABLE5,
        6 => TABLE6,
        7 => TABLE7,
        8 => TABLE8,
        _ => panic!("static tables are 1-8"),
    }
}

/// Paper values for a dynamic table by number (9–12).
pub fn dynamic_table(table: usize) -> &'static [DynamicRow] {
    match table {
        9 => TABLE9,
        10 => TABLE10,
        11 => TABLE11,
        12 => TABLE12,
        _ => panic!("dynamic tables are 9-12"),
    }
}

/// Paper `(L_avg, L_max)` for a static table at dimension `n`, if listed.
pub fn static_ref(table: usize, n: usize) -> Option<(f64, u64)> {
    static_table(table)
        .iter()
        .find(|r| r.0 == n)
        .map(|r| (r.1, r.2))
}

/// Paper `(L_avg, L_max, I_r%)` for a dynamic table at dimension `n`.
pub fn dynamic_ref(table: usize, n: usize) -> Option<(f64, u64, u64)> {
    dynamic_table(table)
        .iter()
        .find(|r| r.0 == n)
        .map(|r| (r.1, r.2, r.3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_lookup() {
        assert_eq!(static_ref(1, 10), Some((10.96, 19)));
        assert_eq!(static_ref(6, 14), Some((36.23, 44)));
        assert_eq!(static_ref(1, 9), None);
        assert_eq!(dynamic_ref(12, 9), Some((11.28, 37, 94)));
        assert_eq!(dynamic_ref(9, 14), Some((18.30, 49, 76)));
    }

    #[test]
    fn complement_single_packet_is_exactly_2n_plus_1() {
        for &(n, avg, max) in TABLE2 {
            assert_eq!(avg, (2 * n + 1) as f64);
            assert_eq!(max, (2 * n + 1) as u64);
        }
    }

    #[test]
    fn all_tables_cover_10_to_14() {
        for t in 1..=8 {
            let rows = static_table(t);
            assert!(rows.iter().map(|r| r.0).eq(10..=14), "table {t}");
        }
        for t in 9..=11 {
            assert!(
                dynamic_table(t).iter().map(|r| r.0).eq(10..=14),
                "table {t}"
            );
        }
        assert!(dynamic_table(12).iter().map(|r| r.0).eq(9..=14));
    }
}
