//! Observability wiring shared by the harness binaries: the
//! `--trace` / `--metrics-out` / `--watchdog` / `--journal` /
//! `--waitgraph` flags, the `--checkpoint-at` / `--resume-from` flight
//! recorder controls, sink construction, and structured JSON export of
//! recorded runs.
//!
//! The binaries keep their timing paths recorder-free ([`fadr_sim::NoRecorder`]
//! monomorphizes to nothing); recording is opt-in per invocation and
//! routes through [`crate::runner::run_rows_recorded`], which merges
//! per-worker sinks in fixed replication order so recorded runs stay
//! bit-identical for any `--jobs` value.

use std::fmt::Write as _;
use std::path::PathBuf;

use fadr_metrics::{JournalSink, SinkSet};
use fadr_sim::FaultPlan;

use crate::runner::{RecordedRow, SnapshotPolicy};

/// Packets traced per run when `--trace` is given (first-N by injection
/// order; later packets are counted, not traced).
pub const DEFAULT_TRACE_LIMIT: usize = 256;

/// Per-queue rows included in each counters JSON block (top by peak
/// occupancy; the rest are summarized, not dropped silently).
pub const TOP_QUEUES: usize = 8;

/// Which sinks an instrumented run attaches.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecordConfig {
    /// Attach a [`fadr_metrics::CounterSink`].
    pub counters: bool,
    /// Attach a [`fadr_metrics::TraceSink`] bounded to this many packets.
    pub trace: Option<usize>,
    /// Attach a [`fadr_metrics::WatchdogSink`] with this no-progress
    /// window (cycles).
    pub watchdog: Option<u64>,
    /// Attach a [`JournalSink`] bounded to this many events.
    pub journal: Option<usize>,
    /// Attach a [`fadr_metrics::LatencySink`] (per-class p50/p95/p99/max).
    pub latency: bool,
    /// Attach a [`fadr_metrics::WaitGraphSink`] (per-cycle wait-for-graph
    /// probe; global semantics, so incompatible with `--shards > 1`).
    pub waitgraph: bool,
}

impl RecordConfig {
    /// Whether any sink is enabled (if not, callers should use the
    /// recorder-free path).
    pub fn enabled(&self) -> bool {
        self.counters
            || self.trace.is_some()
            || self.watchdog.is_some()
            || self.journal.is_some()
            || self.latency
            || self.waitgraph
    }

    /// Build the sink set for one run over a `num_nodes` ×
    /// `num_classes` network.
    pub fn build(&self, num_nodes: usize, num_classes: usize) -> SinkSet {
        let mut s = SinkSet::new();
        if self.counters {
            s = s.with_counters(num_nodes, num_classes);
        }
        if let Some(limit) = self.trace {
            s = s.with_trace(limit);
        }
        if let Some(k) = self.watchdog {
            s = s.with_watchdog(k);
        }
        if let Some(capacity) = self.journal {
            s = s.with_journal(capacity);
        }
        if self.latency {
            s = s.with_latency(num_classes);
        }
        if self.waitgraph {
            s = s.with_waitgraph();
        }
        s
    }
}

/// Parsed observability flags, shared by the `tables`/`sweep`/`perf`
/// binaries.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// `--metrics-out PATH`: write a counters/stall JSON document.
    pub metrics_out: Option<PathBuf>,
    /// `--trace PATH`: write JSONL packet lifecycles.
    pub trace_out: Option<PathBuf>,
    /// `--watchdog K`: abort a run after `K` cycles without a delivery.
    pub watchdog: Option<u64>,
    /// `--faults PATH`: inject the `fadr-faults/1` plan at `PATH` into
    /// every run (see [`fadr_sim::fault`]).
    pub faults: Option<PathBuf>,
    /// `--journal PATH`: write every run's event journal (flight
    /// recorder) with its order-insensitive stream hash.
    pub journal_out: Option<PathBuf>,
    /// `--waitgraph`: probe the wait-for graph every cycle (cycle
    /// candidates + longest blocked-chain depth in `--metrics-out`).
    pub waitgraph: bool,
    /// `--checkpoint-at CYCLE`: pause every run at this cycle, write a
    /// `fadr-snapshot/1` file into `--checkpoint-dir`, then continue.
    pub checkpoint_at: Option<u64>,
    /// `--checkpoint-dir DIR`: where `--checkpoint-at` snapshots go.
    pub checkpoint_dir: Option<PathBuf>,
    /// `--resume-from DIR`: restore each run's snapshot from `DIR`
    /// instead of running it from cycle 0 (bit-identical results).
    pub resume_from: Option<PathBuf>,
}

impl ObsArgs {
    /// Usage fragment for the binaries' `--help` text.
    pub const USAGE: &'static str = "[--trace PATH] [--metrics-out PATH] [--watchdog K] \
         [--faults PLAN.json] [--journal PATH] [--waitgraph] \
         [--checkpoint-at CYCLE --checkpoint-dir DIR | --resume-from DIR]";

    /// Try to consume one observability flag. Returns `Ok(true)` if
    /// `arg` was one of ours, `Ok(false)` to let the caller handle it;
    /// `next` fetches the flag's value from the argument stream.
    pub fn parse_flag(
        &mut self,
        arg: &str,
        next: &mut dyn FnMut(&str) -> Result<String, String>,
    ) -> Result<bool, String> {
        match arg {
            "--metrics-out" => {
                self.metrics_out = Some(PathBuf::from(next("--metrics-out")?));
                Ok(true)
            }
            "--trace" => {
                self.trace_out = Some(PathBuf::from(next("--trace")?));
                Ok(true)
            }
            "--watchdog" => {
                let k: u64 = next("--watchdog")?
                    .parse()
                    .map_err(|e| format!("--watchdog: {e}"))?;
                if k == 0 {
                    return Err("--watchdog window must be at least 1 cycle".into());
                }
                self.watchdog = Some(k);
                Ok(true)
            }
            "--faults" => {
                self.faults = Some(PathBuf::from(next("--faults")?));
                Ok(true)
            }
            "--journal" => {
                self.journal_out = Some(PathBuf::from(next("--journal")?));
                Ok(true)
            }
            "--waitgraph" => {
                self.waitgraph = true;
                Ok(true)
            }
            "--checkpoint-at" => {
                self.checkpoint_at = Some(
                    next("--checkpoint-at")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-at: {e}"))?,
                );
                Ok(true)
            }
            "--checkpoint-dir" => {
                self.checkpoint_dir = Some(PathBuf::from(next("--checkpoint-dir")?));
                Ok(true)
            }
            "--resume-from" => {
                self.resume_from = Some(PathBuf::from(next("--resume-from")?));
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Load and parse the `--faults` plan, if given. The plan is leaked
    /// into a `'static` borrow so it can ride inside the `Copy`
    /// [`crate::runner::RunOptions`] across worker threads — one
    /// allocation per process invocation, freed at exit.
    pub fn load_fault_plan(&self) -> Result<Option<&'static FaultPlan>, String> {
        let Some(path) = &self.faults else {
            return Ok(None);
        };
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--faults {}: {e}", path.display()))?;
        let plan =
            FaultPlan::parse(&text).map_err(|e| format!("--faults {}: {e}", path.display()))?;
        Ok(Some(Box::leak(Box::new(plan))))
    }

    /// Whether any flag was given (if not, the binary should take its
    /// recorder-free path). Checkpoint/resume flags are run control, not
    /// sinks, so they do not force the recorded path by themselves.
    pub fn enabled(&self) -> bool {
        self.metrics_out.is_some()
            || self.trace_out.is_some()
            || self.watchdog.is_some()
            || self.journal_out.is_some()
            || self.waitgraph
    }

    /// The record configuration these flags imply: counters *and*
    /// latency percentiles power `--metrics-out`, the trace sink is
    /// bounded to [`DEFAULT_TRACE_LIMIT`] packets per run, the journal
    /// ring to [`JournalSink::DEFAULT_CAPACITY`] events.
    pub fn record_config(&self) -> RecordConfig {
        RecordConfig {
            counters: self.metrics_out.is_some(),
            trace: self.trace_out.as_ref().map(|_| DEFAULT_TRACE_LIMIT),
            watchdog: self.watchdog,
            journal: self
                .journal_out
                .as_ref()
                .map(|_| JournalSink::DEFAULT_CAPACITY),
            latency: self.metrics_out.is_some(),
            waitgraph: self.waitgraph,
        }
    }

    /// The checkpoint/resume policy these flags imply, with its snapshot
    /// directory leaked to `'static` so it can ride inside the `Copy`
    /// [`crate::runner::RunOptions`] across worker threads (one
    /// allocation per process invocation, like the fault plan).
    /// `--checkpoint-at` creates the directory eagerly so worker threads
    /// never race on it.
    pub fn snapshot_policy(&self) -> Result<Option<SnapshotPolicy>, String> {
        match (self.checkpoint_at, &self.resume_from) {
            (Some(_), Some(_)) => {
                Err("--checkpoint-at and --resume-from are mutually exclusive".into())
            }
            (Some(at), None) => {
                let dir = self
                    .checkpoint_dir
                    .clone()
                    .ok_or("--checkpoint-at needs --checkpoint-dir DIR")?;
                std::fs::create_dir_all(&dir)
                    .map_err(|e| format!("--checkpoint-dir {}: {e}", dir.display()))?;
                Ok(Some(SnapshotPolicy {
                    at: Some(at),
                    dir: Box::leak(dir.into_boxed_path()),
                    resume: false,
                }))
            }
            (None, Some(dir)) => Ok(Some(SnapshotPolicy {
                at: None,
                dir: Box::leak(dir.clone().into_boxed_path()),
                resume: true,
            })),
            (None, None) => {
                if self.checkpoint_dir.is_some() {
                    return Err("--checkpoint-dir needs --checkpoint-at CYCLE".into());
                }
                Ok(None)
            }
        }
    }

    /// Reject flag combinations that cannot run on a sharded engine:
    /// the wait-for-graph probe is global (a shard-local probe would
    /// miss cross-shard blocked chains).
    pub fn validate_shards(&self, shards: usize) -> Result<(), String> {
        if self.waitgraph && shards > 1 {
            return Err("--waitgraph needs the sequential engine (--shards 1): \
                 the wait-for-graph probe is global"
                .into());
        }
        Ok(())
    }

    /// Reject flag combinations the lane-batched path (`--lanes > 1`)
    /// cannot honor: recording sinks, fault plans, and checkpoint/resume
    /// all assume one standalone simulator per run, and the lane engine
    /// batches clean recorder-free replications only.
    ///
    /// # Errors
    ///
    /// Names the first conflicting flag group.
    pub fn validate_lanes(&self, lanes: usize) -> Result<(), String> {
        if lanes <= 1 {
            return Ok(());
        }
        if self.enabled() {
            return Err("--lanes > 1 runs the recorder-free lane engine; drop \
                 --trace/--metrics-out/--watchdog/--journal/--waitgraph"
                .into());
        }
        if self.faults.is_some() {
            return Err("--lanes > 1 does not support --faults".into());
        }
        if self.checkpoint_at.is_some() || self.resume_from.is_some() {
            return Err("--lanes > 1 does not support checkpoint/resume".into());
        }
        Ok(())
    }
}

/// One exported row of a metrics document: where it ran plus its merged
/// sinks.
#[derive(Debug, Clone)]
pub struct MetricsRow {
    /// Paper table number (0 = not a paper table, e.g. a sweep point —
    /// see `label`).
    pub table: usize,
    /// Hypercube dimension.
    pub n: usize,
    /// Free-form point label for non-table rows (e.g.
    /// `"lambda=0.4 algo=fully-adaptive"`).
    pub label: Option<String>,
    /// Merged sinks of all replications of this row.
    pub sinks: SinkSet,
}

impl MetricsRow {
    /// Lift a [`RecordedRow`] into an export row.
    pub fn from_recorded(table: usize, r: &RecordedRow) -> Self {
        Self {
            table,
            n: r.row.n,
            label: None,
            sinks: r.sinks.clone(),
        }
    }
}

/// Render the full metrics JSON document (`fadr-metrics/1` schema):
/// one object per instrumented row with its routing-decision counters
/// and, when a watchdog fired, the stall report.
pub fn metrics_json(algo: &str, rows: &[MetricsRow]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\": \"fadr-metrics/1\", \"algo\": \"{algo}\", \"rows\": ["
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"table\": {}, \"n\": {}, ", row.table, row.n);
        match &row.label {
            // Labels are harness-generated (no quotes/escapes to worry
            // about).
            Some(l) => {
                let _ = write!(out, "\"label\": \"{l}\", ");
            }
            None => out.push_str("\"label\": null, "),
        }
        match &row.sinks.counters {
            Some(c) => {
                let _ = write!(out, "\"counters\": {}, ", c.to_json(TOP_QUEUES));
            }
            None => out.push_str("\"counters\": null, "),
        }
        match &row.sinks.latency {
            Some(l) => {
                let _ = write!(out, "\"latency\": {}, ", l.to_json());
            }
            None => out.push_str("\"latency\": null, "),
        }
        match &row.sinks.waitgraph {
            Some(w) => {
                let _ = write!(out, "\"waitgraph\": {}, ", w.to_json());
            }
            None => out.push_str("\"waitgraph\": null, "),
        }
        match row.sinks.stall() {
            Some(s) => {
                let _ = write!(out, "\"stall\": {}", s.to_json());
            }
            None => out.push_str("\"stall\": null"),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Concatenate every row's trace lines into one JSONL body (one packet
/// lifecycle per line; `pkt` ids restart per replication).
pub fn trace_jsonl(rows: &[MetricsRow]) -> String {
    let mut out = String::new();
    for row in rows {
        if let Some(t) = &row.sinks.trace {
            for line in t.lines() {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

/// Concatenate every row's retained journal into one text body: a `#`
/// header line per row (event count, order-insensitive stream hash,
/// ring evictions) followed by one event per line. Line-diffing two
/// journal files localizes the first divergent event of a run pair.
pub fn journal_text(rows: &[MetricsRow]) -> String {
    let mut out = String::new();
    for row in rows {
        let Some(j) = &row.sinks.journal else {
            continue;
        };
        let place = match &row.label {
            Some(l) => format!("{l} n={}", row.n),
            None => format!("table {} n={}", row.table, row.n),
        };
        let _ = writeln!(
            out,
            "# {place} events={} hash={:#018x} dropped={}",
            j.count(),
            j.hash(),
            j.dropped
        );
        for line in j.lines() {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Write the metrics document, trace, and/or journal file named by
/// `args`, then print a one-line confirmation per file to stderr.
pub fn export(args: &ObsArgs, algo: &str, rows: &[MetricsRow]) -> std::io::Result<()> {
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, metrics_json(algo, rows))?;
        eprintln!("# metrics written to {}", path.display());
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(path, trace_jsonl(rows))?;
        eprintln!("# trace written to {}", path.display());
    }
    if let Some(path) = &args.journal_out {
        std::fs::write(path, journal_text(rows))?;
        eprintln!("# journal written to {}", path.display());
    }
    Ok(())
}

/// Print the post-run observability summary: stall reports always, and
/// a compact counters digest per row when counters ran.
pub fn report(rows: &[MetricsRow]) {
    for row in rows {
        let place = match &row.label {
            Some(l) => format!("{l} n={}", row.n),
            None => format!("table {} n={}", row.table, row.n),
        };
        if let Some(c) = &row.sinks.counters {
            eprintln!(
                "# {place}: links {} ({:.1}% dynamic), stutters {}, blocked {}, peak queue {} ({:.3} mean total)",
                c.links_total(),
                100.0 * c.dynamic_share(),
                c.stutters,
                c.blocked_cycles,
                c.peak_max(),
                c.mean_total(),
            );
        }
        if let Some(w) = &row.sinks.waitgraph {
            eprintln!(
                "# {place}: wait-graph max chain depth {} (cycle {}), {} cycle-candidate cycle(s){}",
                w.max_chain_depth,
                w.max_chain_cycle,
                w.cycle_candidate_cycles,
                match w.first_cycle_candidate {
                    Some(c) => format!(", first at cycle {c}"),
                    None => String::new(),
                }
            );
        }
        if let Some(j) = &row.sinks.journal {
            eprintln!(
                "# {place}: journal {} events, hash {:#018x} ({} evicted from ring)",
                j.count(),
                j.hash(),
                j.dropped
            );
        }
        if let Some(s) = row.sinks.stall() {
            // One classification path for the whole workspace:
            // `StallReport::verdict()` distinguishes fault partitions
            // from deadlock/livelock signatures.
            let why = match s.verdict() {
                "partitioned" => "a fault made destination(s) unreachable",
                "deadlock" => "no movement: deadlock signature",
                _ => "movement without delivery: livelock suspect",
            };
            eprintln!(
                "# {place}: WATCHDOG STALL [{}] at cycle {} ({} in flight, {} link moves in window) - {why}",
                s.verdict(),
                s.cycle,
                s.in_flight,
                s.links_in_window,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flag_consumes_only_obs_flags() {
        let mut o = ObsArgs::default();
        let mut vals = vec!["out.json".to_string()];
        let mut next = |_: &str| Ok(vals.remove(0));
        assert!(o.parse_flag("--metrics-out", &mut next).unwrap());
        let mut no_val = |_: &str| -> Result<String, String> { Err("no value".into()) };
        assert!(!o.parse_flag("--cap", &mut no_val).unwrap());
        assert_eq!(o.metrics_out.as_deref().unwrap().to_str(), Some("out.json"));
        assert!(o.enabled());
        let rc = o.record_config();
        assert!(rc.counters && rc.trace.is_none() && rc.watchdog.is_none());
    }

    #[test]
    fn watchdog_flag_rejects_zero() {
        let mut o = ObsArgs::default();
        let mut next = |_: &str| Ok("0".to_string());
        assert!(o.parse_flag("--watchdog", &mut next).is_err());
    }

    #[test]
    fn record_config_builds_requested_sinks() {
        let rc = RecordConfig {
            counters: true,
            trace: Some(4),
            watchdog: Some(100),
            journal: Some(1 << 10),
            latency: true,
            waitgraph: true,
        };
        let s = rc.build(8, 2);
        assert!(s.counters.is_some() && s.trace.is_some() && s.watchdog.is_some());
        assert!(s.journal.is_some() && s.latency.is_some() && s.waitgraph.is_some());
        assert!(rc.enabled());
        assert!(!RecordConfig::default().enabled());
    }

    #[test]
    fn snapshot_flags_validate() {
        let mut o = ObsArgs::default();
        assert!(o.snapshot_policy().unwrap().is_none());
        o.checkpoint_at = Some(10);
        assert!(o.snapshot_policy().is_err(), "missing --checkpoint-dir");
        o.resume_from = Some(PathBuf::from("x"));
        assert!(o.snapshot_policy().is_err(), "mutually exclusive");
        o.checkpoint_at = None;
        let sp = o.snapshot_policy().unwrap().unwrap();
        assert!(sp.resume && sp.at.is_none());
        assert!(o.validate_shards(1).is_ok());
        o.waitgraph = true;
        assert!(o.validate_shards(4).is_err(), "waitgraph is global");
    }

    #[test]
    fn metrics_json_renders_null_slots() {
        let row = MetricsRow {
            table: 1,
            n: 3,
            label: None,
            sinks: SinkSet::new(),
        };
        let doc = metrics_json("fully-adaptive", &[row]);
        assert!(doc.contains("\"schema\": \"fadr-metrics/1\""));
        assert!(doc.contains("\"label\": null"));
        assert!(doc.contains("\"counters\": null"));
        assert!(doc.contains("\"latency\": null"));
        assert!(doc.contains("\"waitgraph\": null"));
        assert!(doc.contains("\"stall\": null"));
    }
}
