//! Experiment harness regenerating every table and figure of the paper.
//!
//! * [`paper`] — the reference values of Tables 1–12 as printed in the
//!   paper, for side-by-side comparison.
//! * [`runner`] — table specifications and the code that re-runs each
//!   experiment on the `fadr-sim` simulator.
//! * `bin/tables` — regenerates Tables 1–12 (`--table K`, `--all`,
//!   `--full` for the paper's complete n = 10..14 sweep).
//! * `bin/figures` — regenerates Figures 1–6 (QDGs as Graphviz DOT, node
//!   designs as text).
//! * `bin/perf` — times the canonical workloads and writes a
//!   `BENCH_<stamp>.json` wall-clock baseline.
//! * [`perf`] — the minimal timing/reporting harness those use.
//! * [`exec`] — deterministic parallel execution of independent
//!   simulation runs (`--jobs N`).
//! * [`obs`] — observability wiring: the `--trace` / `--metrics-out` /
//!   `--watchdog` / `--journal` / `--waitgraph` flags, the
//!   checkpoint/resume controls, recording-sink construction, and
//!   structured JSON export.
//! * [`replay`] — snapshot replay: restore a `fadr-snapshot/1`
//!   checkpoint, re-execute with a journal attached, and diff against a
//!   reference journal (`bin/replay`).
//! * `benches/` — one timing bench per table plus ablation benches for
//!   the design choices called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod obs;
pub mod paper;
pub mod perf;
pub mod replay;
pub mod runner;
