//! Experiment harness regenerating every table and figure of the paper.
//!
//! * [`paper`] — the reference values of Tables 1–12 as printed in the
//!   paper, for side-by-side comparison.
//! * [`runner`] — table specifications and the code that re-runs each
//!   experiment on the `fadr-sim` simulator.
//! * `bin/tables` — regenerates Tables 1–12 (`--table K`, `--all`,
//!   `--full` for the paper's complete n = 10..14 sweep).
//! * `bin/figures` — regenerates Figures 1–6 (QDGs as Graphviz DOT, node
//!   designs as text).
//! * `benches/` — one Criterion bench per table plus ablation benches
//!   for the design choices called out in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod runner;
