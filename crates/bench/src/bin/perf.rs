//! Wall-clock perf baseline over the canonical workloads.
//!
//! ```text
//! perf [--samples S] [--jobs J] [--shards S] [--partition P] [--out PATH] [--quick | --large]
//! perf --compare self  [--samples S] [--lanes R]   # harness sanity: A = B must be within-noise
//! perf --compare lanes [--samples S] [--lanes R]   # batched lanes vs R sequential runs
//! ```
//!
//! Times Table 1 and Table 6 rows at n = 10–12 plus one dynamic row
//! (Table 9, n = 10), the Table-6 row fan-out at `--jobs 1` vs
//! `--jobs J`, and (when `--shards > 1`) a Table 9 row on the sequential
//! vs the sharded engine, then writes a `BENCH_<stamp>.json` report
//! (stamp = Unix seconds) for before/after comparisons across PRs; see
//! EXPERIMENTS.md for the recorded history.
//!
//! * `--samples S` — timed samples per workload (default 3; plus one
//!   warm-up each).
//! * `--jobs J` — worker threads for the parallel fan-out measurement
//!   (default: available parallelism).
//! * `--shards S` — shard threads for the intra-simulation speedup
//!   measurements (default 4).
//! * `--partition P` — shard partition strategy
//!   (`auto|contiguous|hamming|bisection|bfs`, default `auto`); the
//!   measured cut fraction is printed per scenario and never changes
//!   results.
//! * `--out PATH` — report path (default `BENCH_<stamp>.json` in the
//!   current directory).
//! * `--quick` — n = 10 only (fast smoke run).
//! * `--large` — *instead of* the table workloads, run the
//!   million-packet scale scenarios: a hypercube(16) and a 256×256 mesh
//!   dynamic run (λ = 1, ≥10⁶ delivered packets each) on the sequential
//!   engine vs `--shards S` shard threads, recording delivered-packet
//!   counts and the sharded speedup in the report's metadata. These
//!   minutes-long runs are timed cold (no warm-up iteration).
//! * `--trace PATH` / `--metrics-out PATH` / `--watchdog K` — after the
//!   timed (recorder-free) measurements, re-run one Table 6 and one
//!   Table 9 row with recording sinks and print a metrics summary
//!   block; the instrumented re-runs are *not* timed, so the baseline
//!   numbers stay comparable across PRs.
//! * `--faults PLAN.json` — inject a `fadr-faults/1` plan into the
//!   table workloads and the instrumented re-runs (measures the
//!   degraded-mode overhead; the `--large` scenarios ignore it).
//! * `--compare self` — time the same workload twice, interleaved, and
//!   demand a within-noise verdict; any directional verdict exits
//!   nonzero. This is the fail-closed sanity check of the statistical
//!   harness itself: a comparison method that can call identical code
//!   "faster" would also launder noise into fake regressions.
//! * `--compare lanes` — the lane engine's acceptance measurement:
//!   `--lanes R` (default 32) replications of a hypercube(8) λ = 1
//!   dynamic run, batched in one `fadr_sim::LaneSim` vs R standalone
//!   sequential runs, interleaved. Asserts per-lane delivered counts
//!   are bit-identical across engines and reports the aggregate
//!   replication-throughput speedup (delivered packets per wall-clock
//!   second) with an overlap-aware verdict. The speedup is recorded in
//!   EXPERIMENTS.md, not asserted: wall-clock thresholds in CI are
//!   flakes waiting to happen.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use fadr_bench::exec;
use fadr_bench::obs::{self, MetricsRow, ObsArgs};
use fadr_bench::perf::{compare, compare_line, report_line, time, time_cold, to_json, Measurement};
use fadr_bench::runner::{run_row, run_rows_recorded, run_table_jobs, spec, RunOptions};
use fadr_core::{HypercubeFullyAdaptive, MeshFullyAdaptive};
use fadr_metrics::Verdict;
use fadr_qdg::RoutingFunction;
use fadr_sim::{lane_seeds, LaneSim, PartitionStrategy, ShardedSimulator, SimConfig, Simulator};
use fadr_workloads::Pattern;

/// `--compare self`: run the identical workload on both sides of the
/// interleaved harness. The only honest verdict is within-noise;
/// anything directional means the harness itself manufactures signal,
/// so the binary exits nonzero (CI runs this fail-closed).
fn compare_self(samples: usize) -> ExitCode {
    let workload = || run_row(spec(9), 8, RunOptions::default());
    let r = compare("self_a", "self_b", samples, workload, workload);
    println!("{}", compare_line(&r));
    if r.verdict == Verdict::WithinNoise {
        println!("# compare self: ok (identical workloads are indistinguishable)");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "# compare self: FAILED — identical workloads judged {}; the harness is \
             reading noise as signal",
            r.verdict.label()
        );
        ExitCode::FAILURE
    }
}

/// `--compare lanes`: R replications of the hypercube(8) λ = 1 dynamic
/// run, batched as one [`LaneSim`] vs R standalone sequential runs,
/// interleaved. Delivered counts must be bit-identical per lane; the
/// reported number is the aggregate replication throughput speedup.
fn compare_lanes(samples: usize, lanes: usize) -> ExitCode {
    const N: usize = 8;
    const CYCLES: u64 = 300;
    let cfg = SimConfig::default();
    let seeds = lane_seeds(cfg.seed, lanes);
    let size = 1usize << N;
    let dest = move |s: usize, rng: &mut _| Pattern::Random.draw(s, size, rng);

    // The lane engine is built once: its memoized routing table is a
    // construction-time cost amortized over every replication batch,
    // exactly as the sweep harness uses it.
    let mut lane_sim = LaneSim::with_lane_seeds(HypercubeFullyAdaptive::new(N), cfg, seeds.clone());
    println!(
        "# compare lanes: hypercube({N}), lambda 1.0, {CYCLES} cycles, {lanes} lanes \
         ({} memoized routing states)",
        lane_sim.memo_entries()
    );

    let mut seq_delivered: Vec<u64> = Vec::new();
    let mut lane_delivered: Vec<u64> = Vec::new();
    let r = compare(
        &format!("seq_x{lanes}"),
        &format!("lanes_{lanes}"),
        samples,
        || {
            seq_delivered = seeds
                .iter()
                .map(|&seed| {
                    let mut sim =
                        Simulator::new(HypercubeFullyAdaptive::new(N), SimConfig { seed, ..cfg });
                    sim.run_dynamic(1.0, dest, CYCLES).delivered
                })
                .collect();
        },
        || {
            lane_delivered = lane_sim
                .run_dynamic(1.0, dest, CYCLES)
                .iter()
                .map(|res| res.delivered)
                .collect();
        },
    );
    assert_eq!(
        seq_delivered, lane_delivered,
        "per-lane delivered counts diverged between the engines"
    );
    let total: u64 = lane_delivered.iter().sum();
    println!("{}", compare_line(&r));
    println!(
        "# compare lanes: {total} delivered per side (bit-identical per lane), \
         aggregate {:.0} vs {:.0} packets/s, speedup {:.2}x ({})",
        total as f64 / r.a_ci.mean,
        total as f64 / r.b_ci.mean,
        r.a_ci.mean / r.b_ci.mean,
        r.verdict.label()
    );
    ExitCode::SUCCESS
}

/// One `--large` scenario: a dynamic λ = 1 run on the sequential engine
/// vs `shards` shard threads. The horizon is sized so each run delivers
/// well over 10⁶ packets (asserted); sequential and sharded deliver the
/// *bit-identical* packet set, which doubles as an at-scale equivalence
/// check. Returns `(delivered, speedup)` for the report metadata.
fn large_scenario<R>(
    label: &str,
    rf: R,
    cycles: u64,
    samples: usize,
    shards: usize,
    partition: PartitionStrategy,
    measurements: &mut Vec<Measurement>,
) -> (u64, f64)
where
    R: RoutingFunction + Clone + Send,
    R::Msg: Send,
{
    let cfg = SimConfig::default();
    let size = rf.topology().num_nodes();
    let dest = move |s: usize, rng: &mut _| Pattern::Random.draw(s, size, rng);

    let mut seq_sim = Simulator::new(rf.clone(), cfg);
    let mut seq_delivered = 0u64;
    let m_seq = time_cold(&format!("{label}_seq"), samples, || {
        seq_delivered = seq_sim.run_dynamic(1.0, dest, cycles).delivered;
        seq_delivered
    });
    println!("{}", report_line(&m_seq));

    let mut shr_sim = ShardedSimulator::with_strategy(rf, cfg, shards, partition);
    println!("# {label}: partition {}", shr_sim.partition_stats());
    let mut shr_delivered = 0u64;
    let m_shr = time_cold(&format!("{label}_shards{shards}"), samples, || {
        shr_delivered = shr_sim.run_dynamic(1.0, dest, cycles).delivered;
        shr_delivered
    });
    println!("{}", report_line(&m_shr));

    assert_eq!(
        seq_delivered, shr_delivered,
        "{label}: sharded delivered count diverged from sequential"
    );
    assert!(
        seq_delivered >= 1_000_000,
        "{label}: only {seq_delivered} packets delivered; raise the horizon"
    );
    let speedup = m_seq.min() / m_shr.min();
    let cut = shr_sim.partition_stats().cut_fraction();
    println!(
        "# {label}: {seq_delivered} delivered, {speedup:.2}x speedup at {shards} shards \
         (cut {:.1}%)",
        100.0 * cut
    );
    measurements.push(m_seq);
    measurements.push(m_shr);
    (seq_delivered, speedup)
}

fn main() -> ExitCode {
    let mut samples = 3usize;
    let mut jobs = exec::default_jobs();
    let mut shards = 4usize;
    let mut partition = PartitionStrategy::Auto;
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut large = false;
    let mut lanes = 32usize;
    let mut compare_mode: Option<String> = None;
    let mut obs_args = ObsArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--lanes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) if r >= 1 => lanes = r,
                _ => {
                    eprintln!("--lanes needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--compare" => match it.next() {
                Some(m) if m == "self" || m == "lanes" => compare_mode = Some(m),
                _ => {
                    eprintln!("--compare needs self|lanes");
                    return ExitCode::FAILURE;
                }
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) if s >= 1 => samples = s,
                _ => {
                    eprintln!("--samples needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|v| exec::parse_jobs(&v)) {
                Some(Ok(j)) => jobs = j,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--quick" => quick = true,
            "--large" => large = true,
            "--shards" => match it.next().map(|v| exec::parse_shards(&v)) {
                Some(Ok(s)) => shards = s,
                _ => {
                    eprintln!("--shards needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--partition" => match it.next().map(|v| v.parse::<PartitionStrategy>()) {
                Some(Ok(p)) => partition = p,
                _ => {
                    eprintln!("--partition needs auto|contiguous|hamming|bisection|bfs");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                let mut next =
                    |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
                match obs_args.parse_flag(other, &mut next) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("unknown argument {other}");
                        eprintln!(
                            "usage: perf [--samples S] [--jobs J] [--shards S] [--out PATH] [--quick | --large] [--lanes R] [--compare self|lanes] {}",
                            ObsArgs::USAGE
                        );
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }

    if let Some(mode) = compare_mode {
        if obs_args.enabled() || obs_args.faults.is_some() {
            eprintln!("--compare runs recorder-free; drop the observability/fault flags");
            return ExitCode::FAILURE;
        }
        return match mode.as_str() {
            "self" => compare_self(samples.max(2)),
            _ => compare_lanes(samples.max(2), lanes),
        };
    }

    let stamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    // `--faults` rides every RunOptions-driven workload (the table rows
    // and the instrumented re-runs); the `--large` scenarios stay
    // fault-free so their delivered-count floor keeps holding.
    let faults = match obs_args.load_fault_plan() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match obs_args.snapshot_policy() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let opts = RunOptions {
        partition,
        faults,
        snapshot,
        ..RunOptions::default()
    };
    let dims: &[usize] = if quick { &[10] } else { &[10, 11, 12] };
    let mut measurements = Vec::new();
    // Shard threads time-slice whatever the host exposes, so a speedup
    // number is only interpretable next to the core count it ran on
    // (a 1-core container caps any --shards N at parity minus overhead).
    let host_threads = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);
    let mut meta = vec![
        ("stamp", stamp.to_string()),
        ("samples", samples.to_string()),
        ("jobs", jobs.to_string()),
        ("quick", quick.to_string()),
        ("large", large.to_string()),
        ("shards", shards.to_string()),
        ("partition", partition.name().to_string()),
        ("host_threads", host_threads.to_string()),
    ];

    if large {
        // Million-packet scale scenarios: dynamic λ = 1 runs sized so
        // each delivers over 10⁶ packets, sequential vs sharded engine.
        let (d, s) = large_scenario(
            "hypercube16_dynamic",
            HypercubeFullyAdaptive::new(16),
            60,
            samples,
            shards,
            partition,
            &mut measurements,
        );
        meta.push(("hypercube16_delivered", d.to_string()));
        meta.push(("hypercube16_speedup", format!("{s:.2}")));
        // 12000 cycles: the saturated 256x256 mesh delivers ever more
        // slowly as its buffers fill toward global saturation
        // (measured cumulative: 281k by cycle 700, 518k by 1800, 830k
        // by 5000 — marginal rate decaying 216 -> 97 packets/cycle),
        // so the horizon carries a large margin: even if the rate
        // quarters again, 12000 cycles clear 10^6 delivered.
        let (d, s) = large_scenario(
            "mesh256_dynamic",
            MeshFullyAdaptive::new(256, 256),
            12_000,
            samples,
            shards,
            partition,
            &mut measurements,
        );
        meta.push(("mesh256_delivered", d.to_string()));
        meta.push(("mesh256_speedup", format!("{s:.2}")));
    } else {
        // Static rows: Table 1 (random, 1 packet) and Table 6 (complement,
        // n packets) — the light and heavy ends of the static workloads.
        for &table in &[1usize, 6] {
            for &n in dims {
                let m = time(&format!("table{table}_n{n}"), samples, || {
                    run_row(spec(table), n, opts)
                });
                println!("{}", report_line(&m));
                measurements.push(m);
            }
        }
        // One dynamic row (Table 9: random, λ = 1).
        let m = time("table9_n10_dynamic", samples, || run_row(spec(9), 10, opts));
        println!("{}", report_line(&m));
        measurements.push(m);
        // The full Table-6 row fan-out, sequential vs parallel, for the
        // harness speedup trend.
        let m = time("table6_rows_jobs1", samples, || {
            run_table_jobs(6, false, opts, 1)
        });
        println!("{}", report_line(&m));
        measurements.push(m);
        let m = time(&format!("table6_rows_jobs{jobs}"), samples, || {
            run_table_jobs(6, false, opts, jobs)
        });
        println!("{}", report_line(&m));
        measurements.push(m);
        // One sharded-engine point for the intra-run speedup trend.
        if shards > 1 {
            let shard_opts = RunOptions { shards, ..opts };
            let m = time(&format!("table9_n10_shards{shards}"), samples, || {
                run_row(spec(9), 10, shard_opts)
            });
            println!("{}", report_line(&m));
            measurements.push(m);
        }
    }
    let path = out.unwrap_or_else(|| format!("BENCH_{stamp}.json"));
    if let Err(e) = std::fs::write(&path, to_json(&meta, &measurements)) {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    // Instrumented (untimed) re-runs: one static and one dynamic row
    // with recording sinks, for the metrics summary block and exports.
    if obs_args.enabled() {
        let rc = obs_args.record_config();
        let mut metrics = Vec::new();
        for &table in &[6usize, 9] {
            let recorded = run_rows_recorded(spec(table), &[10], opts, 1, rc);
            metrics.extend(recorded.iter().map(|r| MetricsRow::from_recorded(table, r)));
        }
        println!("# metrics summary (instrumented re-runs, untimed)");
        obs::report(&metrics);
        if let Err(e) = obs::export(&obs_args, "FullyAdaptive", &metrics) {
            eprintln!("failed to write observability output: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
