//! Wall-clock perf baseline over the canonical workloads.
//!
//! ```text
//! perf [--samples S] [--jobs J] [--out PATH] [--quick]
//! ```
//!
//! Times Table 1 and Table 6 rows at n = 10–12 plus one dynamic row
//! (Table 9, n = 10), and the Table-6 row fan-out at `--jobs 1` vs
//! `--jobs J`, then writes a `BENCH_<stamp>.json` report (stamp = Unix
//! seconds) for before/after comparisons across PRs; see EXPERIMENTS.md
//! for the recorded history.
//!
//! * `--samples S` — timed samples per workload (default 3; plus one
//!   warm-up each).
//! * `--jobs J` — worker threads for the parallel fan-out measurement
//!   (default: available parallelism).
//! * `--out PATH` — report path (default `BENCH_<stamp>.json` in the
//!   current directory).
//! * `--quick` — n = 10 only (fast smoke run).
//! * `--trace PATH` / `--metrics-out PATH` / `--watchdog K` — after the
//!   timed (recorder-free) measurements, re-run one Table 6 and one
//!   Table 9 row with recording sinks and print a metrics summary
//!   block; the instrumented re-runs are *not* timed, so the baseline
//!   numbers stay comparable across PRs.

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use fadr_bench::exec;
use fadr_bench::obs::{self, MetricsRow, ObsArgs};
use fadr_bench::perf::{report_line, time, to_json};
use fadr_bench::runner::{run_row, run_rows_recorded, run_table_jobs, spec, RunOptions};

fn main() -> ExitCode {
    let mut samples = 3usize;
    let mut jobs = exec::default_jobs();
    let mut out: Option<String> = None;
    let mut quick = false;
    let mut obs_args = ObsArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) if s >= 1 => samples = s,
                _ => {
                    eprintln!("--samples needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match it.next().map(|v| exec::parse_jobs(&v)) {
                Some(Ok(j)) => jobs = j,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--quick" => quick = true,
            other => {
                let mut next =
                    |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
                match obs_args.parse_flag(other, &mut next) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("unknown argument {other}");
                        eprintln!(
                            "usage: perf [--samples S] [--jobs J] [--out PATH] [--quick] {}",
                            ObsArgs::USAGE
                        );
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }

    let stamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let opts = RunOptions::default();
    let dims: &[usize] = if quick { &[10] } else { &[10, 11, 12] };
    let mut measurements = Vec::new();

    // Static rows: Table 1 (random, 1 packet) and Table 6 (complement,
    // n packets) — the light and heavy ends of the static workloads.
    for &table in &[1usize, 6] {
        for &n in dims {
            let m = time(&format!("table{table}_n{n}"), samples, || {
                run_row(spec(table), n, opts)
            });
            println!("{}", report_line(&m));
            measurements.push(m);
        }
    }
    // One dynamic row (Table 9: random, λ = 1).
    let m = time("table9_n10_dynamic", samples, || run_row(spec(9), 10, opts));
    println!("{}", report_line(&m));
    measurements.push(m);
    // The full Table-6 row fan-out, sequential vs parallel, for the
    // harness speedup trend.
    let m = time("table6_rows_jobs1", samples, || {
        run_table_jobs(6, false, opts, 1)
    });
    println!("{}", report_line(&m));
    measurements.push(m);
    let m = time(&format!("table6_rows_jobs{jobs}"), samples, || {
        run_table_jobs(6, false, opts, jobs)
    });
    println!("{}", report_line(&m));
    measurements.push(m);

    let meta = [
        ("stamp", stamp.to_string()),
        ("samples", samples.to_string()),
        ("jobs", jobs.to_string()),
        ("quick", quick.to_string()),
    ];
    let path = out.unwrap_or_else(|| format!("BENCH_{stamp}.json"));
    if let Err(e) = std::fs::write(&path, to_json(&meta, &measurements)) {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");

    // Instrumented (untimed) re-runs: one static and one dynamic row
    // with recording sinks, for the metrics summary block and exports.
    if obs_args.enabled() {
        let rc = obs_args.record_config();
        let mut metrics = Vec::new();
        for &table in &[6usize, 9] {
            let recorded = run_rows_recorded(spec(table), &[10], opts, 1, rc);
            metrics.extend(recorded.iter().map(|r| MetricsRow::from_recorded(table, r)));
        }
        println!("# metrics summary (instrumented re-runs, untimed)");
        obs::report(&metrics);
        if let Err(e) = obs::export(&obs_args, "FullyAdaptive", &metrics) {
            eprintln!("failed to write observability output: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
