//! Replay a flight-recorder checkpoint.
//!
//! ```text
//! replay --snapshot FILE [--to CYCLE] [--journal-out PATH] [--diff REF]
//!        [--watchdog K] [--waitgraph] [--faults PLAN.json] [--dot PATH]
//! ```
//!
//! * `--snapshot FILE` — a `fadr-snapshot/1` checkpoint written by
//!   `tables`/`sweep`/`perf` under `--checkpoint-at C --checkpoint-dir D`
//!   (the file is `D/<label>.snap`).
//! * `--to CYCLE` — re-execute up to this cycle and pause there
//!   (default: run the restored workload to completion).
//! * `--journal-out PATH` — write the replayed segment's journal.
//! * `--diff REF` — diff the replayed journal against a reference
//!   journal file (the `--journal` output of the original run); the
//!   reference is windowed to the replayed cycle range first. Exits
//!   with failure and prints the first divergent event if they differ —
//!   a divergence localizes the earliest cycle at which two runs that
//!   should be deterministic twins stopped agreeing.
//! * `--watchdog K` — attach a no-progress watchdog to the replay (for
//!   re-triggering a recorded wedge under observation).
//! * `--waitgraph` — attach the live wait-for-graph probe.
//! * `--faults PLAN.json` — the original run's fault plan, when it had
//!   one (post-checkpoint fault events replay from the schedule).
//! * `--dot PATH` — write the stall report's wait-for graph as Graphviz
//!   DOT when the watchdog fires.
//!
//! Exit status follows the workspace-wide convention: 0 clean, 1 when a
//! divergence is found, 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fadr_bench::replay::{first_divergence, journal_window, replay, select_section, ReplayOptions};
use fadr_sim::FaultPlan;

struct Args {
    snapshot: PathBuf,
    journal_out: Option<PathBuf>,
    diff: Option<PathBuf>,
    dot: Option<PathBuf>,
    ro: ReplayOptions,
}

const USAGE: &str = "usage: replay --snapshot FILE [--to CYCLE] [--journal-out PATH] \
     [--diff REF] [--watchdog K] [--waitgraph] [--faults PLAN.json] [--dot PATH]";

fn parse_args() -> Result<Args, String> {
    let mut snapshot: Option<PathBuf> = None;
    let mut args = Args {
        snapshot: PathBuf::new(),
        journal_out: None,
        diff: None,
        dot: None,
        ro: ReplayOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    let mut faults_path: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        let mut next = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--snapshot" => snapshot = Some(PathBuf::from(next("--snapshot")?)),
            "--to" => {
                args.ro.to = Some(
                    next("--to")?
                        .parse()
                        .map_err(|e| format!("--to needs a cycle number: {e}"))?,
                );
            }
            "--journal-out" => args.journal_out = Some(PathBuf::from(next("--journal-out")?)),
            "--diff" => args.diff = Some(PathBuf::from(next("--diff")?)),
            "--dot" => args.dot = Some(PathBuf::from(next("--dot")?)),
            "--watchdog" => {
                let k: u64 = next("--watchdog")?
                    .parse()
                    .map_err(|e| format!("--watchdog needs a cycle count: {e}"))?;
                if k == 0 {
                    return Err("--watchdog window must be at least 1 cycle".into());
                }
                args.ro.watchdog = Some(k);
            }
            "--waitgraph" => args.ro.waitgraph = true,
            "--faults" => faults_path = Some(PathBuf::from(next("--faults")?)),
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    args.snapshot = snapshot.ok_or_else(|| format!("--snapshot is required\n{USAGE}"))?;
    if let Some(path) = faults_path {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("--faults {}: {e}", path.display()))?;
        let plan =
            FaultPlan::parse(&text).map_err(|e| format!("--faults {}: {e}", path.display()))?;
        args.ro.faults = Some(Box::leak(Box::new(plan)));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e == USAGE {
                println!("{e}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.snapshot) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("--snapshot {}: {e}", args.snapshot.display());
            return ExitCode::from(2);
        }
    };
    let out = match replay(&text, &args.ro) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replayed {} (algo={} table={} n={} cap={} seed={})",
        out.meta.label,
        out.meta.algo.name(),
        out.meta.table,
        out.meta.n,
        out.meta.cap,
        out.meta.seed,
    );
    println!(
        "cycles {} -> {}: {}",
        out.start_cycle, out.end_cycle, out.outcome
    );
    println!(
        "journal: {} event(s), hash {:#018x}, {} evicted",
        out.journal.count(),
        out.journal.hash(),
        out.journal.dropped
    );
    if let Some(w) = &out.waitgraph {
        println!(
            "wait-graph: max chain depth {} (cycle {}), {} cycle-candidate cycle(s)",
            w.max_chain_depth, w.max_chain_cycle, w.cycle_candidate_cycles
        );
    }
    if let Some(s) = &out.stall {
        println!(
            "stall: {} at cycle {} ({} in flight, {} link(s) in the window)",
            s.verdict(),
            s.cycle,
            s.in_flight,
            s.links_in_window
        );
        if let Some(path) = &args.dot {
            if let Err(e) = std::fs::write(path, s.to_dot()) {
                eprintln!("--dot {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!("wait-for graph written to {}", path.display());
        }
    } else if args.dot.is_some() {
        eprintln!("--dot given but no stall report (watchdog absent or never fired)");
    }
    let lines = out.journal.lines();
    if let Some(path) = &args.journal_out {
        let mut body = format!(
            "# replay {} events={} hash={:#018x} dropped={}\n",
            out.meta.label,
            out.journal.count(),
            out.journal.hash(),
            out.journal.dropped
        );
        for line in &lines {
            body.push_str(line);
            body.push('\n');
        }
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("--journal-out {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("journal written to {}", path.display());
    }
    if let Some(path) = &args.diff {
        let ref_text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("--diff {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let ref_lines: Vec<String> = ref_text.lines().map(str::to_string).collect();
        // The reference is a full-run journal: pick the section belonging
        // to this snapshot's work unit, then restrict it to the cycle
        // window the replay covered (the replayed journal's floor is the
        // checkpoint cycle, enforced by the engine on restore).
        let section = match select_section(&ref_lines, &out.meta) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("--diff {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let reference = journal_window(&section, out.start_cycle, Some(out.end_cycle));
        if out.journal.dropped > 0 {
            eprintln!(
                "warning: replay journal evicted {} event(s); the diff may flag ring \
                 truncation rather than real divergence (raise the journal capacity)",
                out.journal.dropped
            );
        }
        match first_divergence(&lines, &reference) {
            None => {
                println!(
                    "diff: identical over cycles {}..={} ({} event(s))",
                    out.start_cycle,
                    out.end_cycle,
                    reference.len()
                );
            }
            Some((i, got, want)) => {
                println!("diff: FIRST DIVERGENT EVENT at journal line {i}");
                println!(
                    "  replay:    {}",
                    got.as_deref().unwrap_or("<journal ended>")
                );
                println!(
                    "  reference: {}",
                    want.as_deref().unwrap_or("<journal ended>")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
