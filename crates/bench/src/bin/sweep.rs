//! Parameter sweeps emitting CSV series (extension experiments beyond
//! the paper's fixed operating points).
//!
//! ```text
//! sweep lambda [--n N] [--cycles C] [--jobs J] [--shards S]    # offered load vs throughput/latency/I_r
//! sweep capacity [--n N] [--table K] [--jobs J] [--shards S]   # central-queue capacity vs latency
//! ```
//!
//! `--partition P` picks the shard partition strategy
//! (`auto|contiguous|hamming|bisection|bfs`, default `auto`); a `#`
//! comment line above the CSV reports the resulting cut fraction.
//!
//! Each sweep runs the fully-adaptive algorithm, the static hang, and
//! e-cube + SBP side by side. Sweep points are independent simulations,
//! so they fan out over `--jobs` worker threads (default: available
//! parallelism); rows are computed into slots and printed in sweep
//! order, so the CSV is bit-identical for any `--jobs` value.
//! `--shards S` additionally runs each simulation on `S` shard threads
//! (bit-identical for any `S`; composes with `--jobs`).
//!
//! Observability: `--trace PATH`, `--metrics-out PATH`, and
//! `--watchdog K` attach recording sinks to every sweep point; metrics
//! rows carry a `label` identifying the point (the CSV itself is
//! unchanged by recording). `--faults PLAN.json` injects a
//! `fadr-faults/1` plan into every sweep point (degraded-mode routing).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use fadr_bench::exec;
use fadr_bench::obs::{self, MetricsRow, ObsArgs, RecordConfig};
use fadr_bench::runner::{
    dynamic_random_recorded, run_rows_recorded, spec, Algo, RunOptions, SnapshotPolicy,
};
use fadr_core::{EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang};
use fadr_sim::{FaultPlan, PartitionStrategy, SimConfig};

const ALGOS: [(&str, Algo); 3] = [
    ("fully-adaptive", Algo::FullyAdaptive),
    ("static-hang", Algo::StaticHang),
    ("ecube-sbp", Algo::EcubeSbp),
];

/// Print the shard-partition cut measurement as a `#` comment line (all
/// three algorithms run on the same n-cube, so the partition — a pure
/// function of topology, shard count, and strategy — is shared).
fn print_partition_stats(n: usize, shards: usize, partition: PartitionStrategy) {
    use fadr_qdg::RoutingFunction;
    if shards <= 1 {
        return;
    }
    let rf = HypercubeFullyAdaptive::new(n);
    let layout = fadr_sim::Layout::new(&rf);
    let shards = shards.clamp(1, layout.num_nodes.max(1));
    if let Ok(part) = fadr_sim::Partition::new(partition, rf.topology(), &layout, shards) {
        println!("# partition: {}", part.stats);
    }
}

#[allow(clippy::too_many_arguments)]
fn lambda_sweep(
    n: usize,
    cycles: u64,
    jobs: usize,
    shards: usize,
    partition: PartitionStrategy,
    rc: RecordConfig,
    faults: Option<&'static FaultPlan>,
    snap: Option<SnapshotPolicy>,
) -> Vec<MetricsRow> {
    const LAMBDAS: [f64; 11] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let size = 1usize << n;
    print_partition_stats(n, shards, partition);
    let points = exec::run_indexed(LAMBDAS.len() * ALGOS.len(), jobs, |i| {
        let lambda = LAMBDAS[i / ALGOS.len()];
        let (name, algo) = ALGOS[i % ALGOS.len()];
        let cfg = SimConfig::default();
        // File-safe label keying this point's snapshot inside
        // `--checkpoint-dir` (the display label below has spaces).
        let snap_label = format!("lambda{lambda}_{name}");
        let (res, sinks) = match algo {
            Algo::FullyAdaptive => dynamic_random_recorded(
                HypercubeFullyAdaptive::new(n),
                algo,
                cfg,
                lambda,
                cycles,
                rc,
                shards,
                partition,
                faults,
                snap,
                &snap_label,
            ),
            Algo::StaticHang => dynamic_random_recorded(
                HypercubeStaticHang::new(n),
                algo,
                cfg,
                lambda,
                cycles,
                rc,
                shards,
                partition,
                faults,
                snap,
                &snap_label,
            ),
            Algo::EcubeSbp => dynamic_random_recorded(
                EcubeSbp::new(n),
                algo,
                cfg,
                lambda,
                cycles,
                rc,
                shards,
                partition,
                faults,
                snap,
                &snap_label,
            ),
        };
        let thr = res.delivered as f64 / (size as f64 * cycles as f64);
        let line = format!(
            "{lambda},{name},{thr:.4},{:.2},{},{:.3}",
            res.stats.mean(),
            res.stats.max(),
            res.injection_rate()
        );
        (line, format!("lambda={lambda} algo={name}"), sinks)
    });
    println!("lambda,algo,throughput,l_avg,l_max,injection_rate");
    let mut metrics = Vec::new();
    for (line, label, sinks) in points {
        println!("{line}");
        metrics.push(MetricsRow {
            table: 0,
            n,
            label: Some(label),
            sinks,
        });
    }
    metrics
}

#[allow(clippy::too_many_arguments)]
fn capacity_sweep(
    n: usize,
    table: usize,
    jobs: usize,
    shards: usize,
    partition: PartitionStrategy,
    rc: RecordConfig,
    faults: Option<&'static FaultPlan>,
    snap: Option<SnapshotPolicy>,
) -> Vec<MetricsRow> {
    const CAPS: [usize; 8] = [1, 2, 3, 5, 8, 10, 12, 16];
    print_partition_stats(n, shards, partition);
    let points = exec::run_indexed(CAPS.len() * ALGOS.len(), jobs, |i| {
        let cap = CAPS[i / ALGOS.len()];
        let (name, algo) = ALGOS[i % ALGOS.len()];
        let opts = RunOptions {
            queue_capacity: cap,
            algo,
            shards,
            partition,
            faults,
            snapshot: snap,
            ..RunOptions::default()
        };
        // One dimension, one rep: the recorded row is the sweep point.
        let recorded = run_rows_recorded(spec(table), &[n], opts, 1, rc);
        let row = recorded[0].row;
        let line = format!("{cap},{name},{:.2},{}", row.l_avg, row.l_max);
        (
            line,
            format!("cap={cap} algo={name}"),
            recorded[0].sinks.clone(),
        )
    });
    println!("capacity,algo,l_avg,l_max");
    let mut metrics = Vec::new();
    for (line, label, sinks) in points {
        println!("{line}");
        metrics.push(MetricsRow {
            table,
            n,
            label: Some(label),
            sinks,
        });
    }
    metrics
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let mut n = 8usize;
    let mut cycles = 300u64;
    let mut table = 6usize;
    let mut jobs = exec::default_jobs();
    let mut shards = 1usize;
    let mut partition = PartitionStrategy::Auto;
    let mut obs_args = ObsArgs::default();
    let rest: Vec<String> = args.collect();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => n = it.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--cycles" => cycles = it.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            "--table" => table = it.next().and_then(|v| v.parse().ok()).unwrap_or(table),
            "--jobs" => match it.next().map(|v| exec::parse_jobs(v)) {
                Some(Ok(j)) => jobs = j,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match it.next().map(|v| exec::parse_shards(v)) {
                Some(Ok(s)) => shards = s,
                _ => {
                    eprintln!("--shards needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--partition" => match it.next().map(|v| v.parse::<PartitionStrategy>()) {
                Some(Ok(p)) => partition = p,
                _ => {
                    eprintln!("--partition needs auto|contiguous|hamming|bisection|bfs");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                let mut next = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value"))
                };
                match obs_args.parse_flag(other, &mut next) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("unknown argument {other}");
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    if let Err(e) = obs_args.validate_shards(shards) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let rc = obs_args.record_config();
    let faults = match obs_args.load_fault_plan() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let snap = match obs_args.snapshot_policy() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = match mode.as_str() {
        "lambda" => lambda_sweep(n, cycles, jobs, shards, partition, rc, faults, snap),
        "capacity" => capacity_sweep(n, table, jobs, shards, partition, rc, faults, snap),
        _ => {
            eprintln!(
                "usage: sweep <lambda|capacity> [--n N] [--cycles C] [--table K] [--jobs J] [--shards S] [--partition P] {}",
                ObsArgs::USAGE
            );
            return ExitCode::FAILURE;
        }
    };
    if obs_args.enabled() {
        obs::report(&metrics);
        if let Err(e) = obs::export(&obs_args, "mixed", &metrics) {
            eprintln!("failed to write observability output: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
