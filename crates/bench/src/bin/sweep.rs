//! Parameter sweeps emitting CSV series (extension experiments beyond
//! the paper's fixed operating points).
//!
//! ```text
//! sweep lambda [--n N] [--cycles C] [--jobs J]    # offered load vs throughput/latency/I_r
//! sweep capacity [--n N] [--table K] [--jobs J]   # central-queue capacity vs latency
//! ```
//!
//! Each sweep runs the fully-adaptive algorithm, the static hang, and
//! e-cube + SBP side by side. Sweep points are independent simulations,
//! so they fan out over `--jobs` worker threads (default: available
//! parallelism); rows are computed into slots and printed in sweep
//! order, so the CSV is bit-identical for any `--jobs` value.

use std::process::ExitCode;

use fadr_bench::exec;
use fadr_bench::runner::{run_row, spec, Algo, RunOptions};
use fadr_core::{EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang};
use fadr_qdg::RoutingFunction;
use fadr_sim::{SimConfig, Simulator};
use fadr_workloads::Pattern;

const ALGOS: [(&str, Algo); 3] = [
    ("fully-adaptive", Algo::FullyAdaptive),
    ("static-hang", Algo::StaticHang),
    ("ecube-sbp", Algo::EcubeSbp),
];

fn lambda_sweep(n: usize, cycles: u64, jobs: usize) {
    const LAMBDAS: [f64; 11] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let size = 1usize << n;
    let lines = exec::run_indexed(LAMBDAS.len() * ALGOS.len(), jobs, |i| {
        let lambda = LAMBDAS[i / ALGOS.len()];
        let (name, algo) = ALGOS[i % ALGOS.len()];
        let cfg = SimConfig::default();
        let res = match algo {
            Algo::FullyAdaptive => dynamic(
                Simulator::new(HypercubeFullyAdaptive::new(n), cfg),
                lambda,
                size,
                cycles,
            ),
            Algo::StaticHang => dynamic(
                Simulator::new(HypercubeStaticHang::new(n), cfg),
                lambda,
                size,
                cycles,
            ),
            Algo::EcubeSbp => dynamic(Simulator::new(EcubeSbp::new(n), cfg), lambda, size, cycles),
        };
        let thr = res.delivered as f64 / (size as f64 * cycles as f64);
        format!(
            "{lambda},{name},{thr:.4},{:.2},{},{:.3}",
            res.stats.mean(),
            res.stats.max(),
            res.injection_rate()
        )
    });
    println!("lambda,algo,throughput,l_avg,l_max,injection_rate");
    for line in lines {
        println!("{line}");
    }
}

fn dynamic<R: RoutingFunction>(
    mut sim: Simulator<R>,
    lambda: f64,
    size: usize,
    cycles: u64,
) -> fadr_sim::DynamicResult {
    sim.run_dynamic(
        lambda,
        move |s, rng| Pattern::Random.draw(s, size, rng),
        cycles,
    )
}

fn capacity_sweep(n: usize, table: usize, jobs: usize) {
    const CAPS: [usize; 8] = [1, 2, 3, 5, 8, 10, 12, 16];
    let lines = exec::run_indexed(CAPS.len() * ALGOS.len(), jobs, |i| {
        let cap = CAPS[i / ALGOS.len()];
        let (name, algo) = ALGOS[i % ALGOS.len()];
        let opts = RunOptions {
            queue_capacity: cap,
            algo,
            ..RunOptions::default()
        };
        let row = run_row(spec(table), n, opts);
        format!("{cap},{name},{:.2},{}", row.l_avg, row.l_max)
    });
    println!("capacity,algo,l_avg,l_max");
    for line in lines {
        println!("{line}");
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let mut n = 8usize;
    let mut cycles = 300u64;
    let mut table = 6usize;
    let mut jobs = exec::default_jobs();
    let rest: Vec<String> = args.collect();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => n = it.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--cycles" => cycles = it.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            "--table" => table = it.next().and_then(|v| v.parse().ok()).unwrap_or(table),
            "--jobs" => match it.next().map(|v| exec::parse_jobs(v)) {
                Some(Ok(j)) => jobs = j,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match mode.as_str() {
        "lambda" => lambda_sweep(n, cycles, jobs),
        "capacity" => capacity_sweep(n, table, jobs),
        _ => {
            eprintln!("usage: sweep <lambda|capacity> [--n N] [--cycles C] [--table K] [--jobs J]");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
