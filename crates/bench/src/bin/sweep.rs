//! Parameter sweeps emitting CSV series (extension experiments beyond
//! the paper's fixed operating points).
//!
//! ```text
//! sweep lambda [--n N] [--cycles C] [--jobs J] [--shards S] [--lanes R]  # offered load vs throughput/latency/I_r
//! sweep capacity [--n N] [--table K] [--jobs J] [--shards S]             # central-queue capacity vs latency
//! ```
//!
//! `--lanes R` replicates every lambda point across `R` independent RNG
//! lanes of one batched engine (`fadr_sim::LaneSim`) and emits
//! mean ± 95% CI columns instead of single noisy samples (the CSV
//! header changes, so downstream parsing is never silently wrong).
//! Lanes batch clean recorder-free runs only: `--lanes > 1` rejects
//! `--shards > 1`, recording flags, `--faults`, checkpoint/resume, and
//! the capacity mode.
//!
//! `--partition P` picks the shard partition strategy
//! (`auto|contiguous|hamming|bisection|bfs`, default `auto`); a `#`
//! comment line above the CSV reports the resulting cut fraction.
//!
//! Each sweep runs the fully-adaptive algorithm, the static hang, and
//! e-cube + SBP side by side. Sweep points are independent simulations,
//! so they fan out over `--jobs` worker threads (default: available
//! parallelism); rows are computed into slots and printed in sweep
//! order, so the CSV is bit-identical for any `--jobs` value.
//! `--shards S` additionally runs each simulation on `S` shard threads
//! (bit-identical for any `S`; composes with `--jobs`).
//!
//! Observability: `--trace PATH`, `--metrics-out PATH`, and
//! `--watchdog K` attach recording sinks to every sweep point; metrics
//! rows carry a `label` identifying the point (the CSV itself is
//! unchanged by recording). `--faults PLAN.json` injects a
//! `fadr-faults/1` plan into every sweep point (degraded-mode routing).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use fadr_bench::exec;
use fadr_bench::obs::{self, MetricsRow, ObsArgs, RecordConfig};
use fadr_bench::runner::{
    dynamic_random_lanes, dynamic_random_recorded, run_rows_recorded, spec, Algo, LanePoint,
    RunOptions, SnapshotPolicy,
};
use fadr_core::{EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang};
use fadr_sim::{FaultPlan, PartitionStrategy, SimConfig};

const ALGOS: [(&str, Algo); 3] = [
    ("fully-adaptive", Algo::FullyAdaptive),
    ("static-hang", Algo::StaticHang),
    ("ecube-sbp", Algo::EcubeSbp),
];

/// Print the shard-partition cut measurement as a `#` comment line (all
/// three algorithms run on the same n-cube, so the partition — a pure
/// function of topology, shard count, and strategy — is shared).
fn print_partition_stats(n: usize, shards: usize, partition: PartitionStrategy) {
    use fadr_qdg::RoutingFunction;
    if shards <= 1 {
        return;
    }
    let rf = HypercubeFullyAdaptive::new(n);
    let layout = fadr_sim::Layout::new(&rf);
    let shards = shards.clamp(1, layout.num_nodes.max(1));
    if let Ok(part) = fadr_sim::Partition::new(partition, rf.topology(), &layout, shards) {
        println!("# partition: {}", part.stats);
    }
}

#[allow(clippy::too_many_arguments)]
fn lambda_sweep(
    n: usize,
    cycles: u64,
    jobs: usize,
    shards: usize,
    partition: PartitionStrategy,
    rc: RecordConfig,
    faults: Option<&'static FaultPlan>,
    snap: Option<SnapshotPolicy>,
) -> Vec<MetricsRow> {
    const LAMBDAS: [f64; 11] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let size = 1usize << n;
    print_partition_stats(n, shards, partition);
    let points = exec::run_indexed(LAMBDAS.len() * ALGOS.len(), jobs, |i| {
        let lambda = LAMBDAS[i / ALGOS.len()];
        let (name, algo) = ALGOS[i % ALGOS.len()];
        let cfg = SimConfig::default();
        // File-safe label keying this point's snapshot inside
        // `--checkpoint-dir` (the display label below has spaces).
        let snap_label = format!("lambda{lambda}_{name}");
        let (res, sinks) = match algo {
            Algo::FullyAdaptive => dynamic_random_recorded(
                HypercubeFullyAdaptive::new(n),
                algo,
                cfg,
                lambda,
                cycles,
                rc,
                shards,
                partition,
                faults,
                snap,
                &snap_label,
            ),
            Algo::StaticHang => dynamic_random_recorded(
                HypercubeStaticHang::new(n),
                algo,
                cfg,
                lambda,
                cycles,
                rc,
                shards,
                partition,
                faults,
                snap,
                &snap_label,
            ),
            Algo::EcubeSbp => dynamic_random_recorded(
                EcubeSbp::new(n),
                algo,
                cfg,
                lambda,
                cycles,
                rc,
                shards,
                partition,
                faults,
                snap,
                &snap_label,
            ),
        };
        let thr = res.delivered as f64 / (size as f64 * cycles as f64);
        let line = format!(
            "{lambda},{name},{thr:.4},{:.2},{},{:.3}",
            res.stats.mean(),
            res.stats.max(),
            res.injection_rate()
        );
        (line, format!("lambda={lambda} algo={name}"), sinks)
    });
    println!("lambda,algo,throughput,l_avg,l_max,injection_rate");
    let mut metrics = Vec::new();
    for (line, label, sinks) in points {
        println!("{line}");
        metrics.push(MetricsRow {
            table: 0,
            n,
            label: Some(label),
            sinks,
        });
    }
    metrics
}

/// The lane-batched λ sweep: every `(lambda, algo)` point runs `lanes`
/// independent replications inside one [`fadr_sim::LaneSim`] (one
/// shared memoized routing table, per-lane RNG streams split from the
/// base seed) and reports mean ± 95% CI per column. Points still fan
/// out over `--jobs`, and the CSV is printed in sweep order, so output
/// is bit-identical for any `--jobs` value.
fn lambda_sweep_lanes(n: usize, cycles: u64, jobs: usize, lanes: usize) {
    const LAMBDAS: [f64; 11] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let fmt_point = |lambda: f64, name: &str, p: &LanePoint| {
        format!(
            "{lambda},{name},{:.4},{:.4},{:.2},{:.2},{},{:.3},{:.3}",
            p.throughput.mean,
            p.throughput.half_width,
            p.l_avg.mean,
            p.l_avg.half_width,
            p.l_max,
            p.injection_rate.mean,
            p.injection_rate.half_width
        )
    };
    let points = exec::run_indexed(LAMBDAS.len() * ALGOS.len(), jobs, |i| {
        let lambda = LAMBDAS[i / ALGOS.len()];
        let (name, algo) = ALGOS[i % ALGOS.len()];
        let cfg = SimConfig::default();
        let point = match algo {
            Algo::FullyAdaptive => {
                dynamic_random_lanes(HypercubeFullyAdaptive::new(n), cfg, lambda, cycles, lanes)
            }
            Algo::StaticHang => {
                dynamic_random_lanes(HypercubeStaticHang::new(n), cfg, lambda, cycles, lanes)
            }
            Algo::EcubeSbp => dynamic_random_lanes(EcubeSbp::new(n), cfg, lambda, cycles, lanes),
        };
        fmt_point(lambda, name, &point)
    });
    println!(
        "lambda,algo,throughput_mean,throughput_ci95,l_avg_mean,l_avg_ci95,l_max,\
         injection_rate_mean,injection_rate_ci95"
    );
    for line in points {
        println!("{line}");
    }
}

#[allow(clippy::too_many_arguments)]
fn capacity_sweep(
    n: usize,
    table: usize,
    jobs: usize,
    shards: usize,
    partition: PartitionStrategy,
    rc: RecordConfig,
    faults: Option<&'static FaultPlan>,
    snap: Option<SnapshotPolicy>,
) -> Vec<MetricsRow> {
    const CAPS: [usize; 8] = [1, 2, 3, 5, 8, 10, 12, 16];
    print_partition_stats(n, shards, partition);
    let points = exec::run_indexed(CAPS.len() * ALGOS.len(), jobs, |i| {
        let cap = CAPS[i / ALGOS.len()];
        let (name, algo) = ALGOS[i % ALGOS.len()];
        let opts = RunOptions {
            queue_capacity: cap,
            algo,
            shards,
            partition,
            faults,
            snapshot: snap,
            ..RunOptions::default()
        };
        // One dimension, one rep: the recorded row is the sweep point.
        let recorded = run_rows_recorded(spec(table), &[n], opts, 1, rc);
        let row = recorded[0].row;
        let line = format!("{cap},{name},{:.2},{}", row.l_avg, row.l_max);
        (
            line,
            format!("cap={cap} algo={name}"),
            recorded[0].sinks.clone(),
        )
    });
    println!("capacity,algo,l_avg,l_max");
    let mut metrics = Vec::new();
    for (line, label, sinks) in points {
        println!("{line}");
        metrics.push(MetricsRow {
            table,
            n,
            label: Some(label),
            sinks,
        });
    }
    metrics
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let mut n = 8usize;
    let mut cycles = 300u64;
    let mut table = 6usize;
    let mut jobs = exec::default_jobs();
    let mut shards = 1usize;
    let mut lanes = 1usize;
    let mut partition = PartitionStrategy::Auto;
    let mut obs_args = ObsArgs::default();
    let rest: Vec<String> = args.collect();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => n = it.next().and_then(|v| v.parse().ok()).unwrap_or(n),
            "--cycles" => cycles = it.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            "--table" => table = it.next().and_then(|v| v.parse().ok()).unwrap_or(table),
            "--jobs" => match it.next().map(|v| exec::parse_jobs(v)) {
                Some(Ok(j)) => jobs = j,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match it.next().map(|v| exec::parse_shards(v)) {
                Some(Ok(s)) => shards = s,
                _ => {
                    eprintln!("--shards needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--lanes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) if r >= 1 => lanes = r,
                _ => {
                    eprintln!("--lanes needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--partition" => match it.next().map(|v| v.parse::<PartitionStrategy>()) {
                Some(Ok(p)) => partition = p,
                _ => {
                    eprintln!("--partition needs auto|contiguous|hamming|bisection|bfs");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                let mut next = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value"))
                };
                match obs_args.parse_flag(other, &mut next) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("unknown argument {other}");
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    if let Err(e) = obs_args.validate_shards(shards) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = obs_args.validate_lanes(lanes) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if lanes > 1 && shards > 1 {
        eprintln!("--lanes > 1 runs the sequential lane engine; drop --shards");
        return ExitCode::FAILURE;
    }
    if lanes > 1 && mode == "capacity" {
        eprintln!("the capacity sweep does not support --lanes (use the lambda sweep)");
        return ExitCode::FAILURE;
    }
    let rc = obs_args.record_config();
    let faults = match obs_args.load_fault_plan() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let snap = match obs_args.snapshot_policy() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let metrics = match mode.as_str() {
        "lambda" if lanes > 1 => {
            lambda_sweep_lanes(n, cycles, jobs, lanes);
            return ExitCode::SUCCESS;
        }
        "lambda" => lambda_sweep(n, cycles, jobs, shards, partition, rc, faults, snap),
        "capacity" => capacity_sweep(n, table, jobs, shards, partition, rc, faults, snap),
        _ => {
            eprintln!(
                "usage: sweep <lambda|capacity> [--n N] [--cycles C] [--table K] [--jobs J] [--shards S] [--lanes R] [--partition P] {}",
                ObsArgs::USAGE
            );
            return ExitCode::FAILURE;
        }
    };
    if obs_args.enabled() {
        obs::report(&metrics);
        if let Err(e) = obs::export(&obs_args, "mixed", &metrics) {
            eprintln!("failed to write observability output: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
