//! Regenerate the paper's Tables 1–12.
//!
//! ```text
//! tables [--table K]... [--full] [--cap N] [--cycles N] [--seed S] [--jobs J] [--shards S] [--partition P]
//!        [--lanes R] [--csv] [--trace PATH] [--metrics-out PATH] [--watchdog K]
//! ```
//!
//! * `--table K` — regenerate only table K (repeatable); default: all 12.
//! * `--full` — the paper's complete sweep (n = 10..14; slow at n = 14).
//! * `--cap N` — central queue capacity (default 5, the paper's value;
//!   0 deliberately wedges the network and requires `--watchdog`).
//! * `--cycles N` — dynamic-run horizon in routing cycles (default 500).
//! * `--seed S` — base RNG seed.
//! * `--jobs J` — worker threads for the row × replication fan-out
//!   (default: available parallelism). Output is bit-identical for any
//!   value of `J`.
//! * `--shards S` — threads *inside* each simulation (sharded engine;
//!   default 1 = sequential). Composes with `--jobs`: each of the `J`
//!   concurrent runs uses `S` shard threads. Output is bit-identical
//!   for any value of `S`.
//! * `--lanes R` — run the `R` replications of each row batched in the
//!   lane engine (`fadr_sim::LaneSim`) instead of as `R` standalone
//!   simulations. Implies `--reps R`; output is bit-identical to
//!   `--reps R` without `--lanes` (CI diffs the two). Incompatible with
//!   `--shards`, `--faults`, checkpoints, and the recording sinks.
//! * `--csv` — emit CSV instead of aligned text.
//! * `--trace PATH` — write JSONL packet lifecycles (first 256 packets
//!   per run).
//! * `--metrics-out PATH` — write routing-decision counters and stall
//!   reports as JSON (schema `fadr-metrics/1`).
//! * `--watchdog K` — abort a run after `K` cycles without a delivery
//!   and report the stall instead of spinning to the cycle cap.
//! * `--faults PLAN.json` — inject the `fadr-faults/1` plan into every
//!   run (degraded-mode routing; rows that abort on a fault partition
//!   are flagged like watchdog aborts).

#![forbid(unsafe_code)]

use std::process::ExitCode;

use fadr_bench::exec;
use fadr_bench::obs::{self, MetricsRow, ObsArgs};
use fadr_bench::runner::{
    dims_for, render_table, run_rows_lanes, run_table_dims_recorded, run_table_jobs, spec, Algo,
    RunOptions,
};

struct Args {
    tables: Vec<usize>,
    full: bool,
    csv: bool,
    jobs: usize,
    lanes: usize,
    opts: RunOptions,
    obs: ObsArgs,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tables: Vec::new(),
        full: false,
        csv: false,
        jobs: exec::default_jobs(),
        lanes: 1,
        opts: RunOptions::default(),
        obs: ObsArgs::default(),
    };
    let mut reps_given = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--table" => {
                let t: usize = next("--table")?
                    .parse()
                    .map_err(|e| format!("--table: {e}"))?;
                if !(1..=12).contains(&t) {
                    return Err("--table must be 1..=12".into());
                }
                args.tables.push(t);
            }
            "--full" => args.full = true,
            "--csv" => args.csv = true,
            "--cap" => {
                args.opts.queue_capacity =
                    next("--cap")?.parse().map_err(|e| format!("--cap: {e}"))?;
            }
            "--cycles" => {
                args.opts.dynamic_cycles = next("--cycles")?
                    .parse()
                    .map_err(|e| format!("--cycles: {e}"))?;
            }
            "--seed" => {
                args.opts.seed = next("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--reps" => {
                args.opts.reps = next("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                reps_given = true;
            }
            "--lanes" => {
                args.lanes = next("--lanes")?
                    .parse()
                    .map_err(|e| format!("--lanes: {e}"))?;
                if args.lanes == 0 {
                    return Err("--lanes must be at least 1".into());
                }
            }
            "--algo" => {
                let v = next("--algo")?;
                args.opts.algo = Algo::parse(&v)
                    .ok_or("--algo must be fully-adaptive | static-hang | ecube-sbp")?;
            }
            "--jobs" => {
                args.jobs = exec::parse_jobs(&next("--jobs")?)?;
            }
            "--shards" => {
                args.opts.shards = exec::parse_shards(&next("--shards")?)?;
            }
            "--partition" => {
                args.opts.partition = next("--partition")?
                    .parse()
                    .map_err(|e: String| format!("--partition: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: tables [--table K]... [--full] [--cap N] [--cycles N] [--seed S] [--reps R] [--algo A] [--jobs J] [--shards S] [--partition P] [--lanes R] [--csv] {}",
                    ObsArgs::USAGE
                ));
            }
            other => {
                if !args.obs.parse_flag(other, &mut next)? {
                    return Err(format!("unknown argument {other}"));
                }
            }
        }
    }
    if args.tables.is_empty() {
        args.tables = (1..=12).collect();
    }
    if args.opts.queue_capacity == 0 && args.obs.watchdog.is_none() {
        return Err("--cap 0 wedges the network; it requires --watchdog".into());
    }
    args.obs.validate_shards(args.opts.shards)?;
    args.opts.faults = args.obs.load_fault_plan()?;
    args.opts.snapshot = args.obs.snapshot_policy()?;
    if args.lanes > 1 {
        if reps_given && args.opts.reps as usize != args.lanes {
            return Err("--lanes R already runs R replications (as lanes); drop --reps".into());
        }
        if args.opts.shards > 1 {
            return Err("--lanes > 1 runs the sequential lane engine; drop --shards".into());
        }
        args.obs.validate_lanes(args.lanes)?;
        args.opts.reps = u32::try_from(args.lanes).map_err(|_| "--lanes is too large")?;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# fully-adaptive hypercube routing (SPAA'91), queue capacity {}, dynamic horizon {} cycles, {} jobs, {} shards{}",
        args.opts.queue_capacity,
        args.opts.dynamic_cycles,
        args.jobs,
        args.opts.shards,
        if args.full { ", full n=10..14 sweep" } else { "" }
    );
    let mut metrics: Vec<MetricsRow> = Vec::new();
    for &t in &args.tables {
        let start = std::time::Instant::now();
        let table = if args.lanes > 1 {
            let dims = dims_for(spec(t), args.full);
            let rows = run_rows_lanes(spec(t), &dims, args.opts, args.jobs);
            render_table(t, &rows)
        } else if args.obs.enabled() {
            let dims = dims_for(spec(t), args.full);
            let (table, recorded) =
                run_table_dims_recorded(t, &dims, args.opts, args.jobs, args.obs.record_config());
            metrics.extend(recorded.iter().map(|r| MetricsRow::from_recorded(t, r)));
            table
        } else {
            run_table_jobs(t, args.full, args.opts, args.jobs)
        };
        if args.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{}", table.to_text());
        }
        eprintln!("# table {t} regenerated in {:.1?}", start.elapsed());
    }
    if args.obs.enabled() {
        obs::report(&metrics);
        let algo = format!("{:?}", args.opts.algo);
        if let Err(e) = obs::export(&args.obs, &algo, &metrics) {
            eprintln!("failed to write observability output: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
