//! Regenerate the paper's Figures 1–6.
//!
//! ```text
//! figures [--figure K]... [--out DIR]
//! ```
//!
//! * Figures 1–3 — queue dependency graphs (Graphviz DOT) of the
//!   3-hypercube, 3×3 mesh, and 3-shuffle-exchange hung from a node, with
//!   dynamic links drawn dashed, regenerated from the *actual* routing
//!   functions via `fadr-qdg`.
//! * Figures 4–6 — the § 6 node designs (text): node 0101 of the
//!   4-hypercube, the mesh node, and the shuffle-exchange node.
//!
//! Without `--out`, everything is printed to stdout; with `--out DIR`,
//! files `figure<K>.dot` / `figure<K>.txt` are written.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fadr_core::{HypercubeFullyAdaptive, MeshFullyAdaptive, ShuffleExchangeRouting};
use fadr_qdg::dot::{qdg_to_dot, DotOptions};
use fadr_qdg::explore::build_qdg;
use fadr_qdg::{QueueId, QueueKind};
use fadr_sim::node_design::describe_node;

fn binary_label(q: QueueId, bits: usize) -> String {
    let name = match q.kind {
        QueueKind::Inject => "i",
        QueueKind::Deliver => "d",
        QueueKind::Central(0) => "qA",
        QueueKind::Central(1) => "qB",
        QueueKind::Central(c) => return format!("q{}[{:0bits$b}]", c, q.node),
    };
    format!("{name}[{:0bits$b}]", q.node)
}

fn figure(k: usize) -> (String, &'static str) {
    match k {
        1 => {
            let rf = HypercubeFullyAdaptive::new(3);
            let qdg = build_qdg(&rf);
            (
                qdg_to_dot(
                    &qdg,
                    "Figure 1: 3-hypercube hung from 000, with dynamic links",
                    &|q| binary_label(q, 3),
                    DotOptions::default(),
                ),
                "dot",
            )
        }
        2 => {
            let rf = MeshFullyAdaptive::new(3, 3);
            let mesh = *rf.mesh();
            let qdg = build_qdg(&rf);
            (
                qdg_to_dot(
                    &qdg,
                    "Figure 2: 3-mesh hung from (0,0), with dynamic links",
                    &|q| {
                        let (x, y) = mesh.coords(q.node);
                        let name = match q.kind {
                            QueueKind::Inject => "i",
                            QueueKind::Deliver => "d",
                            QueueKind::Central(0) => "qA",
                            _ => "qB",
                        };
                        format!("{name}({x},{y})")
                    },
                    DotOptions::default(),
                ),
                "dot",
            )
        }
        3 => {
            let rf = ShuffleExchangeRouting::new(3);
            let qdg = build_qdg(&rf);
            (
                qdg_to_dot(
                    &qdg,
                    "Figure 3: 3-shuffle-exchange hung from 000, with dynamic links",
                    &|q| match q.kind {
                        QueueKind::Inject => format!("i[{:03b}]", q.node),
                        QueueKind::Deliver => format!("d[{:03b}]", q.node),
                        QueueKind::Central(c) => {
                            let phase = if c < 2 { 1 } else { 2 };
                            format!("p{}c{}[{:03b}]", phase, c % 2, q.node)
                        }
                    },
                    DotOptions::default(),
                ),
                "dot",
            )
        }
        4 => {
            let rf = HypercubeFullyAdaptive::new(4);
            (
                format!(
                    "Figure 4: Node 0101 of the 4-Hypercube.\n\n{}",
                    describe_node(&rf, 0b0101, 5)
                ),
                "txt",
            )
        }
        5 => {
            let rf = MeshFullyAdaptive::new(3, 3);
            let center = rf.mesh().node_at(1, 1);
            (
                format!(
                    "Figure 5: The node for the Mesh (interior node (1,1) of a 3x3 mesh).\n\n{}",
                    describe_node(&rf, center, 5)
                ),
                "txt",
            )
        }
        6 => {
            let rf = ShuffleExchangeRouting::new(3);
            (
                format!(
                    "Figure 6: The node for the Shuffle-Exchange (node 001 of the 8-node network).\n\n{}",
                    describe_node(&rf, 0b001, 5)
                ),
                "txt",
            )
        }
        _ => unreachable!(),
    }
}

fn main() -> ExitCode {
    let mut figures: Vec<usize> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--figure" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(k) if (1..=6).contains(&k) => figures.push(k),
                _ => {
                    eprintln!("--figure must be 1..=6");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(d) => out = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: figures [--figure K]... [--out DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if figures.is_empty() {
        figures = (1..=6).collect();
    }
    if let Some(dir) = &out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for k in figures {
        let (content, ext) = figure(k);
        match &out {
            Some(dir) => {
                let path = dir.join(format!("figure{k}.{ext}"));
                if let Err(e) = std::fs::write(&path, &content) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {}", path.display());
            }
            None => println!("{content}"),
        }
    }
    ExitCode::SUCCESS
}
