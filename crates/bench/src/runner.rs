//! Table specifications and experiment execution.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fadr_core::{EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang};
use fadr_metrics::{
    table::fmt2, MeanCi, Recorder, RunningStats, ShardRecorder, SinkSet, StallReport, Table,
    WatchdogSink,
};
use fadr_qdg::RoutingFunction;
use fadr_sim::{
    DynamicOutcome, DynamicResult, LaneSim, PartitionStrategy, ShardedSimulator, SimConfig,
    Simulator, SnapshotMsg, StaticOutcome, StaticResult, StopReason,
};
use fadr_workloads::{static_backlog, Pattern};

use crate::obs::RecordConfig;
use crate::paper;

/// The four § 7 communication patterns, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Uniform random destinations.
    Random,
    /// Bitwise complement permutation.
    Complement,
    /// Half-address transpose permutation.
    Transpose,
    /// Random level-preserving permutation.
    Leveled,
}

impl PatternKind {
    /// Compile for an n-cube (leveled permutations are seeded).
    pub fn compile(self, dims: usize, seed: u64) -> Pattern {
        match self {
            PatternKind::Random => Pattern::Random,
            PatternKind::Complement => Pattern::complement(dims),
            PatternKind::Transpose => Pattern::transpose(dims),
            PatternKind::Leveled => {
                Pattern::leveled_permutation(dims, &mut StdRng::seed_from_u64(seed))
            }
        }
    }

    /// Pattern name as printed in the paper's table captions.
    pub fn label(self) -> &'static str {
        match self {
            PatternKind::Random => "Random Routing",
            PatternKind::Complement => "Complement",
            PatternKind::Transpose => "Transpose",
            PatternKind::Leveled => "Leveled Permutation",
        }
    }
}

/// What a paper table runs: the pattern plus the injection model.
#[derive(Debug, Clone, Copy)]
pub struct TableSpec {
    /// Table number (1–12).
    pub number: usize,
    /// Communication pattern.
    pub pattern: PatternKind,
    /// `None` = dynamic λ = 1; `Some(k)` = static with `k(n)` packets.
    pub packets: Option<PacketsPerNode>,
}

/// Static-injection backlog depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketsPerNode {
    /// One packet per node (Tables 1–4).
    One,
    /// `n = log N` packets per node (Tables 5–8).
    LogN,
}

/// Specifications of the paper's twelve tables.
pub const TABLES: [TableSpec; 12] = [
    TableSpec {
        number: 1,
        pattern: PatternKind::Random,
        packets: Some(PacketsPerNode::One),
    },
    TableSpec {
        number: 2,
        pattern: PatternKind::Complement,
        packets: Some(PacketsPerNode::One),
    },
    TableSpec {
        number: 3,
        pattern: PatternKind::Transpose,
        packets: Some(PacketsPerNode::One),
    },
    TableSpec {
        number: 4,
        pattern: PatternKind::Leveled,
        packets: Some(PacketsPerNode::One),
    },
    TableSpec {
        number: 5,
        pattern: PatternKind::Random,
        packets: Some(PacketsPerNode::LogN),
    },
    TableSpec {
        number: 6,
        pattern: PatternKind::Complement,
        packets: Some(PacketsPerNode::LogN),
    },
    TableSpec {
        number: 7,
        pattern: PatternKind::Transpose,
        packets: Some(PacketsPerNode::LogN),
    },
    TableSpec {
        number: 8,
        pattern: PatternKind::Leveled,
        packets: Some(PacketsPerNode::LogN),
    },
    TableSpec {
        number: 9,
        pattern: PatternKind::Random,
        packets: None,
    },
    TableSpec {
        number: 10,
        pattern: PatternKind::Complement,
        packets: None,
    },
    TableSpec {
        number: 11,
        pattern: PatternKind::Transpose,
        packets: None,
    },
    TableSpec {
        number: 12,
        pattern: PatternKind::Leveled,
        packets: None,
    },
];

/// Look up a table spec by number.
pub fn spec(number: usize) -> TableSpec {
    TABLES[number - 1]
}

/// Which hypercube router the harness runs (the paper's tables use the
/// fully-adaptive § 3 algorithm; the others enable baseline tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// § 3 fully-adaptive (the paper's evaluated algorithm).
    FullyAdaptive,
    /// The underlying hang without dynamic links (≈ \[BGSS89\]/\[Kon90\]).
    StaticHang,
    /// Oblivious e-cube + structured buffer pool (\[Gun81\]/\[MS80\]).
    EcubeSbp,
}

impl Algo {
    /// Parse a `--algo` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fully-adaptive" | "adaptive" => Some(Self::FullyAdaptive),
            "static-hang" | "hang" => Some(Self::StaticHang),
            "ecube-sbp" | "ecube" => Some(Self::EcubeSbp),
            _ => None,
        }
    }

    /// Canonical name, round-trippable through [`Algo::parse`] (used in
    /// snapshot metadata so `replay` can rebuild the router).
    pub fn name(self) -> &'static str {
        match self {
            Self::FullyAdaptive => "fully-adaptive",
            Self::StaticHang => "static-hang",
            Self::EcubeSbp => "ecube-sbp",
        }
    }
}

/// Flight-recorder checkpoint/resume policy (`--checkpoint-at` /
/// `--resume-from`): every work unit either writes a `fadr-snapshot/1`
/// file when it reaches a cycle (then continues in-process, so measured
/// rows are unchanged), or restores its snapshot and resumes instead of
/// running from cycle 0. Snapshot files are named `<label>.snap` where
/// the label is the work unit's coordinates (`t<table>_n<n>_q<cap>_r<rep>`
/// for table rows), so resume pairs with the checkpoint run per unit.
/// Runs that finish before the checkpoint cycle write no snapshot and
/// rerun from cycle 0 on resume — either way the final tables are
/// bit-identical to an uninterrupted run.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotPolicy {
    /// Pause and write a checkpoint when a run reaches this cycle.
    pub at: Option<u64>,
    /// Directory holding the `<label>.snap` files (leaked to `'static`
    /// so the policy stays `Copy` across the `--jobs` fan-out).
    pub dir: &'static std::path::Path,
    /// Restore `<label>.snap` and resume instead of running afresh.
    pub resume: bool,
}

impl SnapshotPolicy {
    /// The snapshot file of the work unit labelled `label`.
    pub fn path(&self, label: &str) -> std::path::PathBuf {
        self.dir.join(format!("{label}.snap"))
    }
}

/// Harness options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Central queue capacity (the paper states 5; see EXPERIMENTS.md for
    /// the capacity discussion).
    pub queue_capacity: usize,
    /// Horizon (routing cycles) for dynamic runs.
    pub dynamic_cycles: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Independent replications per row (averaged; L_max is the max over
    /// replications). The paper reports single runs; default 1.
    pub reps: u32,
    /// Routing algorithm under test.
    pub algo: Algo,
    /// Intra-simulation shards (threads *inside* one run; composes with
    /// `--jobs`, which parallelizes *across* runs). 1 = the sequential
    /// engine; any value yields bit-identical results.
    pub shards: usize,
    /// How sharded runs split nodes across shards (`--partition`).
    /// Purely a performance knob — every strategy is bit-identical —
    /// that trades cross-shard mailbox traffic (see
    /// [`fadr_sim::ShardedSimulator::partition_stats`]).
    pub partition: PartitionStrategy,
    /// Fault plan injected into every run (`--faults`); the `'static`
    /// borrow keeps [`RunOptions`] `Copy` across the `--jobs` fan-out
    /// (see [`crate::obs::ObsArgs::load_fault_plan`]). Faulted runs may
    /// legitimately end partitioned or with dropped packets, so the
    /// "must drain" assertion is waived when a plan is present.
    pub faults: Option<&'static fadr_sim::FaultPlan>,
    /// Checkpoint/resume policy applied to every work unit
    /// (`--checkpoint-at` / `--resume-from`); `None` runs straight
    /// through.
    pub snapshot: Option<SnapshotPolicy>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            queue_capacity: 5,
            dynamic_cycles: 500,
            seed: 0xFAD2,
            reps: 1,
            algo: Algo::FullyAdaptive,
            shards: 1,
            partition: PartitionStrategy::Auto,
            faults: None,
            snapshot: None,
        }
    }
}

/// Measured row of a regenerated table.
#[derive(Debug, Clone, Copy)]
pub struct RowResult {
    /// Hypercube dimension.
    pub n: usize,
    /// Mean latency in time cycles.
    pub l_avg: f64,
    /// Maximum latency.
    pub l_max: u64,
    /// Effective injection rate (dynamic tables only).
    pub injection_rate: Option<f64>,
    /// Any replication of this row was aborted (watchdog stall): its
    /// statistics cover only the packets delivered before the abort, so
    /// rendered tables flag it instead of passing it off as a clean run.
    pub aborted: bool,
}

/// Run one row (one hypercube dimension) of one table on the § 3
/// fully-adaptive algorithm, averaging over `opts.reps` replications.
pub fn run_row(spec: TableSpec, n: usize, opts: RunOptions) -> RowResult {
    let reps = opts.reps.max(1);
    let results: Vec<RowResult> = (0..reps)
        .map(|rep| run_row_once(spec, n, opts, u64::from(rep)))
        .collect();
    reduce_reps(n, &results)
}

/// Fold per-replication results into one row. Replications must be in
/// rep order; the accumulation order here is the single reduction path
/// for both sequential and parallel execution, which is what makes
/// `--jobs N` output bit-identical to `--jobs 1` (floating-point sums
/// are order-sensitive).
fn reduce_reps(n: usize, results: &[RowResult]) -> RowResult {
    let reps = results.len() as u32;
    let mut avg = 0.0;
    let mut max = 0u64;
    let mut ir_sum = 0.0;
    let mut ir_any = false;
    let mut aborted = false;
    for r in results {
        avg += r.l_avg;
        max = max.max(r.l_max);
        aborted |= r.aborted;
        if let Some(ir) = r.injection_rate {
            ir_sum += ir;
            ir_any = true;
        }
    }
    RowResult {
        n,
        l_avg: avg / f64::from(reps),
        l_max: max,
        injection_rate: ir_any.then(|| ir_sum / f64::from(reps)),
        aborted,
    }
}

/// Run several rows of one table, fanning the `(dimension, replication)`
/// grid out over `jobs` worker threads.
///
/// Every work unit seeds its RNG streams purely from
/// `(opts.seed, spec.number, rep, n)`, so results do not depend on which
/// worker ran them or in what order; the per-row reduction then happens
/// in fixed rep order on the calling thread. Output is bit-identical to
/// the sequential `run_row` loop (see `tests/parallel_identity.rs`).
pub fn run_rows(spec: TableSpec, dims: &[usize], opts: RunOptions, jobs: usize) -> Vec<RowResult> {
    let reps = opts.reps.max(1) as usize;
    let units = dims.len() * reps;
    let results = crate::exec::run_indexed(units, jobs, |i| {
        run_row_once(spec, dims[i / reps], opts, (i % reps) as u64)
    });
    results
        .chunks(reps)
        .zip(dims)
        .map(|(chunk, &n)| reduce_reps(n, chunk))
        .collect()
}

/// One table row with the merged observability sinks of all its
/// replications.
#[derive(Debug, Clone)]
pub struct RecordedRow {
    /// The measured row (bit-identical to the unrecorded path).
    pub row: RowResult,
    /// Merged sinks (fixed replication order, so deterministic for any
    /// `jobs`).
    pub sinks: SinkSet,
}

/// [`run_rows`] with recording sinks attached to every replication.
///
/// Parallelism-safe: each work unit records into its own [`SinkSet`];
/// the per-row merge happens on the calling thread in fixed rep order,
/// so both the measured rows *and* the merged sinks are bit-identical
/// for any `jobs` value.
pub fn run_rows_recorded(
    spec: TableSpec,
    dims: &[usize],
    opts: RunOptions,
    jobs: usize,
    rc: RecordConfig,
) -> Vec<RecordedRow> {
    let reps = opts.reps.max(1) as usize;
    let units = dims.len() * reps;
    let results = crate::exec::run_indexed(units, jobs, |i| {
        run_row_once_recorded(spec, dims[i / reps], opts, (i % reps) as u64, rc)
    });
    results
        .chunks(reps)
        .zip(dims)
        .map(|(chunk, &n)| {
            let rows: Vec<RowResult> = chunk.iter().map(|(r, _)| *r).collect();
            let mut sinks = chunk[0].1.clone();
            for (_, s) in &chunk[1..] {
                sinks.merge(s);
            }
            RecordedRow {
                row: reduce_reps(n, &rows),
                sinks,
            }
        })
        .collect()
}

fn run_row_once(spec: TableSpec, n: usize, opts: RunOptions, rep: u64) -> RowResult {
    let cfg = row_cfg(spec, n, opts, rep);
    let label = row_label(spec, n, opts, rep);
    match opts.algo {
        Algo::FullyAdaptive => row_with(HypercubeFullyAdaptive::new(n), spec, n, opts, cfg, &label),
        Algo::StaticHang => row_with(HypercubeStaticHang::new(n), spec, n, opts, cfg, &label),
        Algo::EcubeSbp => row_with(EcubeSbp::new(n), spec, n, opts, cfg, &label),
    }
}

/// The snapshot label of one `(table, n, rep)` work unit (the queue
/// capacity participates because sweeps vary it with everything else
/// fixed, and two different configurations must not share a snapshot
/// file).
fn row_label(spec: TableSpec, n: usize, opts: RunOptions, rep: u64) -> String {
    format!("t{}_n{n}_q{}_r{rep}", spec.number, opts.queue_capacity)
}

/// One unrecorded replication on whichever engine `opts.shards` selects
/// (the sharded engine is bit-identical, so this is purely a perf knob).
fn row_with<R>(
    rf: R,
    spec: TableSpec,
    n: usize,
    opts: RunOptions,
    cfg: SimConfig,
    label: &str,
) -> RowResult
where
    R: RoutingFunction + Clone + Send,
    R::Msg: Send + SnapshotMsg,
{
    let require_drain = opts.faults.is_none();
    if opts.shards > 1 {
        let mut sim = ShardedSimulator::with_strategy(rf, cfg, opts.shards, opts.partition);
        if let Some(plan) = opts.faults {
            sim = sim.with_faults(plan.clone());
        }
        drive_sharded(sim, spec, n, opts, cfg.seed, require_drain, label).0
    } else {
        let mut sim = Simulator::new(rf, cfg);
        if let Some(plan) = opts.faults {
            sim = sim.with_faults(plan.clone());
        }
        drive(sim, spec, n, opts, cfg.seed, require_drain, label).0
    }
}

/// The [`SimConfig`] of one `(table, n, rep)` work unit; seeding is a
/// pure function of those coordinates (see [`run_rows`]).
fn row_cfg(spec: TableSpec, n: usize, opts: RunOptions, rep: u64) -> SimConfig {
    SimConfig {
        queue_capacity: opts.queue_capacity,
        seed: opts.seed ^ ((spec.number as u64) << 32) ^ (rep << 16) ^ n as u64,
        ..SimConfig::default()
    }
}

/// One replication with recording sinks attached; the recorder shares
/// the plain path's seeding, so measured rows are bit-identical with
/// and without recording (`tests/recording.rs` enforces this).
fn run_row_once_recorded(
    spec: TableSpec,
    n: usize,
    opts: RunOptions,
    rep: u64,
    rc: RecordConfig,
) -> (RowResult, SinkSet) {
    let cfg = row_cfg(spec, n, opts, rep);
    let label = row_label(spec, n, opts, rep);
    let (row, mut sinks) = match opts.algo {
        Algo::FullyAdaptive => recorded_with(
            HypercubeFullyAdaptive::new(n),
            spec,
            n,
            opts,
            cfg,
            rc,
            &label,
        ),
        Algo::StaticHang => {
            recorded_with(HypercubeStaticHang::new(n), spec, n, opts, cfg, rc, &label)
        }
        Algo::EcubeSbp => recorded_with(EcubeSbp::new(n), spec, n, opts, cfg, rc, &label),
    };
    sinks.flush();
    (row, sinks)
}

/// One recorded replication on whichever engine `opts.shards` selects.
///
/// Sharded runs build one watchdog-free [`SinkSet`] per shard (a
/// per-shard [`WatchdogSink`] would see only its shard's deliveries and
/// misfire) and move the `--watchdog` window to the sharded engine's
/// global watchdog; after the run the engine's [`StallReport`], if any,
/// is re-installed into the merged sink set so downstream reporting
/// (`obs::report`, metrics JSON) is oblivious to which engine ran.
#[allow(clippy::too_many_arguments)]
fn recorded_with<R>(
    rf: R,
    spec: TableSpec,
    n: usize,
    opts: RunOptions,
    cfg: SimConfig,
    rc: RecordConfig,
    label: &str,
) -> (RowResult, SinkSet)
where
    R: RoutingFunction + Clone + Send,
    R::Msg: Send + SnapshotMsg,
{
    // A watchdogged or faulted run may abort instead of draining;
    // report, don't panic.
    let require_drain = rc.watchdog.is_none() && opts.faults.is_none();
    if opts.shards > 1 {
        // The wait-for-graph probe is global like the watchdog, but has
        // no engine-level equivalent; binaries reject `--waitgraph`
        // with `--shards > 1`, and this strip keeps the per-shard sets
        // shardable if a caller slips one through.
        let shard_rc = RecordConfig {
            watchdog: None,
            waitgraph: false,
            ..rc
        };
        let classes = rf.num_classes();
        let mut sim =
            ShardedSimulator::with_recorders_strategy(rf, cfg, opts.shards, opts.partition, |_| {
                shard_rc.build(1 << n, classes)
            });
        if let Some(plan) = opts.faults {
            sim = sim.with_faults(plan.clone());
        }
        if let Some(k) = rc.watchdog {
            sim = sim.with_watchdog(k);
        }
        let (row, stall, mut sinks) =
            drive_sharded(sim, spec, n, opts, cfg.seed, require_drain, label);
        if let Some(k) = rc.watchdog {
            let mut wd = WatchdogSink::new(k);
            wd.report = stall;
            sinks.watchdog = Some(wd);
        }
        (row, sinks)
    } else {
        let sinks = rc.build(1 << n, rf.num_classes());
        let mut sim = Simulator::with_recorder(rf, cfg, sinks);
        if let Some(plan) = opts.faults {
            sim = sim.with_faults(plan.clone());
        }
        drive(sim, spec, n, opts, cfg.seed, require_drain, label)
    }
}

/// Write one snapshot file, failing loudly: a checkpoint the resume leg
/// can't find would silently degrade to a from-scratch rerun.
fn write_snapshot(sp: &SnapshotPolicy, label: &str, text: &str) {
    let path = sp.path(label);
    std::fs::write(&path, text)
        .unwrap_or_else(|e| panic!("writing snapshot {}: {e}", path.display()));
}

/// Unwrap an outcome that cannot be `Paused` (no pause was requested on
/// the final leg of any checkpoint/resume sequence).
fn ran_out(outcome: StaticOutcome) -> StaticResult {
    match outcome {
        StaticOutcome::Finished(res) => res,
        StaticOutcome::Paused(_) => unreachable!("no pause requested"),
    }
}

/// [`ran_out`] for dynamic runs.
fn ran_out_dyn(outcome: DynamicOutcome) -> DynamicResult {
    match outcome {
        DynamicOutcome::Finished(res) => res,
        DynamicOutcome::Paused(_) => unreachable!("no pause requested"),
    }
}

/// `run_static` under a [`SnapshotPolicy`]: checkpoint mid-run and
/// continue in-process, or restore and resume. A missing snapshot on
/// resume means the run drained before the checkpoint cycle — rerun
/// from cycle 0 (bit-identical either way).
fn static_run<R: RoutingFunction, Rec: Recorder>(
    sim: &mut Simulator<R, Rec>,
    backlog: &[Vec<usize>],
    snap: Option<SnapshotPolicy>,
    meta: &str,
    label: &str,
) -> StaticResult
where
    R::Msg: SnapshotMsg,
{
    let Some(sp) = snap else {
        return sim.run_static(backlog);
    };
    if sp.resume {
        let path = sp.path(label);
        return match std::fs::read_to_string(&path) {
            Err(_) => sim.run_static(backlog),
            Ok(text) => {
                let (_, progress) = sim
                    .restore(&text)
                    .unwrap_or_else(|e| panic!("restoring {}: {e}", path.display()));
                ran_out(sim.resume_static(backlog, progress, None))
            }
        };
    }
    match sim.run_static_until(backlog, sp.at) {
        StaticOutcome::Finished(res) => res,
        StaticOutcome::Paused(progress) => {
            write_snapshot(&sp, label, &sim.checkpoint(meta, &progress));
            ran_out(sim.resume_static(backlog, progress, None))
        }
    }
}

/// [`static_run`] on the sharded engine (same protocol; snapshots are
/// partition-agnostic, so checkpoint and resume legs may run on
/// different engines or shard counts).
fn static_run_sharded<R, Rec>(
    sim: &mut ShardedSimulator<R, Rec>,
    backlog: &[Vec<usize>],
    snap: Option<SnapshotPolicy>,
    meta: &str,
    label: &str,
) -> StaticResult
where
    R: RoutingFunction + Clone + Send,
    R::Msg: Send + SnapshotMsg,
    Rec: ShardRecorder + Send,
{
    let Some(sp) = snap else {
        return sim.run_static(backlog);
    };
    if sp.resume {
        let path = sp.path(label);
        return match std::fs::read_to_string(&path) {
            Err(_) => sim.run_static(backlog),
            Ok(text) => {
                let (_, progress) = sim
                    .restore(&text)
                    .unwrap_or_else(|e| panic!("restoring {}: {e}", path.display()));
                ran_out(sim.resume_static(backlog, progress, None))
            }
        };
    }
    match sim.run_static_until(backlog, sp.at) {
        StaticOutcome::Finished(res) => res,
        StaticOutcome::Paused(progress) => {
            write_snapshot(&sp, label, &sim.checkpoint(meta, &progress));
            ran_out(sim.resume_static(backlog, progress, None))
        }
    }
}

/// `run_dynamic` under a [`SnapshotPolicy`] (see [`static_run`]).
fn dynamic_run<R: RoutingFunction, Rec: Recorder, F>(
    sim: &mut Simulator<R, Rec>,
    lambda: f64,
    mut dest: F,
    cycles: u64,
    snap: Option<SnapshotPolicy>,
    meta: &str,
    label: &str,
) -> DynamicResult
where
    R::Msg: SnapshotMsg,
    F: FnMut(usize, &mut StdRng) -> usize,
{
    let Some(sp) = snap else {
        return sim.run_dynamic(lambda, dest, cycles);
    };
    if sp.resume {
        let path = sp.path(label);
        return match std::fs::read_to_string(&path) {
            Err(_) => sim.run_dynamic(lambda, dest, cycles),
            Ok(text) => {
                let (_, progress) = sim
                    .restore(&text)
                    .unwrap_or_else(|e| panic!("restoring {}: {e}", path.display()));
                ran_out_dyn(sim.resume_dynamic(lambda, dest, cycles, progress, None))
            }
        };
    }
    match sim.run_dynamic_until(lambda, &mut dest, cycles, sp.at) {
        DynamicOutcome::Finished(res) => res,
        DynamicOutcome::Paused(progress) => {
            write_snapshot(&sp, label, &sim.checkpoint(meta, &progress));
            ran_out_dyn(sim.resume_dynamic(lambda, dest, cycles, progress, None))
        }
    }
}

/// [`dynamic_run`] on the sharded engine.
#[allow(clippy::too_many_arguments)]
fn dynamic_run_sharded<R, Rec, F>(
    sim: &mut ShardedSimulator<R, Rec>,
    lambda: f64,
    dest: F,
    cycles: u64,
    snap: Option<SnapshotPolicy>,
    meta: &str,
    label: &str,
) -> DynamicResult
where
    R: RoutingFunction + Clone + Send,
    R::Msg: Send + SnapshotMsg,
    Rec: ShardRecorder + Send,
    F: Fn(usize, &mut StdRng) -> usize + Sync,
{
    let Some(sp) = snap else {
        return sim.run_dynamic(lambda, dest, cycles);
    };
    if sp.resume {
        let path = sp.path(label);
        return match std::fs::read_to_string(&path) {
            Err(_) => sim.run_dynamic(lambda, dest, cycles),
            Ok(text) => {
                let (_, progress) = sim
                    .restore(&text)
                    .unwrap_or_else(|e| panic!("restoring {}: {e}", path.display()));
                ran_out_dyn(sim.resume_dynamic(lambda, dest, cycles, progress, None))
            }
        };
    }
    match sim.run_dynamic_until(lambda, &dest, cycles, sp.at) {
        DynamicOutcome::Finished(res) => res,
        DynamicOutcome::Paused(progress) => {
            write_snapshot(&sp, label, &sim.checkpoint(meta, &progress));
            ran_out_dyn(sim.resume_dynamic(lambda, dest, cycles, progress, None))
        }
    }
}

fn drive<R: RoutingFunction, Rec: Recorder>(
    mut sim: Simulator<R, Rec>,
    spec: TableSpec,
    n: usize,
    opts: RunOptions,
    seed: u64,
    require_drain: bool,
    label: &str,
) -> (RowResult, Rec)
where
    R::Msg: SnapshotMsg,
{
    let size = 1usize << n;
    let pattern = spec.pattern.compile(n, seed ^ 0x1e7e1);
    let meta = crate::replay::meta_line(
        label,
        opts.algo,
        spec.number,
        n,
        opts.queue_capacity,
        opts.dynamic_cycles,
        seed,
        None,
    );
    let row = match spec.packets {
        Some(per_node) => {
            let k = match per_node {
                PacketsPerNode::One => 1,
                PacketsPerNode::LogN => n,
            };
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbac1);
            let backlog = static_backlog(&pattern, size, k, &mut rng);
            let res = static_run(&mut sim, &backlog, opts.snapshot, &meta, label);
            if require_drain {
                assert!(res.drained, "table {} n={n} failed to drain", spec.number);
            }
            RowResult {
                n,
                l_avg: res.stats.mean(),
                l_max: res.stats.max(),
                injection_rate: None,
                aborted: matches!(res.stop, StopReason::Aborted | StopReason::Partitioned),
            }
        }
        None => {
            let res = dynamic_run(
                &mut sim,
                1.0,
                move |s, rng| pattern.draw(s, size, rng),
                opts.dynamic_cycles,
                opts.snapshot,
                &meta,
                label,
            );
            RowResult {
                n,
                l_avg: res.stats.mean(),
                l_max: res.stats.max(),
                injection_rate: Some(res.injection_rate()),
                aborted: matches!(res.stop, StopReason::Aborted | StopReason::Partitioned),
            }
        }
    };
    (row, sim.into_recorder())
}

/// [`drive`] on the sharded engine: identical workload construction and
/// row extraction, so rows are bit-identical to the sequential path for
/// any shard count (`tests/sharded_identity.rs` enforces this over all
/// twelve tables). Also returns the engine watchdog's stall report so
/// the recorded path can surface it.
#[allow(clippy::too_many_arguments)]
fn drive_sharded<R, Rec>(
    mut sim: ShardedSimulator<R, Rec>,
    spec: TableSpec,
    n: usize,
    opts: RunOptions,
    seed: u64,
    require_drain: bool,
    label: &str,
) -> (RowResult, Option<StallReport>, Rec)
where
    R: RoutingFunction + Clone + Send,
    R::Msg: Send + SnapshotMsg,
    Rec: ShardRecorder + Send,
{
    let size = 1usize << n;
    let pattern = spec.pattern.compile(n, seed ^ 0x1e7e1);
    let meta = crate::replay::meta_line(
        label,
        opts.algo,
        spec.number,
        n,
        opts.queue_capacity,
        opts.dynamic_cycles,
        seed,
        None,
    );
    let row = match spec.packets {
        Some(per_node) => {
            let k = match per_node {
                PacketsPerNode::One => 1,
                PacketsPerNode::LogN => n,
            };
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbac1);
            let backlog = static_backlog(&pattern, size, k, &mut rng);
            let res = static_run_sharded(&mut sim, &backlog, opts.snapshot, &meta, label);
            if require_drain {
                assert!(res.drained, "table {} n={n} failed to drain", spec.number);
            }
            RowResult {
                n,
                l_avg: res.stats.mean(),
                l_max: res.stats.max(),
                injection_rate: None,
                aborted: matches!(res.stop, StopReason::Aborted | StopReason::Partitioned),
            }
        }
        None => {
            let res = dynamic_run_sharded(
                &mut sim,
                1.0,
                move |s, rng| pattern.draw(s, size, rng),
                opts.dynamic_cycles,
                opts.snapshot,
                &meta,
                label,
            );
            RowResult {
                n,
                l_avg: res.stats.mean(),
                l_max: res.stats.max(),
                injection_rate: Some(res.injection_rate()),
                aborted: matches!(res.stop, StopReason::Aborted | StopReason::Partitioned),
            }
        }
    };
    let stall = sim.stall_report().cloned();
    (row, stall, sim.into_recorder())
}

/// One recorded dynamic run with uniform-random destinations on
/// whichever engine `shards` selects — the sweep binary's work unit.
/// Results and sinks are bit-identical for any `shards` value; the
/// watchdog handling matches `recorded_with` (per-shard sink sets carry
/// no watchdog, the engine-level one's stall report is re-installed
/// into the merged set). `snap`/`label` apply the checkpoint/resume
/// policy to this point, with a sweep-supplied file-safe label (the
/// snapshot's meta records `table=0` plus the injection rate, which is
/// how `replay` knows to rebuild a uniform-random workload).
#[allow(clippy::too_many_arguments)]
pub fn dynamic_random_recorded<R>(
    rf: R,
    algo: Algo,
    cfg: SimConfig,
    lambda: f64,
    cycles: u64,
    rc: RecordConfig,
    shards: usize,
    partition: PartitionStrategy,
    faults: Option<&fadr_sim::FaultPlan>,
    snap: Option<SnapshotPolicy>,
    label: &str,
) -> (DynamicResult, SinkSet)
where
    R: RoutingFunction + Clone + Send,
    R::Msg: Send + SnapshotMsg,
{
    let size = rf.topology().num_nodes();
    let classes = rf.num_classes();
    let n = size.trailing_zeros() as usize;
    let meta = crate::replay::meta_line(
        label,
        algo,
        0,
        n,
        cfg.queue_capacity,
        cycles,
        cfg.seed,
        Some(lambda),
    );
    if shards > 1 {
        let shard_rc = RecordConfig {
            watchdog: None,
            waitgraph: false,
            ..rc
        };
        let mut sim = ShardedSimulator::with_recorders_strategy(rf, cfg, shards, partition, |_| {
            shard_rc.build(size, classes)
        });
        if let Some(plan) = faults {
            sim = sim.with_faults(plan.clone());
        }
        if let Some(k) = rc.watchdog {
            sim = sim.with_watchdog(k);
        }
        let res = dynamic_run_sharded(
            &mut sim,
            lambda,
            move |s, rng| Pattern::Random.draw(s, size, rng),
            cycles,
            snap,
            &meta,
            label,
        );
        let stall = sim.stall_report().cloned();
        let mut sinks = sim.into_recorder();
        if let Some(k) = rc.watchdog {
            let mut wd = WatchdogSink::new(k);
            wd.report = stall;
            sinks.watchdog = Some(wd);
        }
        sinks.flush();
        (res, sinks)
    } else {
        let mut sim = Simulator::with_recorder(rf, cfg, rc.build(size, classes));
        if let Some(plan) = faults {
            sim = sim.with_faults(plan.clone());
        }
        let res = dynamic_run(
            &mut sim,
            lambda,
            move |s, rng| Pattern::Random.draw(s, size, rng),
            cycles,
            snap,
            &meta,
            label,
        );
        let mut sinks = sim.into_recorder();
        sinks.flush();
        (res, sinks)
    }
}

/// [`run_row`] on the batched lane engine: the row's `opts.reps`
/// replications run as lanes of one [`LaneSim`] sharing a single
/// precomputed routing table, instead of `reps` standalone simulators.
///
/// Lane `rep` uses exactly the seeds [`run_row`]'s replication `rep`
/// would (engine streams from [`row_cfg`], pattern compile from
/// `seed ^ 0x1e7e1`, static backlog from `seed ^ 0xbac1`), and the lane
/// engine guarantees each lane is bit-identical to a standalone
/// sequential run with that seed — so the reduced row is bit-identical
/// to [`run_row`]'s (`tests/lane_identity.rs` enforces this).
///
/// # Panics
///
/// Panics if `opts` requests shards, faults, or checkpoints: the lane
/// engine batches clean replications only (binaries reject those flag
/// combinations up front; this is the backstop).
pub fn run_row_lanes(spec: TableSpec, n: usize, opts: RunOptions) -> RowResult {
    assert!(
        opts.shards <= 1 && opts.faults.is_none() && opts.snapshot.is_none(),
        "lane-batched rows support neither shards, faults, nor checkpoints"
    );
    match opts.algo {
        Algo::FullyAdaptive => row_lanes_with(HypercubeFullyAdaptive::new(n), spec, n, opts),
        Algo::StaticHang => row_lanes_with(HypercubeStaticHang::new(n), spec, n, opts),
        Algo::EcubeSbp => row_lanes_with(EcubeSbp::new(n), spec, n, opts),
    }
}

/// [`run_rows`] on the lane engine: rows fan out over `jobs` worker
/// threads, and each row's replications run as lanes of one shared
/// engine (replication-level parallelism is subsumed by the lanes).
pub fn run_rows_lanes(
    spec: TableSpec,
    dims: &[usize],
    opts: RunOptions,
    jobs: usize,
) -> Vec<RowResult> {
    crate::exec::run_indexed(dims.len(), jobs, |i| run_row_lanes(spec, dims[i], opts))
}

fn row_lanes_with<R: RoutingFunction>(
    rf: R,
    spec: TableSpec,
    n: usize,
    opts: RunOptions,
) -> RowResult {
    let reps = opts.reps.max(1);
    let seeds: Vec<u64> = (0..reps)
        .map(|rep| row_cfg(spec, n, opts, u64::from(rep)).seed)
        .collect();
    let cfg = row_cfg(spec, n, opts, 0);
    let size = 1usize << n;
    let mut sim = LaneSim::with_lane_seeds(rf, cfg, seeds.clone());
    let results: Vec<RowResult> = match spec.packets {
        Some(per_node) => {
            let k = match per_node {
                PacketsPerNode::One => 1,
                PacketsPerNode::LogN => n,
            };
            let backlogs: Vec<Vec<Vec<usize>>> = seeds
                .iter()
                .map(|&s| {
                    let pattern = spec.pattern.compile(n, s ^ 0x1e7e1);
                    let mut rng = StdRng::seed_from_u64(s ^ 0xbac1);
                    static_backlog(&pattern, size, k, &mut rng)
                })
                .collect();
            sim.run_static(&backlogs)
                .iter()
                .map(|res| {
                    assert!(res.drained, "table {} n={n} failed to drain", spec.number);
                    RowResult {
                        n,
                        l_avg: res.stats.mean(),
                        l_max: res.stats.max(),
                        injection_rate: None,
                        aborted: matches!(res.stop, StopReason::Aborted | StopReason::Partitioned),
                    }
                })
                .collect()
        }
        None => {
            let patterns: Vec<Pattern> = seeds
                .iter()
                .map(|&s| spec.pattern.compile(n, s ^ 0x1e7e1))
                .collect();
            sim.run_dynamic_indexed(
                1.0,
                |lane, src, rng| patterns[lane].draw(src, size, rng),
                opts.dynamic_cycles,
            )
            .iter()
            .map(|res| RowResult {
                n,
                l_avg: res.stats.mean(),
                l_max: res.stats.max(),
                injection_rate: Some(res.injection_rate()),
                aborted: matches!(res.stop, StopReason::Aborted | StopReason::Partitioned),
            })
            .collect()
        }
    };
    reduce_reps(n, &results)
}

/// One lane-batched sweep point: per-lane aggregates folded into
/// mean ± 95% CI views (the statistically honest replacement for the
/// single-sample sweep columns).
#[derive(Debug, Clone, Copy)]
pub struct LanePoint {
    /// Normalized throughput (delivered / (nodes × cycles)) across lanes.
    pub throughput: MeanCi,
    /// Mean latency across lanes.
    pub l_avg: MeanCi,
    /// Maximum latency over all lanes.
    pub l_max: u64,
    /// Effective injection rate across lanes.
    pub injection_rate: MeanCi,
    /// Total packets delivered, summed over lanes.
    pub delivered: u64,
}

/// One dynamic uniform-random sweep point replicated across `lanes` RNG
/// lanes of one batched engine (lane seeds derive from `cfg.seed` via
/// [`fadr_sim::lane_seeds`]), reduced to [`LanePoint`] statistics.
pub fn dynamic_random_lanes<R: RoutingFunction>(
    rf: R,
    cfg: SimConfig,
    lambda: f64,
    cycles: u64,
    lanes: usize,
) -> LanePoint {
    let size = rf.topology().num_nodes();
    let mut sim = LaneSim::new(rf, cfg, lanes);
    let results = sim.run_dynamic(
        lambda,
        move |s, rng| Pattern::Random.draw(s, size, rng),
        cycles,
    );
    let mut thr = RunningStats::new();
    let mut l_avg = RunningStats::new();
    let mut ir = RunningStats::new();
    let mut l_max = 0u64;
    let mut delivered = 0u64;
    for res in &results {
        thr.push(res.delivered as f64 / (size as f64 * cycles as f64));
        l_avg.push(res.stats.mean());
        ir.push(res.injection_rate());
        l_max = l_max.max(res.stats.max());
        delivered += res.delivered;
    }
    LanePoint {
        throughput: thr.ci95(),
        l_avg: l_avg.ci95(),
        l_max,
        injection_rate: ir.ci95(),
        delivered,
    }
}

/// Dimensions a table covers: the paper's full sweep or a reduced default.
pub fn dims_for(spec: TableSpec, full: bool) -> Vec<usize> {
    let base: Vec<usize> = if spec.number == 12 {
        if full {
            (9..=14).collect()
        } else {
            (9..=12).collect()
        }
    } else if full {
        (10..=14).collect()
    } else {
        (10..=12).collect()
    };
    base
}

/// Regenerate one table sequentially. Equivalent to
/// [`run_table_jobs`] with `jobs = 1`.
pub fn run_table(number: usize, full: bool, opts: RunOptions) -> Table {
    run_table_jobs(number, full, opts, 1)
}

/// Regenerate one table with row × replication work units spread over
/// `jobs` worker threads. Output is bit-identical for every `jobs`.
pub fn run_table_jobs(number: usize, full: bool, opts: RunOptions, jobs: usize) -> Table {
    run_table_dims(number, &dims_for(spec(number), full), opts, jobs)
}

/// Regenerate one table over an explicit dimension list, returning a
/// rendered [`Table`] with measured and paper reference columns side by
/// side. The dims override exists so tests and sweeps can run the full
/// table pipeline at reduced scale.
pub fn run_table_dims(number: usize, dims: &[usize], opts: RunOptions, jobs: usize) -> Table {
    render_table(number, &run_rows(spec(number), dims, opts, jobs))
}

/// [`run_table_dims`] with recording: returns the rendered table plus
/// each row's merged sinks for JSON export. The rendered table is
/// bit-identical to the unrecorded one.
pub fn run_table_dims_recorded(
    number: usize,
    dims: &[usize],
    opts: RunOptions,
    jobs: usize,
    rc: RecordConfig,
) -> (Table, Vec<RecordedRow>) {
    let recorded = run_rows_recorded(spec(number), dims, opts, jobs, rc);
    let rows: Vec<RowResult> = recorded.iter().map(|r| r.row).collect();
    (render_table(number, &rows), recorded)
}

/// Render measured rows of table `number` next to the paper's reference
/// columns.
pub fn render_table(number: usize, rows: &[RowResult]) -> Table {
    let s = spec(number);
    let injection = match s.packets {
        Some(PacketsPerNode::One) => "1 packet".to_string(),
        Some(PacketsPerNode::LogN) => "n packets".to_string(),
        None => "lambda = 1".to_string(),
    };
    let dynamic = s.packets.is_none();
    let headers: Vec<&str> = if dynamic {
        vec![
            "n",
            "N",
            "L_avg",
            "L_max",
            "I_r (%)",
            "paper L_avg",
            "paper L_max",
            "paper I_r",
        ]
    } else {
        vec!["n", "N", "L_avg", "L_max", "paper L_avg", "paper L_max"]
    };
    // Flag aborted rows in place of passing them off as clean runs:
    // their statistics cover only the packets delivered before the
    // watchdog stopped the simulation.
    let aborted_note = if rows.iter().any(|r| r.aborted) {
        " [* = aborted by watchdog; stats cover delivered packets only]"
    } else {
        ""
    };
    let mut table = Table::new(
        format!(
            "Table {number}: {}, {injection}{aborted_note}",
            s.pattern.label()
        ),
        &headers,
    );
    for row in rows {
        let n = row.n;
        let l_avg = fmt2(row.l_avg);
        let mut cells = vec![
            n.to_string(),
            (1usize << n).to_string(),
            if row.aborted {
                format!("{l_avg}*")
            } else {
                l_avg
            },
            row.l_max.to_string(),
        ];
        if dynamic {
            cells.push(format!("{:.0}", 100.0 * row.injection_rate.unwrap_or(0.0)));
            if let Some((a, m, ir)) = paper::dynamic_ref(number, n) {
                cells.extend([fmt2(a), m.to_string(), ir.to_string()]);
            } else {
                cells.extend(["-".into(), "-".into(), "-".into()]);
            }
        } else if let Some((a, m)) = paper::static_ref(number, n) {
            cells.extend([fmt2(a), m.to_string()]);
        } else {
            cells.extend(["-".into(), "-".into()]);
        }
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_tables() {
        for (i, s) in TABLES.iter().enumerate() {
            assert_eq!(s.number, i + 1);
        }
        assert_eq!(spec(6).pattern, PatternKind::Complement);
        assert!(spec(9).packets.is_none());
    }

    #[test]
    fn dims_defaults() {
        assert_eq!(dims_for(spec(1), false), vec![10, 11, 12]);
        assert_eq!(dims_for(spec(1), true), vec![10, 11, 12, 13, 14]);
        assert_eq!(dims_for(spec(12), false), vec![9, 10, 11, 12]);
    }

    #[test]
    fn run_row_static_small() {
        // Exercise the runner on a small complement row: exact 2n+1.
        let s = TableSpec {
            number: 2,
            pattern: PatternKind::Complement,
            packets: Some(PacketsPerNode::One),
        };
        let r = run_row(s, 6, RunOptions::default());
        assert_eq!(r.l_max, 13);
        assert!((r.l_avg - 13.0).abs() < 1e-9);
    }

    #[test]
    fn run_row_dynamic_small() {
        let s = TableSpec {
            number: 9,
            pattern: PatternKind::Random,
            packets: None,
        };
        let opts = RunOptions {
            dynamic_cycles: 100,
            ..RunOptions::default()
        };
        let r = run_row(s, 6, opts);
        assert!(r.injection_rate.unwrap() > 0.5);
        assert!(r.l_avg > 0.0);
    }
}
