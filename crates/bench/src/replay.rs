//! Snapshot replay: restore a `fadr-snapshot/1` checkpoint, rebuild the
//! workload it was running from its metadata line, and re-execute —
//! with a journal attached — to a target cycle or to completion. The
//! journal of the replayed segment can then be diffed against a
//! reference journal (`--journal` output of the original run) to
//! localize the *first divergent event* of a run pair, which is the
//! flight-recorder debugging loop: checkpoint near the anomaly, replay
//! deterministically, diff.
//!
//! The snapshot's `meta` line is written by the runner
//! ([`meta_line`]): a work-unit label followed by `key=value` pairs
//! carrying everything the engine state does not — which router ran
//! ([`Algo`]), which paper table (hence pattern and injection model),
//! the dynamic horizon, and the workload seed. Engine state (queue
//! capacity, RNG seed, in-flight packets) lives in the snapshot body
//! itself.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fadr_core::{EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang};
use fadr_metrics::{JournalSink, SinkSet, StallReport, WaitGraphSink};
use fadr_qdg::RoutingFunction;
use fadr_sim::{
    DynamicOutcome, FaultPlan, SimConfig, Simulator, SnapshotMsg, StaticOutcome, StopReason,
};
use fadr_workloads::{static_backlog, Pattern};

use crate::runner::{spec, Algo, PacketsPerNode, RunOptions};

/// Render the snapshot metadata line for one work unit. `lambda` is
/// `Some` only for non-table dynamic points (sweeps); paper tables
/// derive their injection model from the table number.
#[allow(clippy::too_many_arguments)]
pub fn meta_line(
    label: &str,
    algo: Algo,
    table: usize,
    n: usize,
    cap: usize,
    cycles: u64,
    seed: u64,
    lambda: Option<f64>,
) -> String {
    let mut out = format!(
        "{label} algo={} table={table} n={n} cap={cap} cycles={cycles} seed={seed}",
        algo.name()
    );
    if let Some(l) = lambda {
        out.push_str(&format!(" lambda={l}"));
    }
    out
}

/// Parsed snapshot metadata (see [`meta_line`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// Work-unit label (snapshot file stem).
    pub label: String,
    /// Router that produced the snapshot.
    pub algo: Algo,
    /// Paper table number (0 = a sweep point: dynamic, uniform random).
    pub table: usize,
    /// Hypercube dimension.
    pub n: usize,
    /// Central queue capacity.
    pub cap: usize,
    /// Dynamic horizon in routing cycles.
    pub cycles: u64,
    /// Workload seed (pattern compilation and backlog/injection draws).
    pub seed: u64,
    /// Injection rate for sweep points (`table == 0`).
    pub lambda: Option<f64>,
}

impl SnapshotMeta {
    /// Parse a metadata line (label first, then `key=value` pairs).
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut words = line.split_whitespace();
        let label = words.next().ok_or("empty snapshot meta line")?.to_string();
        let mut meta = SnapshotMeta {
            label,
            algo: Algo::FullyAdaptive,
            table: 0,
            n: 0,
            cap: 0,
            cycles: 0,
            seed: 0,
            lambda: None,
        };
        let mut seen_algo = false;
        let mut seen_n = false;
        for w in words {
            let (key, val) = w
                .split_once('=')
                .ok_or_else(|| format!("bad meta field `{w}` (expected key=value)"))?;
            match key {
                "algo" => {
                    meta.algo = Algo::parse(val).ok_or_else(|| format!("unknown algo `{val}`"))?;
                    seen_algo = true;
                }
                "table" => meta.table = val.parse().map_err(|e| format!("table: {e}"))?,
                "n" => {
                    meta.n = val.parse().map_err(|e| format!("n: {e}"))?;
                    seen_n = true;
                }
                "cap" => meta.cap = val.parse().map_err(|e| format!("cap: {e}"))?,
                "cycles" => meta.cycles = val.parse().map_err(|e| format!("cycles: {e}"))?,
                "seed" => meta.seed = val.parse().map_err(|e| format!("seed: {e}"))?,
                "lambda" => {
                    meta.lambda = Some(val.parse().map_err(|e| format!("lambda: {e}"))?);
                }
                // Unknown keys are ignored so older binaries can read
                // snapshots from newer ones.
                _ => {}
            }
        }
        if !seen_algo || !seen_n {
            return Err("snapshot meta is missing algo= or n= (not a runner snapshot?)".into());
        }
        Ok(meta)
    }
}

/// Read the `meta` line of a snapshot without restoring it.
pub fn peek_meta(text: &str) -> Result<SnapshotMeta, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some("fadr-snapshot/1") => {}
        _ => return Err("not a fadr-snapshot/1 file".into()),
    }
    let meta = lines
        .next()
        .and_then(|l| l.strip_prefix("meta "))
        .ok_or("snapshot has no meta line")?;
    SnapshotMeta::parse(meta)
}

/// Replay controls (the `replay` binary's flags).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayOptions {
    /// Re-execute up to this cycle (pause there); `None` = to completion.
    pub to: Option<u64>,
    /// Attach a no-progress watchdog with this window.
    pub watchdog: Option<u64>,
    /// Attach the live wait-for-graph probe.
    pub waitgraph: bool,
    /// Journal ring capacity (0 = [`JournalSink::DEFAULT_CAPACITY`]).
    pub journal_capacity: usize,
    /// Fault plan of the original run, if it had one (fault replay needs
    /// the same schedule to reproduce post-checkpoint fault events).
    pub faults: Option<&'static FaultPlan>,
}

/// What a replay produced.
#[derive(Debug, Clone)]
pub struct ReplayOutput {
    /// The snapshot's parsed metadata.
    pub meta: SnapshotMeta,
    /// Cycle the snapshot restored to (the checkpoint cycle).
    pub start_cycle: u64,
    /// Cycle the replay stopped at.
    pub end_cycle: u64,
    /// How the replayed segment ended.
    pub outcome: String,
    /// The replayed segment's journal (events strictly after
    /// `start_cycle`).
    pub journal: JournalSink,
    /// Wait-for-graph summary, when enabled.
    pub waitgraph: Option<WaitGraphSink>,
    /// Stall report, when a watchdog fired.
    pub stall: Option<StallReport>,
}

/// Restore `text` and re-execute its workload under `ro` (sequential
/// engine; snapshots are partition-agnostic, so shard-run checkpoints
/// replay here unchanged).
pub fn replay(text: &str, ro: &ReplayOptions) -> Result<ReplayOutput, String> {
    let meta = peek_meta(text)?;
    match meta.algo {
        Algo::FullyAdaptive => replay_with(HypercubeFullyAdaptive::new(meta.n), meta, text, ro),
        Algo::StaticHang => replay_with(HypercubeStaticHang::new(meta.n), meta, text, ro),
        Algo::EcubeSbp => replay_with(EcubeSbp::new(meta.n), meta, text, ro),
    }
}

fn replay_with<R>(
    rf: R,
    meta: SnapshotMeta,
    text: &str,
    ro: &ReplayOptions,
) -> Result<ReplayOutput, String>
where
    R: RoutingFunction,
    R::Msg: SnapshotMsg,
{
    if meta.table > 12 {
        return Err(format!(
            "snapshot names table {}; tables are 1–12",
            meta.table
        ));
    }
    let size = 1usize << meta.n;
    // The engine validates this config against the snapshot's `cfg`
    // record on restore, so a tampered meta line cannot silently replay
    // the wrong configuration.
    let cfg = SimConfig {
        queue_capacity: meta.cap,
        seed: meta.seed,
        ..SimConfig::default()
    };
    let mut sinks = SinkSet::new().with_journal(if ro.journal_capacity == 0 {
        JournalSink::DEFAULT_CAPACITY
    } else {
        ro.journal_capacity
    });
    if let Some(k) = ro.watchdog {
        sinks = sinks.with_watchdog(k);
    }
    if ro.waitgraph {
        sinks = sinks.with_waitgraph();
    }
    let mut sim = Simulator::with_recorder(rf, cfg, sinks);
    if let Some(plan) = ro.faults {
        sim = sim.with_faults(plan.clone());
    }
    let (_, progress) = sim.restore(text)?;
    let start_cycle = sim.cycle();
    if let Some(to) = ro.to {
        if to <= start_cycle {
            return Err(format!(
                "--to {to} is not after the checkpoint cycle {start_cycle}"
            ));
        }
    }

    let pattern = if meta.table >= 1 {
        spec(meta.table)
            .pattern
            .compile(meta.n, meta.seed ^ 0x1e7e1)
    } else {
        Pattern::Random
    };
    let outcome = if meta.table >= 1 && spec(meta.table).packets.is_some() {
        let k = match spec(meta.table).packets {
            Some(PacketsPerNode::One) => 1,
            Some(PacketsPerNode::LogN) => meta.n,
            None => unreachable!(),
        };
        let mut rng = StdRng::seed_from_u64(meta.seed ^ 0xbac1);
        let backlog = static_backlog(&pattern, size, k, &mut rng);
        match sim.resume_static(&backlog, progress, ro.to) {
            StaticOutcome::Paused(_) => format!("paused at cycle {}", sim.cycle()),
            StaticOutcome::Finished(res) => describe_stop(res.stop, res.drained),
        }
    } else {
        let lambda = if meta.table >= 1 {
            1.0
        } else {
            meta.lambda.unwrap_or(1.0)
        };
        let dest = move |s: usize, rng: &mut StdRng| pattern.draw(s, size, rng);
        match sim.resume_dynamic(lambda, dest, meta.cycles, progress, ro.to) {
            DynamicOutcome::Paused(_) => format!("paused at cycle {}", sim.cycle()),
            DynamicOutcome::Finished(res) => describe_stop(res.stop, true),
        }
    };
    let end_cycle = sim.cycle();
    let mut sinks = sim.into_recorder();
    sinks.flush();
    let stall = sinks.stall().cloned();
    Ok(ReplayOutput {
        meta,
        start_cycle,
        end_cycle,
        outcome,
        journal: sinks.journal.take().ok_or("journal sink vanished")?,
        waitgraph: sinks.waitgraph.take(),
        stall,
    })
}

fn describe_stop(stop: StopReason, drained: bool) -> String {
    match stop {
        StopReason::Aborted => "aborted (watchdog stall)".to_string(),
        StopReason::Partitioned => "aborted (destination partitioned)".to_string(),
        _ if drained => "finished (drained)".to_string(),
        _ => "finished".to_string(),
    }
}

/// The cycle number of a journal line (`<cycle> <kind> ...`); comment
/// (`#`) and malformed lines return `None`.
fn line_cycle(line: &str) -> Option<u64> {
    line.split_whitespace().next()?.parse().ok()
}

/// Restrict journal `lines` to events with `floor < cycle <= ceil`,
/// dropping `#` headers — the comparable window of a reference journal
/// against a replayed segment.
pub fn journal_window(lines: &[String], floor: u64, ceil: Option<u64>) -> Vec<String> {
    lines
        .iter()
        .filter(|l| {
            line_cycle(l).is_some_and(|c| {
                c > floor
                    && match ceil {
                        Some(hi) => c <= hi,
                        None => true,
                    }
            })
        })
        .cloned()
        .collect()
}

/// Pick the reference-journal section belonging to `meta`'s work unit.
/// A `--journal` file holds one `#`-headed section per instrumented row
/// (`# table <t> n=<n> ...` for table rows, `# <label> n=<n> ...` for
/// sweep points); a replayed snapshot diffs against exactly one of
/// them. A headerless file is taken whole.
pub fn select_section(lines: &[String], meta: &SnapshotMeta) -> Result<Vec<String>, String> {
    let mut sections: Vec<(String, Vec<String>)> = Vec::new();
    for line in lines {
        if let Some(hdr) = line.strip_prefix('#') {
            sections.push((hdr.trim().to_string(), Vec::new()));
        } else if let Some((_, body)) = sections.last_mut() {
            body.push(line.clone());
        } else {
            // No header yet: a bare journal (e.g. replay --journal-out
            // output with its header stripped, or a hand-cut excerpt).
            return Ok(lines.to_vec());
        }
    }
    if sections.len() <= 1 {
        return Ok(sections.pop().map(|(_, body)| body).unwrap_or_default());
    }
    let table_tag = format!("table {} n={} ", meta.table, meta.n);
    let label_tag = format!("{} ", meta.label);
    // Sweep rows carry a display label ("lambda=0.4 algo=fully-adaptive
    // n=8 ..." / "cap=5 algo=... n=8 ...") that differs from the
    // file-safe snapshot label; match those by coordinates instead.
    let algo_tag = format!("algo={} ", meta.algo.name());
    let n_tag = format!(" n={} ", meta.n);
    let point_tag = match meta.lambda {
        Some(l) => format!("lambda={l} "),
        None => format!("cap={} ", meta.cap),
    };
    let mut hits: Vec<usize> = (0..sections.len())
        .filter(|&i| {
            let h = &sections[i].0;
            h.starts_with(&table_tag)
                || h.starts_with(&label_tag)
                || (h.contains(&point_tag) && h.contains(&algo_tag) && h.contains(&n_tag))
        })
        .collect();
    match (hits.len(), hits.pop()) {
        (1, Some(i)) => Ok(std::mem::take(&mut sections[i].1)),
        (0, _) => Err(format!(
            "reference journal has {} sections but none match this snapshot \
             (wanted `# {}` or `# {}`)",
            sections.len(),
            table_tag.trim(),
            label_tag.trim()
        )),
        _ => Err(format!(
            "reference journal has multiple sections matching this snapshot \
             (`# {}`); cut it down to one",
            label_tag.trim()
        )),
    }
}

/// First divergent line between two journals, with both sides (`None`
/// when a journal ran out). Returns `None` when the journals agree.
pub fn first_divergence(
    a: &[String],
    b: &[String],
) -> Option<(usize, Option<String>, Option<String>)> {
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            return Some((i, Some(a[i].clone()), Some(b[i].clone())));
        }
    }
    if a.len() != b.len() {
        return Some((common, a.get(common).cloned(), b.get(common).cloned()));
    }
    None
}

/// Convenience used by tests and the binary: the meta line a table work
/// unit would write, from its [`RunOptions`].
pub fn table_meta(label: &str, table: usize, n: usize, opts: &RunOptions, seed: u64) -> String {
    meta_line(
        label,
        opts.algo,
        table,
        n,
        opts.queue_capacity,
        opts.dynamic_cycles,
        seed,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        let line = meta_line("t9_n6_q5_r0", Algo::EcubeSbp, 9, 6, 5, 500, 0xFAD2, None);
        let m = SnapshotMeta::parse(&line).unwrap();
        assert_eq!(m.label, "t9_n6_q5_r0");
        assert_eq!(m.algo, Algo::EcubeSbp);
        assert_eq!(
            (m.table, m.n, m.cap, m.cycles, m.seed),
            (9, 6, 5, 500, 0xFAD2)
        );
        assert_eq!(m.lambda, None);

        let line = meta_line(
            "lambda0.4_fully-adaptive",
            Algo::FullyAdaptive,
            0,
            8,
            5,
            300,
            7,
            Some(0.4),
        );
        let m = SnapshotMeta::parse(&line).unwrap();
        assert_eq!(m.table, 0);
        assert_eq!(m.lambda, Some(0.4));
    }

    #[test]
    fn meta_rejects_garbage() {
        assert!(SnapshotMeta::parse("").is_err());
        assert!(SnapshotMeta::parse("label onlylabel").is_err());
        assert!(SnapshotMeta::parse("label algo=warp n=4").is_err());
        assert!(
            SnapshotMeta::parse("label algo=fully-adaptive").is_err(),
            "missing n"
        );
        // Unknown keys are forward-compatible noise, not errors.
        assert!(SnapshotMeta::parse("label algo=fully-adaptive n=4 future=1").is_ok());
    }

    #[test]
    fn peek_requires_magic() {
        assert!(peek_meta("not a snapshot").is_err());
        assert!(peek_meta("fadr-snapshot/1\nnometa").is_err());
        let m = peek_meta("fadr-snapshot/1\nmeta x algo=ecube-sbp n=3\ncfg ...").unwrap();
        assert_eq!(m.algo, Algo::EcubeSbp);
    }

    #[test]
    fn divergence_localizes_first_mismatch() {
        let a: Vec<String> = ["1 a", "2 b", "3 c"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let b: Vec<String> = ["1 a", "2 x", "3 c"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(first_divergence(&a, &a), None);
        let (i, l, r) = first_divergence(&a, &b).unwrap();
        assert_eq!(
            (i, l.as_deref(), r.as_deref()),
            (1, Some("2 b"), Some("2 x"))
        );
        let short = &a[..2];
        let (i, l, r) = first_divergence(short, &a).unwrap();
        assert_eq!((i, l, r.as_deref()), (2, None, Some("3 c")));
    }

    #[test]
    fn section_selection_matches_work_unit() {
        let lines: Vec<String> = [
            "# table 9 n=10 events=2 hash=0x0 dropped=0",
            "1 a",
            "2 b",
            "# table 9 n=11 events=1 hash=0x0 dropped=0",
            "3 c",
            "# lambda=0.4 algo=ecube-sbp n=10 events=1 hash=0x0 dropped=0",
            "4 d",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let t9 = SnapshotMeta::parse("t9_n10_q5_r0 algo=fully-adaptive table=9 n=10").unwrap();
        assert_eq!(select_section(&lines, &t9).unwrap(), vec!["1 a", "2 b"]);
        let sweep =
            SnapshotMeta::parse("lambda0.4_ecube-sbp algo=ecube-sbp table=0 n=10 lambda=0.4")
                .unwrap();
        assert_eq!(select_section(&lines, &sweep).unwrap(), vec!["4 d"]);
        let miss = SnapshotMeta::parse("t1_n4_q5_r0 algo=fully-adaptive table=1 n=4").unwrap();
        assert!(select_section(&lines, &miss).is_err());
        // Headerless journals are taken whole.
        let bare: Vec<String> = vec!["1 a".into(), "2 b".into()];
        assert_eq!(select_section(&bare, &miss).unwrap(), bare);
    }

    #[test]
    fn window_filters_headers_and_range() {
        let lines: Vec<String> = ["# hdr", "3 deliver", "5 link", "9 link"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            journal_window(&lines, 3, Some(5)),
            vec!["5 link".to_string()]
        );
        assert_eq!(journal_window(&lines, 0, None).len(), 3);
    }
}
