//! Minimal wall-clock benchmarking: timed samples, summary statistics,
//! and a machine-readable JSON report (`BENCH_<stamp>.json`).
//!
//! The build environment has no registry access, so the harness ships
//! its own timing loop instead of Criterion: each measurement runs a
//! warm-up iteration, then `samples` timed iterations, and reports
//! min / median / mean seconds. The `perf` binary assembles the
//! measurements into a JSON baseline so successive PRs can track the
//! simulator's perf trajectory.

use std::fmt::Write as _;
use std::time::Instant;

use fadr_metrics::{MeanCi, Verdict};

/// One timed measurement: a label plus its per-sample wall-clock times.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload label, e.g. `table6_n10`.
    pub name: String,
    /// Wall-clock seconds of each timed sample.
    pub secs: Vec<f64>,
}

impl Measurement {
    /// Fastest sample (the usual headline number: least noise).
    pub fn min(&self) -> f64 {
        self.secs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Median sample.
    pub fn median(&self) -> f64 {
        let mut s = self.secs.clone();
        s.sort_by(f64::total_cmp);
        s[s.len() / 2]
    }

    /// Mean sample.
    pub fn mean(&self) -> f64 {
        self.secs.iter().sum::<f64>() / self.secs.len() as f64
    }
}

/// Time `f` with one warm-up iteration plus `samples` timed iterations.
///
/// The closure's return value is consumed with [`std::hint::black_box`]
/// so the optimizer cannot elide the work.
pub fn time<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(samples >= 1, "need at least one sample");
    std::hint::black_box(f());
    let secs = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    Measurement {
        name: name.to_string(),
        secs,
    }
}

/// Time `f` with `samples` timed iterations and **no** warm-up.
///
/// For the minutes-long `--large` scenarios a warm-up run doubles the
/// wall clock for nothing: one run touches far more memory than any
/// cache that a warm-up could prime.
pub fn time_cold<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(samples >= 1, "need at least one sample");
    let secs = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    Measurement {
        name: name.to_string(),
        secs,
    }
}

/// An interleaved A/B comparison with overlap-aware 95% intervals: the
/// statistically honest replacement for comparing two lone samples.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Baseline measurement.
    pub a: Measurement,
    /// Candidate measurement.
    pub b: Measurement,
    /// 95% interval of the baseline's per-sample times.
    pub a_ci: MeanCi,
    /// 95% interval of the candidate's per-sample times.
    pub b_ci: MeanCi,
    /// Overlap-aware verdict for the candidate (lower is better); any
    /// interval overlap yields [`Verdict::WithinNoise`].
    pub verdict: Verdict,
}

/// Time `fa` (baseline) against `fb` (candidate) with one warm-up each
/// and `samples` *interleaved* timed pairs (A, B, A, B, …), so slow
/// drift in the host — thermal throttling, a neighbor container waking
/// up — lands on both sides instead of biasing whichever ran second.
///
/// The verdict is overlap-aware: with fewer than two samples per side
/// no difference can ever be claimed, so `samples >= 2` is required.
pub fn compare<TA, TB>(
    name_a: &str,
    name_b: &str,
    samples: usize,
    mut fa: impl FnMut() -> TA,
    mut fb: impl FnMut() -> TB,
) -> CompareReport {
    assert!(
        samples >= 2,
        "a verdict needs at least two samples per side"
    );
    std::hint::black_box(fa());
    std::hint::black_box(fb());
    let mut a_secs = Vec::with_capacity(samples);
    let mut b_secs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(fa());
        a_secs.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(fb());
        b_secs.push(start.elapsed().as_secs_f64());
    }
    let a_ci = MeanCi::from_samples(a_secs.iter().copied());
    let b_ci = MeanCi::from_samples(b_secs.iter().copied());
    CompareReport {
        a: Measurement {
            name: name_a.to_string(),
            secs: a_secs,
        },
        b: Measurement {
            name: name_b.to_string(),
            secs: b_secs,
        },
        verdict: Verdict::of_lower_better(&b_ci, &a_ci),
        a_ci,
        b_ci,
    }
}

/// Print a comparison in a compact, stable one-line format.
pub fn compare_line(r: &CompareReport) -> String {
    format!(
        "{} [{} s] vs {} [{} s]: {}",
        r.a.name,
        r.a_ci,
        r.b.name,
        r.b_ci,
        r.verdict.label()
    )
}

/// Print a measurement in a compact, stable one-line format.
pub fn report_line(m: &Measurement) -> String {
    format!(
        "{:<28} min {:>9.4}s  median {:>9.4}s  mean {:>9.4}s  ({} samples)",
        m.name,
        m.min(),
        m.median(),
        m.mean(),
        m.secs.len()
    )
}

/// Serialize measurements plus run metadata as a JSON document.
///
/// Hand-rolled writer (no serde in the environment); labels are plain
/// ASCII identifiers so no escaping is needed beyond a debug assert.
pub fn to_json(meta: &[(&str, String)], measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n");
    for (k, v) in meta {
        debug_assert!(!k.contains('"') && !v.contains('"'), "labels are plain");
        let _ = writeln!(out, "  \"{k}\": \"{v}\",");
    }
    out.push_str("  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        debug_assert!(!m.name.contains('"'), "labels are plain");
        let secs: Vec<String> = m.secs.iter().map(|s| format!("{s:.6}")).collect();
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"min_s\": {:.6}, \"median_s\": {:.6}, \"mean_s\": {:.6}, \"samples_s\": [{}]}}",
            m.name,
            m.min(),
            m.median(),
            m.mean(),
            secs.join(", ")
        );
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_collects_samples() {
        let mut calls = 0;
        let m = time("noop", 3, || calls += 1);
        assert_eq!(m.secs.len(), 3);
        assert_eq!(calls, 4, "warm-up plus three samples");
        assert!(m.min() <= m.median() && m.median() <= m.secs.iter().copied().fold(0.0, f64::max));
        assert!(report_line(&m).starts_with("noop"));
    }

    #[test]
    fn time_cold_skips_warm_up() {
        let mut calls = 0;
        let m = time_cold("noop", 2, || calls += 1);
        assert_eq!(m.secs.len(), 2);
        assert_eq!(calls, 2, "no warm-up iteration");
    }

    #[test]
    fn compare_interleaves_and_judges_self_within_noise() {
        let mut a_calls = 0;
        let mut b_calls = 0;
        let r = compare("a", "b", 3, || a_calls += 1, || b_calls += 1);
        assert_eq!(a_calls, 4, "warm-up plus three samples");
        assert_eq!(b_calls, 4);
        assert_eq!(r.a.secs.len(), 3);
        assert_eq!(r.b.secs.len(), 3);
        // Identical no-op workloads must never earn a directional
        // verdict (the --compare self fail-closed check relies on it
        // for real workloads; here both sides are literally the same).
        assert!(compare_line(&r).contains(r.verdict.label()));
    }

    #[test]
    fn compare_flags_a_real_difference() {
        let slow = || std::thread::sleep(std::time::Duration::from_millis(25));
        let fast = || {};
        let r = compare("slow", "fast", 4, slow, fast);
        assert_eq!(r.verdict, Verdict::Faster, "{}", compare_line(&r));
        let r = compare("fast", "slow", 4, fast, slow);
        assert_eq!(r.verdict, Verdict::Slower, "{}", compare_line(&r));
    }

    #[test]
    fn json_shape_is_valid() {
        let m = Measurement {
            name: "w1".into(),
            secs: vec![0.25, 0.5],
        };
        let j = to_json(&[("stamp", "123".into())], &[m]);
        assert!(j.contains("\"stamp\": \"123\""));
        assert!(j.contains("\"name\": \"w1\""));
        assert!(j.contains("\"min_s\": 0.250000"));
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
