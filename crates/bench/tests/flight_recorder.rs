//! Flight-recorder guarantees at the harness level: the event journal
//! is bit-identical across every execution strategy, a checkpoint/resume
//! split run reproduces an uninterrupted run exactly, and a snapshot
//! replay regenerates the reference journal event for event.

use fadr_bench::obs::{metrics_json, MetricsRow, RecordConfig};
use fadr_bench::replay::{first_divergence, journal_window, replay, ReplayOptions};
use fadr_bench::runner::{run_rows, run_rows_recorded, spec, RunOptions, SnapshotPolicy};
use fadr_sim::PartitionStrategy;

fn journal_config() -> RecordConfig {
    RecordConfig {
        journal: Some(1 << 16),
        ..RecordConfig::default()
    }
}

/// Fresh per-test snapshot directory, leaked so the policy stays `Copy`
/// (mirrors what `--checkpoint-dir` does in the binaries).
fn temp_policy(tag: &str, at: Option<u64>, resume: bool) -> SnapshotPolicy {
    let dir = std::env::temp_dir().join(format!("fadr_flight_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    SnapshotPolicy {
        at,
        dir: Box::leak(dir.into_boxed_path()),
        resume,
    }
}

/// The journal — count, order-insensitive hash, and the exact line
/// sequence — must be bit-identical across `jobs` (run-level fan-out),
/// `shards` (intra-run threads), and every partition strategy. This is
/// the property that makes a journal diff meaningful: any divergence is
/// a real behavioural difference, never execution-strategy noise.
#[test]
fn journal_is_bit_identical_across_jobs_shards_and_partitions() {
    for table in [6usize, 9] {
        let base = RunOptions {
            dynamic_cycles: 60,
            ..RunOptions::default()
        };
        let fingerprint = |o: RunOptions, jobs: usize| {
            let recorded = run_rows_recorded(spec(table), &[5], o, jobs, journal_config());
            let j = recorded[0].sinks.journal.as_ref().expect("journal sink");
            (j.count(), j.hash(), j.lines())
        };
        let reference = fingerprint(base, 1);
        assert!(reference.0 > 0, "table {table} journal must see events");
        for jobs in [1usize, 4] {
            for shards in [2usize, 3] {
                for strategy in [
                    PartitionStrategy::Auto,
                    PartitionStrategy::Contiguous,
                    PartitionStrategy::HammingPrefix,
                    PartitionStrategy::Bisection,
                    PartitionStrategy::BfsGrowth,
                ] {
                    let o = RunOptions {
                        shards,
                        partition: strategy,
                        ..base
                    };
                    assert_eq!(
                        fingerprint(o, jobs),
                        reference,
                        "table {table} journal diverged at jobs={jobs} shards={shards} {strategy:?}"
                    );
                }
            }
        }
    }
}

/// A run split by `--checkpoint-at` + `--resume-from` must reproduce an
/// uninterrupted run bit for bit — measured rows and journal — on the
/// sequential engine and on sharded engines under different partition
/// strategies (the ISSUE's tentpole acceptance property, exercised
/// through the same [`RunOptions`] path the binaries use).
#[test]
fn checkpoint_resume_split_is_bit_identical_to_straight_run() {
    for (tag, shards, partition) in [
        ("seq", 1usize, PartitionStrategy::Auto),
        ("sh2", 2, PartitionStrategy::HammingPrefix),
        ("sh3", 3, PartitionStrategy::BfsGrowth),
    ] {
        for table in [6usize, 9] {
            let base = RunOptions {
                dynamic_cycles: 60,
                shards,
                partition,
                ..RunOptions::default()
            };
            let straight = run_rows_recorded(spec(table), &[5], base, 1, journal_config());

            let dir_tag = format!("split_{tag}_t{table}");
            let ckpt = RunOptions {
                snapshot: Some(temp_policy(&dir_tag, Some(5), false)),
                ..base
            };
            let checkpointed = run_rows_recorded(spec(table), &[5], ckpt, 1, journal_config());
            let snap_path = ckpt.snapshot.unwrap().path(&format!("t{table}_n5_q5_r0"));
            assert!(
                snap_path.exists(),
                "{} must exist after the checkpoint leg",
                snap_path.display()
            );

            let resume = RunOptions {
                snapshot: Some(temp_policy(&dir_tag, None, true)),
                ..base
            };
            let resumed = run_rows_recorded(spec(table), &[5], resume, 1, journal_config());

            for (name, other) in [("checkpoint", &checkpointed), ("resume", &resumed)] {
                let a = &straight[0].row;
                let b = &other[0].row;
                assert_eq!(
                    (
                        a.l_avg.to_bits(),
                        a.l_max,
                        a.injection_rate.map(f64::to_bits)
                    ),
                    (
                        b.l_avg.to_bits(),
                        b.l_max,
                        b.injection_rate.map(f64::to_bits)
                    ),
                    "table {table} {tag}: {name} leg row differs"
                );
            }
            // The in-process checkpoint leg (pause → write → continue)
            // must not perturb the journal at all.
            let js = straight[0].sinks.journal.as_ref().unwrap();
            let jc = checkpointed[0].sinks.journal.as_ref().unwrap();
            assert_eq!(
                (js.count(), js.hash(), js.lines()),
                (jc.count(), jc.hash(), jc.lines()),
                "table {table} {tag}: checkpoint leg journal differs"
            );
            // The resumed journal is floored at the checkpoint cycle:
            // its events must equal the straight journal's tail.
            let jr = resumed[0].sinks.journal.as_ref().unwrap();
            let tail = journal_window(&js.lines(), 5, None);
            assert_eq!(
                jr.lines(),
                tail,
                "table {table} {tag}: resumed journal is not the straight journal's tail"
            );
        }
    }
}

/// Restoring a snapshot through [`replay`] and re-executing to
/// completion must regenerate the reference run's journal over the
/// replayed window — and a deliberately corrupted reference must be
/// localized to its first divergent event.
#[test]
fn replay_reproduces_the_reference_journal() {
    let sp = temp_policy("replay", Some(5), false);
    let opts = RunOptions {
        snapshot: Some(sp),
        ..RunOptions::default()
    };
    let recorded = run_rows_recorded(spec(6), &[5], opts, 1, journal_config());
    let reference = recorded[0].sinks.journal.as_ref().unwrap().lines();

    let text = std::fs::read_to_string(sp.path("t6_n5_q5_r0")).unwrap();
    let out = replay(&text, &ReplayOptions::default()).expect("replay");
    assert_eq!(out.start_cycle, 5);
    assert_eq!(out.meta.table, 6);
    assert_eq!(out.meta.n, 5);

    let got = out.journal.lines();
    assert!(!got.is_empty(), "replay journal must see events");
    let want = journal_window(&reference, out.start_cycle, Some(out.end_cycle));
    assert_eq!(
        first_divergence(&got, &want),
        None,
        "replayed journal diverged from the reference"
    );

    // Corrupt one reference event: the diff must localize exactly it.
    let mut bad = want.clone();
    let victim = bad.len() / 2;
    bad[victim] = bad[victim].replace("pkt=", "pkt=9");
    let (at, left, right) = first_divergence(&got, &bad).expect("must diverge");
    assert_eq!(at, victim);
    assert_eq!(left.as_deref(), Some(want[victim].as_str()));
    assert_eq!(right.as_deref(), Some(bad[victim].as_str()));
}

/// Replaying a checkpoint of a wedged (capacity 0) run under a watchdog
/// must re-trigger the abort and classify it as a deadlock — the
/// end-to-end "wedge replay" loop the README documents.
#[test]
fn wedge_checkpoint_replays_to_a_deadlock_verdict() {
    let sp = temp_policy("wedge", Some(40), false);
    let opts = RunOptions {
        queue_capacity: 0,
        snapshot: Some(sp),
        ..RunOptions::default()
    };
    let rc = RecordConfig {
        watchdog: Some(200),
        ..RecordConfig::default()
    };
    let recorded = run_rows_recorded(spec(2), &[4], opts, 1, rc);
    assert!(
        recorded[0].sinks.stall().is_some(),
        "original run must stall"
    );

    let text = std::fs::read_to_string(sp.path("t2_n4_q0_r0")).unwrap();
    let ro = ReplayOptions {
        watchdog: Some(100),
        waitgraph: true,
        ..ReplayOptions::default()
    };
    let out = replay(&text, &ro).expect("replay");
    assert_eq!(out.start_cycle, 40);
    assert_eq!(out.outcome, "aborted (watchdog stall)");
    let stall = out.stall.expect("watchdog must fire on replay");
    assert_eq!(stall.verdict(), "deadlock");
    assert!(stall.to_dot().starts_with("digraph waits {"));
    assert!(out.waitgraph.is_some());
}

/// The `fadr-metrics/1` document must carry the latency percentiles and
/// the wait-for-graph summary when those sinks run (and plain runs keep
/// emitting `null` slots — covered by the obs unit tests).
#[test]
fn metrics_json_carries_latency_percentiles_and_waitgraph() {
    let rc = RecordConfig {
        counters: true,
        latency: true,
        waitgraph: true,
        ..RecordConfig::default()
    };
    let recorded = run_rows_recorded(spec(6), &[5], RunOptions::default(), 1, rc);
    let lat = recorded[0].sinks.latency.as_ref().expect("latency sink");
    let json = lat.to_json();
    assert!(json.contains("\"p50\":") && json.contains("\"p95\":") && json.contains("\"p99\":"));

    let rows: Vec<MetricsRow> = recorded
        .iter()
        .map(|r| MetricsRow::from_recorded(6, r))
        .collect();
    let doc = metrics_json("FullyAdaptive", &rows);
    for key in [
        "\"latency\": {\"classes\": [",
        "\"p95\":",
        "\"max\":",
        "\"waitgraph\": {",
        "\"max_chain_depth\":",
        "\"cycle_candidate_cycles\":",
    ] {
        assert!(doc.contains(key), "missing {key} in {doc}");
    }
}

/// Runs that drain before the checkpoint cycle write no snapshot, and
/// the resume leg transparently reruns them from cycle 0 — the
/// mixed-horizon case a multi-table resume hits in practice.
#[test]
fn resume_reruns_rows_that_finished_before_the_checkpoint() {
    let base = RunOptions::default();
    let straight = run_rows(spec(1), &[5], base, 1);
    let ckpt = RunOptions {
        // Table 1 (one packet per node) drains n=5 long before cycle
        // 10_000, so the pause never fires and no snapshot appears.
        snapshot: Some(temp_policy("norun", Some(10_000), false)),
        ..base
    };
    let checkpointed = run_rows(spec(1), &[5], ckpt, 1);
    assert!(!ckpt.snapshot.unwrap().path("t1_n5_q5_r0").exists());
    let resume = RunOptions {
        snapshot: Some(temp_policy("norun", None, true)),
        ..base
    };
    let resumed = run_rows(spec(1), &[5], resume, 1);
    for other in [&checkpointed, &resumed] {
        assert_eq!(straight[0].l_avg.to_bits(), other[0].l_avg.to_bits());
        assert_eq!(straight[0].l_max, other[0].l_max);
    }
}
