//! The `replay` binary's exit-code contract: 0 clean, 1 when a journal
//! divergence is found, 2 on usage or I/O errors — the workspace-wide
//! convention shared with `certify` and `lint`.

use std::process::Command;

fn replay(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_replay"))
        .args(args)
        .output()
        .expect("spawn replay");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &[][..], // --snapshot is required
        &["--bogus"],
        &["--snapshot"],
        &["--snapshot", "x.snap", "--to", "notanumber"],
        &["--snapshot", "x.snap", "--watchdog", "0"],
    ] {
        let (code, _, stderr) = replay(args);
        assert_eq!(code, Some(2), "args {args:?}: {stderr}");
    }
}

#[test]
fn io_errors_exit_two() {
    let (code, _, stderr) = replay(&["--snapshot", "/nonexistent/ckpt.snap"]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = replay(&["--snapshot", "/nonexistent/ckpt.snap", "--diff", "j.txt"]);
    assert_eq!(code, Some(2), "{stderr}");
}

#[test]
fn malformed_snapshot_exits_two() {
    let dir = std::env::temp_dir().join("fadr-replay-exit-codes");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("garbage.snap");
    std::fs::write(&path, "not a fadr-snapshot/1 document").expect("write");
    let (code, _, stderr) = replay(&["--snapshot", path.to_str().expect("utf-8 path")]);
    assert_eq!(code, Some(2), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn help_exits_zero() {
    let (code, stdout, _) = replay(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage: replay"), "{stdout}");
}
