//! Recording must be an observer, not a participant: measured rows are
//! bit-identical with sinks attached, merged sinks are deterministic
//! across `--jobs`, and the exported JSON is well-formed.

use fadr_bench::obs::{metrics_json, trace_jsonl, MetricsRow, RecordConfig};
use fadr_bench::runner::{run_rows, run_rows_recorded, spec, RunOptions};

fn opts() -> RunOptions {
    RunOptions {
        reps: 2,
        dynamic_cycles: 60,
        ..RunOptions::default()
    }
}

fn full_config() -> RecordConfig {
    RecordConfig {
        counters: true,
        trace: Some(16),
        watchdog: Some(100_000),
        ..RecordConfig::default()
    }
}

/// Attaching every sink must not change a single measured bit, static
/// or dynamic (the recorder observes the simulation, it never steers
/// arbitration or RNG streams).
#[test]
fn recorded_rows_are_bit_identical_to_plain_rows() {
    for table in [2usize, 9] {
        let dims = [5usize, 6];
        let plain = run_rows(spec(table), &dims, opts(), 1);
        let recorded = run_rows_recorded(spec(table), &dims, opts(), 1, full_config());
        assert_eq!(plain.len(), recorded.len());
        for (p, r) in plain.iter().zip(&recorded) {
            assert_eq!(p.n, r.row.n);
            assert_eq!(p.l_avg.to_bits(), r.row.l_avg.to_bits(), "table {table}");
            assert_eq!(p.l_max, r.row.l_max);
            assert_eq!(
                p.injection_rate.map(f64::to_bits),
                r.row.injection_rate.map(f64::to_bits)
            );
        }
    }
}

/// Merged sinks reduce in fixed replication order, so the whole metrics
/// document — counters, occupancy, traces — is identical for any
/// worker count, extending PR 1's bit-identity guarantee to recording.
#[test]
fn recorded_sinks_are_identical_across_jobs() {
    let dims = [5usize, 6];
    let doc = |jobs: usize| {
        let recorded = run_rows_recorded(spec(6), &dims, opts(), jobs, full_config());
        let rows: Vec<MetricsRow> = recorded
            .iter()
            .map(|r| MetricsRow::from_recorded(6, r))
            .collect();
        (metrics_json("FullyAdaptive", &rows), trace_jsonl(&rows))
    };
    let (metrics1, trace1) = doc(1);
    for jobs in [2usize, 4] {
        let (metrics_j, trace_j) = doc(jobs);
        assert_eq!(metrics1, metrics_j, "metrics differ at jobs={jobs}");
        assert_eq!(trace1, trace_j, "traces differ at jobs={jobs}");
    }
}

/// The exported document parses as JSON and contains the advertised
/// schema fields (validated by a small structural parser — the repo has
/// no JSON dependency).
#[test]
fn metrics_document_is_well_formed_json() {
    let recorded = run_rows_recorded(spec(2), &[5], opts(), 1, full_config());
    let rows: Vec<MetricsRow> = recorded
        .iter()
        .map(|r| MetricsRow::from_recorded(2, r))
        .collect();
    let doc = metrics_json("FullyAdaptive", &rows);
    assert_json(&doc);
    for key in [
        "\"schema\": \"fadr-metrics/1\"",
        "\"algo\":",
        "\"rows\":",
        "\"counters\":",
        "\"dynamic_share\":",
        "\"stall\":",
    ] {
        assert!(doc.contains(key), "missing {key} in {doc}");
    }
    for line in trace_jsonl(&rows).lines() {
        assert_json(line);
    }
}

/// Minimal JSON validator: consumes one value, requires the whole input
/// to be exactly that value. Panics with context on malformed input.
fn assert_json(s: &str) {
    let b = s.as_bytes();
    let end = parse_value(b, skip_ws(b, 0));
    assert_eq!(skip_ws(b, end), b.len(), "trailing garbage in {s}");
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && (b[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn parse_value(b: &[u8], i: usize) -> usize {
    match b.get(i) {
        Some(b'{') => parse_seq(b, i, b'}', true),
        Some(b'[') => parse_seq(b, i, b']', false),
        Some(b'"') => parse_string(b, i),
        Some(b't') => expect(b, i, b"true"),
        Some(b'f') => expect(b, i, b"false"),
        Some(b'n') => expect(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        other => panic!("unexpected {other:?} at byte {i}"),
    }
}

fn parse_seq(b: &[u8], open: usize, close: u8, keyed: bool) -> usize {
    let mut i = skip_ws(b, open + 1);
    if b.get(i) == Some(&close) {
        return i + 1;
    }
    loop {
        if keyed {
            i = skip_ws(b, parse_string(b, i));
            assert_eq!(b.get(i), Some(&b':'), "expected ':' at byte {i}");
            i = skip_ws(b, i + 1);
        }
        i = skip_ws(b, parse_value(b, i));
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(c) if *c == close => return i + 1,
            other => panic!("expected ',' or close at byte {i}, got {other:?}"),
        }
    }
}

fn parse_string(b: &[u8], i: usize) -> usize {
    assert_eq!(b.get(i), Some(&b'"'), "expected string at byte {i}");
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'"' => return j + 1,
            b'\\' => j += 2,
            _ => j += 1,
        }
    }
    panic!("unterminated string starting at byte {i}");
}

fn parse_number(b: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && matches!(b[j], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        j += 1;
    }
    assert!(j > i, "empty number at byte {i}");
    j
}

fn expect(b: &[u8], i: usize, word: &[u8]) -> usize {
    assert!(
        b[i..].starts_with(word),
        "expected {} at byte {i}",
        String::from_utf8_lossy(word)
    );
    i + word.len()
}

/// A watchdogged recorded run of a wedged configuration reports the
/// stall through the whole pipeline (runner merge → JSON export)
/// instead of panicking on the drain assert.
#[test]
fn wedged_run_reports_stall_through_export() {
    let o = RunOptions {
        queue_capacity: 0,
        ..RunOptions::default()
    };
    let rc = RecordConfig {
        counters: true,
        trace: None,
        watchdog: Some(200),
        ..RecordConfig::default()
    };
    let recorded = run_rows_recorded(spec(2), &[4], o, 1, rc);
    let rows: Vec<MetricsRow> = recorded
        .iter()
        .map(|r| MetricsRow::from_recorded(2, r))
        .collect();
    assert!(rows[0].sinks.stall().is_some(), "watchdog must fire");
    let doc = metrics_json("FullyAdaptive", &rows);
    assert_json(&doc);
    assert!(doc.contains("\"links_in_window\": 0"), "{doc}");
    assert!(!doc.contains("\"stall\": null"), "{doc}");
}
