//! Regression: the lane-batched row runner is bit-identical to the
//! sequential replication loop. `run_row_lanes` runs the `reps`
//! replications of a row as lanes of one `LaneSim` — same per-rep seeds,
//! same reduction — so every statistic must reproduce `run_row` exactly,
//! compared via `f64::to_bits` (no epsilon). This is the contract that
//! lets `tables --lanes R` stand in for `tables --reps R` wholesale.

use fadr_bench::runner::{
    dynamic_random_lanes, run_row, run_row_lanes, run_rows, run_rows_lanes, spec, RunOptions,
};
use fadr_core::HypercubeFullyAdaptive;
use fadr_sim::SimConfig;

/// Reduced scale so the whole matrix stays fast: small cubes, three
/// replications (so the rep-seed derivation is actually exercised),
/// short dynamic horizon.
fn opts() -> RunOptions {
    RunOptions {
        reps: 3,
        dynamic_cycles: 60,
        ..RunOptions::default()
    }
}

/// One table per workload family: static random (2), static complement
/// (6), dynamic random (9), dynamic leveled (4) — the leveled family is
/// the one that needs the per-lane destination closure, because each
/// replication compiles its own pattern from its own seed.
const TABLES: [usize; 4] = [2, 6, 9, 4];
const DIMS: [usize; 2] = [5, 6];

#[test]
fn run_row_lanes_bitwise_identical_to_run_row() {
    for t in TABLES {
        let s = spec(t);
        for &n in &DIMS {
            let seq = run_row(s, n, opts());
            let lane = run_row_lanes(s, n, opts());
            assert_eq!(lane.n, seq.n, "table {t} n={n}");
            assert_eq!(lane.l_max, seq.l_max, "table {t} n={n}");
            assert_eq!(lane.aborted, seq.aborted, "table {t} n={n}");
            assert_eq!(
                lane.l_avg.to_bits(),
                seq.l_avg.to_bits(),
                "table {t} n={n}: {} != {}",
                lane.l_avg,
                seq.l_avg
            );
            assert_eq!(
                lane.injection_rate.map(f64::to_bits),
                seq.injection_rate.map(f64::to_bits),
                "table {t} n={n}"
            );
        }
    }
}

/// The lane fan-out over dimensions agrees with the sequential fan-out
/// for any job count (the reduction is the same single-threaded path).
#[test]
fn run_rows_lanes_matches_run_rows_across_jobs() {
    let s = spec(9);
    let base = run_rows(s, &DIMS, opts(), 1);
    for jobs in [1usize, 4] {
        let lanes = run_rows_lanes(s, &DIMS, opts(), jobs);
        assert_eq!(lanes.len(), base.len());
        for (a, b) in base.iter().zip(&lanes) {
            assert_eq!(a.l_avg.to_bits(), b.l_avg.to_bits(), "jobs={jobs}");
            assert_eq!(a.l_max, b.l_max, "jobs={jobs}");
        }
    }
}

/// A non-default seed and rep count still reproduce: the per-rep seeds
/// are derived from `(seed, table, rep, n)` on both paths.
#[test]
fn custom_seed_and_reps_reproduce() {
    let custom = RunOptions {
        reps: 5,
        seed: 0xD00D,
        dynamic_cycles: 40,
        ..RunOptions::default()
    };
    for t in [6usize, 9] {
        let seq = run_row(spec(t), 5, custom);
        let lane = run_row_lanes(spec(t), 5, custom);
        assert_eq!(lane.l_avg.to_bits(), seq.l_avg.to_bits(), "table {t}");
        assert_eq!(lane.l_max, seq.l_max, "table {t}");
    }
}

/// The λ-sweep aggregation: one `LanePoint` folds every lane, its
/// intervals carry the lane count, and the delivered total is the sum
/// over lanes (each lane delivers something at λ = 1 on a small cube).
#[test]
fn dynamic_random_lanes_aggregates_all_lanes() {
    let p = dynamic_random_lanes(
        HypercubeFullyAdaptive::new(5),
        SimConfig::default(),
        1.0,
        60,
        4,
    );
    assert_eq!(p.throughput.n, 4, "one throughput sample per lane");
    assert_eq!(p.l_avg.n, 4);
    assert_eq!(p.injection_rate.n, 4);
    assert!(p.delivered > 0);
    assert!(p.throughput.mean > 0.0 && p.throughput.mean <= 1.0);
    assert!(
        p.throughput.half_width.is_finite(),
        "a multi-lane point always has a finite interval"
    );
    // More lanes can only tighten the interval on the same workload
    // distribution in expectation; at minimum the math must not blow up
    // at the smallest admissible count.
    let p2 = dynamic_random_lanes(
        HypercubeFullyAdaptive::new(5),
        SimConfig::default(),
        1.0,
        60,
        2,
    );
    assert_eq!(p2.throughput.n, 2);
}
