//! `--shards N` must be invisible in the output: every row of every
//! paper table, and the recorded sinks, are bit-identical between the
//! sequential engine and the sharded engine.

use fadr_bench::obs::RecordConfig;
use fadr_bench::runner::{run_rows, run_rows_recorded, spec, RunOptions, TableSpec};

fn opts(shards: usize) -> RunOptions {
    RunOptions {
        dynamic_cycles: 60,
        shards,
        ..RunOptions::default()
    }
}

fn assert_rows_identical(t: usize, s: TableSpec, dims: &[usize], shards: usize) {
    let seq = run_rows(s, dims, opts(1), 1);
    let shr = run_rows(s, dims, opts(shards), 1);
    for (a, b) in seq.iter().zip(&shr) {
        assert_eq!(
            a.l_avg.to_bits(),
            b.l_avg.to_bits(),
            "table {t} n={} shards={shards}: L_avg {} != {}",
            a.n,
            a.l_avg,
            b.l_avg
        );
        assert_eq!(a.l_max, b.l_max, "table {t} n={} shards={shards}", a.n);
        assert_eq!(
            a.injection_rate.map(f64::to_bits),
            b.injection_rate.map(f64::to_bits),
            "table {t} n={} shards={shards}",
            a.n
        );
        assert_eq!(a.aborted, b.aborted, "table {t} n={} shards={shards}", a.n);
    }
}

/// All twelve paper tables at a reduced dimension, sequential vs two
/// shards: bit-identical rows.
#[test]
fn all_tables_rows_identical_at_two_shards() {
    for t in 1..=12 {
        assert_rows_identical(t, spec(t), &[7], 2);
    }
}

/// A deeper check on one static and one dynamic table with awkward
/// shard counts (3 and 7 don't divide 2^n).
#[test]
fn uneven_shard_counts_identical() {
    for shards in [3, 7] {
        assert_rows_identical(6, spec(6), &[7], shards);
        assert_rows_identical(9, spec(9), &[7], shards);
    }
}

/// The recorded path (counters + trace) is bit-identical too: the
/// per-shard sinks merged in shard order equal the sequential run's
/// single sink, and recording does not perturb the measured rows.
#[test]
fn recorded_rows_and_sinks_identical_at_two_shards() {
    let rc = RecordConfig {
        counters: true,
        trace: Some(32),
        watchdog: None,
        ..RecordConfig::default()
    };
    for t in [6usize, 9] {
        let seq = run_rows_recorded(spec(t), &[7], opts(1), 1, rc);
        let shr = run_rows_recorded(spec(t), &[7], opts(2), 1, rc);
        for (a, b) in seq.iter().zip(&shr) {
            assert_eq!(a.row.l_avg.to_bits(), b.row.l_avg.to_bits(), "table {t}");
            assert_eq!(a.row.l_max, b.row.l_max, "table {t}");
            assert_eq!(a.sinks.counters, b.sinks.counters, "table {t}: counters");
            assert_eq!(
                a.sinks.trace.as_ref().map(|tr| tr.lines().to_vec()),
                b.sinks.trace.as_ref().map(|tr| tr.lines().to_vec()),
                "table {t}: trace"
            );
        }
    }
}

/// `--shards` composes with `--jobs`: the row × replication fan-out
/// over worker threads, each running a sharded simulation, still
/// produces bit-identical rows.
#[test]
fn shards_compose_with_jobs() {
    let s = spec(6);
    let seq = run_rows(s, &[6, 7], opts(1), 1);
    let both = run_rows(s, &[6, 7], RunOptions { reps: 2, ..opts(2) }, 2);
    // reps=2 changes the reduction (mean over reps), so compare against
    // the same reps sequentially instead of against the 1-rep rows.
    let seq2 = run_rows(s, &[6, 7], RunOptions { reps: 2, ..opts(1) }, 1);
    for (a, b) in seq2.iter().zip(&both) {
        assert_eq!(a.l_avg.to_bits(), b.l_avg.to_bits());
        assert_eq!(a.l_max, b.l_max);
    }
    // And the 1-rep row is still what it was (guard against accidental
    // seed coupling between reps and shards).
    assert_eq!(seq[0].l_max, run_rows(s, &[6, 7], opts(2), 2)[0].l_max);
}
