//! Regression: the parallel harness is bit-identical to sequential
//! execution. Every work unit derives its RNG streams purely from
//! `(seed, table, rep, n)`, and the per-row reduction runs in fixed rep
//! order on one thread, so `--jobs N` must reproduce `--jobs 1` exactly
//! — including the floating-point latency means, compared here via
//! `f64::to_bits` (no epsilon).

use fadr_bench::runner::{dims_for, run_row, run_rows, run_table_dims, spec, RunOptions};

/// Reduced scale so all 12 tables stay fast: small cubes, two
/// replications, short dynamic horizon.
fn opts() -> RunOptions {
    RunOptions {
        reps: 2,
        dynamic_cycles: 60,
        ..RunOptions::default()
    }
}

const DIMS: [usize; 2] = [5, 6];

/// Every cell of every table renders identically under 1 and 4 jobs.
#[test]
fn run_table_cells_identical_across_jobs() {
    for t in 1..=12usize {
        let seq = run_table_dims(t, &DIMS, opts(), 1);
        let par = run_table_dims(t, &DIMS, opts(), 4);
        assert_eq!(seq.title(), par.title(), "table {t}");
        assert_eq!(seq.num_rows(), par.num_rows(), "table {t}");
        assert_eq!(seq.to_text(), par.to_text(), "table {t} text differs");
        assert_eq!(seq.to_csv(), par.to_csv(), "table {t} csv differs");
    }
}

/// The parallel fan-out agrees with the plain sequential `run_row` loop
/// bit-for-bit, not just after rendering/rounding.
#[test]
fn run_rows_bitwise_identical_to_run_row() {
    for t in [1usize, 6, 9, 12] {
        let s = spec(t);
        let par = run_rows(s, &DIMS, opts(), 4);
        assert_eq!(par.len(), DIMS.len());
        for (row, &n) in par.iter().zip(&DIMS) {
            let seq = run_row(s, n, opts());
            assert_eq!(row.n, seq.n);
            assert_eq!(row.l_max, seq.l_max, "table {t} n={n}");
            assert_eq!(
                row.l_avg.to_bits(),
                seq.l_avg.to_bits(),
                "table {t} n={n}: {} != {}",
                row.l_avg,
                seq.l_avg
            );
            assert_eq!(
                row.injection_rate.map(f64::to_bits),
                seq.injection_rate.map(f64::to_bits),
                "table {t} n={n}"
            );
        }
    }
}

/// Oversubscription (more jobs than work units) and jobs = 1 both hit
/// the same path outputs.
#[test]
fn job_count_never_changes_output() {
    let s = spec(6);
    let base = run_rows(s, &DIMS, opts(), 1);
    for jobs in [2, 3, 64] {
        let got = run_rows(s, &DIMS, opts(), jobs);
        for (a, b) in base.iter().zip(&got) {
            assert_eq!(a.l_avg.to_bits(), b.l_avg.to_bits(), "jobs={jobs}");
            assert_eq!(a.l_max, b.l_max, "jobs={jobs}");
        }
    }
}

/// The default-dims entry point agrees with the explicit-dims one.
#[test]
fn dims_override_matches_defaults() {
    let s = spec(2);
    let dims = dims_for(s, false);
    assert_eq!(dims, vec![10, 11, 12]);
}
