//! Timing benches of the wormhole (flit-level) mode: adaptive vs
//! escape-only, and message-length scaling.

#![forbid(unsafe_code)]

use fadr_bench::perf::{report_line, time};
use fadr_core::HypercubeFullyAdaptive;
use fadr_workloads::{static_backlog, Pattern};
use fadr_wormhole::{WormConfig, WormholeSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 7;
const SAMPLES: usize = 10;

fn run(cfg: WormConfig) -> f64 {
    let size = 1usize << N;
    let mut rng = StdRng::seed_from_u64(0xbee);
    let backlog = static_backlog(&Pattern::Random, size, 2, &mut rng);
    let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(N), cfg);
    let res = sim.run_static(&backlog);
    assert!(res.drained);
    res.stats.mean()
}

fn main() {
    for (name, dynamic) in [("adaptive", true), ("escape_only", false)] {
        let cfg = WormConfig {
            message_length: 8,
            use_dynamic_vcs: dynamic,
            ..WormConfig::default()
        };
        println!("# wormhole {name}: L_avg = {:.2}", run(cfg));
        let m = time(&format!("wormhole/{name}"), SAMPLES, || run(cfg));
        println!("{}", report_line(&m));
    }
    for len in [2usize, 16] {
        let cfg = WormConfig {
            message_length: len,
            ..WormConfig::default()
        };
        let m = time(&format!("wormhole/len{len:02}"), SAMPLES, || run(cfg));
        println!("{}", report_line(&m));
    }
}
