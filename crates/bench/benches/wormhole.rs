//! Criterion benches of the wormhole (flit-level) mode: adaptive vs
//! escape-only, and message-length scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fadr_core::HypercubeFullyAdaptive;
use fadr_wormhole::{WormConfig, WormholeSim};
use fadr_workloads::{static_backlog, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 7;

fn run(cfg: WormConfig) -> f64 {
    let size = 1usize << N;
    let mut rng = StdRng::seed_from_u64(0xbee);
    let backlog = static_backlog(&Pattern::Random, size, 2, &mut rng);
    let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(N), cfg);
    let res = sim.run_static(&backlog);
    assert!(res.drained);
    res.stats.mean()
}

fn bench_wormhole(c: &mut Criterion) {
    let mut g = c.benchmark_group("wormhole");
    g.sample_size(10);
    for (name, dynamic) in [("adaptive", true), ("escape_only", false)] {
        let cfg = WormConfig {
            message_length: 8,
            use_dynamic_vcs: dynamic,
            ..WormConfig::default()
        };
        eprintln!("# wormhole {name}: L_avg = {:.2}", run(cfg));
        g.bench_function(name, |b| b.iter(|| black_box(run(cfg))));
    }
    for len in [2usize, 16] {
        let cfg = WormConfig { message_length: len, ..WormConfig::default() };
        g.bench_function(format!("len{len:02}"), |b| b.iter(|| black_box(run(cfg))));
    }
    g.finish();
}

criterion_group!(benches, bench_wormhole);
criterion_main!(benches);
