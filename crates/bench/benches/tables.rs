//! One timing bench per paper table (1–12), at reduced scale (n = 8,
//! short dynamic horizon) so a full `cargo bench` stays tractable; the
//! `tables` binary regenerates the paper-scale numbers.

#![forbid(unsafe_code)]

use fadr_bench::perf::{report_line, time};
use fadr_bench::runner::{run_row, spec, RunOptions};

const BENCH_DIMS: usize = 8;
const SAMPLES: usize = 10;

fn opts() -> RunOptions {
    RunOptions {
        dynamic_cycles: 100,
        ..RunOptions::default()
    }
}

fn main() {
    println!("paper_tables (dims = {BENCH_DIMS}, {SAMPLES} samples)");
    for t in 1..=12usize {
        let name = match t {
            1..=4 => format!("table{t:02}_static1"),
            5..=8 => format!("table{t:02}_staticN"),
            _ => format!("table{t:02}_dynamic"),
        };
        let m = time(&name, SAMPLES, || run_row(spec(t), BENCH_DIMS, opts()));
        println!("{}", report_line(&m));
    }
}
