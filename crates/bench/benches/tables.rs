//! One Criterion bench per paper table (1–12), at reduced scale (n = 8,
//! short dynamic horizon) so a full `cargo bench` stays tractable; the
//! `tables` binary regenerates the paper-scale numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fadr_bench::runner::{run_row, spec, RunOptions};

const BENCH_DIMS: usize = 8;

fn opts() -> RunOptions {
    RunOptions {
        dynamic_cycles: 100,
        ..RunOptions::default()
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);
    for t in 1..=12usize {
        let name = match t {
            1..=4 => format!("table{t:02}_static1"),
            5..=8 => format!("table{t:02}_staticN"),
            _ => format!("table{t:02}_dynamic"),
        };
        group.bench_function(&name, |b| {
            b.iter(|| black_box(run_row(spec(t), BENCH_DIMS, opts())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
