//! Ablation benches for the design choices called out in DESIGN.md § 7:
//! dynamic links on/off, central-queue capacity, output-buffer fill
//! order, shuffle-exchange dynamic links, and the baseline comparison
//! (fully-adaptive vs e-cube + structured buffer pool).
//!
//! Each bench body runs a complete simulation; the harness reports the
//! wall-clock cost, and each group prints the measured mean latency once
//! at setup so ablation *quality* (latency) is visible alongside speed.

#![forbid(unsafe_code)]

use fadr_bench::perf::{report_line, time};
use fadr_core::{EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang, ShuffleExchangeRouting};
use fadr_qdg::RoutingFunction;
use fadr_sim::{FillOrder, SimConfig, Simulator};
use fadr_topology::NodeId;
use fadr_workloads::{static_backlog, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 8;
const SAMPLES: usize = 10;

fn backlog(pattern: &Pattern, packets: usize) -> Vec<Vec<NodeId>> {
    let mut rng = StdRng::seed_from_u64(0xab1a);
    static_backlog(pattern, 1 << N, packets, &mut rng)
}

fn run<R: RoutingFunction>(rf: R, cfg: SimConfig, backlog: &[Vec<NodeId>]) -> (f64, u64) {
    let mut sim = Simulator::new(rf, cfg);
    let res = sim.run_static(backlog);
    assert!(res.drained);
    (res.stats.mean(), res.stats.max())
}

/// The paper's central claim: dynamic links relieve the congestion near
/// `1…1` of the static hang.
fn ablation_dynamic_links() {
    let b = backlog(&Pattern::complement(N), N);
    let cfg = SimConfig::default();
    let (avg_a, _) = run(HypercubeFullyAdaptive::new(N), cfg, &b);
    let (avg_s, _) = run(HypercubeStaticHang::new(N), cfg, &b);
    println!("# dynamic-links ablation (complement, n packets): adaptive L_avg={avg_a:.2}, static-hang L_avg={avg_s:.2}");
    let m = time("dynamic_links/fully_adaptive", SAMPLES, || {
        run(HypercubeFullyAdaptive::new(N), cfg, &b)
    });
    println!("{}", report_line(&m));
    let m = time("dynamic_links/static_hang", SAMPLES, || {
        run(HypercubeStaticHang::new(N), cfg, &b)
    });
    println!("{}", report_line(&m));
}

/// Central-queue capacity (the paper fixes 5; capacity ≥ n recovers the
/// perfectly pipelined Complement schedule — see EXPERIMENTS.md).
fn ablation_queue_size() {
    let b = backlog(&Pattern::complement(N), N);
    for cap in [2usize, 5, 8, 16] {
        let cfg = SimConfig {
            queue_capacity: cap,
            ..SimConfig::default()
        };
        let (avg, max) = run(HypercubeFullyAdaptive::new(N), cfg, &b);
        println!("# queue-size ablation cap={cap}: L_avg={avg:.2} L_max={max}");
        let m = time(&format!("queue_size/cap{cap:02}"), SAMPLES, || {
            run(HypercubeFullyAdaptive::new(N), cfg, &b)
        });
        println!("{}", report_line(&m));
    }
}

/// Output-buffer fill order (the paper specifies low-to-high dimensions).
fn ablation_fill_order() {
    let b = backlog(&Pattern::Random, N);
    for (name, order) in [
        ("low_to_high", FillOrder::LowToHigh),
        ("high_to_low", FillOrder::HighToLow),
        ("rotating", FillOrder::Rotating),
    ] {
        let cfg = SimConfig {
            fill_order: order,
            ..SimConfig::default()
        };
        let (avg, max) = run(HypercubeFullyAdaptive::new(N), cfg, &b);
        println!("# fill-order ablation {name}: L_avg={avg:.2} L_max={max}");
        let m = time(&format!("fill_order/{name}"), SAMPLES, || {
            run(HypercubeFullyAdaptive::new(N), cfg, &b)
        });
        println!("{}", report_line(&m));
    }
}

/// Shuffle-exchange with and without the phase-1 dynamic exchanges.
fn ablation_se_dynamic_links() {
    let n = 5;
    let mut rng = StdRng::seed_from_u64(0x5e);
    let b = static_backlog(&Pattern::Random, 1 << n, n, &mut rng);
    let cfg = SimConfig::default();
    let (avg_a, _) = run(ShuffleExchangeRouting::new(n), cfg, &b);
    let (avg_s, _) = run(ShuffleExchangeRouting::without_dynamic_links(n), cfg, &b);
    println!("# SE dynamic-links ablation (random, n packets): adaptive L_avg={avg_a:.2}, static L_avg={avg_s:.2}");
    let m = time("se_dynamic_links/adaptive", SAMPLES, || {
        run(ShuffleExchangeRouting::new(n), cfg, &b)
    });
    println!("{}", report_line(&m));
    let m = time("se_dynamic_links/static", SAMPLES, || {
        run(ShuffleExchangeRouting::without_dynamic_links(n), cfg, &b)
    });
    println!("{}", report_line(&m));
}

/// Baseline comparison: 2-queue fully-adaptive vs the (n+1)-queue
/// oblivious e-cube + structured buffer pool of \[Gun81, MS80\].
fn ablation_vs_ecube_sbp() {
    let b = backlog(&Pattern::transpose(N), N);
    let cfg = SimConfig::default();
    let (avg_a, _) = run(HypercubeFullyAdaptive::new(N), cfg, &b);
    let (avg_e, _) = run(EcubeSbp::new(N), cfg, &b);
    println!("# baseline ablation (transpose, n packets): adaptive L_avg={avg_a:.2}, ecube+SBP L_avg={avg_e:.2}");
    let m = time("vs_ecube_sbp/fully_adaptive", SAMPLES, || {
        run(HypercubeFullyAdaptive::new(N), cfg, &b)
    });
    println!("{}", report_line(&m));
    let m = time("vs_ecube_sbp/ecube_sbp", SAMPLES, || {
        run(EcubeSbp::new(N), cfg, &b)
    });
    println!("{}", report_line(&m));
}

fn main() {
    ablation_dynamic_links();
    ablation_queue_size();
    ablation_fill_order();
    ablation_se_dynamic_links();
    ablation_vs_ecube_sbp();
}
