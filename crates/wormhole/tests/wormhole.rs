//! Behavioural tests of the wormhole engine over the paper's routing
//! functions.

use fadr_core::{
    HypercubeFullyAdaptive, HypercubeStaticHang, MeshFullyAdaptive, ShuffleExchangeRouting,
    TorusTwoPhase,
};
use fadr_topology::{hamming_distance, Topology};
use fadr_workloads::{static_backlog, Pattern};
use fadr_wormhole::{WormConfig, WormholeSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(len: usize) -> WormConfig {
    WormConfig {
        message_length: len,
        ..WormConfig::default()
    }
}

/// A lone worm pipelines: latency = hops + message length (header takes
/// one cycle per hop, the tail follows `len - 1` cycles behind).
#[test]
fn lone_worm_latency_is_hops_plus_length() {
    let n = 5;
    for len in [1usize, 4, 8] {
        for (src, dst) in [(0usize, 0b11111usize), (3, 17), (9, 9 ^ 0b101)] {
            let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(n), cfg(len));
            let mut backlog = vec![Vec::new(); 1 << n];
            backlog[src].push(dst);
            let res = sim.run_static(&backlog);
            assert!(res.drained);
            let hops = hamming_distance(src, dst) as u64;
            assert_eq!(
                res.stats.max(),
                hops + len as u64,
                "{src}->{dst}, len {len}"
            );
        }
    }
}

/// Self-addressed worms drain locally in `len` cycles.
#[test]
fn self_worm_drains_locally() {
    let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(4), cfg(6));
    let mut backlog = vec![Vec::new(); 16];
    backlog[7].push(7);
    let res = sim.run_static(&backlog);
    assert!(res.drained);
    assert_eq!(res.stats.max(), 6);
}

/// Complement traffic (all 2^n worms at once) drains without deadlock,
/// with both the fully-adaptive scheme and the static hang.
#[test]
fn complement_wormhole_drains() {
    let n = 6;
    let size = 1usize << n;
    let mut rng = StdRng::seed_from_u64(1);
    let backlog = static_backlog(&Pattern::complement(n), size, 2, &mut rng);
    let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(n), cfg(6));
    let res = sim.run_static(&backlog);
    assert!(res.drained, "adaptive stalled at {}", res.cycles);
    assert_eq!(res.delivered, 2 * size as u64);

    let mut sim = WormholeSim::new(HypercubeStaticHang::new(n), cfg(6));
    let res = sim.run_static(&backlog);
    assert!(res.drained, "static hang stalled at {}", res.cycles);
}

/// Shuffle-exchange worms drain: the degenerate necklaces (`0…0`, `1…1`)
/// shuffle via *stutter* transitions — an in-place reclass that acquires
/// no VC. A header whose next mandatory hop is a stutter must take it
/// rather than wait for a link VC forever (found by fadr-fuzz: worms
/// touching node 0 or `n-1` wedged under every VC discipline).
#[test]
fn shuffle_exchange_wormhole_drains() {
    for dims in [2usize, 3] {
        let size = 1usize << dims;
        let mut rng = StdRng::seed_from_u64(9);
        let backlog = static_backlog(&Pattern::Random, size, 2, &mut rng);
        for dynamic_vcs in [false, true] {
            let wc = WormConfig {
                use_dynamic_vcs: dynamic_vcs,
                ..cfg(4)
            };
            let mut sim = WormholeSim::new(ShuffleExchangeRouting::new(dims), wc);
            let res = sim.run_static(&backlog);
            assert!(
                res.drained,
                "SE({dims}) dynamic_vcs={dynamic_vcs} stalled at {}",
                res.cycles
            );
            assert_eq!(res.delivered, res.total);
        }
    }
}

/// Random traffic with long worms and minimal flit buffers (depth 1) —
/// the harshest wormhole setting — still drains.
#[test]
fn random_wormhole_with_depth1_buffers_drains() {
    let n = 6;
    let size = 1usize << n;
    let mut rng = StdRng::seed_from_u64(5);
    let backlog = static_backlog(&Pattern::Random, size, 3, &mut rng);
    let config = WormConfig {
        message_length: 12,
        flit_buffer_depth: 1,
        ..WormConfig::default()
    };
    let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(n), config);
    let res = sim.run_static(&backlog);
    assert!(res.drained, "stalled at {}", res.cycles);
    assert_eq!(res.delivered, 3 * size as u64);
}

/// The mesh and torus schemes also run worm-hole (the [GPS91] setting).
#[test]
fn mesh_and_torus_wormhole_drain() {
    let side = 6;
    let mut rng = StdRng::seed_from_u64(9);
    let backlog = static_backlog(&Pattern::grid_transpose(side), side * side, 3, &mut rng);
    let mut sim = WormholeSim::new(MeshFullyAdaptive::new(side, side), cfg(5));
    let res = sim.run_static(&backlog);
    assert!(res.drained);

    let backlog = static_backlog(&Pattern::Random, 25, 4, &mut rng);
    let mut sim = WormholeSim::new(TorusTwoPhase::new(5, 5), cfg(5));
    let res = sim.run_static(&backlog);
    assert!(res.drained);
    assert_eq!(res.delivered, 100);
}

/// Minimality carries over: a lone worm's hop count equals the distance
/// on the mesh too.
#[test]
fn mesh_lone_worm_latency() {
    let rf = MeshFullyAdaptive::new(5, 5);
    let d = rf.mesh().distance(2, 22) as u64;
    let mut sim = WormholeSim::new(rf, cfg(3));
    let mut backlog = vec![Vec::new(); 25];
    backlog[2].push(22);
    let res = sim.run_static(&backlog);
    assert!(res.drained);
    assert_eq!(res.stats.max(), d + 3);
}

/// Longer worms increase latency by exactly the extra flits when
/// uncontended, and never break delivery under load.
#[test]
fn length_scaling() {
    let n = 5;
    let size = 1usize << n;
    let mut means = Vec::new();
    for len in [2usize, 8, 16] {
        let mut rng = StdRng::seed_from_u64(11);
        let backlog = static_backlog(&Pattern::Random, size, 2, &mut rng);
        let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(n), cfg(len));
        let res = sim.run_static(&backlog);
        assert!(res.drained);
        means.push(res.stats.mean());
    }
    assert!(means[0] < means[1] && means[1] < means[2], "{means:?}");
}

/// The provably safe mode (static VCs only — Dally–Seitz over the
/// acyclic static VC graph) drains too, at equal-or-worse latency than
/// the adaptive mode.
#[test]
fn escape_only_mode_is_safe_and_no_faster() {
    let n = 6;
    let size = 1usize << n;
    let mut rng = StdRng::seed_from_u64(21);
    let backlog = static_backlog(&Pattern::complement(n), size, 2, &mut rng);

    let adaptive_cfg = WormConfig {
        message_length: 6,
        ..WormConfig::default()
    };
    let safe_cfg = WormConfig {
        message_length: 6,
        use_dynamic_vcs: false,
        ..WormConfig::default()
    };

    let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(n), adaptive_cfg);
    let res_a = sim.run_static(&backlog);
    let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(n), safe_cfg);
    let res_s = sim.run_static(&backlog);
    assert!(res_a.drained && res_s.drained);
    assert!(res_a.stats.mean() <= res_s.stats.mean() + 1e-9);
}

/// Dynamic wormhole injection keeps delivering under sustained load
/// (adaptive mode) and stays livelock-free.
#[test]
fn dynamic_wormhole_sustains_load() {
    use rand::Rng as _;
    let n = 6;
    let size = 1usize << n;
    let cfg = WormConfig {
        message_length: 4,
        ..WormConfig::default()
    };
    let mut sim = WormholeSim::new(HypercubeFullyAdaptive::new(n), cfg);
    let mut rng = StdRng::seed_from_u64(77);
    let res = sim.run_dynamic(
        0.2,
        |src, rng| {
            let d = rng.gen_range(0..size - 1);
            if d >= src {
                d + 1
            } else {
                d
            }
        },
        600,
        &mut rng,
    );
    assert!(res.delivered > 0);
    // Most spawned worms complete within the horizon at this load.
    assert!(
        res.delivered * 10 >= res.total * 8,
        "only {}/{} worms completed",
        res.delivered,
        res.total
    );
}
