//! Recording parity for the wormhole engine, mirroring the packet
//! engine's observability tests (`crates/sim/tests/recording.rs`):
//! the same sinks attach to [`WormholeSim`] and see the analogous
//! event stream — VC acquisitions as links, headers with no free VC
//! as blocks — plus the paper-claims check that every reachable
//! routing state offers a *static* (escape) virtual channel, the
//! per-flit form of § 2's condition 3.

use std::collections::HashSet;

use fadr_core::{HypercubeFullyAdaptive, HypercubeStaticHang, MeshFullyAdaptive, TorusTwoPhase};
use fadr_metrics::CounterSink;
use fadr_qdg::{HopKind, LinkKind, QueueId, QueueKind, RoutingFunction};
use fadr_topology::hamming_distance;
use fadr_workloads::{static_backlog, Pattern};
use fadr_wormhole::{SinkSet, WormConfig, WormholeSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(len: usize) -> WormConfig {
    WormConfig {
        message_length: len,
        ..WormConfig::default()
    }
}

fn lone_backlog(size: usize, src: usize, dst: usize) -> Vec<Vec<usize>> {
    let mut backlog = vec![Vec::new(); size];
    backlog[src].push(dst);
    backlog
}

/// A lone worm on the adaptivity-disabled hang acquires exactly
/// `hamming(src, dst)` virtual channels, all of them static — the
/// counter-level parity of the packet engine's minimality test.
#[test]
fn lone_worm_static_hang_counts_hamming_vc_acquisitions() {
    let n = 5;
    let size = 1usize << n;
    let rf = HypercubeStaticHang::new(n);
    let classes = rf.num_classes();
    for (src, dst) in [(0usize, 0b10110), (0b10101, 0b01010), (1, 0)] {
        let mut sim = WormholeSim::with_recorder(
            HypercubeStaticHang::new(n),
            cfg(4),
            CounterSink::new(size, classes),
        );
        let res = sim.run_static(&lone_backlog(size, src, dst));
        assert!(res.drained);
        let c = sim.recorder();
        let d = hamming_distance(src, dst) as u64;
        assert_eq!(c.links_total(), d, "({src:#b} -> {dst:#b})");
        assert_eq!(c.links_dynamic, 0, "hang must never acquire dynamic VCs");
        assert_eq!(c.links_static, d);
        assert_eq!(c.dynamic_share(), 0.0);
        assert_eq!(c.injected, 1);
        assert_eq!(c.delivered, 1);
    }
}

/// The provably safe mode (`use_dynamic_vcs: false`) is structurally
/// unable to acquire dynamic VCs: under full complement load the
/// counters must show zero dynamic links, with every worm delivered.
#[test]
fn escape_only_mode_records_zero_dynamic_links() {
    let n = 4;
    let size = 1usize << n;
    let rf = HypercubeFullyAdaptive::new(n);
    let classes = rf.num_classes();
    let mut sim = WormholeSim::with_recorder(
        HypercubeFullyAdaptive::new(n),
        WormConfig {
            message_length: 4,
            use_dynamic_vcs: false,
            ..WormConfig::default()
        },
        CounterSink::new(size, classes),
    );
    let mut rng = StdRng::seed_from_u64(3);
    let backlog = static_backlog(&Pattern::complement(n), size, n, &mut rng);
    assert!(sim.run_static(&backlog).drained);
    let c = sim.recorder();
    assert_eq!(c.delivered, (size * n) as u64, "n worms per source");
    assert_eq!(c.links_dynamic, 0);
    assert_eq!(c.links_static, c.links_total());
}

/// With dynamic VCs enabled the same complement load exercises the
/// adaptive channels: some acquisitions are recorded as dynamic, and
/// minimality still pins each worm to `hamming` acquisitions in total.
#[test]
fn adaptive_mode_records_dynamic_vc_acquisitions() {
    let n = 4;
    let size = 1usize << n;
    let rf = HypercubeFullyAdaptive::new(n);
    let classes = rf.num_classes();
    let mut sim = WormholeSim::with_recorder(
        HypercubeFullyAdaptive::new(n),
        cfg(4),
        CounterSink::new(size, classes),
    );
    let mut rng = StdRng::seed_from_u64(3);
    let backlog = static_backlog(&Pattern::complement(n), size, n, &mut rng);
    assert!(sim.run_static(&backlog).drained);
    let c = sim.recorder();
    assert_eq!(c.delivered, (size * n) as u64, "n worms per source");
    // Complement traffic crosses n bits per worm; minimality of every
    // acquisition pins the total.
    assert_eq!(c.links_total(), (size * n * n) as u64);
    assert!(
        c.links_dynamic >= 1,
        "complement load under adaptive VCs took no dynamic channel \
         (static {} / dynamic {})",
        c.links_static,
        c.links_dynamic
    );
}

/// The trace sink reconstructs a lone worm's lifecycle: one line,
/// delivered, with exactly `hamming(src, dst)` VC-acquisition hops
/// (worms never stutter — they occupy VCs, not central queues).
#[test]
fn trace_records_full_worm_lifecycle() {
    let n = 4;
    let size = 1usize << n;
    let (src, dst) = (0usize, 0b1101usize);
    let mut sim = WormholeSim::with_recorder(
        HypercubeFullyAdaptive::new(n),
        cfg(6),
        SinkSet::new().with_trace(8),
    );
    assert!(sim.run_static(&lone_backlog(size, src, dst)).drained);
    let mut sinks = sim.into_recorder();
    sinks.flush();
    let trace = sinks.trace.as_ref().unwrap();
    assert_eq!(trace.lines().len(), 1);
    let line = &trace.lines()[0];
    assert!(line.contains("\"delivered\": true"), "{line}");
    assert!(
        line.contains(&format!("\"src\": {src}, \"dst\": {dst}")),
        "{line}"
    );
    assert_eq!(
        line.matches("\"kind\": ").count(),
        hamming_distance(src, dst),
        "{line}"
    );
    assert_eq!(line.matches("\"kind\": \"stutter\"").count(), 0, "{line}");
}

/// A healthy draining wormhole run keeps the watchdog quiet: VC
/// acquisitions and deliveries count as progress, so no stall report
/// is produced and the run completes well inside the horizon.
#[test]
fn watchdog_stays_quiet_on_a_draining_run() {
    let n = 4;
    let size = 1usize << n;
    let mut sim = WormholeSim::with_recorder(
        HypercubeFullyAdaptive::new(n),
        cfg(8),
        SinkSet::new().with_watchdog(256),
    );
    let mut rng = StdRng::seed_from_u64(9);
    let backlog = static_backlog(&Pattern::complement(n), size, n, &mut rng);
    let res = sim.run_static(&backlog);
    assert!(res.drained, "complement load must drain");
    assert!(
        sim.recorder().stall().is_none(),
        "watchdog fired on a healthy run"
    );
}

/// Paper claim (§ 2 condition 3, per flit): every reachable routing
/// state — each `(central queue, message)` a header can occupy —
/// offers at least one *static* link transition, and the wormhole VC
/// table declares a matching static VC on that port. A header blocked
/// on busy adaptive VCs therefore always has an escape VC to wait
/// for; escape is never structurally absent, only momentarily busy.
#[test]
fn every_reachable_routing_state_offers_an_escape_vc() {
    fn check<R: RoutingFunction>(rf: &R) {
        let topo = rf.topology();
        let n = topo.num_nodes();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                // BFS over (queue, msg) states exactly as a header
                // traverses them.
                let mut seen: HashSet<(QueueId, String)> = HashSet::new();
                let mut frontier = vec![(QueueId::inject(src), rf.initial_msg(src, dst))];
                while let Some((q, msg)) = frontier.pop() {
                    if !seen.insert((q, format!("{msg:?}"))) {
                        continue;
                    }
                    if let QueueKind::Central(class) = q.kind {
                        if !rf.deliverable(q.node, &msg) {
                            let mut has_escape = false;
                            rf.for_each_transition(q, &msg, &mut |t| {
                                if let (LinkKind::Static, HopKind::Link(port)) = (t.kind, t.hop) {
                                    if let QueueKind::Central(c) = t.to.kind {
                                        has_escape |= rf
                                            .buffer_classes(q.node, port)
                                            .contains(&fadr_qdg::BufferClass::Static(c));
                                    }
                                }
                            });
                            assert!(
                                has_escape,
                                "{}: no static VC at node {} class {class} for {msg:?}",
                                rf.name(),
                                q.node
                            );
                        }
                    }
                    rf.for_each_transition(q, &msg, &mut |t| {
                        if t.to.kind != QueueKind::Deliver {
                            frontier.push((t.to, t.msg.clone()));
                        }
                    });
                }
            }
        }
    }
    check(&HypercubeFullyAdaptive::new(4));
    check(&MeshFullyAdaptive::new(4, 4));
    check(&TorusTwoPhase::new(4, 4));
}
