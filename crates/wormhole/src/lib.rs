//! Flit-level **wormhole routing** over the same routing functions as the
//! packet simulator.
//!
//! The paper closes its introduction with: "While the methods presented in
//! this paper are for packet routing, some generalizations are possible
//! for worm-hole routing … \[GPS91\]". This crate implements that
//! generalization: the per-channel traffic-class buffers of § 6 become
//! **virtual channels** (Dally–Seitz), and a message — now a *worm* of
//! `len` flits — acquires a chain of virtual channels head-first and
//! releases each as its tail drains out.
//!
//! # Mapping from the packet model
//!
//! | packet model (§ 6)                     | wormhole model            |
//! |----------------------------------------|---------------------------|
//! | central queue class `c` at node `v`    | being routed *as* class `c` at `v` |
//! | link buffer pair `(channel, class)`    | virtual channel with a flit FIFO |
//! | queue dependency graph acyclicity      | VC dependency graph acyclicity |
//! | dynamic links + § 2 condition 3        | adaptive VCs + escape channels |
//!
//! Acyclicity of the static QDG (checked by `fadr-qdg`) implies
//! acyclicity of the static VC dependency graph, because an edge between
//! VCs `(x→u, c) → (u→w, c')` exists exactly when the QDG has the edge
//! `q_c[u] → q_{c'}[w]`. The dynamic VCs are adaptive channels whose
//! escape paths are the static VCs — the wormhole analogue of § 2's
//! condition 3 (formally, Duato-style escape-channel reasoning; \[GPS91\]
//! carries the proofs for tori and hypercubes).
//!
//! # Simulation model
//!
//! * A virtual channel is a flit FIFO of depth `flit_buffer_depth` at the
//!   *receiving* end of a directed physical channel, one per traffic
//!   class ([`fadr_qdg::RoutingFunction::buffer_classes`]).
//! * Routing happens at the **header** flit only: when a header reaches
//!   the front of a VC (or the injection queue) it requests, in the
//!   routing function's emission order, a *free* VC among its
//!   transitions' `(port, class)` pairs, and acquires it until the tail
//!   passes.
//! * Each physical channel direction moves at most one flit per cycle
//!   (round-robin over its VCs); a flit advances only if the downstream
//!   VC has buffer space. Arrived worms drain one flit per cycle into the
//!   destination's delivery queue.
//!
//! Message latency is `arrival(tail) − injection(header)` in cycles (no
//! ×2 scaling here: the wormhole model has no two-step node traversal).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

pub use engine::{WormholeResult, WormholeSim};
pub use fadr_metrics::{Control, NoRecorder, Recorder, SinkSet};

/// Wormhole simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct WormConfig {
    /// Flits per message (header + body; `>= 1`).
    pub message_length: usize,
    /// Flit-buffer depth of each virtual channel.
    pub flit_buffer_depth: usize,
    /// RNG seed (workload draws).
    pub seed: u64,
    /// Safety horizon: a static run failing to drain by this many cycles
    /// is reported as not drained.
    pub max_cycles: u64,
    /// Allow headers to acquire *dynamic* virtual channels.
    ///
    /// With dynamic VCs on, deadlock freedom rests on Duato-style
    /// escape-channel reasoning over *extended* (indirect) dependencies —
    /// the analysis the companion \[GPS91\] develops for its wormhole
    /// algorithms; the § 2 packet argument alone is not sufficient for
    /// wormhole, because a worm holds its whole channel chain while
    /// waiting. Set to `false` for the provably safe mode (static VCs
    /// only: the static VC dependency graph is acyclic, so Dally–Seitz
    /// applies directly), at the cost of the dynamic links' adaptivity.
    pub use_dynamic_vcs: bool,
}

impl Default for WormConfig {
    fn default() -> Self {
        Self {
            message_length: 8,
            flit_buffer_depth: 2,
            seed: 0x11f7,
            max_cycles: 10_000_000,
            use_dynamic_vcs: true,
        }
    }
}
