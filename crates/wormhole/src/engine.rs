//! The wormhole engine: virtual channels, header routing, flit pipeline.

use std::collections::VecDeque;

use fadr_metrics::{Control, LatencyStats, NoRecorder, Recorder};
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction};
use fadr_topology::NodeId;

use crate::WormConfig;

const NONE: u32 = u32::MAX;
/// `route_next` marker: the worm drains into the delivery queue here.
const DELIVER: u32 = u32::MAX - 1;
/// `prev` marker: this VC is fed by the worm's source node.
const SOURCE: u32 = u32::MAX - 2;

/// A flit in a virtual-channel FIFO.
#[derive(Debug, Clone, Copy)]
struct Flit {
    worm: u32,
    is_header: bool,
    is_tail: bool,
}

/// A virtual channel: the flit buffer at the receiving end of one
/// (directed channel, traffic class) pair.
struct Vc {
    /// Worm currently holding this VC (`NONE` = free).
    owner: u32,
    /// Downstream VC id, `DELIVER`, or `NONE` (not yet routed).
    route_next: u32,
    /// Upstream feeder: a VC id, `SOURCE`, or `NONE` (no more flits will
    /// arrive — the worm's tail has already passed).
    prev: u32,
    fifo: VecDeque<Flit>,
}

/// Where a worm's header currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeaderAt {
    /// Still at the source, waiting to acquire its first VC.
    Source,
    /// In the given VC.
    Vc(u32),
    /// Delivered (body may still be draining).
    Done,
}

struct Worm<M> {
    dst: u32,
    /// Routing state *at the header's next routing point*.
    msg: M,
    /// Queue class the header is being routed as.
    class: u8,
    inject_cycle: u64,
    /// Flits not yet pushed out of the source (includes the header until
    /// it leaves).
    flits_at_source: u32,
    total_flits: u32,
    delivered_flits: u32,
    header: HeaderAt,
    /// First VC of the chain (flits at the source feed into it).
    first_vc: u32,
}

/// Result of a wormhole run.
#[derive(Debug, Clone)]
pub struct WormholeResult {
    /// Per-message latency (header injection → tail delivery, cycles).
    pub stats: LatencyStats,
    /// Messages fully delivered.
    pub delivered: u64,
    /// Messages that were to be sent.
    pub total: u64,
    /// Cycles executed.
    pub cycles: u64,
    /// Whether every message drained within the horizon.
    pub drained: bool,
}

/// Flit-level wormhole simulator over a [`RoutingFunction`]; see the
/// crate docs for the model.
///
/// Generic over a [`Recorder`] (default: the zero-cost [`NoRecorder`]).
/// Recorder semantics differ slightly from the packet engine's: worms are
/// identified by spawn index, [`Recorder::on_link`] fires when a header
/// *acquires* a virtual channel (the routing decision, tagged
/// static/dynamic), [`Recorder::on_block`] fires each cycle a header
/// finds no free VC, and [`Recorder::on_deliver`] reports `hops = 0`
/// (flit pipelining makes a per-worm hop count redundant with its link
/// events). [`Recorder::on_stutter`] fires when a header reclasses in
/// place (no VC acquired). Queue-enter/leave events are not emitted —
/// worms occupy VCs, not central queues.
pub struct WormholeSim<R: RoutingFunction, Rec: Recorder = NoRecorder> {
    rf: R,
    rec: Rec,
    cfg: WormConfig,
    num_nodes: usize,
    max_ports: usize,
    /// Per channel: first VC id, VC count, target node.
    chans: Vec<(u32, u8, u32)>,
    chan_of: Vec<u32>,
    chan_rr: Vec<u8>,
    vc_class: Vec<BufferClass>,
    vcs: Vec<Vc>,
    worms: Vec<Worm<R::Msg>>,
    worm_sources: Vec<usize>,
    /// Worms that still have undelivered flits (scanned each cycle).
    live: Vec<u32>,
    debug: bool,
    cycle: u64,
    stats: LatencyStats,
    delivered: u64,
}

impl<R: RoutingFunction> WormholeSim<R> {
    /// Build a wormhole simulator for `rf` (no recording).
    pub fn new(rf: R, cfg: WormConfig) -> Self {
        Self::with_recorder(rf, cfg, NoRecorder)
    }
}

impl<R: RoutingFunction, Rec: Recorder> WormholeSim<R, Rec> {
    /// Build a wormhole simulator for `rf` with an event recorder.
    pub fn with_recorder(rf: R, cfg: WormConfig, rec: Rec) -> Self {
        assert!(cfg.message_length >= 1);
        assert!(cfg.flit_buffer_depth >= 1);
        let topo = rf.topology();
        let (n, mp) = (topo.num_nodes(), topo.max_ports());
        let mut chan_of = vec![NONE; n * mp];
        let mut chans = Vec::new();
        let mut vc_class = Vec::new();
        for node in 0..n {
            for port in 0..mp {
                let Some(to) = topo.neighbor(node, port) else {
                    continue;
                };
                let classes = rf.buffer_classes(node, port);
                if classes.is_empty() {
                    continue;
                }
                chan_of[node * mp + port] = chans.len() as u32;
                chans.push((vc_class.len() as u32, classes.len() as u8, to as u32));
                vc_class.extend(classes);
            }
        }
        let vcs = (0..vc_class.len())
            .map(|_| Vc {
                owner: NONE,
                route_next: NONE,
                prev: NONE,
                fifo: VecDeque::new(),
            })
            .collect();
        Self {
            cfg,
            num_nodes: n,
            max_ports: mp,
            chan_rr: vec![0; chans.len()],
            chans,
            chan_of,
            vc_class,
            vcs,
            worms: Vec::new(),
            worm_sources: Vec::new(),
            live: Vec::new(),
            debug: std::env::var("WORM_DEBUG").is_ok(),
            cycle: 0,
            stats: LatencyStats::new(),
            delivered: 0,
            rf,
            rec,
        }
    }

    /// The routing function under simulation.
    pub fn routing(&self) -> &R {
        &self.rf
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Rec {
        &self.rec
    }

    /// Mutable access to the attached recorder.
    pub fn recorder_mut(&mut self) -> &mut Rec {
        &mut self.rec
    }

    /// Consume the simulator, returning the recorder (e.g. to flush and
    /// serialize its sinks after a run).
    pub fn into_recorder(self) -> Rec {
        self.rec
    }

    /// Resolve the VC of `(node, port, class)`.
    fn vc_of(&self, node: usize, port: usize, class: BufferClass) -> u32 {
        let chan = self.chan_of[node * self.max_ports + port];
        debug_assert_ne!(chan, NONE);
        let (start, len, _) = self.chans[chan as usize];
        for i in 0..u32::from(len) {
            if self.vc_class[(start + i) as usize] == class {
                return start + i;
            }
        }
        panic!("VC class {class:?} not declared on ({node}, {port})");
    }

    /// Node at which VC `vc`'s buffer sits (the channel's target).
    fn vc_node(&self, vc: u32) -> usize {
        // Channels are built in order; binary search by vc range.
        let i = self
            .chans
            .partition_point(|&(start, _, _)| start <= vc)
            .saturating_sub(1);
        debug_assert!(vc < self.chans[i].0 + u32::from(self.chans[i].1));
        self.chans[i].2 as usize
    }

    /// Send every message of `backlog` (one worm per entry, injected as
    /// soon as the previous worm from the same source has fully left),
    /// and run until all tails are delivered.
    pub fn run_static(&mut self, backlog: &[Vec<NodeId>]) -> WormholeResult {
        assert_eq!(backlog.len(), self.num_nodes);
        let total: u64 = backlog.iter().map(|b| b.len() as u64).sum();
        let mut next_idx = vec![0usize; backlog.len()];
        // Active worm per source (a source injects one worm at a time).
        let mut active: Vec<u32> = vec![NONE; backlog.len()];
        while self.delivered < total && self.cycle < self.cfg.max_cycles {
            for src in 0..backlog.len() {
                let done =
                    active[src] == NONE || self.worms[active[src] as usize].flits_at_source == 0;
                if done && next_idx[src] < backlog[src].len() {
                    let dst = backlog[src][next_idx[src]];
                    next_idx[src] += 1;
                    active[src] = self.spawn(src, dst);
                }
            }
            if self.step() == Control::Stop {
                break;
            }
        }
        WormholeResult {
            stats: self.stats.clone(),
            delivered: self.delivered,
            total,
            cycles: self.cycle,
            drained: self.delivered == total,
        }
    }

    /// Dynamic injection: each cycle, every idle source starts a new worm
    /// with probability `lambda` (a source is idle while it has no flits
    /// left to push). Runs for `cycles` cycles and reports messages whose
    /// tails were delivered within the horizon.
    pub fn run_dynamic(
        &mut self,
        lambda: f64,
        mut dest: impl FnMut(NodeId, &mut rand::rngs::StdRng) -> NodeId,
        cycles: u64,
        rng: &mut rand::rngs::StdRng,
    ) -> WormholeResult {
        use rand::Rng as _;
        assert!((0.0..=1.0).contains(&lambda));
        let mut active: Vec<u32> = vec![NONE; self.num_nodes];
        let mut spawned = 0u64;
        for _ in 0..cycles {
            #[allow(clippy::needless_range_loop)] // src indexes `active` and names the node
            for src in 0..self.num_nodes {
                if lambda < 1.0 && !rng.gen_bool(lambda) {
                    continue;
                }
                let idle =
                    active[src] == NONE || self.worms[active[src] as usize].flits_at_source == 0;
                if idle {
                    let dst = dest(src, rng);
                    active[src] = self.spawn(src, dst);
                    spawned += 1;
                }
            }
            if self.step() == Control::Stop {
                break;
            }
        }
        WormholeResult {
            stats: self.stats.clone(),
            delivered: self.delivered,
            total: spawned,
            cycles: self.cycle,
            drained: false,
        }
    }

    fn spawn(&mut self, src: NodeId, dst: NodeId) -> u32 {
        let msg = self.rf.initial_msg(src, dst);
        // Entry class via the injection queue's internal transition.
        let mut class = 0u8;
        self.rf
            .for_each_transition(QueueId::inject(src), &msg, &mut |t| {
                if let QueueKind::Central(c) = t.to.kind {
                    class = c;
                }
            });
        self.worms.push(Worm {
            dst: dst as u32,
            msg,
            class,
            inject_cycle: self.cycle,
            flits_at_source: self.cfg.message_length as u32,
            total_flits: self.cfg.message_length as u32,
            delivered_flits: 0,
            header: HeaderAt::Source,
            first_vc: NONE,
        });
        self.worm_sources.push(src);
        let w = (self.worms.len() - 1) as u32;
        if Rec::ENABLED {
            self.rec
                .on_inject(self.cycle, u64::from(w), src as u32, dst as u32);
        }
        self.live.push(w);
        w
    }

    fn step(&mut self) -> Control {
        self.route_headers();
        self.move_flits();
        let worms = &self.worms;
        self.live.retain(|&w| {
            let worm = &worms[w as usize];
            worm.delivered_flits < worm.total_flits
        });
        if self.debug {
            for (w, worm) in self.worms.iter().enumerate() {
                eprintln!(
                    "cycle {} worm {w}: header {:?} first_vc {} at_src {} delivered {}",
                    self.cycle,
                    worm.header,
                    worm.first_vc,
                    worm.flits_at_source,
                    worm.delivered_flits
                );
            }
            for (i, vc) in self.vcs.iter().enumerate() {
                if vc.owner != NONE || !vc.fifo.is_empty() {
                    eprintln!(
                        "  vc {i}: owner {} next {} fifo {}",
                        vc.owner,
                        vc.route_next,
                        vc.fifo.len()
                    );
                }
            }
        }
        let ctl = if Rec::ENABLED {
            self.rec.on_cycle_end(self.cycle)
        } else {
            Control::Continue
        };
        self.cycle += 1;
        ctl
    }

    /// Phase 1: every header at a routing point tries to reserve its next
    /// VC (in the routing function's emission order — static and dynamic
    /// channels as the § 3–5 functions offer them).
    fn route_headers(&mut self) {
        for i in 0..self.live.len() {
            let w = self.live[i] as usize;
            let (node, at_vc) = match self.worms[w].header {
                HeaderAt::Source => {
                    // Header still at the source: route if no first VC yet.
                    if self.worms[w].first_vc != NONE {
                        continue;
                    }
                    (self.source_of(w), NONE)
                }
                HeaderAt::Vc(vc) => {
                    if self.vcs[vc as usize].route_next != NONE {
                        continue; // already routed onwards
                    }
                    // Route only when the header is at the front.
                    match self.vcs[vc as usize].fifo.front() {
                        Some(f) if f.worm == w as u32 && f.is_header => {}
                        _ => continue,
                    }
                    (self.vc_node(vc), vc)
                }
                HeaderAt::Done => continue,
            };
            let worm = &self.worms[w];
            if self.rf.deliverable(node, &worm.msg) || worm.dst as usize == node {
                if at_vc != NONE {
                    self.vcs[at_vc as usize].route_next = DELIVER;
                } else {
                    // Message to self: drain directly (handled in move).
                    self.worms[w].first_vc = DELIVER;
                }
                continue;
            }
            // Try transitions in emission order; take the first
            // *available* one. A link option is available when its VC is
            // free; a stutter option (an in-place reclass — e.g. the
            // self-loop shuffles of § 5's degenerate necklaces) holds no
            // resource and is always available, mirroring the packet
            // engine's first-available-option fill discipline.
            let mut chosen: Option<(u32, u8, R::Msg)> = None;
            let mut stutter: Option<(u8, R::Msg)> = None;
            let msg = worm.msg.clone();
            let class = worm.class;
            let use_dynamic = self.cfg.use_dynamic_vcs;
            let rf = &self.rf;
            let vc_lookup = |port: usize, bc: BufferClass| self.vc_of(node, port, bc);
            let vcs = &self.vcs;
            rf.for_each_transition(QueueId::central(node, class), &msg, &mut |t| {
                if chosen.is_some() || stutter.is_some() {
                    return;
                }
                match (t.hop, t.to.kind) {
                    (HopKind::Link(port), QueueKind::Central(c)) => {
                        let bc = match t.kind {
                            LinkKind::Static => BufferClass::Static(c),
                            LinkKind::Dynamic if use_dynamic => BufferClass::Dynamic,
                            LinkKind::Dynamic => return,
                        };
                        let vc = vc_lookup(port, bc);
                        if vcs[vc as usize].owner == NONE {
                            chosen = Some((vc, c, t.msg.clone()));
                        }
                    }
                    (HopKind::Internal, QueueKind::Central(c)) => {
                        stutter = Some((c, t.msg.clone()));
                    }
                    _ => {}
                }
            });
            if let Some((c, next_msg)) = stutter {
                // Reclass in place: one stutter per cycle (the packet
                // engine's cadence); the header re-routes next cycle
                // with its updated state.
                if Rec::ENABLED {
                    self.rec
                        .on_stutter(self.cycle, w as u64, node as u32, class, c);
                }
                self.worms[w].msg = next_msg;
                self.worms[w].class = c;
            } else if let Some((vc, c, next_msg)) = chosen {
                if Rec::ENABLED {
                    self.rec.on_link(
                        self.cycle,
                        w as u64,
                        node as u32,
                        self.vc_node(vc) as u32,
                        self.vc_class[vc as usize] == BufferClass::Dynamic,
                        class,
                        c,
                    );
                }
                self.vcs[vc as usize].owner = w as u32;
                self.worms[w].msg = next_msg;
                self.worms[w].class = c;
                if at_vc != NONE {
                    self.vcs[at_vc as usize].route_next = vc;
                    self.vcs[vc as usize].prev = at_vc;
                } else {
                    self.worms[w].first_vc = vc;
                    self.vcs[vc as usize].prev = SOURCE;
                }
            } else if Rec::ENABLED {
                self.rec.on_block(self.cycle, w as u64, node as u32, class);
            }
        }
    }

    fn source_of(&self, w: usize) -> usize {
        self.worm_sources[w]
    }

    /// Phase 2: move flits. One flit per physical channel direction per
    /// cycle (round-robin over the channel's VCs); delivery drains one
    /// flit per arrived VC per cycle; self-addressed worms drain at the
    /// source.
    fn move_flits(&mut self) {
        // Deliveries first (frees space for upstream moves this cycle).
        for vc in 0..self.vcs.len() {
            if self.vcs[vc].route_next == DELIVER {
                if let Some(&flit) = self.vcs[vc].fifo.front() {
                    self.vcs[vc].fifo.pop_front();
                    self.finish_flit(vc as u32, flit);
                }
            }
        }
        // Self-addressed worms drain straight from the source.
        for i in 0..self.live.len() {
            let w = self.live[i] as usize;
            if self.worms[w].first_vc == DELIVER && self.worms[w].flits_at_source > 0 {
                self.worms[w].flits_at_source -= 1;
                self.worms[w].delivered_flits += 1;
                if self.worms[w].flits_at_source == 0 {
                    self.worms[w].header = HeaderAt::Done;
                    self.complete(w);
                }
            }
        }
        // Physical channels.
        for chan in 0..self.chans.len() {
            let (start, len, _) = self.chans[chan];
            let rr = self.chan_rr[chan] as usize;
            for i in 0..len as usize {
                let vc = start as usize + (rr + i) % len as usize;
                if self.try_feed_vc(vc as u32) {
                    self.chan_rr[chan] = ((rr + i + 1) % len as usize) as u8;
                    break;
                }
            }
        }
    }

    /// Move one flit into `vc` from its upstream feeder (the worm's
    /// previous VC or the source). Returns true if a flit moved.
    fn try_feed_vc(&mut self, vc: u32) -> bool {
        let owner = self.vcs[vc as usize].owner;
        if owner == NONE || self.vcs[vc as usize].fifo.len() >= self.cfg.flit_buffer_depth {
            return false;
        }
        let w = owner as usize;
        match self.vcs[vc as usize].prev {
            NONE => false,
            SOURCE => {
                if self.worms[w].flits_at_source == 0 {
                    return false;
                }
                let total = self.worms[w].total_flits;
                let at_source = self.worms[w].flits_at_source;
                let flit = Flit {
                    worm: owner,
                    is_header: at_source == total,
                    is_tail: at_source == 1,
                };
                self.worms[w].flits_at_source -= 1;
                if flit.is_tail {
                    // Nothing more will come from the source.
                    self.vcs[vc as usize].prev = NONE;
                }
                self.vcs[vc as usize].fifo.push_back(flit);
                if flit.is_header {
                    self.worms[w].header = HeaderAt::Vc(vc);
                }
                true
            }
            up => {
                let Some(&front) = self.vcs[up as usize].fifo.front() else {
                    return false;
                };
                debug_assert_eq!(front.worm, owner);
                self.vcs[up as usize].fifo.pop_front();
                if front.is_tail {
                    self.release(up);
                    self.vcs[vc as usize].prev = NONE;
                }
                self.vcs[vc as usize].fifo.push_back(front);
                if front.is_header {
                    self.worms[w].header = HeaderAt::Vc(vc);
                }
                true
            }
        }
    }

    fn finish_flit(&mut self, vc: u32, flit: Flit) {
        let w = flit.worm as usize;
        self.worms[w].delivered_flits += 1;
        if flit.is_header {
            self.worms[w].header = HeaderAt::Done;
        }
        if flit.is_tail {
            self.release(vc);
            self.complete(w);
        }
    }

    fn release(&mut self, vc: u32) {
        debug_assert!(self.vcs[vc as usize].fifo.is_empty());
        self.vcs[vc as usize].owner = NONE;
        self.vcs[vc as usize].route_next = NONE;
        self.vcs[vc as usize].prev = NONE;
    }

    fn complete(&mut self, w: usize) {
        debug_assert_eq!(self.worms[w].delivered_flits, self.worms[w].total_flits);
        let latency = self.cycle - self.worms[w].inject_cycle + 1;
        if Rec::ENABLED {
            self.rec.on_deliver(self.cycle, w as u64, latency, 0, 0);
        }
        self.stats.record(latency);
        self.delivered += 1;
    }
}
