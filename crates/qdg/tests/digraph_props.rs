//! Property-based tests of the digraph machinery the QDG checks rest on.

use proptest::prelude::*;

use fadr_qdg::graph::Digraph;

fn arb_edges(n: usize, m: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `topological_order` and `find_cycle` agree: exactly one returns
    /// something.
    #[test]
    fn acyclicity_checks_agree(edges in arb_edges(12, 40)) {
        let mut g = Digraph::new(12);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        prop_assert_eq!(g.is_acyclic(), g.find_cycle().is_none());
    }

    /// A reported topological order respects every edge.
    #[test]
    fn topological_order_respects_edges(edges in arb_edges(10, 30)) {
        let mut g = Digraph::new(10);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        if let Some(order) = g.topological_order() {
            let pos: Vec<usize> = {
                let mut p = vec![0; 10];
                for (i, &v) in order.iter().enumerate() {
                    p[v] = i;
                }
                p
            };
            for &(a, b) in &edges {
                prop_assert!(pos[a] < pos[b], "edge {a}->{b} violated");
            }
        }
    }

    /// A reported cycle really is one: consecutive pairs are edges.
    #[test]
    fn reported_cycles_are_cycles(edges in arb_edges(8, 24)) {
        let mut g = Digraph::new(8);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        if let Some(c) = g.find_cycle() {
            prop_assert!(!c.is_empty());
            for i in 0..c.len() {
                prop_assert!(g.has_edge(c[i], c[(i + 1) % c.len()]));
            }
        }
    }

    /// Levels are monotone along edges (strictly increasing).
    #[test]
    fn levels_increase_along_edges(edges in arb_edges(10, 25)) {
        let mut g = Digraph::new(10);
        for &(a, b) in &edges {
            if a != b {
                g.add_edge(a, b);
            }
        }
        if g.is_acyclic() {
            let lv = g.levels();
            for v in 0..10 {
                for &b in g.successors(v) {
                    prop_assert!(lv[b] > lv[v]);
                }
            }
        }
    }

    /// Forcing a known cycle makes the graph cyclic no matter what else
    /// is added.
    #[test]
    fn forced_cycle_is_found(extra in arb_edges(9, 20), k in 2usize..6) {
        let mut g = Digraph::new(9);
        for i in 0..k {
            g.add_edge(i, (i + 1) % k);
        }
        for (a, b) in extra {
            g.add_edge(a, b);
        }
        prop_assert!(!g.is_acyclic());
        prop_assert!(g.find_cycle().is_some());
    }

    /// Edge deduplication: adding the same edges twice changes nothing.
    #[test]
    fn idempotent_edges(edges in arb_edges(8, 16)) {
        let mut g1 = Digraph::new(8);
        let mut g2 = Digraph::new(8);
        for &(a, b) in &edges {
            g1.add_edge(a, b);
            g2.add_edge(a, b);
            g2.add_edge(a, b);
        }
        prop_assert_eq!(g1.num_edges(), g2.num_edges());
        prop_assert_eq!(g1.is_acyclic(), g2.is_acyclic());
    }
}
