//! Randomized property tests of the digraph machinery the QDG checks
//! rest on. (Formerly proptest-based; now seeded loops over the
//! workspace RNG so the suite has no external dependencies. Each test
//! drives the same property over hundreds of random graphs.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fadr_qdg::graph::Digraph;

const CASES: usize = 256;

fn random_edges(rng: &mut StdRng, n: usize, max_edges: usize) -> Vec<(usize, usize)> {
    let m = rng.gen_range(0..max_edges);
    (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect()
}

/// `topological_order` and `find_cycle` agree: exactly one returns
/// something.
#[test]
fn acyclicity_checks_agree() {
    let mut rng = StdRng::seed_from_u64(0xd16a);
    for _ in 0..CASES {
        let edges = random_edges(&mut rng, 12, 40);
        let mut g = Digraph::new(12);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        assert_eq!(g.is_acyclic(), g.find_cycle().is_none(), "{edges:?}");
    }
}

/// A reported topological order respects every edge.
#[test]
fn topological_order_respects_edges() {
    let mut rng = StdRng::seed_from_u64(0xd16b);
    for _ in 0..CASES {
        let edges = random_edges(&mut rng, 10, 30);
        let mut g = Digraph::new(10);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        if let Some(order) = g.topological_order() {
            let mut pos = [0; 10];
            for (i, &v) in order.iter().enumerate() {
                pos[v] = i;
            }
            for &(a, b) in &edges {
                assert!(pos[a] < pos[b], "edge {a}->{b} violated in {edges:?}");
            }
        }
    }
}

/// A reported cycle really is one: consecutive pairs are edges.
#[test]
fn reported_cycles_are_cycles() {
    let mut rng = StdRng::seed_from_u64(0xd16c);
    for _ in 0..CASES {
        let edges = random_edges(&mut rng, 8, 24);
        let mut g = Digraph::new(8);
        for &(a, b) in &edges {
            g.add_edge(a, b);
        }
        if let Some(c) = g.find_cycle() {
            assert!(!c.is_empty());
            for i in 0..c.len() {
                assert!(
                    g.has_edge(c[i], c[(i + 1) % c.len()]),
                    "non-edge in cycle {c:?} of {edges:?}"
                );
            }
        }
    }
}

/// Levels are monotone along edges (strictly increasing).
#[test]
fn levels_increase_along_edges() {
    let mut rng = StdRng::seed_from_u64(0xd16d);
    for _ in 0..CASES {
        let edges = random_edges(&mut rng, 10, 25);
        let mut g = Digraph::new(10);
        for &(a, b) in &edges {
            if a != b {
                g.add_edge(a, b);
            }
        }
        if g.is_acyclic() {
            let lv = g.levels().expect("acyclic graphs have levels");
            for v in 0..10 {
                for &b in g.successors(v) {
                    assert!(lv[b] > lv[v], "level not monotone on {v}->{b}");
                }
            }
        }
    }
}

/// Forcing a known cycle makes the graph cyclic no matter what else is
/// added.
#[test]
fn forced_cycle_is_found() {
    let mut rng = StdRng::seed_from_u64(0xd16e);
    for _ in 0..CASES {
        let extra = random_edges(&mut rng, 9, 20);
        let k = rng.gen_range(2..6usize);
        let mut g = Digraph::new(9);
        for i in 0..k {
            g.add_edge(i, (i + 1) % k);
        }
        for &(a, b) in &extra {
            g.add_edge(a, b);
        }
        assert!(!g.is_acyclic());
        assert!(g.find_cycle().is_some());
    }
}

/// Edge deduplication: adding the same edges twice changes nothing.
#[test]
fn idempotent_edges() {
    let mut rng = StdRng::seed_from_u64(0xd16f);
    for _ in 0..CASES {
        let edges = random_edges(&mut rng, 8, 16);
        let mut g1 = Digraph::new(8);
        let mut g2 = Digraph::new(8);
        for &(a, b) in &edges {
            g1.add_edge(a, b);
            g2.add_edge(a, b);
            g2.add_edge(a, b);
        }
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.is_acyclic(), g2.is_acyclic());
    }
}
