//! Adversarial tests of the model checker: for each § 2 condition, a
//! routing function violating *exactly that condition* must be rejected
//! by the corresponding check (and ideally pass the others), proving the
//! checker's findings are specific rather than incidental.

use fadr_qdg::{
    explore, verify, BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction,
    Transition,
};
use fadr_topology::{Hypercube, NodeId, Port, Topology};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Msg {
    dst: NodeId,
}

/// A configurable hypercube router used to inject specific defects.
struct Broken {
    cube: Hypercube,
    defect: Defect,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Defect {
    /// Dynamic 1→0 hops offered even when they are the *last* correction,
    /// leaving the arrival state with no static continuation (violates
    /// § 2 condition 3).
    DynamicWithoutEscape,
    /// A detour hop that increases the distance (violates minimality,
    /// and boundedness since it can repeat).
    NonMinimalHop,
    /// Claims only class 0 exists but routes into class 1 (structure).
    UndeclaredClass,
    /// A hop that teleports two dimensions at once (structure: not a
    /// neighbor).
    Teleport,
    /// Delivery claimed at distance 1 from the destination (deliverable
    /// inconsistent with the transition relation).
    EagerDeliver,
}

impl Broken {
    fn new(defect: Defect) -> Self {
        Self {
            cube: Hypercube::new(3),
            defect,
        }
    }

    fn entry(&self, node: NodeId, dst: NodeId) -> u8 {
        u8::from(self.cube.zero_corrections(node, dst) == 0)
    }
}

impl RoutingFunction for Broken {
    type Msg = Msg;

    fn topology(&self) -> &dyn Topology {
        &self.cube
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> Msg {
        Msg { dst }
    }

    fn destination(&self, msg: &Msg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &Msg) -> bool {
        match self.defect {
            Defect::EagerDeliver => fadr_topology::hamming_distance(node, msg.dst) <= 1,
            _ => node == msg.dst,
        }
    }

    fn for_each_transition(&self, at: QueueId, msg: &Msg, f: &mut dyn FnMut(Transition<Msg>)) {
        let u = at.node;
        let dst = msg.dst;
        let internal = |to: QueueId| Transition {
            kind: LinkKind::Static,
            hop: HopKind::Internal,
            to,
            msg: *msg,
        };
        match at.kind {
            QueueKind::Inject => f(internal(QueueId::central(u, self.entry(u, dst)))),
            QueueKind::Central(class) => {
                if self.deliverable(u, msg) {
                    f(internal(QueueId::deliver(u)));
                    return;
                }
                let zeros = self.cube.zero_corrections(u, dst);
                let ones = self.cube.one_corrections(u, dst);
                for dim in 0..self.cube.dims() {
                    let bit = 1usize << dim;
                    let v = u ^ bit;
                    if class == 0 && zeros & bit != 0 {
                        let to_class = match self.defect {
                            Defect::UndeclaredClass => 1,
                            _ => self.entry(v, dst),
                        };
                        let to_node = match self.defect {
                            // Teleport: skip across two dimensions.
                            Defect::Teleport if dim == 0 => v ^ 0b10,
                            _ => v,
                        };
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Link(dim),
                            to: QueueId::central(to_node, to_class),
                            msg: *msg,
                        });
                    } else if class == 0 && ones & bit != 0 {
                        // Dynamic 1->0 in phase A. The sound algorithm
                        // guarantees remaining 0->1 work; the
                        // DynamicWithoutEscape defect also offers it from
                        // phase B states (where no static work remains
                        // until... it routes into q_A of the neighbor,
                        // whose state has zeros == 0: dead end for statics).
                        f(Transition {
                            kind: LinkKind::Dynamic,
                            hop: HopKind::Link(dim),
                            to: QueueId::central(v, 0),
                            msg: *msg,
                        });
                    } else if class == 1 && ones & bit != 0 {
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Link(dim),
                            to: QueueId::central(v, 1),
                            msg: *msg,
                        });
                        if self.defect == Defect::DynamicWithoutEscape {
                            // Also offer a dynamic hop into q_A of the
                            // neighbor: there zeros == 0 yet class == 0,
                            // so the arrival state has no static move.
                            f(Transition {
                                kind: LinkKind::Dynamic,
                                hop: HopKind::Link(dim),
                                to: QueueId::central(v, 0),
                                msg: *msg,
                            });
                        }
                        if self.defect == Defect::NonMinimalHop && zeros == 0 {
                            // A wrong-way move away from the destination.
                            let w = u | bit_back(u, dst);
                            if w != u {
                                f(Transition {
                                    kind: LinkKind::Dynamic,
                                    hop: HopKind::Link((w ^ u).trailing_zeros() as usize),
                                    to: QueueId::central(w, 1),
                                    msg: *msg,
                                });
                            }
                        }
                    }
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        match self.defect {
            Defect::UndeclaredClass => {
                if node & (1usize << port) == 0 {
                    // Deliberately omit Static(1) on upward channels.
                    vec![BufferClass::Static(0)]
                } else {
                    vec![BufferClass::Static(1), BufferClass::Dynamic]
                }
            }
            _ => {
                if node & (1usize << port) == 0 {
                    vec![BufferClass::Static(0), BufferClass::Static(1)]
                } else {
                    vec![BufferClass::Static(1), BufferClass::Dynamic]
                }
            }
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.cube.dims()
    }

    fn name(&self) -> String {
        format!("broken({:?})", self.defect)
    }
}

/// A correctly-matching bit to move away along: the lowest dimension
/// where `u` already agrees with `dst` (flipping it is a detour).
fn bit_back(u: NodeId, dst: NodeId) -> usize {
    let agree = !(u ^ dst) & 0b111;
    if agree == 0 {
        0
    } else {
        1 << agree.trailing_zeros()
    }
}

#[test]
fn condition3_violation_is_caught() {
    let err = verify::verify_deadlock_free(&Broken::new(Defect::DynamicWithoutEscape))
        .expect_err("must catch the missing static continuation");
    assert_eq!(err.check, "deadlock-free");
    assert!(
        err.detail.contains("condition 3") || err.detail.contains("static"),
        "{}",
        err.detail
    );
    // The structured location names the stuck queue: a q_A with no
    // pending 0->1 work, reached over the defective dynamic link.
    assert_eq!(err.queues.len(), 1, "{:?}", err.queues);
    assert_eq!(err.queues[0].kind, QueueKind::Central(0));
}

#[test]
fn non_minimal_hop_is_caught() {
    let err = verify::verify_minimal(&Broken::new(Defect::NonMinimalHop))
        .expect_err("must catch the detour");
    assert_eq!(err.check, "minimal");
    // Its unbounded repetition also violates bounded paths.
    let err = verify::verify_bounded_paths(&Broken::new(Defect::NonMinimalHop))
        .expect_err("detours can repeat");
    assert_eq!(err.check, "bounded-paths");
}

#[test]
fn undeclared_buffer_class_is_caught() {
    let err = verify::verify_structure(&Broken::new(Defect::UndeclaredClass))
        .expect_err("must catch the undeclared buffer class");
    assert_eq!(err.check, "structure");
    assert!(err.detail.contains("not declared"), "{}", err.detail);
}

#[test]
fn teleport_hop_is_caught() {
    let err = verify::verify_structure(&Broken::new(Defect::Teleport))
        .expect_err("must catch the non-neighbor hop");
    assert_eq!(err.check, "structure");
    assert!(err.detail.contains("neighbor"), "{}", err.detail);
}

#[test]
fn eager_delivery_is_caught() {
    // Delivering one hop early means delivered states appear at nodes
    // other than the destination.
    let err = verify::verify_deadlock_free(&Broken::new(Defect::EagerDeliver))
        .expect_err("must catch delivery at the wrong node");
    assert_eq!(err.check, "deadlock-free");
    assert!(err.detail.contains("wrong node"), "{}", err.detail);
}

#[test]
fn defect_free_variant_passes_everything() {
    // Sanity: the real (defect-free) algorithm passes all checks, so each
    // failure above is attributable to its injected defect.
    let rf = fadr_core::HypercubeFullyAdaptive::new(3);
    verify::verify_all(&rf, true).unwrap();
    // And the exploration sizes agree between the broken teleport's cube
    // and the sound one (same topology), showing the checker is not
    // rejecting on size.
    let sound = explore::build_qdg(&rf);
    assert!(sound.static_is_acyclic());
}
