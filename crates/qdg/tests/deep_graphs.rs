//! Stack-safety regression tests: every `Digraph` traversal is iterative
//! (explicit stacks), so million-vertex path graphs — which would
//! overflow the thread stack under naive recursive DFS at default stack
//! sizes — must be handled. Guards the 10-cube-scale certification use
//! case of `fadr-verify`.

use fadr_qdg::graph::Digraph;

const DEEP: usize = 1_000_000;

fn deep_path() -> Digraph {
    let mut g = Digraph::new(DEEP);
    for v in 0..DEEP - 1 {
        g.add_edge(v, v + 1);
    }
    g
}

#[test]
fn deep_path_graph_is_traversed_without_overflow() {
    let g = deep_path();
    assert!(g.is_acyclic());
    assert!(g.find_cycle().is_none());
    let order = g.topological_order().unwrap();
    assert_eq!(order.len(), DEEP);
    let lv = g.levels().unwrap();
    assert_eq!(lv[0], 0);
    assert_eq!(lv[DEEP - 1], DEEP - 1);
    let comps = g.sccs();
    assert_eq!(comps.len(), DEEP);
    assert!(g.shortest_cycle().is_none());
}

#[test]
fn deep_cycle_is_detected_without_overflow() {
    let mut g = deep_path();
    g.add_edge(DEEP - 1, 0);
    assert!(!g.is_acyclic());
    let cycle = g.find_cycle().unwrap();
    assert_eq!(cycle.len(), DEEP);
    let comps = g.sccs();
    assert_eq!(comps.len(), 1);
    assert_eq!(comps[0].len(), DEEP);
}
