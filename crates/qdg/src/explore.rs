//! Exhaustive construction of the queue dependency graph and of the
//! per-(source, destination) reachable-state graphs.
//!
//! The QDG of § 2 is defined over *routes that actually occur*: there is an
//! edge `q → q'` iff some injection/destination pair produces a route using
//! `q'` immediately after `q`. We therefore build it by exploring, for every
//! ordered pair `(src, dst)`, all message states reachable from the
//! injection queue under `R̃`.

use std::collections::{HashMap, VecDeque};

use crate::graph::Digraph;
use crate::{LinkKind, QueueId, QueueKind, RoutingFunction, Transition};

/// The queue dependency graph of a routing function on a concrete network.
#[derive(Debug, Clone)]
pub struct Qdg {
    /// Dense queue index → queue id.
    pub queues: Vec<QueueId>,
    /// Queue id → dense index.
    pub index: HashMap<QueueId, usize>,
    /// Static-link subgraph (the underlying `D = (Q, A_s)`).
    pub static_graph: Digraph,
    /// Full graph `D̃ = (Q, A_s ∪ A_d)`.
    pub full_graph: Digraph,
    /// Edges that occur (at least) as dynamic links.
    pub dynamic_edges: Vec<(usize, usize)>,
}

impl Qdg {
    /// Dense index of a queue, inserting it if new.
    fn intern(&mut self, q: QueueId) -> usize {
        if let Some(&i) = self.index.get(&q) {
            return i;
        }
        let i = self.queues.len();
        self.queues.push(q);
        self.index.insert(q, i);
        self.static_graph.ensure_vertex(i);
        self.full_graph.ensure_vertex(i);
        i
    }

    /// Whether the underlying (static) QDG is acyclic — the paper's
    /// sufficient condition for deadlock freedom of the greedy algorithm.
    pub fn static_is_acyclic(&self) -> bool {
        self.static_graph.is_acyclic()
    }

    /// A cycle of the static QDG, as queue ids, if one exists.
    pub fn static_cycle(&self) -> Option<Vec<QueueId>> {
        self.static_graph
            .find_cycle()
            .map(|c| c.into_iter().map(|i| self.queues[i]).collect())
    }

    /// The paper's `Level(q)` over the static DAG; `None` if the static
    /// QDG is cyclic (the scheme is rejected — levels don't exist).
    pub fn static_levels(&self) -> Option<HashMap<QueueId, usize>> {
        let lv = self.static_graph.levels()?;
        Some(self.queues.iter().copied().zip(lv).collect())
    }
}

/// Build the QDG by exploring every `(src, dst)` pair with `src != dst`.
pub fn build_qdg<R: RoutingFunction + ?Sized>(rf: &R) -> Qdg {
    let n = rf.topology().num_nodes();
    let mut qdg = Qdg {
        queues: Vec::new(),
        index: HashMap::new(),
        static_graph: Digraph::default(),
        full_graph: Digraph::default(),
        dynamic_edges: Vec::new(),
    };
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let states = explore_pair(rf, src, dst);
            for (state_idx, (q, msg)) in states.states.iter().enumerate() {
                let a = qdg.intern(*q);
                let _ = msg;
                for t in &states.transitions[state_idx] {
                    // A "stutter" back into the same queue (e.g. the
                    // shuffle-exchange's degenerate one-node cycles) holds
                    // its existing slot rather than acquiring a new one, so
                    // it creates no queue dependency.
                    if t.to == *q {
                        continue;
                    }
                    let b = qdg.intern(t.to);
                    qdg.full_graph.add_edge(a, b);
                    match t.kind {
                        LinkKind::Static => qdg.static_graph.add_edge(a, b),
                        LinkKind::Dynamic => {
                            if !qdg.dynamic_edges.contains(&(a, b)) {
                                qdg.dynamic_edges.push((a, b));
                            }
                        }
                    }
                }
            }
        }
    }
    qdg
}

/// Reachable-state graph for one `(src, dst)` pair: every `(queue, msg)`
/// state reachable from the injection queue, with its outgoing transitions.
#[derive(Debug, Clone)]
pub struct StateGraph<M> {
    /// The `(queue, message-state)` pairs, index 0 being the injection state.
    pub states: Vec<(QueueId, M)>,
    /// Outgoing transitions per state (empty for delivery states).
    pub transitions: Vec<Vec<Transition<M>>>,
    /// Dense successor indices per state aligned with `transitions`
    /// (`usize::MAX` marks a transition into a delivery queue, which is
    /// also materialized as a state with no successors).
    pub succ: Vec<Vec<usize>>,
    /// The source node explored from.
    pub src: usize,
    /// The destination node explored to.
    pub dst: usize,
}

impl<M> StateGraph<M> {
    /// Whether state `i` is a delivery state (message has arrived).
    pub fn is_delivered(&self, i: usize) -> bool {
        self.states[i].0.kind == QueueKind::Deliver
    }
}

/// Explore all states reachable for one `(src, dst)` pair.
pub fn explore_pair<R: RoutingFunction + ?Sized>(
    rf: &R,
    src: usize,
    dst: usize,
) -> StateGraph<R::Msg> {
    assert_ne!(src, dst, "explore_pair requires src != dst");
    let init = (QueueId::inject(src), rf.initial_msg(src, dst));
    let mut index: HashMap<(QueueId, R::Msg), usize> = HashMap::new();
    let mut states = vec![init.clone()];
    index.insert(init, 0);
    let mut transitions: Vec<Vec<Transition<R::Msg>>> = Vec::new();
    let mut succ: Vec<Vec<usize>> = Vec::new();
    let mut frontier = VecDeque::from([0usize]);
    while let Some(i) = frontier.pop_front() {
        // `states` only grows, so clone the state out to appease borrows.
        let (q, msg) = states[i].clone();
        let ts = if q.kind == QueueKind::Deliver {
            Vec::new()
        } else {
            rf.transitions(q, &msg)
        };
        let mut row = Vec::with_capacity(ts.len());
        for t in &ts {
            let key = (t.to, t.msg.clone());
            let j = *index.entry(key.clone()).or_insert_with(|| {
                let j = states.len();
                states.push(key);
                frontier.push_back(j);
                j
            });
            row.push(j);
        }
        // States are processed in insertion order, so rows align.
        debug_assert_eq!(transitions.len(), i);
        transitions.push(ts);
        succ.push(row);
    }
    StateGraph {
        states,
        transitions,
        succ,
        src,
        dst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::test_fixtures::EcubeHypercube;

    #[test]
    fn ecube_pair_exploration_is_a_single_path() {
        let rf = EcubeHypercube::new(3);
        let sg = explore_pair(&rf, 0b000, 0b101);
        // Oblivious: one injection state, one state per hop node, one
        // delivery state; dims 0 then 2 corrected.
        let nodes: Vec<_> = sg.states.iter().map(|(q, _)| q.node).collect();
        assert_eq!(nodes, vec![0b000, 0b000, 0b001, 0b101, 0b101]);
        assert!(sg.is_delivered(4));
        assert!(!sg.is_delivered(3));
    }

    #[test]
    fn ecube_qdg_is_static_only_but_cyclic() {
        // Single-queue store-and-forward e-cube: the QDG contains e.g.
        // q[00] -> q[01] -> q[11] -> q[10] -> q[00].
        let rf = EcubeHypercube::new(3);
        let qdg = build_qdg(&rf);
        assert!(qdg.dynamic_edges.is_empty());
        assert!(!qdg.static_is_acyclic());
        assert!(qdg.static_cycle().is_some());
        // Levels are undefined on a cyclic static QDG: callers get None,
        // not a panic (the fuzzer feeds cyclic QDGs deliberately).
        assert!(qdg.static_levels().is_none());
        // 8 inject + 8 central + 8 deliver queues.
        assert_eq!(qdg.queues.len(), 24);
    }

    #[test]
    fn hang_static_levels_start_at_injection() {
        use crate::verify::test_fixtures::HangHypercubeStatic;
        let rf = HangHypercubeStatic::new(3);
        let qdg = build_qdg(&rf);
        assert!(qdg.static_is_acyclic());
        let levels = qdg.static_levels().expect("acyclic static QDG has levels");
        // Injection queues are sources (level 0), and phase-B queues sit
        // strictly above the phase-A queue of the same node.
        for v in 0..rf.topology().num_nodes() {
            assert_eq!(levels[&QueueId::inject(v)], 0);
            // q_A of the all-ones node is never used (phase A requires a
            // pending 0→1 correction), so compare only where both exist.
            if let (Some(a), Some(b)) = (
                levels.get(&QueueId::central(v, 0)),
                levels.get(&QueueId::central(v, 1)),
            ) {
                assert!(b > a, "node {v}: level(qB)={b} <= level(qA)={a}");
            }
        }
    }
}
