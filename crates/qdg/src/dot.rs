//! Graphviz rendering of queue dependency graphs.
//!
//! Regenerates the paper's Figures 1–3 (the 3-hypercube, 3×3-mesh, and
//! 3-shuffle-exchange hung from a node, with dynamic links drawn dashed).

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::explore::Qdg;
use crate::QueueKind;

/// Options for QDG rendering.
#[derive(Debug, Clone, Copy, Default)]
pub struct DotOptions {
    /// Include injection queues (the paper's figures omit them).
    pub show_inject: bool,
    /// Include delivery queues (the paper's figures omit them).
    pub show_deliver: bool,
}

/// Render a QDG as Graphviz: solid arrows for static links, dashed for
/// dynamic links, queues labelled by a caller-supplied function.
pub fn qdg_to_dot(
    qdg: &Qdg,
    title: &str,
    label: &dyn Fn(crate::QueueId) -> String,
    opts: DotOptions,
) -> String {
    let visible = |i: usize| match qdg.queues[i].kind {
        QueueKind::Inject => opts.show_inject,
        QueueKind::Deliver => opts.show_deliver,
        QueueKind::Central(_) => true,
    };
    let dynamic: HashSet<(usize, usize)> = qdg.dynamic_edges.iter().copied().collect();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  node [shape=box fontsize=10];");
    for (i, &q) in qdg.queues.iter().enumerate() {
        if visible(i) {
            let _ = writeln!(out, "  v{} [label=\"{}\"];", i, label(q));
        }
    }
    for a in 0..qdg.queues.len() {
        if !visible(a) {
            continue;
        }
        for &b in qdg.full_graph.successors(a) {
            if !visible(b) {
                continue;
            }
            if qdg.static_graph.has_edge(a, b) {
                let _ = writeln!(out, "  v{a} -> v{b};");
            }
            if dynamic.contains(&(a, b)) {
                let _ = writeln!(out, "  v{a} -> v{b} [style=dashed];");
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::build_qdg;
    use crate::verify::test_fixtures::HangHypercubeStatic;

    #[test]
    fn renders_central_queues_only_by_default() {
        let qdg = build_qdg(&HangHypercubeStatic::new(2));
        let dot = qdg_to_dot(&qdg, "hang(2)", &|q| q.to_string(), DotOptions::default());
        assert!(dot.contains("digraph \"hang(2)\""));
        assert!(dot.contains("q0[0]"));
        assert!(!dot.contains("i[0]"));
        assert!(!dot.contains("d[0]"));
        // No dynamic links in the static hang.
        assert!(!dot.contains("dashed"));
    }

    #[test]
    fn renders_all_queues_when_asked() {
        let qdg = build_qdg(&HangHypercubeStatic::new(2));
        let opts = DotOptions {
            show_inject: true,
            show_deliver: true,
        };
        let dot = qdg_to_dot(&qdg, "hang(2)", &|q| q.to_string(), opts);
        assert!(dot.contains("i[0]"));
        assert!(dot.contains("d[3]"));
    }
}
