//! A small dense digraph with cycle detection and longest-path levels.
//!
//! Vertices are dense indices assigned by the caller (the QDG explorer maps
//! [`QueueId`](crate::QueueId)s to indices). Edges are deduplicated.

use std::collections::HashSet;

/// Directed graph over vertices `0..n` with deduplicated edges.
#[derive(Debug, Clone, Default)]
pub struct Digraph {
    adj: Vec<Vec<usize>>,
    edge_set: HashSet<(usize, usize)>,
}

impl Digraph {
    /// Empty graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            edge_set: HashSet::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of (distinct) edges.
    pub fn num_edges(&self) -> usize {
        self.edge_set.len()
    }

    /// Ensure vertex `v` exists (growing the vertex set as needed).
    pub fn ensure_vertex(&mut self, v: usize) {
        if v >= self.adj.len() {
            self.adj.resize(v + 1, Vec::new());
        }
    }

    /// Add edge `a -> b` (idempotent).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        self.ensure_vertex(a.max(b));
        if self.edge_set.insert((a, b)) {
            self.adj[a].push(b);
        }
    }

    /// Whether edge `a -> b` is present.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.edge_set.contains(&(a, b))
    }

    /// Successors of `v`.
    pub fn successors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Kahn's algorithm: `Some(topological_order)` if acyclic, else `None`.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.adj.len();
        let mut indeg = vec![0usize; n];
        for succs in &self.adj {
            for &b in succs {
                indeg[b] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            order.push(v);
            for &b in &self.adj[v] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    stack.push(b);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether the graph is a DAG.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// One directed cycle, if any (for diagnostics). Uses iterative DFS
    /// with colors; returns the vertex sequence of the cycle.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.adj.len();
        let mut color = vec![Color::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // (vertex, next successor index) stack.
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < self.adj[v].len() {
                    let u = self.adj[v][*i];
                    *i += 1;
                    match color[u] {
                        Color::White => {
                            color[u] = Color::Gray;
                            parent[u] = v;
                            stack.push((u, 0));
                        }
                        Color::Gray => {
                            // Found a back edge v -> u: reconstruct cycle.
                            let mut cycle = vec![u];
                            let mut w = v;
                            while w != u {
                                cycle.push(w);
                                w = parent[w];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[v] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Strongly connected components, via Kosaraju's algorithm with
    /// explicit-stack DFS (no recursion: safe on ~1e6-vertex path graphs;
    /// see `tests/deep_graphs.rs`). Components are returned in reverse
    /// topological order of the condensation.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.adj.len();
        // Pass 1: finish order on the forward graph.
        let mut finished = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            let mut stack = vec![(start, 0usize)];
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < self.adj[v].len() {
                    let u = self.adj[v][*i];
                    *i += 1;
                    if !seen[u] {
                        seen[u] = true;
                        stack.push((u, 0));
                    }
                } else {
                    finished.push(v);
                    stack.pop();
                }
            }
        }
        // Pass 2: reverse-graph DFS in reverse finish order.
        let mut radj = vec![Vec::new(); n];
        for (a, succs) in self.adj.iter().enumerate() {
            for &b in succs {
                radj[b].push(a);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for &start in finished.iter().rev() {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = comps.len();
            comp[start] = id;
            let mut members = vec![start];
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &u in &radj[v] {
                    if comp[u] == usize::MAX {
                        comp[u] = id;
                        members.push(u);
                        stack.push(u);
                    }
                }
            }
            comps.push(members);
        }
        comps.reverse();
        comps
    }

    /// A shortest directed cycle (fewest edges), if any: for each vertex
    /// of each non-trivial SCC, BFS within the component back to the
    /// start. Intended for diagnostics on failed graphs, where minimal
    /// counterexamples matter more than asymptotics.
    pub fn shortest_cycle(&self) -> Option<Vec<usize>> {
        let n = self.adj.len();
        let mut comp = vec![usize::MAX; n];
        let mut nontrivial = Vec::new();
        for (id, members) in self.sccs().into_iter().enumerate() {
            let single = members.len() == 1;
            for &v in &members {
                comp[v] = id;
            }
            if !single {
                nontrivial.push(members);
            } else if self.has_edge(members[0], members[0]) {
                return Some(members); // a self-loop is the minimum possible
            }
        }
        let mut best: Option<Vec<usize>> = None;
        let mut parent = vec![usize::MAX; n];
        for members in nontrivial {
            for &start in &members {
                if let Some(b) = &best {
                    if b.len() <= 2 {
                        return best; // cannot beat a 2-cycle (no self-loops here)
                    }
                    // Any cycle through `start` is at least 2 long; only
                    // BFS while an improvement is possible.
                }
                for &v in &members {
                    parent[v] = usize::MAX;
                }
                let mut frontier = vec![start];
                let mut depth = 1usize;
                'bfs: while !frontier.is_empty() {
                    if let Some(b) = &best {
                        if depth >= b.len() {
                            break;
                        }
                    }
                    let mut next = Vec::new();
                    for &v in &frontier {
                        for &u in &self.adj[v] {
                            if comp[u] != comp[start] {
                                continue;
                            }
                            if u == start {
                                // Reconstruct start -> ... -> v.
                                let mut cycle = vec![v];
                                let mut w = v;
                                while w != start {
                                    w = parent[w];
                                    cycle.push(w);
                                }
                                cycle.reverse();
                                best = Some(cycle);
                                break 'bfs;
                            }
                            if parent[u] == usize::MAX {
                                parent[u] = v;
                                next.push(u);
                            }
                        }
                    }
                    frontier = next;
                    depth += 1;
                }
            }
        }
        best
    }

    /// The subgraph keeping only edges whose *both* endpoints satisfy
    /// `keep` (the vertex set is unchanged, so indices stay valid).
    /// Used to ask order questions of one buffer class at a time, e.g.
    /// "does this class have a static cycle entirely within itself?".
    pub fn restricted(&self, keep: &dyn Fn(usize) -> bool) -> Digraph {
        let mut g = Digraph::new(self.adj.len());
        for (a, succs) in self.adj.iter().enumerate() {
            if !keep(a) {
                continue;
            }
            for &b in succs {
                if keep(b) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// The paper's `Level(q)`: length of the longest path from any source
    /// (in-degree-0 vertex) to each vertex. `None` if the graph is
    /// cyclic (levels are only defined on a DAG) — callers deciding
    /// deadlock freedom must treat that as a rejection, not a crash:
    /// the fuzzer feeds cyclic QDGs on purpose.
    pub fn levels(&self) -> Option<Vec<usize>> {
        let order = self.topological_order()?;
        let mut level = vec![0usize; self.adj.len()];
        for &v in &order {
            for &b in &self.adj[v] {
                level[b] = level[b].max(level[v] + 1);
            }
        }
        Some(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_chain() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(g.is_acyclic());
        assert_eq!(g.levels().unwrap(), vec![0, 1, 2, 3]);
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn detects_cycle() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
        // Every consecutive pair (cyclically) is an edge.
        for i in 0..cycle.len() {
            assert!(g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = Digraph::new(1);
        g.add_edge(0, 0);
        assert!(!g.is_acyclic());
        assert_eq!(g.find_cycle().unwrap(), vec![0]);
    }

    #[test]
    fn edges_deduplicated() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.successors(0), &[1]);
    }

    #[test]
    fn diamond_levels_take_longest_path() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(g.levels().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn levels_of_a_cyclic_graph_are_none() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        assert_eq!(g.levels(), None);
        // A self-loop is also cyclic.
        let mut s = Digraph::new(1);
        s.add_edge(0, 0);
        assert_eq!(s.levels(), None);
    }

    #[test]
    fn grow_on_demand() {
        let mut g = Digraph::default();
        g.add_edge(5, 2);
        assert_eq!(g.num_vertices(), 6);
        assert!(g.is_acyclic());
    }

    #[test]
    fn sccs_of_a_dag_are_singletons_in_topological_order() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        g.add_edge(3, 2);
        let comps = g.sccs();
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.len() == 1));
        // Reverse topological order: successors come before predecessors.
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, c) in comps.iter().enumerate() {
                p[c[0]] = i;
            }
            p
        };
        assert!(pos[2] < pos[1] && pos[1] < pos[0]);
        assert!(pos[2] < pos[3] && pos[3] < pos[0]);
    }

    #[test]
    fn sccs_group_cycles() {
        // Two 2-cycles joined by a bridge, plus an isolated vertex.
        let mut g = Digraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        let mut sizes: Vec<usize> = g.sccs().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn shortest_cycle_prefers_the_short_one() {
        // A 5-cycle with a chord making a 2-cycle.
        let mut g = Digraph::new(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        g.add_edge(1, 0);
        let c = g.shortest_cycle().unwrap();
        assert_eq!(c.len(), 2);
        for i in 0..c.len() {
            assert!(g.has_edge(c[i], c[(i + 1) % c.len()]));
        }
    }

    #[test]
    fn restricted_keeps_only_edges_within_the_kept_set() {
        // 0 -> 1 -> 2 -> 0 with a chord 1 -> 3.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(1, 3);
        let sub = g.restricted(&|v| v != 2);
        assert_eq!(sub.num_vertices(), 4);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 3));
        assert!(!sub.has_edge(1, 2));
        assert!(!sub.has_edge(2, 0));
        assert!(sub.is_acyclic());
        // Keeping everything reproduces the cycle.
        assert!(!g.restricted(&|_| true).is_acyclic());
    }

    #[test]
    fn shortest_cycle_finds_self_loops_and_none_on_dags() {
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        assert!(g.shortest_cycle().is_none());
        g.add_edge(2, 2);
        assert_eq!(g.shortest_cycle().unwrap(), vec![2]);
    }
}
