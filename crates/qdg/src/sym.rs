//! Scheme-declared symmetry metadata for scalable static certification.
//!
//! The exhaustive checker in [`crate::verify`] explores every `(src, dst)`
//! pair — exact, but quadratic in the node count. The `fadr-verify` crate
//! instead builds the static QDG per queue *class*: a scheme that knows
//! its own symmetry implements [`Symmetry`] to map every concrete queue to
//! a [`QueueClass`] (an orbit of the scheme's automorphism group, labelled
//! by an automorphism-invariant *level*) and to nominate a set of
//! representative destinations whose routes cover every class-level
//! dependency up to automorphism.
//!
//! Soundness direction: the classifier is *invariant* (every concrete
//! static edge maps to a class edge), so an acyclic class graph lifts to
//! an acyclic concrete static QDG — any rank function over classes ranks
//! the concrete queues through the classifier. The converse does **not**
//! hold: a class cycle may be an artifact of the quotient, which is why
//! the certifier falls back to the identity classifier before rejecting.
//! The default implementation *is* that identity classifier (every queue
//! its own class, every destination a representative), which is trivially
//! sound for any scheme.

use std::fmt;

use fadr_topology::NodeId;

use crate::{QueueId, QueueKind, RoutingFunction};

/// The class of a queue under a scheme's declared symmetry: the central
/// queue kind (which already carries the § 2 buffer class) plus a
/// scheme-specific level invariant (e.g. the Hamming weight of the node
/// for the hypercube hang, `x + y` for the mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueClass {
    /// Queue kind; [`QueueKind::Central`] carries the buffer class.
    pub kind: QueueKind,
    /// Automorphism-invariant level of the queue's node.
    pub level: u32,
}

impl QueueClass {
    /// Class of an injection queue (all injection queues share level 0:
    /// they have no incoming QDG edges, so lumping them is always sound).
    pub fn inject() -> Self {
        Self {
            kind: QueueKind::Inject,
            level: 0,
        }
    }

    /// Class of a delivery queue (no outgoing QDG edges; lumped).
    pub fn deliver() -> Self {
        Self {
            kind: QueueKind::Deliver,
            level: 0,
        }
    }

    /// Class of a central queue at the given invariant level.
    pub fn central(class: u8, level: u32) -> Self {
        Self {
            kind: QueueKind::Central(class),
            level,
        }
    }

    /// The identity classifier: every queue its own class (level = node).
    pub fn concrete(q: QueueId) -> Self {
        let level = u32::try_from(q.node).expect("node id fits u32");
        match q.kind {
            QueueKind::Inject => Self {
                kind: QueueKind::Inject,
                level,
            },
            QueueKind::Deliver => Self {
                kind: QueueKind::Deliver,
                level,
            },
            QueueKind::Central(c) => Self::central(c, level),
        }
    }

    /// The concrete queue a class of the identity classifier denotes.
    /// Only meaningful for classes produced by [`QueueClass::concrete`].
    pub fn as_concrete_queue(self) -> QueueId {
        QueueId {
            node: self.level as usize,
            kind: self.kind,
        }
    }
}

impl fmt::Display for QueueClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            QueueKind::Inject => write!(f, "i@{}", self.level),
            QueueKind::Central(c) => write!(f, "q{}@{}", c, self.level),
            QueueKind::Deliver => write!(f, "d@{}", self.level),
        }
    }
}

/// A routing function that additionally declares its symmetry structure.
///
/// # Contract
///
/// Implementations promise that for every destination `d` there is an
/// automorphism `σ` of the scheme with `σ(d)` in
/// [`Symmetry::dst_representatives`] such that `σ` maps routes to routes,
/// commutes with the transition relation, and **preserves
/// [`Symmetry::queue_class`]**. Then every static QDG edge induced by
/// some `(src, d)` appears, as a class edge, among the routes of a
/// representative destination — so the class graph built from the
/// representatives alone covers the whole network, and the per-state
/// progress checks on representative destinations cover all destinations.
///
/// The promise is *trusted* by the certifier (and documented per scheme
/// in DESIGN.md § 10); the cross-validation suite checks it against the
/// exhaustive explorer on small instances. The defaults — identity
/// classifier, all destinations — make the promise vacuous and are sound
/// for any scheme.
pub trait Symmetry: RoutingFunction {
    /// The class of queue `q` under the scheme's automorphism group.
    fn queue_class(&self, q: QueueId) -> QueueClass {
        QueueClass::concrete(q)
    }

    /// Representative destinations covering all destinations up to
    /// class-preserving automorphism.
    fn dst_representatives(&self) -> Vec<NodeId> {
        (0..self.topology().num_nodes()).collect()
    }

    /// Human-readable description of the symmetry argument.
    fn symmetry(&self) -> String {
        "concrete (identity classifier, all destinations)".into()
    }

    /// Whether the classifier actually merges queues or drops
    /// destinations (`false` for the identity defaults). The certifier
    /// uses this to decide whether a class cycle needs a concrete rebuild
    /// before it may be reported as a real counterexample.
    fn is_reduced(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_classifier_roundtrips() {
        for q in [
            QueueId::inject(3),
            QueueId::central(5, 1),
            QueueId::deliver(0),
        ] {
            assert_eq!(QueueClass::concrete(q).as_concrete_queue(), q);
        }
    }

    #[test]
    fn class_display() {
        assert_eq!(QueueClass::inject().to_string(), "i@0");
        assert_eq!(QueueClass::central(1, 3).to_string(), "q1@3");
        assert_eq!(QueueClass::deliver().to_string(), "d@0");
    }

    #[test]
    fn classes_order_by_kind_then_level() {
        assert!(QueueClass::central(0, 9) < QueueClass::central(1, 0));
        assert!(QueueClass::central(0, 1) < QueueClass::central(0, 2));
    }
}
