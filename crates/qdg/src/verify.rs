//! Model checking of routing functions on concrete network instances.
//!
//! These checks mechanize the paper's § 2 requirements plus the properties
//! its theorems claim (minimality, full adaptivity, bounded path length).
//! They enumerate every `(src, dst)` pair and every reachable
//! `(queue, message-state)` configuration, so they are meant for *small*
//! instances (hypercubes up to n ≈ 5, meshes up to ≈ 6×6); the point is
//! that the very same [`RoutingFunction`] implementation is then scaled up
//! by the simulator.

use std::collections::HashMap;

use fadr_topology::graph as tgraph;

use crate::explore::{build_qdg, explore_pair, StateGraph};
use crate::graph::Digraph;
use crate::{HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};

/// A failed check, with a human-readable location plus the structured
/// queue ids involved (a cycle in order, or the queue a state is stuck
/// at) so tools — e.g. `fadr-verify`'s counterexample extractor — can
/// consume the location without parsing the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the failed check.
    pub check: &'static str,
    /// What went wrong and where.
    pub detail: String,
    /// The queues implicated: the full cycle (in order) for cycle
    /// violations, the state's queue (and hop target, where relevant)
    /// otherwise. Empty when no specific queue is implicated.
    pub queues: Vec<QueueId>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

impl std::error::Error for Violation {}

fn fail(check: &'static str, detail: String) -> Result<(), Violation> {
    Err(Violation {
        check,
        detail,
        queues: Vec::new(),
    })
}

fn fail_at(check: &'static str, detail: String, queues: Vec<QueueId>) -> Result<(), Violation> {
    Err(Violation {
        check,
        detail,
        queues,
    })
}

/// Structural sanity of the routing function (the paper's "one hop away"
/// requirement and the constraints on injection/delivery queues):
///
/// * internal hops stay on the same node; link hops follow an existing port
///   to exactly the neighbor;
/// * no transition targets an injection queue; transitions from the
///   injection queue are internal and static;
/// * central classes are `< num_classes()`; every link hop's buffer class
///   is declared by [`RoutingFunction::buffer_classes`];
/// * link hops only target central queues (delivery is reached by an
///   internal hop at the destination), and [`RoutingFunction::deliverable`]
///   agrees with the transition relation.
pub fn verify_structure<R: RoutingFunction + ?Sized>(rf: &R) -> Result<(), Violation> {
    let topo = rf.topology();
    let n = topo.num_nodes();
    // Cast audit: the identity classifier (`QueueClass::concrete`)
    // encodes node ids as `u32` levels. A (lazy) topology claiming more
    // nodes than fit is a typed rejection here, not a cast panic in the
    // certifier's classification pass.
    if u32::try_from(n).is_err() {
        return fail(
            "structure",
            format!("num_nodes = {n} exceeds the u32 node-id space of the class encoding"),
        );
    }
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let sg = explore_pair(rf, src, dst);
            for (i, (q, msg)) in sg.states.iter().enumerate() {
                if q.kind == QueueKind::Deliver {
                    continue;
                }
                let ts = &sg.transitions[i];
                if q.kind == QueueKind::Inject {
                    for t in ts {
                        if t.hop != HopKind::Internal || t.kind != LinkKind::Static {
                            return fail(
                                "structure",
                                format!("{q}: injection hop must be internal+static, got {t:?}"),
                            );
                        }
                    }
                }
                let here_deliverable = rf.deliverable(q.node, msg);
                let has_deliver_hop = ts.iter().any(|t| t.to.kind == QueueKind::Deliver);
                if q.kind != QueueKind::Inject && here_deliverable != has_deliver_hop {
                    return fail(
                        "structure",
                        format!("{q}: deliverable()={here_deliverable} but deliver-hop={has_deliver_hop} for {msg:?}"),
                    );
                }
                if here_deliverable && q.kind != QueueKind::Inject && ts.len() != 1 {
                    return fail(
                        "structure",
                        format!(
                            "{q}: deliverable state must have exactly the delivery hop, got {ts:?}"
                        ),
                    );
                }
                for t in ts {
                    check_transition(rf, q.node, t)?;
                }
            }
        }
    }
    Ok(())
}

fn check_transition<R: RoutingFunction + ?Sized>(
    rf: &R,
    node: usize,
    t: &Transition<R::Msg>,
) -> Result<(), Violation> {
    let topo = rf.topology();
    if t.to.kind == QueueKind::Inject {
        return fail(
            "structure",
            format!("transition into injection queue {}", t.to),
        );
    }
    if let QueueKind::Central(c) = t.to.kind {
        if usize::from(c) >= rf.num_classes() {
            return fail("structure", format!("class {c} out of range at {}", t.to));
        }
    }
    match t.hop {
        HopKind::Internal => {
            if t.to.node != node {
                return fail(
                    "structure",
                    format!("internal hop changes node {node} -> {}", t.to.node),
                );
            }
        }
        HopKind::Link(p) => {
            match topo.neighbor(node, p) {
                Some(v) if v == t.to.node => {}
                other => {
                    return fail(
                        "structure",
                        format!(
                            "link hop {node} --{p}--> {} but neighbor is {other:?}",
                            t.to.node
                        ),
                    )
                }
            }
            let class = match (t.kind, t.to.kind) {
                (LinkKind::Static, QueueKind::Central(c)) => crate::BufferClass::Static(c),
                (LinkKind::Dynamic, QueueKind::Central(_)) => crate::BufferClass::Dynamic,
                _ => {
                    return fail(
                        "structure",
                        format!("link hop must target a central queue, got {}", t.to),
                    )
                }
            };
            if !rf.buffer_classes(node, p).contains(&class) {
                return fail(
                    "structure",
                    format!("buffer class {class:?} not declared on {node} --{p}-->"),
                );
            }
        }
    }
    Ok(())
}

/// Deadlock freedom, following the paper's § 2 argument:
///
/// 1. the static-link QDG (over all `(src, dst)` routes) is acyclic;
/// 2. every reachable non-delivered state has at least one transition and
///    at least one *static* transition (so a message that took a dynamic
///    link "will still have the possibility of taking a static link" —
///    condition 3);
/// 3. per pair, the static-only state graph is acyclic and every maximal
///    static path ends in the correct delivery queue `d_dst` (no dead
///    ends, guaranteed progress through the underlying DAG).
pub fn verify_deadlock_free<R: RoutingFunction + ?Sized>(rf: &R) -> Result<(), Violation> {
    let qdg = build_qdg(rf);
    if let Some(cycle) = qdg.static_cycle() {
        let pretty: Vec<String> = cycle.iter().map(ToString::to_string).collect();
        return fail_at(
            "deadlock-free",
            format!("static QDG has a cycle: {}", pretty.join(" -> ")),
            cycle,
        );
    }
    let topo = rf.topology();
    let n = topo.num_nodes();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let sg = explore_pair(rf, src, dst);
            check_static_progress(&sg, dst)?;
        }
    }
    Ok(())
}

fn check_static_progress<M: Clone + std::fmt::Debug>(
    sg: &StateGraph<M>,
    dst: usize,
) -> Result<(), Violation> {
    // Static-only successor graph over state indices.
    let mut static_graph = Digraph::new(sg.states.len());
    for (i, ts) in sg.transitions.iter().enumerate() {
        if sg.is_delivered(i) {
            continue;
        }
        if ts.is_empty() {
            return fail_at(
                "deadlock-free",
                format!(
                    "dead end: no transitions at {} for {:?}",
                    sg.states[i].0, sg.states[i].1
                ),
                vec![sg.states[i].0],
            );
        }
        let mut has_static = false;
        for (t, &j) in ts.iter().zip(&sg.succ[i]) {
            if t.kind == LinkKind::Static {
                has_static = true;
                static_graph.add_edge(i, j);
            }
        }
        if !has_static {
            return fail_at(
                "deadlock-free",
                format!(
                    "condition 3 violated: no static continuation at {} for {:?}",
                    sg.states[i].0, sg.states[i].1
                ),
                vec![sg.states[i].0],
            );
        }
    }
    if let Some(cycle) = static_graph.find_cycle() {
        return fail_at(
            "deadlock-free",
            format!(
                "static state cycle through {} (src={}, dst={})",
                sg.states[cycle[0]].0, sg.src, sg.dst
            ),
            cycle.iter().map(|&i| sg.states[i].0).collect(),
        );
    }
    // Acyclic + every non-delivered state has a static successor ⇒ every
    // maximal static path ends at a delivered state; verify it is d_dst.
    for (i, (q, msg)) in sg.states.iter().enumerate() {
        if sg.is_delivered(i) && q.node != dst {
            return fail_at(
                "deadlock-free",
                format!(
                    "delivered at wrong node: {} instead of {dst} ({msg:?})",
                    q.node
                ),
                vec![*q],
            );
        }
    }
    Ok(())
}

/// Minimality: every link hop of every reachable state strictly decreases
/// the network distance to the destination (so all routes have exactly
/// `distance(src, dst)` link hops).
pub fn verify_minimal<R: RoutingFunction + ?Sized>(rf: &R) -> Result<(), Violation> {
    let topo = rf.topology();
    let n = topo.num_nodes();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let sg = explore_pair(rf, src, dst);
            for (i, (q, msg)) in sg.states.iter().enumerate() {
                if sg.is_delivered(i) {
                    continue;
                }
                for t in &sg.transitions[i] {
                    if matches!(t.hop, HopKind::Link(_))
                        && topo.distance(t.to.node, dst) + 1 != topo.distance(q.node, dst)
                    {
                        return fail_at(
                            "minimal",
                            format!(
                                "non-minimal hop {} -> {} toward {dst} (msg {msg:?})",
                                q.node, t.to.node
                            ),
                            vec![*q, t.to],
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

/// Full adaptivity: for every `(src, dst)`, *every* shortest node path of
/// the topology is realizable by some sequence of transitions ("all
/// possible minimal paths … are of potential use at the time a message is
/// injected"). Exponential in path count; small instances only.
pub fn verify_fully_adaptive<R: RoutingFunction + ?Sized>(rf: &R) -> Result<(), Violation> {
    let topo = rf.topology();
    let n = topo.num_nodes();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let sg = explore_pair(rf, src, dst);
            // For each state, the node path is determined by the hops taken;
            // collect all realizable node paths that end delivered.
            let mut realizable: Vec<Vec<usize>> = Vec::new();
            let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, vec![src])];
            while let Some((i, path)) = stack.pop() {
                if sg.is_delivered(i) {
                    realizable.push(path);
                    continue;
                }
                for (t, &j) in sg.transitions[i].iter().zip(&sg.succ[i]) {
                    let mut p = path.clone();
                    if matches!(t.hop, HopKind::Link(_)) {
                        p.push(t.to.node);
                    }
                    stack.push((j, p));
                }
            }
            for want in tgraph::all_shortest_paths(topo, src, dst) {
                if !realizable.contains(&want) {
                    return fail(
                        "fully-adaptive",
                        format!("shortest path {want:?} not realizable (src={src}, dst={dst})"),
                    );
                }
            }
        }
    }
    Ok(())
}

/// Livelock freedom / bounded paths: the *full* (static + dynamic) state
/// graph of every pair is acyclic and no route exceeds
/// [`RoutingFunction::max_hops`] link hops.
pub fn verify_bounded_paths<R: RoutingFunction + ?Sized>(rf: &R) -> Result<(), Violation> {
    let topo = rf.topology();
    let n = topo.num_nodes();
    let bound = rf.max_hops();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let sg = explore_pair(rf, src, dst);
            let mut full = Digraph::new(sg.states.len());
            for (i, row) in sg.succ.iter().enumerate() {
                for &j in row {
                    full.add_edge(i, j);
                }
            }
            let Some(order) = full.topological_order() else {
                return fail(
                    "bounded-paths",
                    format!("state cycle (possible livelock) for src={src}, dst={dst}"),
                );
            };
            // Longest link-hop count from the injection state.
            let mut hops: HashMap<usize, usize> = HashMap::new();
            hops.insert(0, 0);
            for &i in &order {
                let Some(&h) = hops.get(&i) else { continue };
                for (t, &j) in sg.transitions[i].iter().zip(&sg.succ[i]) {
                    let extra = usize::from(matches!(t.hop, HopKind::Link(_)));
                    let e = hops.entry(j).or_insert(0);
                    *e = (*e).max(h + extra);
                }
            }
            if let Some((&i, &h)) = hops.iter().find(|&(_, &h)| h > bound) {
                return fail_at(
                    "bounded-paths",
                    format!(
                        "route of {h} hops exceeds bound {bound} at {} (src={src}, dst={dst})",
                        sg.states[i].0
                    ),
                    vec![sg.states[i].0],
                );
            }
        }
    }
    Ok(())
}

/// Summary of a full verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Algorithm name.
    pub algorithm: String,
    /// Topology name.
    pub topology: String,
    /// Number of queues in the QDG.
    pub num_queues: usize,
    /// Static edges in the QDG.
    pub static_edges: usize,
    /// Dynamic edges in the QDG.
    pub dynamic_edges: usize,
    /// Whether minimality was checked (only if the algorithm claims it).
    pub checked_minimal: bool,
    /// Whether full adaptivity was checked.
    pub checked_fully_adaptive: bool,
}

/// Run structure, deadlock-freedom, bounded-path, and (if claimed)
/// minimality checks; optionally the exponential full-adaptivity check.
pub fn verify_all<R: RoutingFunction + ?Sized>(
    rf: &R,
    check_full_adaptivity: bool,
) -> Result<Report, Violation> {
    verify_structure(rf)?;
    verify_deadlock_free(rf)?;
    verify_bounded_paths(rf)?;
    if rf.is_minimal() {
        verify_minimal(rf)?;
    }
    if check_full_adaptivity {
        verify_fully_adaptive(rf)?;
    }
    let qdg = build_qdg(rf);
    Ok(Report {
        algorithm: rf.name(),
        topology: rf.topology().name(),
        num_queues: qdg.queues.len(),
        static_edges: qdg.static_graph.num_edges(),
        dynamic_edges: qdg.dynamic_edges.len(),
        checked_minimal: rf.is_minimal(),
        checked_fully_adaptive: check_full_adaptivity,
    })
}

/// Minimal routing functions used as known-outcome fixtures by this
/// crate's own tests and by downstream analysis suites (`fadr-lint`'s
/// negative corpus): a single-queue e-cube (whose QDG is *cyclic* — the
/// classic store-and-forward deadlock) and the paper's underlying
/// two-queue "hang" function without dynamic links (acyclic, partially
/// adaptive).
pub mod test_fixtures {
    use fadr_topology::{Hypercube, NodeId, Port, Topology};

    use crate::sym::Symmetry;
    use crate::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};

    /// Message state for the test fixtures: just the destination.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub struct DstMsg {
        /// Destination node.
        pub dst: NodeId,
    }

    /// Oblivious ascending-dimension (e-cube) routing with a single central
    /// queue per node. Store-and-forward e-cube is NOT deadlock-free: its
    /// QDG is cyclic; the tests assert the checker catches this.
    pub struct EcubeHypercube {
        cube: Hypercube,
    }

    impl EcubeHypercube {
        /// E-cube with one central queue on the n-cube.
        pub fn new(dims: usize) -> Self {
            Self {
                cube: Hypercube::new(dims),
            }
        }
    }

    impl RoutingFunction for EcubeHypercube {
        type Msg = DstMsg;

        fn topology(&self) -> &dyn Topology {
            &self.cube
        }

        fn num_classes(&self) -> usize {
            1
        }

        fn initial_msg(&self, _src: NodeId, dst: NodeId) -> DstMsg {
            DstMsg { dst }
        }

        fn destination(&self, msg: &DstMsg) -> NodeId {
            msg.dst
        }

        fn deliverable(&self, node: NodeId, msg: &DstMsg) -> bool {
            node == msg.dst
        }

        fn for_each_transition(
            &self,
            at: QueueId,
            msg: &DstMsg,
            f: &mut dyn FnMut(Transition<DstMsg>),
        ) {
            match at.kind {
                QueueKind::Inject => f(Transition {
                    kind: LinkKind::Static,
                    hop: HopKind::Internal,
                    to: QueueId::central(at.node, 0),
                    msg: msg.clone(),
                }),
                QueueKind::Central(_) => {
                    if at.node == msg.dst {
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Internal,
                            to: QueueId::deliver(at.node),
                            msg: msg.clone(),
                        });
                    } else {
                        let dim = (at.node ^ msg.dst).trailing_zeros() as usize;
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Link(dim),
                            to: QueueId::central(at.node ^ (1 << dim), 0),
                            msg: msg.clone(),
                        });
                    }
                }
                QueueKind::Deliver => {}
            }
        }

        fn buffer_classes(&self, _node: NodeId, _port: Port) -> Vec<BufferClass> {
            vec![BufferClass::Static(0)]
        }

        fn is_minimal(&self) -> bool {
            true
        }

        fn max_hops(&self) -> usize {
            self.cube.dims()
        }

        fn name(&self) -> String {
            "ecube-1q (test fixture)".into()
        }
    }

    // Identity symmetry (sound for any scheme) so the fixtures plug
    // straight into class-graph-based analyses.
    impl Symmetry for EcubeHypercube {}

    /// The paper's *underlying* hypercube routing function (§ 3): hang the
    /// cube from 0…0, correct 0→1 in phase A (queue class 0), then 1→0 in
    /// phase B (queue class 1). No dynamic links: partially adaptive,
    /// acyclic QDG.
    pub struct HangHypercubeStatic {
        cube: Hypercube,
    }

    impl HangHypercubeStatic {
        /// Static hang (no dynamic links) on the n-cube.
        pub fn new(dims: usize) -> Self {
            Self {
                cube: Hypercube::new(dims),
            }
        }

        fn entry_class(&self, node: NodeId, dst: NodeId) -> u8 {
            u8::from(self.cube.zero_corrections(node, dst) == 0)
        }
    }

    impl RoutingFunction for HangHypercubeStatic {
        type Msg = DstMsg;

        fn topology(&self) -> &dyn Topology {
            &self.cube
        }

        fn num_classes(&self) -> usize {
            2
        }

        fn initial_msg(&self, _src: NodeId, dst: NodeId) -> DstMsg {
            DstMsg { dst }
        }

        fn destination(&self, msg: &DstMsg) -> NodeId {
            msg.dst
        }

        fn deliverable(&self, node: NodeId, msg: &DstMsg) -> bool {
            node == msg.dst
        }

        fn for_each_transition(
            &self,
            at: QueueId,
            msg: &DstMsg,
            f: &mut dyn FnMut(Transition<DstMsg>),
        ) {
            let emit_link = |dim: usize, f: &mut dyn FnMut(Transition<DstMsg>)| {
                let v = at.node ^ (1usize << dim);
                f(Transition {
                    kind: LinkKind::Static,
                    hop: HopKind::Link(dim),
                    to: QueueId::central(v, self.entry_class(v, msg.dst)),
                    msg: msg.clone(),
                });
            };
            match at.kind {
                QueueKind::Inject => f(Transition {
                    kind: LinkKind::Static,
                    hop: HopKind::Internal,
                    to: QueueId::central(at.node, self.entry_class(at.node, msg.dst)),
                    msg: msg.clone(),
                }),
                QueueKind::Central(_) => {
                    if at.node == msg.dst {
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Internal,
                            to: QueueId::deliver(at.node),
                            msg: msg.clone(),
                        });
                        return;
                    }
                    let zeros = self.cube.zero_corrections(at.node, msg.dst);
                    let work = if zeros != 0 {
                        zeros
                    } else {
                        self.cube.one_corrections(at.node, msg.dst)
                    };
                    for dim in 0..self.cube.dims() {
                        if work & (1 << dim) != 0 {
                            emit_link(dim, f);
                        }
                    }
                }
                QueueKind::Deliver => {}
            }
        }

        fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
            // Upward (0→1) channels carry phase-A traffic that may finish
            // phase A on arrival; downward channels carry phase-B traffic.
            if node & (1 << port) == 0 {
                vec![BufferClass::Static(0), BufferClass::Static(1)]
            } else {
                vec![BufferClass::Static(1)]
            }
        }

        fn is_minimal(&self) -> bool {
            true
        }

        fn max_hops(&self) -> usize {
            self.cube.dims()
        }

        fn name(&self) -> String {
            "hang-static (test fixture)".into()
        }
    }

    impl Symmetry for HangHypercubeStatic {}
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::{EcubeHypercube, HangHypercubeStatic};
    use super::*;

    #[test]
    fn ecube_structure_is_sound() {
        verify_structure(&EcubeHypercube::new(3)).unwrap();
    }

    /// A lazy topology may claim more nodes than `u32` node ids can
    /// encode; the structure check rejects it with a typed violation
    /// before any classifier can hit the cast.
    #[cfg(target_pointer_width = "64")]
    #[test]
    fn structure_rejects_node_counts_beyond_u32() {
        use fadr_topology::{NodeId, Port, Topology};

        struct HugeLazyTopo;
        impl Topology for HugeLazyTopo {
            fn num_nodes(&self) -> usize {
                (u32::MAX as usize) + 2
            }
            fn max_ports(&self) -> usize {
                0
            }
            fn neighbor(&self, _node: NodeId, _port: Port) -> Option<NodeId> {
                None
            }
            fn name(&self) -> String {
                "huge-lazy".into()
            }
            fn reverse_port(&self, _node: NodeId, _port: Port) -> Option<Port> {
                None
            }
            fn as_dyn(&self) -> &dyn Topology {
                self
            }
        }

        struct HugeLazy(HugeLazyTopo);
        impl RoutingFunction for HugeLazy {
            type Msg = ();
            fn topology(&self) -> &dyn Topology {
                &self.0
            }
            fn num_classes(&self) -> usize {
                1
            }
            fn initial_msg(&self, _src: NodeId, _dst: NodeId) {}
            fn destination(&self, (): &()) -> NodeId {
                0
            }
            fn deliverable(&self, _node: NodeId, (): &()) -> bool {
                false
            }
            fn for_each_transition(
                &self,
                _at: QueueId,
                (): &(),
                _f: &mut dyn FnMut(Transition<()>),
            ) {
            }
            fn buffer_classes(&self, _node: NodeId, _port: Port) -> Vec<crate::BufferClass> {
                Vec::new()
            }
            fn is_minimal(&self) -> bool {
                false
            }
            fn max_hops(&self) -> usize {
                1
            }
            fn name(&self) -> String {
                "huge-lazy".into()
            }
        }

        let err = verify_structure(&HugeLazy(HugeLazyTopo)).unwrap_err();
        assert_eq!(err.check, "structure");
        assert!(err.detail.contains("u32"), "{}", err.detail);
    }

    #[test]
    fn ecube_single_queue_is_deadlock_prone() {
        // The classic store-and-forward deadlock: the checker must find the
        // cyclic static QDG.
        let err = verify_deadlock_free(&EcubeHypercube::new(3)).unwrap_err();
        assert_eq!(err.check, "deadlock-free");
        assert!(err.detail.contains("cycle"), "{}", err.detail);
        // Structured location: the cycle itself, all central queues, and
        // it really is a cycle of the static QDG.
        assert!(err.queues.len() >= 2, "{:?}", err.queues);
        let qdg = build_qdg(&EcubeHypercube::new(3));
        for (i, q) in err.queues.iter().enumerate() {
            assert!(matches!(q.kind, QueueKind::Central(_)));
            let next = err.queues[(i + 1) % err.queues.len()];
            assert!(qdg.static_graph.has_edge(qdg.index[q], qdg.index[&next]));
        }
    }

    #[test]
    fn ecube_is_minimal_and_bounded() {
        verify_minimal(&EcubeHypercube::new(3)).unwrap();
        verify_bounded_paths(&EcubeHypercube::new(3)).unwrap();
    }

    #[test]
    fn ecube_is_not_fully_adaptive() {
        let err = verify_fully_adaptive(&EcubeHypercube::new(2)).unwrap_err();
        assert_eq!(err.check, "fully-adaptive");
    }

    #[test]
    fn hang_static_passes_deadlock_checks() {
        let rf = HangHypercubeStatic::new(3);
        verify_structure(&rf).unwrap();
        verify_deadlock_free(&rf).unwrap();
        verify_minimal(&rf).unwrap();
        verify_bounded_paths(&rf).unwrap();
    }

    #[test]
    fn hang_static_is_not_fully_adaptive() {
        // From 11 to 00 in the 2-cube: both orders of the two 1→0
        // corrections are shortest paths, but phase A is empty and phase B
        // allows both, so this *particular* pair is adaptive; use a pair
        // with mixed corrections instead: 10 -> 01 must fix 0→1 first.
        let err = verify_fully_adaptive(&HangHypercubeStatic::new(2)).unwrap_err();
        assert_eq!(err.check, "fully-adaptive");
    }

    #[test]
    fn verify_all_reports_counts() {
        let rep = verify_all(&HangHypercubeStatic::new(3), false).unwrap();
        // i, d, qA, qB per node, except q_A of the all-ones node (unused).
        assert_eq!(rep.num_queues, 8 * 4 - 1);
        assert_eq!(rep.dynamic_edges, 0);
        assert!(rep.checked_minimal);
        assert!(!rep.checked_fully_adaptive);
    }
}
