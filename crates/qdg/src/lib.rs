//! Queue dependency graphs and routing-function verification.
//!
//! This crate implements the formal framework of § 2 of the SPAA'91 paper
//! *"Fully-Adaptive Minimal Deadlock-Free Packet Routing in Hypercubes,
//! Meshes, and Other Networks"*:
//!
//! * every node carries an **injection queue**, a **delivery queue**, and a
//!   small fixed set of **central queues** ([`QueueId`] / [`QueueKind`]);
//! * a **routing function** `R̃(q, d)` maps (current queue, destination) to
//!   the set of queues a message may hop to next, each hop labelled as a
//!   **static** or a **dynamic** link ([`LinkKind`]); the static links alone
//!   form the *underlying* routing function `R`;
//! * the **queue dependency graph** (QDG) has the queues as vertices and an
//!   edge `q → q'` whenever some route uses `q'` right after `q`. If the
//!   static-link QDG is acyclic and the three conditions of § 2 hold
//!   (dynamic hops stay within one network hop, `R ⊆ R̃`, and a message
//!   arriving over a dynamic link always retains a static continuation),
//!   then the greedy routing algorithm is deadlock-free.
//!
//! Routing algorithms implement [`RoutingFunction`]; [`explore::Qdg`] builds
//! the reachable-state graph, and [`verify`] model-checks the § 2
//! conditions, minimality, full adaptivity, and bounded path length on
//! concrete (small) network instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod explore;
pub mod graph;
pub mod sym;
pub mod verify;

use std::fmt;
use std::hash::Hash;

use fadr_topology::{NodeId, Port, Topology};

/// Which of a node's queues a [`QueueId`] denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueueKind {
    /// The node's injection queue (`i_n` in the paper); size 1 in § 7.1.
    Inject,
    /// A central routing queue of the given class (e.g. `q_A` = class 0 and
    /// `q_B` = class 1 for the hypercube and mesh algorithms).
    Central(u8),
    /// The node's delivery queue (`d_n`); modelled as unbounded.
    Deliver,
}

/// A queue in the network: a node plus one of its queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueId {
    /// The node the queue belongs to.
    pub node: NodeId,
    /// Which of the node's queues.
    pub kind: QueueKind,
}

impl QueueId {
    /// The injection queue of `node`.
    pub fn inject(node: NodeId) -> Self {
        Self {
            node,
            kind: QueueKind::Inject,
        }
    }

    /// Central queue `class` of `node`.
    pub fn central(node: NodeId, class: u8) -> Self {
        Self {
            node,
            kind: QueueKind::Central(class),
        }
    }

    /// The delivery queue of `node`.
    pub fn deliver(node: NodeId) -> Self {
        Self {
            node,
            kind: QueueKind::Deliver,
        }
    }
}

impl fmt::Display for QueueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            QueueKind::Inject => write!(f, "i[{}]", self.node),
            QueueKind::Central(c) => write!(f, "q{}[{}]", c, self.node),
            QueueKind::Deliver => write!(f, "d[{}]", self.node),
        }
    }
}

/// Whether a queue-to-queue hop belongs to the underlying DAG (`Static`)
/// or is one of the adaptivity-adding extensions (`Dynamic`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// A link of the underlying acyclic routing function `R`.
    Static,
    /// A dynamic link of the extension `R̃` (may close QDG cycles; a message
    /// taking one must still have a static continuation — § 2, condition 3).
    Dynamic,
}

/// How a hop is physically realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopKind {
    /// Between two queues of the same node (injection → central,
    /// central → delivery, or a phase change).
    Internal,
    /// Across the physical channel leaving the current node via `Port`.
    Link(Port),
}

/// One possible next hop of a message: the link's kind, its physical
/// realization, the target queue, and the message's updated routing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition<M> {
    /// Static or dynamic link.
    pub kind: LinkKind,
    /// Internal move or physical channel.
    pub hop: HopKind,
    /// The queue the message would occupy next.
    pub to: QueueId,
    /// The message's routing state after the hop.
    pub msg: M,
}

/// The traffic class of a physical channel's buffer pair (§ 6): static
/// traffic has one input/output buffer per *target queue class*, dynamic
/// traffic one buffer pair per channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BufferClass {
    /// Buffer feeding the target central queue class on the far side.
    Static(u8),
    /// The channel's single dynamic-traffic buffer.
    Dynamic,
}

/// Fixed-width encoding of a message's routing state for engine snapshots.
///
/// The simulator's checkpoint format (`fadr-snapshot/1`) serializes each
/// in-flight packet's [`RoutingFunction::Msg`] as a short sequence of `u64`
/// words. Implementations must round-trip exactly: `decode(encode(m)) ==
/// Some(m)`, and `decode` must reject word slices of the wrong length so a
/// corrupted snapshot fails loudly instead of resuming a different run.
pub trait SnapshotMsg: Sized {
    /// Append the message's fields to `out` as `u64` words.
    fn encode(&self, out: &mut Vec<u64>);
    /// Rebuild a message from the words written by [`SnapshotMsg::encode`];
    /// `None` if `words` has the wrong length or invalid field values.
    fn decode(words: &[u64]) -> Option<Self>;
}

/// A routing function `R̃` in the paper's § 2 sense, together with enough
/// structure to drive both the model checker and the packet simulator.
///
/// Implementations describe, for every queue and message routing state, the
/// set of possible next hops, each labelled static/dynamic. The *underlying*
/// function `R` is the restriction to [`LinkKind::Static`] hops.
pub trait RoutingFunction {
    /// Per-message routing state (destination plus algorithm-specific
    /// fields such as the phase or the shuffle counter). Must be small and
    /// cheap to clone; the simulator stores one per in-flight packet.
    type Msg: Clone + Eq + Hash + fmt::Debug;

    /// The network this function routes on.
    fn topology(&self) -> &dyn Topology;

    /// Number of central queue classes per node (2 for the paper's
    /// hypercube and mesh algorithms, 4 for the shuffle-exchange).
    fn num_classes(&self) -> usize;

    /// Routing state of a fresh message from `src` to `dst` sitting in the
    /// injection queue `i_src`. Requires `src != dst`.
    fn initial_msg(&self, src: NodeId, dst: NodeId) -> Self::Msg;

    /// Destination node recorded in a message state.
    fn destination(&self, msg: &Self::Msg) -> NodeId;

    /// Whether a message in state `msg` arriving at `node` is consumed
    /// there, i.e. its only transition from the node's central queue is the
    /// internal hop into the delivery queue. The simulator uses this to
    /// move arriving packets straight from the input buffer to the delivery
    /// queue (the two steps are collapsed in § 7.1's latency accounting).
    fn deliverable(&self, node: NodeId, msg: &Self::Msg) -> bool;

    /// Enumerate `R̃(at, Dest(msg))`, invoking `f` once per possible hop.
    ///
    /// Must be callable with `at.kind` being [`QueueKind::Inject`] or
    /// [`QueueKind::Central`]; delivery queues have no outgoing hops.
    /// Hop order matters to the simulator: the paper's node fills output
    /// buffers "from low to high dimensions", so implementations emit
    /// link hops in ascending port order, static before dynamic per port.
    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &Self::Msg,
        f: &mut dyn FnMut(Transition<Self::Msg>),
    );

    /// Buffer classes present on the directed channel `node --port-->`
    /// (§ 6's per-link input/output buffer sets).
    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass>;

    /// Whether the algorithm claims minimality (checked by
    /// [`verify::verify_minimal`] on concrete instances).
    fn is_minimal(&self) -> bool;

    /// Upper bound on the number of link hops of any route, used by the
    /// livelock/bounded-path check (e.g. `3n` for the shuffle-exchange).
    fn max_hops(&self) -> usize;

    /// Human-readable algorithm name.
    fn name(&self) -> String;

    /// Collect all transitions into a vector (convenience; the simulator
    /// uses [`RoutingFunction::for_each_transition`] directly).
    fn transitions(&self, at: QueueId, msg: &Self::Msg) -> Vec<Transition<Self::Msg>> {
        let mut out = Vec::new();
        self.for_each_transition(at, msg, &mut |t| out.push(t));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_id_display() {
        assert_eq!(QueueId::inject(3).to_string(), "i[3]");
        assert_eq!(QueueId::central(5, 1).to_string(), "q1[5]");
        assert_eq!(QueueId::deliver(0).to_string(), "d[0]");
    }

    #[test]
    fn queue_id_ordering_groups_by_kind_then_node() {
        let a = QueueId::central(1, 0);
        let b = QueueId::central(1, 1);
        assert!(a < b);
    }
}
