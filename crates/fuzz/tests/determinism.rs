//! The fuzzer is a pure function of its master seed: generation, the
//! JSON round-trip, and whole campaigns replay bit-identically.

use fadr_fuzz::{fuzz, gen_case, CaseSpec, FuzzConfig};

/// Same `(master, idx)` always draws the same spec, and nearby indices
/// draw different ones (the golden-ratio stride actually mixes).
#[test]
fn generation_is_deterministic() {
    let mut distinct = 0;
    for idx in 0..100u64 {
        let a = gen_case(0xFADF_0221, idx);
        let b = gen_case(0xFADF_0221, idx);
        assert_eq!(a, b, "idx {idx} drew two different specs");
        if a != gen_case(0xFADF_0221, idx + 1) {
            distinct += 1;
        }
    }
    assert!(distinct > 90, "only {distinct}/100 adjacent draws differ");
}

/// Every generated spec survives `to_json` → `parse` unchanged — the
/// regression corpus format can carry anything the generator draws.
#[test]
fn json_roundtrip_over_generated_specs() {
    for idx in 0..100u64 {
        let spec = gen_case(0x5EED, idx);
        let json = spec.to_json();
        let back = CaseSpec::parse(&json)
            .unwrap_or_else(|e| panic!("idx {idx}: parse failed: {e}\n{json}"));
        assert_eq!(spec, back, "idx {idx} did not round-trip\n{json}");
    }
}

/// The parser is strict: schema tag, unknown keys, and trailing data
/// are all rejected (a corrupted corpus file fails loudly, not quietly).
#[test]
fn parser_rejects_malformed_cases() {
    let good = gen_case(7, 0).to_json();
    assert!(CaseSpec::parse(&good).is_ok());
    let wrong_schema = good.replace("fadr-fuzz/1", "fadr-fuzz/9");
    assert!(CaseSpec::parse(&wrong_schema).is_err());
    let trailing = format!("{good} extra");
    assert!(CaseSpec::parse(&trailing).is_err());
    let unknown_key = good.replace("\"seed\"", "\"sead\"");
    assert!(CaseSpec::parse(&unknown_key).is_err());
    assert!(CaseSpec::parse("{}").is_err());
}

/// Two whole campaigns from the same seed agree case-for-case; this is
/// what makes a `fuzz --seed N --cases M` failure line a complete repro
/// recipe.
#[test]
fn campaign_is_deterministic() {
    let cfg = FuzzConfig {
        seed: 0xD5,
        cases: 40,
        out_dir: None,
        verbose: false,
    };
    let a = fuzz(&cfg);
    let b = fuzz(&cfg);
    assert_eq!(a.ran, b.ran);
    assert_eq!(a.failures.len(), b.failures.len());
    for (fa, fb) in a.failures.iter().zip(&b.failures) {
        assert_eq!(fa.index, fb.index);
        assert_eq!(fa.shrunk, fb.shrunk);
    }
}
