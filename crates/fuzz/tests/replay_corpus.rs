//! Replays the committed regression corpus: every case in
//! `regressions/` is a once-failing, now-fixed bug and must PASS.

use std::path::PathBuf;

use fadr_fuzz::replay_file;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("regressions")
}

#[test]
fn every_regression_case_passes() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("regressions/ directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 2,
        "corpus holds at least the two fuzzer-found engine bugs"
    );
    let mut failures = Vec::new();
    for f in &files {
        if let Err(e) = replay_file(f) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} corpus case(s) regressed:\n{}",
        failures.len(),
        files.len(),
        failures.join("\n")
    );
}
