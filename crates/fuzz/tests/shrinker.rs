//! The greedy shrinker, driven through [`fadr_fuzz::shrink_with`] with
//! synthetic failure oracles (the real property battery is exercised by
//! the campaign itself; here we pin the *machinery*: move generation,
//! same-property acceptance, fixpoint, and budget termination).

use fadr_fuzz::props::{Failure, PropertyId};
use fadr_fuzz::shrink_with;
use fadr_fuzz::spec::{CaseSpec, MutationSpec, SchemeSpec, WorkloadSpec};
use fadr_sim::{FaultKind, FaultPlan, PartitionStrategy};

fn fail(property: PropertyId) -> Failure {
    Failure {
        property,
        detail: "synthetic".into(),
    }
}

/// A deliberately sprawling spec: 16-node hypercube, three fault events
/// (one load-bearing), heavy workload, two shard counts, a non-default
/// strategy.
fn big_spec() -> CaseSpec {
    let mut faults = FaultPlan::new(11, 2);
    faults.push(3, FaultKind::LinkDown { from: 1, to: 0 });
    faults.push(
        5,
        FaultKind::QueueFreeze {
            node: 2,
            class: 0,
            duration: 9,
        },
    );
    faults.push(
        8,
        FaultKind::FlakyLink {
            from: 4,
            to: 5,
            until: 20,
            threshold: 50,
        },
    );
    CaseSpec {
        seed: 77,
        scheme: SchemeSpec::HypercubeFa { dims: 4 },
        mutation: MutationSpec::None,
        queue_capacity: 8,
        faults,
        workload: WorkloadSpec::Static { per_node: 3 },
        shards: vec![2, 3],
        strategy: PartitionStrategy::Bisection,
        lanes: 4,
    }
}

fn has_link_down(spec: &CaseSpec) -> bool {
    spec.faults
        .events
        .iter()
        .any(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
}

/// A "bug" that needs ≥ 8 nodes and a LinkDown event shrinks to exactly
/// the 8-node hypercube with exactly that event — everything incidental
/// (extra faults, workload weight, shard counts, strategy) is stripped.
#[test]
fn shrinks_to_minimal_witness() {
    let spec = big_spec();
    let oracle = |cand: &CaseSpec| {
        if cand.scheme.num_nodes() >= 8 && has_link_down(cand) {
            Err(fail(PropertyId::Differential))
        } else {
            Ok(())
        }
    };
    let (min, f) = shrink_with(&spec, &fail(PropertyId::Differential), oracle);
    assert_eq!(f.property, PropertyId::Differential);
    assert_eq!(min.scheme, SchemeSpec::HypercubeFa { dims: 3 });
    assert_eq!(min.scheme.num_nodes(), 8);
    assert_eq!(
        min.faults.events.len(),
        1,
        "incidental faults kept: {min:?}"
    );
    assert!(has_link_down(&min));
    assert_eq!(min.workload, WorkloadSpec::Static { per_node: 1 });
    assert_eq!(min.shards, vec![2]);
    assert_eq!(min.strategy, PartitionStrategy::Auto);
    assert_eq!(min.lanes, 1, "incidental lane leg kept: {min:?}");
}

/// A candidate failing a *different* property is never accepted: the
/// shrunk witness must reproduce the original bug, not some other one.
#[test]
fn rejects_cross_property_candidates() {
    let spec = big_spec();
    let oracle = |_: &CaseSpec| Err(fail(PropertyId::OracleParity));
    let (min, _) = shrink_with(&spec, &fail(PropertyId::Differential), oracle);
    assert_eq!(min, spec, "accepted a candidate with the wrong property");
}

/// An always-failing oracle terminates (fixpoint once every move is
/// exhausted, or the evaluation budget) at a fully minimal spec.
#[test]
fn always_failing_oracle_terminates_minimal() {
    let spec = big_spec();
    let oracle = |_: &CaseSpec| Err(fail(PropertyId::Verdicts));
    let (min, _) = shrink_with(&spec, &fail(PropertyId::Verdicts), oracle);
    assert_eq!(min.scheme, SchemeSpec::HypercubeFa { dims: 2 });
    assert!(min.faults.events.is_empty());
    assert_eq!(min.workload, WorkloadSpec::Static { per_node: 1 });
    assert_eq!(min.shards, vec![2]);
    assert_eq!(min.lanes, 1);
}

/// Topology moves keep the spec well-formed: fault events that name
/// nodes outside the smaller instance are dropped along the way.
#[test]
fn topology_shrink_drops_out_of_range_faults() {
    let mut spec = big_spec();
    spec.faults = FaultPlan::new(1, 0);
    spec.faults.push(2, FaultKind::NodeDown { node: 15 });
    // Fails regardless of faults, so the shrinker is free to descend.
    let oracle = |cand: &CaseSpec| {
        if cand.scheme.num_nodes() >= 8 {
            Err(fail(PropertyId::Differential))
        } else {
            Ok(())
        }
    };
    let (min, _) = shrink_with(&spec, &fail(PropertyId::Differential), oracle);
    assert_eq!(min.scheme.num_nodes(), 8);
    assert!(
        min.faults.events.is_empty(),
        "node-15 fault survived an 8-node shrink: {min:?}"
    );
}
