//! Seeded case generation.
//!
//! `gen_case(master, idx)` is a pure function: the same master seed and
//! case index always produce the same [`CaseSpec`], so a fuzz run is
//! replayable from its command line alone. Instances are deliberately
//! small (≤ ~16 nodes) — every oracle in the property battery is
//! exhaustive in the network size, and a counterexample on 8 nodes is
//! worth more than an unexplored one on 1024.

use fadr_qdg::RoutingFunction;
use fadr_sim::{FaultKind, FaultPlan, PartitionStrategy};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::spec::{
    with_scheme, CaseSpec, Mutated, MutationSpec, SchemeSpec, SchemeVisitor, WorkloadSpec,
};

/// Per-index seed mix (golden-ratio stride, the repo's property-suite
/// idiom).
fn case_rng(master: u64, idx: u64) -> StdRng {
    StdRng::seed_from_u64(master ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Collects the instance facts generation needs: class count and the
/// directed channel list (so drawn faults always name real links).
struct InstanceInfo;

impl SchemeVisitor for InstanceInfo {
    type Out = (usize, Vec<(u32, u32)>);

    fn visit<R>(self, rf: Mutated<R>) -> Self::Out
    where
        R: fadr_qdg::sym::Symmetry + Clone + Send + 'static,
        R::Msg: Send,
    {
        let topo = rf.topology();
        let mut links = Vec::new();
        for v in 0..topo.num_nodes() {
            for p in 0..topo.max_ports() {
                if let Some(w) = topo.neighbor(v, p) {
                    links.push((v as u32, w as u32));
                }
            }
        }
        (rf.num_classes(), links)
    }
}

fn gen_scheme(rng: &mut StdRng) -> SchemeSpec {
    match rng.gen_range(0..12u8) {
        0 => SchemeSpec::HypercubeFa {
            dims: rng.gen_range(2..=4),
        },
        1 => SchemeSpec::HypercubeHang {
            dims: rng.gen_range(2..=3),
        },
        2 => SchemeSpec::EcubeSbp {
            dims: rng.gen_range(2..=3),
        },
        3 => SchemeSpec::MeshFa {
            width: rng.gen_range(2..=4),
            height: rng.gen_range(2..=3),
        },
        4 => SchemeSpec::MeshHang {
            width: rng.gen_range(2..=3),
            height: rng.gen_range(2..=3),
        },
        5 => SchemeSpec::MeshXy {
            width: rng.gen_range(2..=4),
            height: rng.gen_range(2..=3),
        },
        6 => SchemeSpec::MeshKd {
            extents: if rng.gen_range(0..2u8) == 0 {
                vec![2, 2, 2]
            } else {
                vec![2, 3, 2]
            },
        },
        7 => SchemeSpec::Torus {
            width: rng.gen_range(3..=4),
            height: 3,
        },
        8 => SchemeSpec::ShuffleExchange {
            dims: rng.gen_range(2..=3),
        },
        9 => {
            // Paper-literal SE: prime dims are sound, dims = 4 is the
            // known § 6 deadlock — keep both in the pool.
            SchemeSpec::ShuffleExchangePaper {
                dims: if rng.gen_range(0..2u8) == 0 { 3 } else { 4 },
            }
        }
        10 => SchemeSpec::EcubeStoreForward {
            dims: rng.gen_range(2..=3),
        },
        _ => SchemeSpec::SbpRandomRegular {
            nodes: 2 * rng.gen_range(4..=7usize),
            degree: 3,
            seed: rng.next_u64(),
        },
    }
}

fn gen_faults(
    rng: &mut StdRng,
    num_nodes: usize,
    num_classes: usize,
    links: &[(u32, u32)],
) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64(), rng.gen_range(0..4u32));
    if rng.gen_range(0..2u8) == 0 {
        return plan; // half the pool is fault-free
    }
    for _ in 0..rng.gen_range(1..=4usize) {
        let cycle = rng.gen_range(0..30u64);
        let (from, to) = links[rng.gen_range(0..links.len())];
        let kind = match rng.gen_range(0..10u8) {
            0..=3 => FaultKind::LinkDown { from, to },
            4 => FaultKind::NodeDown {
                node: rng.gen_range(0..num_nodes as u32),
            },
            5 | 6 => FaultKind::QueueFreeze {
                node: rng.gen_range(0..num_nodes as u32),
                class: rng.gen_range(0..num_classes.min(256) as u8),
                duration: rng.gen_range(2..20u64),
            },
            _ => FaultKind::FlakyLink {
                from,
                to,
                until: cycle + rng.gen_range(5..40u64),
                threshold: rng.gen_range(10..=95u8),
            },
        };
        plan.push(cycle, kind);
    }
    // Canonical event order (what `FaultPlan::parse` produces), so specs
    // survive the JSON round-trip bit-identically.
    plan.normalize();
    plan
}

/// Draw case `idx` of the run seeded by `master`.
pub fn gen_case(master: u64, idx: u64) -> CaseSpec {
    let mut rng = case_rng(master, idx);
    let scheme = gen_scheme(&mut rng);
    let n = scheme.num_nodes();
    let (num_classes, links) = with_scheme(&scheme, MutationSpec::None, InstanceInfo);

    let mutation = match rng.gen_range(0..10u8) {
        0..=6 => MutationSpec::None,
        7 => MutationSpec::DemoteStatic(rng.gen_range(1..n)),
        8 => MutationSpec::DropTransitions(rng.gen_range(1..n)),
        _ => MutationSpec::InflateClasses(257 + rng.gen_range(0..64usize)),
    };

    let queue_capacity = match rng.gen_range(0..10u8) {
        0 => 0, // deliberately wedged: exercises the watchdog verdict
        1 | 2 => 8,
        _ => 64,
    };

    let workload = if rng.gen_range(0..3u8) < 2 {
        WorkloadSpec::Static {
            per_node: rng.gen_range(1..=3),
        }
    } else {
        WorkloadSpec::Dynamic {
            lambda_pct: rng.gen_range(30..=95),
            cycles: rng.gen_range(40..=80),
        }
    };

    let faults = gen_faults(&mut rng, n, num_classes, &links);

    let shards = match rng.gen_range(0..3u8) {
        0 => vec![2],
        1 => vec![3],
        _ => vec![2, 3],
    };
    let strategy = match rng.gen_range(0..5u8) {
        0 => PartitionStrategy::Contiguous,
        1 => PartitionStrategy::HammingPrefix,
        2 => PartitionStrategy::Bisection,
        3 => PartitionStrategy::BfsGrowth,
        _ => PartitionStrategy::Auto,
    };

    // Drawn *after* the seed so every prefix of the draw stream — and
    // therefore every pre-lanes corpus replay — is unchanged.
    let seed = rng.next_u64();
    let lanes = match rng.gen_range(0..3u8) {
        0 => 1, // a third of the pool skips the lane differential
        1 => 2,
        _ => 4,
    };

    CaseSpec {
        seed,
        scheme,
        mutation,
        queue_capacity,
        faults,
        workload,
        shards,
        strategy,
        lanes,
    }
}
