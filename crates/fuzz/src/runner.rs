//! The fuzz loop: generate → run → shrink → persist.
//!
//! Engine panics are contained per case (`catch_unwind` around the
//! property battery, on top of the sharded engine's own worker-panic
//! containment), so one counterexample never aborts the campaign — it
//! becomes a shrunk, replayable `fadr-fuzz/1` case file instead.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::gen::gen_case;
use crate::props::{run_case, Failure, PropertyId};
use crate::shrink::shrink;
use crate::spec::CaseSpec;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Number of cases to draw.
    pub cases: u64,
    /// Where shrunk counterexample files go (`None`: don't persist).
    pub out_dir: Option<PathBuf>,
    /// Print per-case progress to stderr.
    pub verbose: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 0xFADF_0221,
            cases: 200,
            out_dir: None,
            verbose: false,
        }
    }
}

/// A failing case, before and after shrinking.
#[derive(Debug, Clone)]
pub struct FoundCase {
    /// Index in the campaign (replay with the same master seed).
    pub index: u64,
    /// The spec as drawn.
    pub original: CaseSpec,
    /// The failure the original produced.
    pub failure: Failure,
    /// The shrunk spec (== `original` when no move was accepted).
    pub shrunk: CaseSpec,
    /// The failure the shrunk spec produces (same property family).
    pub shrunk_failure: Failure,
    /// Where the case file was written, if persistence was on.
    pub path: Option<PathBuf>,
}

/// Campaign result.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Cases executed.
    pub ran: u64,
    /// Counterexamples found (shrunk).
    pub failures: Vec<FoundCase>,
}

/// Run one case with panic containment: an engine/oracle panic becomes
/// a [`PropertyId::Differential`] failure (panics are engine bugs by
/// definition here — the certifier and checkers return typed errors).
///
/// # Errors
///
/// Returns the property [`Failure`] the case produced, if any.
pub fn run_case_guarded(spec: &CaseSpec) -> Result<(), Failure> {
    match catch_unwind(AssertUnwindSafe(|| run_case(spec))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(Failure {
                property: PropertyId::Differential,
                detail: format!("panic: {msg}"),
            })
        }
    }
}

/// Run a fuzz campaign.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let mut outcome = FuzzOutcome::default();
    for idx in 0..cfg.cases {
        let spec = gen_case(cfg.seed, idx);
        if cfg.verbose {
            eprintln!("case {idx}: {}", spec.to_json());
        }
        outcome.ran += 1;
        let Err(failure) = run_case_guarded(&spec) else {
            continue;
        };
        eprintln!("case {idx} FAILED: {failure}");
        let (shrunk, shrunk_failure) = shrink(&spec, &failure);
        eprintln!(
            "  shrunk to {} nodes: {shrunk_failure}",
            shrunk.scheme.num_nodes()
        );
        let path = cfg.out_dir.as_ref().map(|dir| {
            let path = dir.join(format!("case-{:016x}-{idx}.json", cfg.seed));
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("  cannot create {}: {e}", dir.display());
            }
            match std::fs::write(&path, format!("{}\n", shrunk.to_json())) {
                Ok(()) => eprintln!("  wrote {}", path.display()),
                Err(e) => eprintln!("  cannot write {}: {e}", path.display()),
            }
            path
        });
        outcome.failures.push(FoundCase {
            index: idx,
            original: spec,
            failure,
            shrunk,
            shrunk_failure,
            path,
        });
    }
    outcome
}

/// Replay one persisted case file. `Ok(())` means the case passes (its
/// bug is fixed and stays fixed).
///
/// # Errors
///
/// Returns the parse error or the reproduced property failure, as text.
pub fn replay_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let spec = CaseSpec::parse(text.trim())
        .map_err(|e| format!("{}: bad case file: {e}", path.display()))?;
    run_case_guarded(&spec).map_err(|f| format!("{}: {f}", path.display()))
}
