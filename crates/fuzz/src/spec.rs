//! Case specifications: the serializable description of one fuzz case.
//!
//! A [`CaseSpec`] pins everything a case needs to replay bit-identically:
//! scheme, optional sabotage mutation, queue capacity, fault plan,
//! workload, shard counts, partition strategy, and the lane count for
//! the lane-engine differential. Specs round-trip
//! through the one-line `fadr-fuzz/1` JSON schema (hand-rolled, like
//! `fadr-faults/1` — the build has no serde), which is what the
//! committed regression corpus stores.

use std::fmt::Write as _;
use std::str::FromStr;

use fadr_core::{
    AdaptiveSbp, EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang, MeshFullyAdaptive,
    MeshKDFullyAdaptive, MeshStaticHang, MeshXY, ShuffleExchangeRouting, TorusTwoPhase,
};
use fadr_qdg::sym::Symmetry;
use fadr_qdg::verify::test_fixtures::EcubeHypercube;
use fadr_qdg::{BufferClass, LinkKind, QueueId, RoutingFunction, Transition};
use fadr_sim::{FaultPlan, PartitionStrategy};
use fadr_topology::{NodeId, Port, RandomRegular, Topology};

/// Schema tag of the serialized form.
pub const SCHEMA: &str = "fadr-fuzz/1";

/// Which routing scheme (and instance size) a case runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeSpec {
    /// `HypercubeFullyAdaptive::new(dims)`.
    HypercubeFa {
        /// Cube dimensions.
        dims: usize,
    },
    /// `HypercubeStaticHang::new(dims)`.
    HypercubeHang {
        /// Cube dimensions.
        dims: usize,
    },
    /// `EcubeSbp::new(dims)`.
    EcubeSbp {
        /// Cube dimensions.
        dims: usize,
    },
    /// `MeshFullyAdaptive::new(width, height)`.
    MeshFa {
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
    },
    /// `MeshStaticHang::new(width, height)`.
    MeshHang {
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
    },
    /// `MeshXY::new(width, height)`.
    MeshXy {
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
    },
    /// `MeshKDFullyAdaptive::new(&extents)`.
    MeshKd {
        /// Per-dimension extents.
        extents: Vec<usize>,
    },
    /// `TorusTwoPhase::new(width, height)`.
    Torus {
        /// Torus width.
        width: usize,
        /// Torus height.
        height: usize,
    },
    /// `ShuffleExchangeRouting::new(dims)` (corrected provisioning).
    ShuffleExchange {
        /// Address bits.
        dims: usize,
    },
    /// `ShuffleExchangeRouting::paper_literal(dims)` — the § 6 text as
    /// printed; deadlock-prone for composite `dims`.
    ShuffleExchangePaper {
        /// Address bits.
        dims: usize,
    },
    /// Single-central-queue store-and-forward e-cube (cyclic QDG; the
    /// classic rejected baseline).
    EcubeStoreForward {
        /// Cube dimensions.
        dims: usize,
    },
    /// `AdaptiveSbp` over a seeded [`RandomRegular`] graph: the
    /// structure-free adversarial instance.
    SbpRandomRegular {
        /// Node count (even times degree).
        nodes: usize,
        /// Uniform degree.
        degree: usize,
        /// Draw seed.
        seed: u64,
    },
}

impl SchemeSpec {
    /// Number of nodes the instance will have.
    pub fn num_nodes(&self) -> usize {
        match self {
            Self::HypercubeFa { dims }
            | Self::HypercubeHang { dims }
            | Self::EcubeSbp { dims }
            | Self::ShuffleExchange { dims }
            | Self::ShuffleExchangePaper { dims }
            | Self::EcubeStoreForward { dims } => 1 << dims,
            Self::MeshFa { width, height }
            | Self::MeshHang { width, height }
            | Self::MeshXy { width, height }
            | Self::Torus { width, height } => width * height,
            Self::MeshKd { extents } => extents.iter().product(),
            Self::SbpRandomRegular { nodes, .. } => *nodes,
        }
    }

    /// JSON `kind` tag.
    fn kind(&self) -> &'static str {
        match self {
            Self::HypercubeFa { .. } => "hypercube-fa",
            Self::HypercubeHang { .. } => "hypercube-hang",
            Self::EcubeSbp { .. } => "ecube-sbp",
            Self::MeshFa { .. } => "mesh-fa",
            Self::MeshHang { .. } => "mesh-hang",
            Self::MeshXy { .. } => "mesh-xy",
            Self::MeshKd { .. } => "mesh-kd",
            Self::Torus { .. } => "torus",
            Self::ShuffleExchange { .. } => "shuffle-exchange",
            Self::ShuffleExchangePaper { .. } => "shuffle-exchange-paper",
            Self::EcubeStoreForward { .. } => "ecube-store-forward",
            Self::SbpRandomRegular { .. } => "sbp-random-regular",
        }
    }
}

/// How a case sabotages the scheme (the lint/certifier bug classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationSpec {
    /// Run the scheme as written.
    None,
    /// Demote every static link leaving `node`'s queues to dynamic
    /// (breaks § 2 condition 3 there).
    DemoteStatic(NodeId),
    /// Silence all transitions at `node` (a dead end).
    DropTransitions(NodeId),
    /// Report `classes` central classes without provisioning them
    /// (exercises the 8-bit class-id bound).
    InflateClasses(usize),
}

/// The case's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Static random backlog, `per_node` packets at every node.
    Static {
        /// Packets injected per node.
        per_node: usize,
    },
    /// Dynamic Bernoulli injection at `lambda_pct`/100 packets per node
    /// per cycle, for `cycles` routing cycles. (An integer percentage so
    /// the JSON round-trip is exact.)
    Dynamic {
        /// Injection rate in percent.
        lambda_pct: u8,
        /// Horizon in routing cycles.
        cycles: u64,
    },
}

/// Everything one fuzz case needs to replay exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// Workload/engine seed.
    pub seed: u64,
    /// Scheme and instance.
    pub scheme: SchemeSpec,
    /// Sabotage applied to the scheme.
    pub mutation: MutationSpec,
    /// Central-queue capacity (0 deliberately wedges the network).
    pub queue_capacity: usize,
    /// Scheduled faults (possibly empty).
    pub faults: FaultPlan,
    /// The traffic to run.
    pub workload: WorkloadSpec,
    /// Shard counts the differential property sweeps.
    pub shards: Vec<usize>,
    /// Partition strategy for the sharded runs.
    pub strategy: PartitionStrategy,
    /// Lane count for the lane-engine differential (1 = skip it; corpus
    /// entries predating the axis parse as 1).
    pub lanes: usize,
}

impl CaseSpec {
    /// Serialize as one-line `fadr-fuzz/1` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\": \"{SCHEMA}\", \"seed\": {}, \"scheme\": {{\"kind\": \"{}\"",
            self.seed,
            self.scheme.kind()
        );
        match &self.scheme {
            SchemeSpec::HypercubeFa { dims }
            | SchemeSpec::HypercubeHang { dims }
            | SchemeSpec::EcubeSbp { dims }
            | SchemeSpec::ShuffleExchange { dims }
            | SchemeSpec::ShuffleExchangePaper { dims }
            | SchemeSpec::EcubeStoreForward { dims } => {
                let _ = write!(out, ", \"dims\": {dims}");
            }
            SchemeSpec::MeshFa { width, height }
            | SchemeSpec::MeshHang { width, height }
            | SchemeSpec::MeshXy { width, height }
            | SchemeSpec::Torus { width, height } => {
                let _ = write!(out, ", \"width\": {width}, \"height\": {height}");
            }
            SchemeSpec::MeshKd { extents } => {
                out.push_str(", \"extents\": [");
                for (i, e) in extents.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{e}");
                }
                out.push(']');
            }
            SchemeSpec::SbpRandomRegular {
                nodes,
                degree,
                seed,
            } => {
                let _ = write!(
                    out,
                    ", \"nodes\": {nodes}, \"degree\": {degree}, \"seed\": {seed}"
                );
            }
        }
        out.push_str("}, \"mutation\": ");
        match self.mutation {
            MutationSpec::None => out.push_str("{\"kind\": \"none\"}"),
            MutationSpec::DemoteStatic(v) => {
                let _ = write!(out, "{{\"kind\": \"demote-static\", \"node\": {v}}}");
            }
            MutationSpec::DropTransitions(v) => {
                let _ = write!(out, "{{\"kind\": \"drop-transitions\", \"node\": {v}}}");
            }
            MutationSpec::InflateClasses(c) => {
                let _ = write!(out, "{{\"kind\": \"inflate-classes\", \"classes\": {c}}}");
            }
        }
        let _ = write!(
            out,
            ", \"queue_capacity\": {}, \"workload\": ",
            self.queue_capacity
        );
        match self.workload {
            WorkloadSpec::Static { per_node } => {
                let _ = write!(out, "{{\"kind\": \"static\", \"per_node\": {per_node}}}");
            }
            WorkloadSpec::Dynamic { lambda_pct, cycles } => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"dynamic\", \"lambda_pct\": {lambda_pct}, \"cycles\": {cycles}}}"
                );
            }
        }
        out.push_str(", \"shards\": [");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{s}");
        }
        let _ = write!(
            out,
            "], \"strategy\": \"{}\", \"lanes\": {}, \"faults\": {}}}",
            self.strategy.name(),
            self.lanes,
            self.faults.to_json()
        );
        out
    }

    /// Parse a `fadr-fuzz/1` document (as produced by
    /// [`CaseSpec::to_json`], whitespace-insensitively).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let mut saw_schema = false;
        let mut seed = 0u64;
        let mut scheme = None;
        let mut mutation = MutationSpec::None;
        let mut queue_capacity = 64usize;
        let mut faults = FaultPlan::new(0, 0);
        let mut workload = None;
        let mut shards = Vec::new();
        let mut strategy = PartitionStrategy::Auto;
        let mut lanes = 1usize;
        p.expect(b'{')?;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "schema" => {
                    let s = p.string()?;
                    if s != SCHEMA {
                        return Err(format!("unsupported schema '{s}'"));
                    }
                    saw_schema = true;
                }
                "seed" => seed = p.u64()?,
                "scheme" => scheme = Some(parse_scheme(&mut p)?),
                "mutation" => mutation = parse_mutation(&mut p)?,
                "queue_capacity" => queue_capacity = p.u64()? as usize,
                "workload" => workload = Some(parse_workload(&mut p)?),
                "shards" => {
                    p.expect(b'[')?;
                    loop {
                        p.skip_ws();
                        if p.eat(b']') {
                            break;
                        }
                        shards.push(p.u64()? as usize);
                        p.skip_ws();
                        let _ = p.eat(b',');
                    }
                }
                "strategy" => {
                    let s = p.string()?;
                    strategy = PartitionStrategy::from_str(&s)?;
                }
                "lanes" => lanes = p.u64()? as usize,
                "faults" => {
                    let obj = p.balanced_object()?;
                    faults = FaultPlan::parse(&obj)?;
                }
                other => return Err(format!("unknown key '{other}'")),
            }
            p.skip_ws();
            let _ = p.eat(b',');
        }
        p.skip_ws();
        if p.i != p.b.len() {
            return Err("trailing data after case spec".into());
        }
        if !saw_schema {
            return Err("missing schema tag".into());
        }
        let scheme = scheme.ok_or("missing scheme")?;
        let workload = workload.ok_or("missing workload")?;
        if shards.is_empty() {
            return Err("missing shards".into());
        }
        Ok(Self {
            seed,
            scheme,
            mutation,
            queue_capacity,
            faults,
            workload,
            shards,
            strategy,
            lanes,
        })
    }
}

fn parse_scheme(p: &mut Parser<'_>) -> Result<SchemeSpec, String> {
    let mut kind = String::new();
    let (mut dims, mut width, mut height) = (0usize, 0usize, 0usize);
    let (mut nodes, mut degree, mut seed) = (0usize, 0usize, 0u64);
    let mut extents = Vec::new();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "kind" => kind = p.string()?,
            "dims" => dims = p.u64()? as usize,
            "width" => width = p.u64()? as usize,
            "height" => height = p.u64()? as usize,
            "nodes" => nodes = p.u64()? as usize,
            "degree" => degree = p.u64()? as usize,
            "seed" => seed = p.u64()?,
            "extents" => {
                p.expect(b'[')?;
                loop {
                    p.skip_ws();
                    if p.eat(b']') {
                        break;
                    }
                    extents.push(p.u64()? as usize);
                    p.skip_ws();
                    let _ = p.eat(b',');
                }
            }
            other => return Err(format!("unknown scheme key '{other}'")),
        }
        p.skip_ws();
        let _ = p.eat(b',');
    }
    Ok(match kind.as_str() {
        "hypercube-fa" => SchemeSpec::HypercubeFa { dims },
        "hypercube-hang" => SchemeSpec::HypercubeHang { dims },
        "ecube-sbp" => SchemeSpec::EcubeSbp { dims },
        "mesh-fa" => SchemeSpec::MeshFa { width, height },
        "mesh-hang" => SchemeSpec::MeshHang { width, height },
        "mesh-xy" => SchemeSpec::MeshXy { width, height },
        "mesh-kd" => SchemeSpec::MeshKd { extents },
        "torus" => SchemeSpec::Torus { width, height },
        "shuffle-exchange" => SchemeSpec::ShuffleExchange { dims },
        "shuffle-exchange-paper" => SchemeSpec::ShuffleExchangePaper { dims },
        "ecube-store-forward" => SchemeSpec::EcubeStoreForward { dims },
        "sbp-random-regular" => SchemeSpec::SbpRandomRegular {
            nodes,
            degree,
            seed,
        },
        other => return Err(format!("unknown scheme kind '{other}'")),
    })
}

fn parse_mutation(p: &mut Parser<'_>) -> Result<MutationSpec, String> {
    let mut kind = String::new();
    let mut node = 0usize;
    let mut classes = 0usize;
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "kind" => kind = p.string()?,
            "node" => node = p.u64()? as usize,
            "classes" => classes = p.u64()? as usize,
            other => return Err(format!("unknown mutation key '{other}'")),
        }
        p.skip_ws();
        let _ = p.eat(b',');
    }
    Ok(match kind.as_str() {
        "none" => MutationSpec::None,
        "demote-static" => MutationSpec::DemoteStatic(node),
        "drop-transitions" => MutationSpec::DropTransitions(node),
        "inflate-classes" => MutationSpec::InflateClasses(classes),
        other => return Err(format!("unknown mutation kind '{other}'")),
    })
}

fn parse_workload(p: &mut Parser<'_>) -> Result<WorkloadSpec, String> {
    let mut kind = String::new();
    let mut per_node = 0usize;
    let mut lambda_pct = 0u8;
    let mut cycles = 0u64;
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "kind" => kind = p.string()?,
            "per_node" => per_node = p.u64()? as usize,
            "lambda_pct" => {
                lambda_pct = u8::try_from(p.u64()?).map_err(|_| "lambda_pct > 255".to_string())?;
            }
            "cycles" => cycles = p.u64()?,
            other => return Err(format!("unknown workload key '{other}'")),
        }
        p.skip_ws();
        let _ = p.eat(b',');
    }
    Ok(match kind.as_str() {
        "static" => WorkloadSpec::Static { per_node },
        "dynamic" => WorkloadSpec::Dynamic { lambda_pct, cycles },
        other => return Err(format!("unknown workload kind '{other}'")),
    })
}

/// Minimal JSON scanner (the `fadr-faults/1` idiom): enough for the flat
/// objects this schema uses, no external dependencies.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(c), self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        if !self.eat(b'"') {
            return Err(format!("expected string at byte {}", self.i));
        }
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            self.i += 1;
        }
        if self.i == self.b.len() {
            return Err("unterminated string".into());
        }
        let s = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.i += 1;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .expect("digits are utf8")
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    /// Consume one balanced `{...}` object and return its text (used to
    /// hand the nested fault plan to [`FaultPlan::parse`] verbatim; the
    /// schema has no strings containing braces).
    fn balanced_object(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.i;
        if !self.eat(b'{') {
            return Err(format!("expected object at byte {start}"));
        }
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match self.b[self.i] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
            self.i += 1;
        }
        if depth > 0 {
            return Err("unterminated object".into());
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }
}

// ---------------------------------------------------------------------
// Scheme construction
// ---------------------------------------------------------------------

/// A scheme sabotaged per [`MutationSpec`] (the lint parity suite's
/// wrapper, promoted to a library type so the fuzzer and its regression
/// corpus can replay mutations from JSON).
#[derive(Debug, Clone)]
pub struct Mutated<R: RoutingFunction> {
    inner: R,
    mutation: MutationSpec,
}

impl<R: RoutingFunction> Mutated<R> {
    /// Wrap `inner` with `mutation` (which may be [`MutationSpec::None`]).
    pub fn new(inner: R, mutation: MutationSpec) -> Self {
        Self { inner, mutation }
    }
}

impl<R: RoutingFunction> RoutingFunction for Mutated<R> {
    type Msg = R::Msg;

    fn topology(&self) -> &dyn Topology {
        self.inner.topology()
    }

    fn num_classes(&self) -> usize {
        match self.mutation {
            MutationSpec::InflateClasses(c) => c,
            _ => self.inner.num_classes(),
        }
    }

    fn initial_msg(&self, src: NodeId, dst: NodeId) -> Self::Msg {
        self.inner.initial_msg(src, dst)
    }

    fn destination(&self, msg: &Self::Msg) -> NodeId {
        self.inner.destination(msg)
    }

    fn deliverable(&self, node: NodeId, msg: &Self::Msg) -> bool {
        self.inner.deliverable(node, msg)
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &Self::Msg,
        f: &mut dyn FnMut(Transition<Self::Msg>),
    ) {
        match self.mutation {
            MutationSpec::DropTransitions(node) if at.node == node => {}
            MutationSpec::DemoteStatic(node) if at.node == node => {
                self.inner.for_each_transition(at, msg, &mut |mut t| {
                    t.kind = LinkKind::Dynamic;
                    f(t);
                });
            }
            _ => self.inner.for_each_transition(at, msg, f),
        }
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        self.inner.buffer_classes(node, port)
    }

    fn is_minimal(&self) -> bool {
        self.inner.is_minimal()
    }

    fn max_hops(&self) -> usize {
        self.inner.max_hops()
    }

    fn name(&self) -> String {
        match self.mutation {
            MutationSpec::None => self.inner.name(),
            m => format!("{} [{m:?}]", self.inner.name()),
        }
    }
}

// Identity symmetry — sound for any scheme (the lint engine's default).
impl<R: RoutingFunction> Symmetry for Mutated<R> {}

/// Clonable wrapper around the store-and-forward e-cube fixture
/// ([`EcubeHypercube`] keeps no parameters, so cloning rebuilds it).
pub struct StoreForwardEcube {
    dims: usize,
    inner: EcubeHypercube,
}

impl StoreForwardEcube {
    /// Single-queue e-cube on the `dims`-cube.
    pub fn new(dims: usize) -> Self {
        Self {
            dims,
            inner: EcubeHypercube::new(dims),
        }
    }
}

impl Clone for StoreForwardEcube {
    fn clone(&self) -> Self {
        Self::new(self.dims)
    }
}

impl RoutingFunction for StoreForwardEcube {
    type Msg = <EcubeHypercube as RoutingFunction>::Msg;

    fn topology(&self) -> &dyn Topology {
        self.inner.topology()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn initial_msg(&self, src: NodeId, dst: NodeId) -> Self::Msg {
        self.inner.initial_msg(src, dst)
    }

    fn destination(&self, msg: &Self::Msg) -> NodeId {
        self.inner.destination(msg)
    }

    fn deliverable(&self, node: NodeId, msg: &Self::Msg) -> bool {
        self.inner.deliverable(node, msg)
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &Self::Msg,
        f: &mut dyn FnMut(Transition<Self::Msg>),
    ) {
        self.inner.for_each_transition(at, msg, f);
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        self.inner.buffer_classes(node, port)
    }

    fn is_minimal(&self) -> bool {
        self.inner.is_minimal()
    }

    fn max_hops(&self) -> usize {
        self.inner.max_hops()
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

impl Symmetry for StoreForwardEcube {}

/// Monomorphizing visitor over the scheme a spec names.
/// [`RoutingFunction`] is not object-safe (associated `Msg`), so case
/// execution is dispatched through this trait instead of `dyn`.
pub trait SchemeVisitor {
    /// Result of visiting.
    type Out;

    /// Called with the constructed (and possibly mutated) scheme.
    fn visit<R>(self, rf: Mutated<R>) -> Self::Out
    where
        R: Symmetry + Clone + Send + 'static,
        R::Msg: Send;
}

/// Build the scheme `spec` names, wrap it in [`Mutated`] per `mutation`,
/// and hand it to `v`.
pub fn with_scheme<V: SchemeVisitor>(spec: &SchemeSpec, mutation: MutationSpec, v: V) -> V::Out {
    match spec {
        SchemeSpec::HypercubeFa { dims } => {
            v.visit(Mutated::new(HypercubeFullyAdaptive::new(*dims), mutation))
        }
        SchemeSpec::HypercubeHang { dims } => {
            v.visit(Mutated::new(HypercubeStaticHang::new(*dims), mutation))
        }
        SchemeSpec::EcubeSbp { dims } => v.visit(Mutated::new(EcubeSbp::new(*dims), mutation)),
        SchemeSpec::MeshFa { width, height } => v.visit(Mutated::new(
            MeshFullyAdaptive::new(*width, *height),
            mutation,
        )),
        SchemeSpec::MeshHang { width, height } => {
            v.visit(Mutated::new(MeshStaticHang::new(*width, *height), mutation))
        }
        SchemeSpec::MeshXy { width, height } => {
            v.visit(Mutated::new(MeshXY::new(*width, *height), mutation))
        }
        SchemeSpec::MeshKd { extents } => {
            v.visit(Mutated::new(MeshKDFullyAdaptive::new(extents), mutation))
        }
        SchemeSpec::Torus { width, height } => {
            v.visit(Mutated::new(TorusTwoPhase::new(*width, *height), mutation))
        }
        SchemeSpec::ShuffleExchange { dims } => {
            v.visit(Mutated::new(ShuffleExchangeRouting::new(*dims), mutation))
        }
        SchemeSpec::ShuffleExchangePaper { dims } => v.visit(Mutated::new(
            ShuffleExchangeRouting::paper_literal(*dims),
            mutation,
        )),
        SchemeSpec::EcubeStoreForward { dims } => {
            v.visit(Mutated::new(StoreForwardEcube::new(*dims), mutation))
        }
        SchemeSpec::SbpRandomRegular {
            nodes,
            degree,
            seed,
        } => v.visit(Mutated::new(
            AdaptiveSbp::new(RandomRegular::new(*nodes, *degree, *seed)),
            mutation,
        )),
    }
}
