//! Greedy spec-level shrinking.
//!
//! A failing [`CaseSpec`] is reduced move-by-move: each candidate is a
//! structurally smaller spec, accepted iff it still fails the *same*
//! property family. Moves iterate to a fixpoint under a bounded
//! evaluation budget, so shrinking always terminates even when a move
//! re-enables another. The result is what gets committed to the
//! regression corpus: the smallest witness the shrinker could find, not
//! the sprawling instance the generator happened to draw.

use fadr_sim::FaultKind;

use crate::props::Failure;
use crate::runner::run_case_guarded;
use crate::spec::{CaseSpec, MutationSpec, SchemeSpec, WorkloadSpec};

/// Evaluation budget: each candidate costs one full property run, so
/// the cap bounds shrink time at roughly 200 case executions.
const MAX_EVALS: usize = 200;

/// Shrink `spec` while it keeps failing with `failure`'s property.
/// Returns the smallest accepted spec and its (possibly re-worded)
/// failure.
pub fn shrink(spec: &CaseSpec, failure: &Failure) -> (CaseSpec, Failure) {
    shrink_with(spec, failure, run_case_guarded)
}

/// [`shrink`] with an explicit evaluation oracle — the full greedy loop
/// (move generation, same-property acceptance, fixpoint, budget) driven
/// by `eval` instead of the real property battery, so the machinery is
/// testable without a live engine bug to reproduce.
pub fn shrink_with(
    spec: &CaseSpec,
    failure: &Failure,
    mut eval: impl FnMut(&CaseSpec) -> Result<(), Failure>,
) -> (CaseSpec, Failure) {
    let mut best = spec.clone();
    let mut best_fail = failure.clone();
    let mut evals = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if evals >= MAX_EVALS {
                return (best, best_fail);
            }
            evals += 1;
            if let Err(f) = eval(&cand) {
                if f.property == best_fail.property {
                    best = cand;
                    best_fail = f;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return (best, best_fail);
        }
    }
}

/// All single-move reductions of `spec`, biggest first.
fn candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();

    // Drop the whole fault plan.
    if !spec.faults.events.is_empty() {
        let mut c = spec.clone();
        c.faults.events.clear();
        out.push(c);
    }

    // Shrink the topology (dropping fault events and clamping the
    // mutation node so the smaller instance stays well-formed).
    for scheme in shrunk_schemes(&spec.scheme) {
        let mut c = spec.clone();
        let n = scheme.num_nodes();
        c.scheme = scheme;
        c.faults.events.retain(|e| match e.kind {
            FaultKind::LinkDown { from, to } | FaultKind::FlakyLink { from, to, .. } => {
                (from as usize) < n && (to as usize) < n
            }
            FaultKind::NodeDown { node } | FaultKind::QueueFreeze { node, .. } => {
                (node as usize) < n
            }
        });
        match &mut c.mutation {
            MutationSpec::DemoteStatic(v) | MutationSpec::DropTransitions(v) => {
                *v = (*v).clamp(1, n - 1);
            }
            MutationSpec::None | MutationSpec::InflateClasses(_) => {}
        }
        out.push(c);
    }

    // Lighten the workload.
    match spec.workload {
        WorkloadSpec::Static { per_node } if per_node > 1 => {
            let mut c = spec.clone();
            c.workload = WorkloadSpec::Static { per_node: 1 };
            out.push(c);
        }
        WorkloadSpec::Dynamic { lambda_pct, cycles } if cycles > 10 => {
            let mut c = spec.clone();
            c.workload = WorkloadSpec::Dynamic {
                lambda_pct,
                cycles: (cycles / 2).max(10),
            };
            out.push(c);
        }
        _ => {}
    }

    // Drop individual fault events.
    for i in 0..spec.faults.events.len() {
        let mut c = spec.clone();
        c.faults.events.remove(i);
        out.push(c);
    }

    // Fewer lanes (1 drops the lane-engine leg entirely), fewer shard
    // counts, then the default strategy.
    if spec.lanes > 1 {
        let mut c = spec.clone();
        c.lanes = 1;
        out.push(c);
    }
    if spec.lanes > 2 {
        let mut c = spec.clone();
        c.lanes = 2;
        out.push(c);
    }
    if spec.shards != [2] {
        let mut c = spec.clone();
        c.shards = vec![2];
        out.push(c);
    }
    if spec.strategy != fadr_sim::PartitionStrategy::Auto {
        let mut c = spec.clone();
        c.strategy = fadr_sim::PartitionStrategy::Auto;
        out.push(c);
    }

    // Canonicalize the mutated node.
    match spec.mutation {
        MutationSpec::DemoteStatic(v) if v > 1 => {
            let mut c = spec.clone();
            c.mutation = MutationSpec::DemoteStatic(1);
            out.push(c);
        }
        MutationSpec::DropTransitions(v) if v > 1 => {
            let mut c = spec.clone();
            c.mutation = MutationSpec::DropTransitions(1);
            out.push(c);
        }
        _ => {}
    }

    out
}

/// One-step-smaller instances of a scheme (empty when already minimal).
fn shrunk_schemes(s: &SchemeSpec) -> Vec<SchemeSpec> {
    let mut out = Vec::new();
    match s {
        SchemeSpec::HypercubeFa { dims } if *dims > 2 => {
            out.push(SchemeSpec::HypercubeFa { dims: dims - 1 });
        }
        SchemeSpec::HypercubeHang { dims } if *dims > 2 => {
            out.push(SchemeSpec::HypercubeHang { dims: dims - 1 });
        }
        SchemeSpec::EcubeSbp { dims } if *dims > 2 => {
            out.push(SchemeSpec::EcubeSbp { dims: dims - 1 });
        }
        SchemeSpec::ShuffleExchange { dims } if *dims > 2 => {
            out.push(SchemeSpec::ShuffleExchange { dims: dims - 1 });
        }
        SchemeSpec::ShuffleExchangePaper { dims } if *dims > 2 => {
            out.push(SchemeSpec::ShuffleExchangePaper { dims: dims - 1 });
        }
        SchemeSpec::EcubeStoreForward { dims } if *dims > 2 => {
            out.push(SchemeSpec::EcubeStoreForward { dims: dims - 1 });
        }
        SchemeSpec::MeshFa { width, height } => {
            if *width > 2 {
                out.push(SchemeSpec::MeshFa {
                    width: width - 1,
                    height: *height,
                });
            }
            if *height > 2 {
                out.push(SchemeSpec::MeshFa {
                    width: *width,
                    height: height - 1,
                });
            }
        }
        SchemeSpec::MeshHang { width, height } => {
            if *width > 2 {
                out.push(SchemeSpec::MeshHang {
                    width: width - 1,
                    height: *height,
                });
            }
            if *height > 2 {
                out.push(SchemeSpec::MeshHang {
                    width: *width,
                    height: height - 1,
                });
            }
        }
        SchemeSpec::MeshXy { width, height } => {
            if *width > 2 {
                out.push(SchemeSpec::MeshXy {
                    width: width - 1,
                    height: *height,
                });
            }
            if *height > 2 {
                out.push(SchemeSpec::MeshXy {
                    width: *width,
                    height: height - 1,
                });
            }
        }
        SchemeSpec::MeshKd { extents } => {
            for (i, e) in extents.iter().enumerate() {
                if *e > 2 {
                    let mut smaller = extents.clone();
                    smaller[i] = e - 1;
                    out.push(SchemeSpec::MeshKd { extents: smaller });
                }
            }
            if extents.len() > 2 {
                for i in 0..extents.len() {
                    let mut fewer = extents.clone();
                    fewer.remove(i);
                    out.push(SchemeSpec::MeshKd { extents: fewer });
                }
            }
        }
        SchemeSpec::Torus { width, height } => {
            if *width > 3 {
                out.push(SchemeSpec::Torus {
                    width: width - 1,
                    height: *height,
                });
            }
            if *height > 3 {
                out.push(SchemeSpec::Torus {
                    width: *width,
                    height: height - 1,
                });
            }
        }
        // Keep the configuration model valid: degree < nodes and an
        // even stub count (degree is 3 in generated cases, so the node
        // count stays even).
        SchemeSpec::SbpRandomRegular {
            nodes,
            degree,
            seed,
        } if *nodes >= degree + 4 && ((nodes - 2) * degree).is_multiple_of(2) => {
            out.push(SchemeSpec::SbpRandomRegular {
                nodes: nodes - 2,
                degree: *degree,
                seed: *seed,
            });
        }
        _ => {}
    }
    out
}
