//! `fuzz` — the differential fuzz campaign driver.
//!
//! ```text
//! fuzz [--seed N] [--cases N] [--out DIR] [--verbose]   run a campaign
//! fuzz --replay PATH [--replay PATH ...]                replay case files / corpus dirs
//! ```
//!
//! Exit status: 0 = clean, 1 = counterexample found (or a replayed case
//! failed), 2 = usage error. Campaigns are pure functions of
//! `(--seed, --cases)`, so any failure line is a complete repro recipe.

use std::path::PathBuf;
use std::process::ExitCode;

use fadr_fuzz::{fuzz, replay_file, FuzzConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fuzz [--seed N] [--cases N] [--out DIR] [--verbose]\n       fuzz --replay PATH [--replay PATH ...]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = FuzzConfig::default();
    let mut replay: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(v) = args.next().and_then(|s| parse_u64(&s)) else {
                    return usage();
                };
                cfg.seed = v;
            }
            "--cases" => {
                let Some(v) = args.next().and_then(|s| parse_u64(&s)) else {
                    return usage();
                };
                cfg.cases = v;
            }
            "--out" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                cfg.out_dir = Some(PathBuf::from(dir));
            }
            "--replay" => {
                let Some(path) = args.next() else {
                    return usage();
                };
                replay.push(PathBuf::from(path));
            }
            "--verbose" => cfg.verbose = true,
            _ => return usage(),
        }
    }

    if !replay.is_empty() {
        return replay_all(&replay);
    }

    let outcome = fuzz(&cfg);
    if outcome.failures.is_empty() {
        println!("fuzz: {} cases clean (seed {:#x})", outcome.ran, cfg.seed);
        ExitCode::SUCCESS
    } else {
        println!(
            "fuzz: {} of {} cases FAILED (seed {:#x})",
            outcome.failures.len(),
            outcome.ran,
            cfg.seed
        );
        for f in &outcome.failures {
            println!(
                "  case {}: {} [shrunk to {} nodes] {}",
                f.index,
                f.shrunk_failure,
                f.shrunk.scheme.num_nodes(),
                f.shrunk.to_json()
            );
        }
        ExitCode::FAILURE
    }
}

/// Replay explicit case files, or every `*.json` in a directory.
fn replay_all(paths: &[PathBuf]) -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = match std::fs::read_dir(p) {
                Ok(rd) => rd
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|e| e.extension().is_some_and(|x| x == "json"))
                    .collect(),
                Err(e) => {
                    eprintln!("{}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            };
            entries.sort();
            files.extend(entries);
        } else {
            files.push(p.clone());
        }
    }
    if files.is_empty() {
        eprintln!("replay: no case files found");
        return ExitCode::FAILURE;
    }
    let mut failed = 0usize;
    for f in &files {
        match replay_file(f) {
            Ok(()) => println!("PASS {}", f.display()),
            Err(e) => {
                println!("FAIL {e}");
                failed += 1;
            }
        }
    }
    if failed == 0 {
        println!("replay: {} case(s) pass", files.len());
        ExitCode::SUCCESS
    } else {
        println!("replay: {failed} of {} case(s) FAILED", files.len());
        ExitCode::FAILURE
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
