//! `fadr-fuzz`: a shrinking differential fuzzer for the whole stack.
//!
//! The repo's components triple-check each other by construction: two
//! packet engines (sequential and sharded) and a wormhole engine run
//! the same routing functions; a certifier, an exhaustive checker, and
//! a lint battery judge the same schemes; a watchdog classifies the
//! same stalls the § 2 theory predicts. This crate turns that redundancy
//! into an adversarial search loop:
//!
//! 1. [`gen`] draws seeded random cases — scheme × instance size ×
//!    sabotage mutation × queue capacity × fault plan × workload ×
//!    shard layout;
//! 2. [`props`] checks each case against four property families
//!    (engine differential, oracle parity, certificate round-trip,
//!    verdict ground truth);
//! 3. [`shrink`] reduces any failure to a minimal spec that still
//!    fails the same property;
//! 4. [`runner`] persists the shrunk witness as a `fadr-fuzz/1` JSON
//!    case file, which `tests/replay_corpus.rs` replays forever after —
//!    every bug the fuzzer ever finds becomes a committed regression.
//!
//! Everything is deterministic from the master seed: no wall clock, no
//! global RNG, no external dependencies (the generator/shrinker are
//! hand-rolled; the build has no registry access).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod props;
pub mod runner;
pub mod shrink;
pub mod spec;

pub use gen::gen_case;
pub use props::{run_case, Failure, PropertyId};
pub use runner::{fuzz, replay_file, run_case_guarded, FoundCase, FuzzConfig, FuzzOutcome};
pub use shrink::{shrink, shrink_with};
pub use spec::{
    CaseSpec, Mutated, MutationSpec, SchemeSpec, StoreForwardEcube, WorkloadSpec, SCHEMA,
};
