//! The four differential property families a case is checked against.
//!
//! 1. **Differential** — the sequential engine, the sharded engine (at
//!    every requested shard count under the case's partition strategy),
//!    and, in scope, the wormhole engine must agree: identical results,
//!    identical partitioned-destination sets, identical journal
//!    fingerprints, and complete wormhole delivery. When the case draws
//!    `lanes > 1` (and has no faults), the lane-batched engine joins the
//!    panel: lane `k` of one `LaneSim` must reproduce a standalone
//!    sequential run with lane `k`'s seed, result-for-result.
//! 2. **Oracle parity** — the certifier, the exhaustive checker, and
//!    the lint battery must agree on accept/reject, and the class
//!    graph's level assignment must exist exactly when it is acyclic.
//! 3. **Certificate round-trip** — every accepted `fadr-verify/1`
//!    certificate re-validates, and targeted single-field tamperings
//!    are all rejected by the independent checker.
//! 4. **Verdicts** — watchdog/partition verdicts and the delivery-time
//!    bound match ground truth computed from the case spec: connected
//!    certified networks drain with no drops, wedged networks stall
//!    with a deadlock verdict, and certified fault-free drains respect
//!    a Faber-style `O(P · H)` cycle bound.

use fadr_lint::{lint_scheme, LintConfig};
use fadr_qdg::sym::Symmetry;
use fadr_qdg::verify::verify_deadlock_free;
use fadr_qdg::{explore, RoutingFunction};
use fadr_sim::{
    lane_seeds, FaultPlan, LaneSim, ShardedSimulator, SimConfig, Simulator, SinkSet, StopReason,
};
use fadr_topology::NodeId;
use fadr_verify::{certify, check_certificate, Certificate, ClassifierMode, Outcome};
use fadr_workloads::{static_backlog, Pattern};
use fadr_wormhole::{WormConfig, WormholeSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::spec::{CaseSpec, Mutated, MutationSpec, SchemeVisitor, WorkloadSpec};

/// Which property family a failure belongs to (shrinking preserves it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyId {
    /// Engine disagreement (seq vs sharded vs wormhole), or a worker
    /// panic surfaced as [`fadr_sim::ShardPanicked`].
    Differential,
    /// Certifier vs exhaustive checker vs lint disagreement.
    OracleParity,
    /// Certificate fails to re-validate, or a tampering slips through.
    CertificateRoundtrip,
    /// Watchdog/partition verdict or delivery-bound violation.
    Verdicts,
}

impl PropertyId {
    /// Stable name (used in case files and reports).
    pub fn name(self) -> &'static str {
        match self {
            Self::Differential => "differential",
            Self::OracleParity => "oracle-parity",
            Self::CertificateRoundtrip => "certificate-roundtrip",
            Self::Verdicts => "verdicts",
        }
    }
}

/// A property violation: which family, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// The violated property family.
    pub property: PropertyId,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.property.name(), self.detail)
    }
}

fn fail(property: PropertyId, detail: String) -> Result<(), Failure> {
    Err(Failure { property, detail })
}

/// Journal capacity: comfortably above any small-case event count, so
/// the ring buffer never wraps and fingerprints are total.
const JOURNAL_CAP: usize = 1 << 16;

/// Watchdog no-progress window for the verdict runs.
const WATCHDOG_WINDOW: u64 = 64;

/// Safety horizon; a case that reaches it is itself a finding.
const MAX_CYCLES: u64 = 50_000;

/// Run every applicable property family against the case.
///
/// # Errors
///
/// Returns the first [`Failure`] found.
pub fn run_case(spec: &CaseSpec) -> Result<(), Failure> {
    crate::spec::with_scheme(&spec.scheme, spec.mutation, CaseRunner { spec })
}

struct CaseRunner<'a> {
    spec: &'a CaseSpec,
}

impl SchemeVisitor for CaseRunner<'_> {
    type Out = Result<(), Failure>;

    fn visit<R>(self, rf: Mutated<R>) -> Self::Out
    where
        R: Symmetry + Clone + Send + 'static,
        R::Msg: Send,
    {
        let spec = self.spec;
        let cert = oracle_parity(&rf)?;
        if let Some(cert) = &cert {
            certificate_roundtrip(&rf, cert)?;
        }
        // The runtime properties compare engines on the *unmutated*
        // scheme: sabotaged schemes are the certifier's concern, and
        // feeding a known dead end to the simulator just wedges it.
        if spec.mutation == MutationSpec::None {
            differential(spec, &rf, cert.as_ref())?;
            lane_differential(spec, &rf)?;
            verdicts(spec, &rf, cert.is_some())?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Property 2: oracle parity
// ---------------------------------------------------------------------

fn oracle_parity<R: Symmetry>(rf: &R) -> Result<Option<Certificate>, Failure> {
    let report = lint_scheme(rf, &LintConfig::default());
    let outcome = certify(rf);
    let exhaustive = verify_deadlock_free(rf);
    let cert = match (&outcome, &exhaustive) {
        (Outcome::Certified(cert), Ok(())) => Some(cert.clone()),
        (Outcome::Rejected(_), Err(_)) => None,
        (Outcome::Certified(_), Err(v)) => {
            return Err(Failure {
                property: PropertyId::OracleParity,
                detail: format!(
                    "{}: certifier accepts but exhaustive checker rejects ({v})",
                    rf.name()
                ),
            });
        }
        (Outcome::Rejected(rej), Ok(())) => {
            return Err(Failure {
                property: PropertyId::OracleParity,
                detail: format!(
                    "{}: exhaustive checker accepts but certifier rejects ({})",
                    rf.name(),
                    rej.violation
                ),
            });
        }
    };
    if report.errors() == 0 && cert.is_none() {
        return Err(Failure {
            property: PropertyId::OracleParity,
            detail: format!(
                "{}: lint battery is clean but the certifier rejects",
                rf.name()
            ),
        });
    }
    // The class graph's level assignment must exist iff it is acyclic
    // (the `Digraph::levels` contract; cyclic inputs used to panic).
    let qdg = explore::build_qdg(rf);
    let acyclic = qdg.static_is_acyclic();
    let leveled = qdg.static_levels().is_some();
    if acyclic != leveled {
        return Err(Failure {
            property: PropertyId::OracleParity,
            detail: format!(
                "{}: static QDG acyclic={acyclic} but levels exist={leveled}",
                rf.name()
            ),
        });
    }
    Ok(cert)
}

// ---------------------------------------------------------------------
// Property 3: certificate round-trip
// ---------------------------------------------------------------------

fn certificate_roundtrip<R: Symmetry>(rf: &R, cert: &Certificate) -> Result<(), Failure> {
    if let Err(e) = check_certificate(rf, cert) {
        return fail(
            PropertyId::CertificateRoundtrip,
            format!(
                "{}: emitted certificate fails its own checker: {e}",
                rf.name()
            ),
        );
    }
    // Single-field tamperings the independent checker is contractually
    // bound to reject (each targets a check in `fadr-verify::check`).
    let mut tampered: Vec<(&str, Certificate)> = Vec::new();
    {
        let mut c = cert.clone();
        c.nodes += 1;
        tampered.push(("node-count bump", c));
    }
    {
        let mut c = cert.clone();
        c.algorithm.push_str("-tampered");
        tampered.push(("algorithm rename", c));
    }
    if let Some(&first) = cert.ranks.first() {
        let mut c = cert.clone();
        c.ranks.push(first);
        tampered.push(("duplicated rank entry", c));
    }
    if cert.ranks.len() >= 2 {
        // A certified scheme has at least one static non-stutter class
        // edge, so a flat rank function cannot strictly increase on it.
        let mut c = cert.clone();
        for r in &mut c.ranks {
            r.1 = 0;
        }
        tampered.push(("flattened ranks", c));
    }
    if !cert.all_dsts
        && !matches!(cert.classifier, ClassifierMode::Concrete)
        && !cert.dsts.is_empty()
    {
        let mut c = cert.clone();
        c.dsts.pop();
        tampered.push(("dropped representative destination", c));
    }
    for (what, c) in &tampered {
        if check_certificate(rf, c).is_ok() {
            return fail(
                PropertyId::CertificateRoundtrip,
                format!(
                    "{}: checker accepted a tampered certificate ({what})",
                    rf.name()
                ),
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Property 1: differential
// ---------------------------------------------------------------------

fn sim_config(spec: &CaseSpec) -> SimConfig {
    SimConfig {
        queue_capacity: spec.queue_capacity,
        seed: spec.seed,
        max_cycles: MAX_CYCLES,
        ..SimConfig::default()
    }
}

/// The case's static backlog (derived from the spec seed, independent of
/// the engine's own RNG stream).
pub fn backlog_for(spec: &CaseSpec, num_nodes: usize) -> Vec<Vec<NodeId>> {
    match spec.workload {
        WorkloadSpec::Static { per_node } => {
            let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xB10C_B10C);
            static_backlog(&Pattern::Random, num_nodes, per_node, &mut rng)
        }
        WorkloadSpec::Dynamic { .. } => Vec::new(),
    }
}

fn journal_fingerprint(rec: &SinkSet) -> (u64, u64) {
    rec.journal
        .as_ref()
        .map_or((0, 0), |j| (j.hash(), j.count()))
}

fn differential<R>(spec: &CaseSpec, rf: &R, cert: Option<&Certificate>) -> Result<(), Failure>
where
    R: Symmetry + Clone + Send + 'static,
    R::Msg: Send,
{
    let n = rf.topology().num_nodes();
    let cfg = sim_config(spec);
    let mk = || SinkSet::new().with_journal(JOURNAL_CAP);

    match spec.workload {
        WorkloadSpec::Static { .. } => {
            let backlog = backlog_for(spec, n);
            let mut seq =
                Simulator::with_recorder(rf.clone(), cfg, mk()).with_faults(spec.faults.clone());
            let seq_res = seq.run_static(&backlog);
            let seq_part = seq.partitioned_destinations();
            let seq_journal = journal_fingerprint(&seq.into_recorder());
            for &shards in &spec.shards {
                let mut shr = ShardedSimulator::with_recorders_strategy(
                    rf.clone(),
                    cfg,
                    shards,
                    spec.strategy,
                    |_| mk(),
                )
                .with_faults(spec.faults.clone());
                let shr_res = match shr.try_run_static(&backlog) {
                    Ok(r) => r,
                    Err(e) => {
                        return fail(PropertyId::Differential, format!("{}: {e}", rf.name()));
                    }
                };
                if shr_res != seq_res {
                    return fail(
                        PropertyId::Differential,
                        format!(
                            "{}: static result diverged at {shards} shards ({}): seq {seq_res:?} vs sharded {shr_res:?}",
                            rf.name(),
                            spec.strategy.name()
                        ),
                    );
                }
                let shr_part = shr.partitioned_destinations();
                if shr_part != seq_part {
                    return fail(
                        PropertyId::Differential,
                        format!(
                            "{}: partition set diverged at {shards} shards: {seq_part:?} vs {shr_part:?}",
                            rf.name()
                        ),
                    );
                }
                let shr_journal = journal_fingerprint(&shr.into_recorder());
                if shr_journal != seq_journal {
                    return fail(
                        PropertyId::Differential,
                        format!(
                            "{}: journal fingerprint diverged at {shards} shards: {seq_journal:?} vs {shr_journal:?}",
                            rf.name()
                        ),
                    );
                }
            }
            // Wormhole leg: on a certified scheme with no faults, the
            // flit-level engine must deliver the same message set in
            // full (journals are not comparable across models — worms
            // never enter central queues — so the check is delivery
            // completeness, with the VC regime the certificate scopes).
            if let Some(cert) = cert {
                if spec.faults.events.is_empty() {
                    let wcfg = WormConfig {
                        seed: spec.seed,
                        use_dynamic_vcs: cert.adaptive_wormhole_in_scope(),
                        max_cycles: 1_000_000,
                        ..WormConfig::default()
                    };
                    let mut worm = WormholeSim::new(rf.clone(), wcfg);
                    let wres = worm.run_static(&backlog);
                    if !wres.drained || wres.delivered != wres.total {
                        return fail(
                            PropertyId::Differential,
                            format!(
                                "{}: wormhole leg failed to deliver: {}/{} in {} cycles (dynamic VCs: {})",
                                rf.name(),
                                wres.delivered,
                                wres.total,
                                wres.cycles,
                                cert.adaptive_wormhole_in_scope()
                            ),
                        );
                    }
                }
            }
        }
        WorkloadSpec::Dynamic { lambda_pct, cycles } => {
            let lambda = f64::from(lambda_pct) / 100.0;
            let mut seq =
                Simulator::with_recorder(rf.clone(), cfg, mk()).with_faults(spec.faults.clone());
            let seq_res = seq.run_dynamic(lambda, |s, rng| Pattern::Random.draw(s, n, rng), cycles);
            let seq_part = seq.partitioned_destinations();
            let seq_journal = journal_fingerprint(&seq.into_recorder());
            for &shards in &spec.shards {
                let mut shr = ShardedSimulator::with_recorders_strategy(
                    rf.clone(),
                    cfg,
                    shards,
                    spec.strategy,
                    |_| mk(),
                )
                .with_faults(spec.faults.clone());
                let shr_res = match shr.try_run_dynamic(
                    lambda,
                    |s, rng| Pattern::Random.draw(s, n, rng),
                    cycles,
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        return fail(PropertyId::Differential, format!("{}: {e}", rf.name()));
                    }
                };
                if shr_res != seq_res {
                    return fail(
                        PropertyId::Differential,
                        format!(
                            "{}: dynamic result diverged at {shards} shards ({}): seq {seq_res:?} vs sharded {shr_res:?}",
                            rf.name(),
                            spec.strategy.name()
                        ),
                    );
                }
                let shr_part = shr.partitioned_destinations();
                if shr_part != seq_part {
                    return fail(
                        PropertyId::Differential,
                        format!(
                            "{}: partition set diverged at {shards} shards: {seq_part:?} vs {shr_part:?}",
                            rf.name()
                        ),
                    );
                }
                let shr_journal = journal_fingerprint(&shr.into_recorder());
                if shr_journal != seq_journal {
                    return fail(
                        PropertyId::Differential,
                        format!(
                            "{}: journal fingerprint diverged at {shards} shards: {seq_journal:?} vs {shr_journal:?}",
                            rf.name()
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

/// Lane-engine leg of the differential: every lane of one batched
/// [`LaneSim`] must reproduce a standalone sequential run seeded with
/// that lane's seed. Skipped when the case drew `lanes == 1` or carries
/// faults (the lane engine is deliberately fault-free).
fn lane_differential<R>(spec: &CaseSpec, rf: &R) -> Result<(), Failure>
where
    R: Symmetry + Clone + Send + 'static,
    R::Msg: Send,
{
    if spec.lanes <= 1 || !spec.faults.events.is_empty() {
        return Ok(());
    }
    let n = rf.topology().num_nodes();
    let cfg = sim_config(spec);
    let seeds = lane_seeds(cfg.seed, spec.lanes);
    let mut lanes = LaneSim::with_lane_seeds(rf.clone(), cfg, seeds.clone());

    match spec.workload {
        WorkloadSpec::Static { .. } => {
            let backlog = backlog_for(spec, n);
            let backlogs = vec![backlog.clone(); spec.lanes];
            let lane_res = lanes.run_static(&backlogs);
            for (k, (&seed, lr)) in seeds.iter().zip(&lane_res).enumerate() {
                let mut seq = Simulator::new(rf.clone(), SimConfig { seed, ..cfg });
                let sr = seq.run_static(&backlog);
                if *lr != sr {
                    return fail(
                        PropertyId::Differential,
                        format!(
                            "{}: lane {k}/{} static result diverged from its sequential twin: lane {lr:?} vs seq {sr:?}",
                            rf.name(),
                            spec.lanes
                        ),
                    );
                }
            }
        }
        WorkloadSpec::Dynamic { lambda_pct, cycles } => {
            let lambda = f64::from(lambda_pct) / 100.0;
            let lane_res =
                lanes.run_dynamic(lambda, |s, rng| Pattern::Random.draw(s, n, rng), cycles);
            for (k, (&seed, lr)) in seeds.iter().zip(&lane_res).enumerate() {
                let mut seq = Simulator::new(rf.clone(), SimConfig { seed, ..cfg });
                let sr = seq.run_dynamic(lambda, |s, rng| Pattern::Random.draw(s, n, rng), cycles);
                if *lr != sr {
                    return fail(
                        PropertyId::Differential,
                        format!(
                            "{}: lane {k}/{} dynamic result diverged from its sequential twin: lane {lr:?} vs seq {sr:?}",
                            rf.name(),
                            spec.lanes
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Property 4: verdicts
// ---------------------------------------------------------------------

/// Whether the network survives the plan fully intact as a graph: no
/// node dies and the digraph minus permanently dead links stays strongly
/// connected (finite freezes and flaky windows heal, so they never
/// affect this).
pub fn survives_connected<R: RoutingFunction>(rf: &R, plan: &FaultPlan) -> bool {
    let topo = rf.topology();
    let size = topo.num_nodes();
    if plan.final_dead_nodes(size).iter().any(|&d| d) {
        return false;
    }
    let dead = plan.final_dead_links();
    let mut fwd = vec![Vec::new(); size];
    let mut rev = vec![Vec::new(); size];
    for (v, out) in fwd.iter_mut().enumerate() {
        for p in 0..topo.max_ports() {
            if let Some(w) = topo.neighbor(v, p) {
                if !dead.contains(&(v as u32, w as u32)) {
                    out.push(w);
                    rev[w].push(v);
                }
            }
        }
    }
    let reaches_all = |adj: &[Vec<usize>]| {
        let mut seen = vec![false; size];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        seen.iter().all(|&s| s)
    };
    reaches_all(&fwd) && reaches_all(&rev)
}

fn verdicts<R>(spec: &CaseSpec, rf: &R, certified: bool) -> Result<(), Failure>
where
    R: Symmetry + Clone + Send + 'static,
    R::Msg: Send,
{
    let n = rf.topology().num_nodes();
    let cfg = sim_config(spec);
    let connected = survives_connected(rf, &spec.faults);
    let fault_free = spec.faults.events.is_empty();
    let mut sim = Simulator::with_recorder(
        rf.clone(),
        cfg,
        SinkSet::new().with_watchdog(WATCHDOG_WINDOW),
    )
    .with_faults(spec.faults.clone());

    match spec.workload {
        WorkloadSpec::Static { .. } => {
            let backlog = backlog_for(spec, n);
            let total: u64 = backlog.iter().map(|b| b.len() as u64).sum();
            let res = sim.run_static(&backlog);
            let part = sim.partitioned_destinations();
            if res.stop == StopReason::MaxCycles {
                return fail(
                    PropertyId::Verdicts,
                    format!(
                        "{}: static run hit the {MAX_CYCLES}-cycle cap with a {WATCHDOG_WINDOW}-cycle watchdog attached",
                        rf.name()
                    ),
                );
            }
            if (res.stop == StopReason::Partitioned) == part.is_empty() {
                return fail(
                    PropertyId::Verdicts,
                    format!(
                        "{}: stop={:?} but partitioned destinations = {part:?}",
                        rf.name(),
                        res.stop
                    ),
                );
            }
            if fault_free && res.stop == StopReason::Drained && res.delivered != total {
                return fail(
                    PropertyId::Verdicts,
                    format!(
                        "{}: fault-free drain lost packets: delivered {} of {total}",
                        rf.name(),
                        res.delivered
                    ),
                );
            }
            if certified && connected && spec.queue_capacity >= 8 {
                if res.stop != StopReason::Drained {
                    return fail(
                        PropertyId::Verdicts,
                        format!(
                            "{}: certified scheme on a connected network stopped {:?} (verdict: {:?})",
                            rf.name(),
                            res.stop,
                            sim.recorder().stall().map(fadr_sim::StallReport::verdict)
                        ),
                    );
                }
                if res.dropped != 0 || res.lost != 0 || !part.is_empty() {
                    return fail(
                        PropertyId::Verdicts,
                        format!(
                            "{}: connected network reported drops/losses/partition: dropped={} lost={} part={part:?}",
                            rf.name(),
                            res.dropped,
                            res.lost
                        ),
                    );
                }
                // Faber-style delivery-time bound: a fault-free drain on
                // a certified minimal adaptive scheme is O(P · H); the
                // constants are deliberately loose — a violation means
                // the run did something pathological, not merely slow.
                if fault_free {
                    let h = rf.max_hops() as u64;
                    let bound = 4 * total * (2 * h + 5) + 200;
                    if res.cycles > bound {
                        return fail(
                            PropertyId::Verdicts,
                            format!(
                                "{}: drained in {} cycles, over the delivery bound {bound} (P={total}, H={h})",
                                rf.name(),
                                res.cycles
                            ),
                        );
                    }
                }
            }
            // A zero-capacity network is wedged by construction: any
            // real packet must produce a stall whose verdict is
            // "deadlock" (nothing can move, so no livelock ambiguity).
            let wedged_packet = backlog
                .iter()
                .enumerate()
                .any(|(src, dsts)| dsts.iter().any(|&d| d != src));
            if spec.queue_capacity == 0 && fault_free && wedged_packet {
                let verdict = sim.recorder().stall().map(fadr_sim::StallReport::verdict);
                if res.stop != StopReason::Aborted || verdict != Some("deadlock") {
                    return fail(
                        PropertyId::Verdicts,
                        format!(
                            "{}: wedged network stopped {:?} with verdict {verdict:?}, expected an aborted deadlock",
                            rf.name(),
                            res.stop
                        ),
                    );
                }
            }
        }
        WorkloadSpec::Dynamic { lambda_pct, cycles } => {
            let lambda = f64::from(lambda_pct) / 100.0;
            let res = sim.run_dynamic(lambda, |s, rng| Pattern::Random.draw(s, n, rng), cycles);
            let part = sim.partitioned_destinations();
            if (res.stop == StopReason::Partitioned) == part.is_empty() {
                return fail(
                    PropertyId::Verdicts,
                    format!(
                        "{}: dynamic stop={:?} but partitioned destinations = {part:?}",
                        rf.name(),
                        res.stop
                    ),
                );
            }
            if certified && connected && spec.queue_capacity >= 8 {
                if res.stop != StopReason::HorizonReached {
                    return fail(
                        PropertyId::Verdicts,
                        format!(
                            "{}: certified dynamic run on a connected network aborted: {:?}",
                            rf.name(),
                            res.stop
                        ),
                    );
                }
                if res.dropped != 0 {
                    return fail(
                        PropertyId::Verdicts,
                        format!(
                            "{}: connected dynamic run dropped {} packets",
                            rf.name(),
                            res.dropped
                        ),
                    );
                }
            }
        }
    }
    Ok(())
}
