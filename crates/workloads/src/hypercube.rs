//! Hypercube address permutations used by the paper's § 7.

use rand::seq::SliceRandom;
use rand::Rng;

use fadr_topology::{hamming_weight, NodeId};

/// Complement: destination is the bitwise complement of the source
/// (§ 7, "Complement"). Distance is always `n`.
pub fn complement(dims: usize, v: NodeId) -> NodeId {
    !v & ((1usize << dims) - 1)
}

/// Transpose: swap the two halves of the address; for odd `n` the middle
/// bit stays put (§ 7, "Transpose").
pub fn transpose(dims: usize, v: NodeId) -> NodeId {
    let half = dims / 2;
    let lo_mask = (1usize << half) - 1;
    let lo = v & lo_mask;
    let hi = (v >> (dims - half)) & lo_mask;
    let mid = if dims % 2 == 1 {
        v & (1usize << half)
    } else {
        0
    };
    (lo << (dims - half)) | mid | hi
}

/// Bit reversal: address bits reversed (a standard adversarial pattern
/// complementing the paper's set).
pub fn bit_reversal(dims: usize, v: NodeId) -> NodeId {
    let mut out = 0usize;
    for i in 0..dims {
        if v & (1 << i) != 0 {
            out |= 1 << (dims - 1 - i);
        }
    }
    out
}

/// Perfect-shuffle permutation: one-bit left rotation of the address.
pub fn perfect_shuffle(dims: usize, v: NodeId) -> NodeId {
    ((v << 1) | (v >> (dims - 1))) & ((1usize << dims) - 1)
}

/// A *leveled permutation* (§ 7): a random permutation mapping every node
/// to a node of the same Hamming weight ("level"). \[FCS90\] reports that
/// such permutations congest oblivious random-minimal-path routing.
pub fn leveled_permutation<R: Rng>(dims: usize, rng: &mut R) -> Vec<NodeId> {
    let n = 1usize << dims;
    let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); dims + 1];
    for v in 0..n {
        by_level[hamming_weight(v)].push(v);
    }
    let mut perm = vec![0usize; n];
    for group in &by_level {
        let mut shuffled = group.clone();
        shuffled.shuffle(rng);
        for (&src, &dst) in group.iter().zip(&shuffled) {
            perm[src] = dst;
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complement_is_involution_at_full_distance() {
        for v in 0..16 {
            assert_eq!(complement(4, complement(4, v)), v);
            assert_eq!(fadr_topology::hamming_distance(v, complement(4, v)), 4);
        }
    }

    #[test]
    fn transpose_even() {
        // n = 4: b3 b2 b1 b0 -> b1 b0 b3 b2.
        assert_eq!(transpose(4, 0b1100), 0b0011);
        assert_eq!(transpose(4, 0b1010), 0b1010);
        for v in 0..16 {
            assert_eq!(transpose(4, transpose(4, v)), v);
        }
    }

    #[test]
    fn transpose_odd_keeps_middle_bit() {
        // n = 5: b4 b3 | b2 | b1 b0 -> b1 b0 | b2 | b4 b3.
        assert_eq!(transpose(5, 0b11000), 0b00011);
        assert_eq!(transpose(5, 0b00100), 0b00100);
        for v in 0..32 {
            assert_eq!(transpose(5, transpose(5, v)), v);
        }
    }

    #[test]
    fn bit_reversal_is_involution() {
        assert_eq!(bit_reversal(4, 0b0001), 0b1000);
        assert_eq!(bit_reversal(5, 0b10110), 0b01101);
        for v in 0..32 {
            assert_eq!(bit_reversal(5, bit_reversal(5, v)), v);
        }
    }

    #[test]
    fn perfect_shuffle_rotates() {
        assert_eq!(perfect_shuffle(3, 0b100), 0b001);
        assert_eq!(perfect_shuffle(3, 0b110), 0b101);
    }

    #[test]
    fn leveled_permutation_is_a_level_preserving_bijection() {
        let mut rng = StdRng::seed_from_u64(7);
        let perm = leveled_permutation(6, &mut rng);
        let mut seen = vec![false; perm.len()];
        for (src, &dst) in perm.iter().enumerate() {
            assert_eq!(hamming_weight(src), hamming_weight(dst));
            assert!(!seen[dst], "not a bijection");
            seen[dst] = true;
        }
    }

    #[test]
    fn leveled_permutation_is_seed_deterministic() {
        let a = leveled_permutation(5, &mut StdRng::seed_from_u64(42));
        let b = leveled_permutation(5, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
