//! Traffic patterns and injection workloads for routing experiments.
//!
//! Implements the communication patterns of the paper's § 7 —
//! **Random Routing**, **Complement**, **Transpose**, and **Leveled
//! Permutation** — plus common extensions (bit reversal, perfect-shuffle
//! permutation, random permutation, hotspot), and the two injection
//! models (static with 1 or `log N` packets per node, dynamic
//! Bernoulli-λ).
//!
//! Patterns are *compiled* per network instance into a [`Pattern`] that
//! the simulator samples; permutation-based patterns are deterministic,
//! `Random` draws a fresh destination per packet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hypercube;
pub mod injection;
pub mod pattern;

pub use injection::{static_backlog, InjectionModel};
pub use pattern::Pattern;
