//! Compiled traffic patterns: per-source destination generators.

use rand::Rng;

use fadr_topology::NodeId;

use crate::hypercube as hc;

/// A traffic pattern compiled for a concrete network size.
///
/// `Random` draws a fresh uniform destination (excluding the source) per
/// packet; the others are fixed maps. Fixed maps may contain fixed points
/// (e.g. palindromic addresses under `Transpose`); the simulator delivers
/// such self-addressed packets locally with latency 1.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// Uniform over all nodes except the source (§ 7, "Random Routing").
    Random,
    /// A fixed destination map `src -> map[src]`.
    Map(Vec<NodeId>),
    /// Every node sends to one hotspot node (the hotspot itself sends
    /// uniformly at random over the *other* nodes, exactly like
    /// [`Pattern::Random`] — it never draws itself).
    Hotspot(NodeId),
}

impl Pattern {
    /// § 7 "Complement" on the n-cube.
    pub fn complement(dims: usize) -> Self {
        Self::Map(
            (0..1usize << dims)
                .map(|v| hc::complement(dims, v))
                .collect(),
        )
    }

    /// § 7 "Transpose" on the n-cube.
    pub fn transpose(dims: usize) -> Self {
        Self::Map(
            (0..1usize << dims)
                .map(|v| hc::transpose(dims, v))
                .collect(),
        )
    }

    /// § 7 "Leveled Permutation" on the n-cube (seeded).
    pub fn leveled_permutation<R: Rng>(dims: usize, rng: &mut R) -> Self {
        Self::Map(hc::leveled_permutation(dims, rng))
    }

    /// Bit-reversal permutation on the n-cube.
    pub fn bit_reversal(dims: usize) -> Self {
        Self::Map(
            (0..1usize << dims)
                .map(|v| hc::bit_reversal(dims, v))
                .collect(),
        )
    }

    /// Perfect-shuffle permutation on the n-cube.
    pub fn perfect_shuffle(dims: usize) -> Self {
        Self::Map(
            (0..1usize << dims)
                .map(|v| hc::perfect_shuffle(dims, v))
                .collect(),
        )
    }

    /// Uniform random permutation over `num_nodes` nodes (seeded).
    pub fn random_permutation<R: Rng>(num_nodes: usize, rng: &mut R) -> Self {
        use rand::seq::SliceRandom;
        let mut perm: Vec<NodeId> = (0..num_nodes).collect();
        perm.shuffle(rng);
        Self::Map(perm)
    }

    /// Mesh/torus transpose `(x, y) -> (y, x)` on a `side × side` grid.
    pub fn grid_transpose(side: usize) -> Self {
        Self::Map(
            (0..side * side)
                .map(|v| {
                    let (x, y) = (v % side, v / side);
                    x * side + y
                })
                .collect(),
        )
    }

    /// Draw the destination for a packet injected at `src`.
    ///
    /// Degenerate sizes are total: a 1-node network has no destination
    /// other than the source, so `Random` (and a hotspot sending from
    /// itself) returns `src` — the simulator delivers such self-addressed
    /// packets locally. Larger networks never draw `src`.
    pub fn draw<R: Rng>(&self, src: NodeId, num_nodes: usize, rng: &mut R) -> NodeId {
        // Uniform over V \ {src} (§ 7, footnote 2); total for N = 1.
        fn other_than<R: Rng>(src: NodeId, num_nodes: usize, rng: &mut R) -> NodeId {
            if num_nodes <= 1 {
                return src;
            }
            let d = rng.gen_range(0..num_nodes - 1);
            if d >= src {
                d + 1
            } else {
                d
            }
        }
        match self {
            Pattern::Random => other_than(src, num_nodes, rng),
            Pattern::Map(map) => map[src],
            Pattern::Hotspot(target) => {
                if src == *target {
                    other_than(src, num_nodes, rng)
                } else {
                    *target
                }
            }
        }
    }

    /// Short name for table headers.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Random => "random",
            Pattern::Map(_) => "map",
            Pattern::Hotspot(_) => "hotspot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_never_draws_self() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Pattern::Random;
        for src in 0..8 {
            for _ in 0..200 {
                assert_ne!(p.draw(src, 8, &mut rng), src);
            }
        }
    }

    #[test]
    fn random_covers_all_other_nodes() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Pattern::Random;
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[p.draw(3, 8, &mut rng)] = true;
        }
        for (v, &s) in seen.iter().enumerate() {
            assert_eq!(s, v != 3, "node {v}");
        }
    }

    #[test]
    fn complement_map() {
        let p = Pattern::complement(3);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.draw(0b101, 8, &mut rng), 0b010);
    }

    #[test]
    fn grid_transpose_swaps_coordinates() {
        let p = Pattern::grid_transpose(4);
        let mut rng = StdRng::seed_from_u64(0);
        // (1, 2) = id 9 -> (2, 1) = id 6.
        assert_eq!(p.draw(9, 16, &mut rng), 6);
        // Diagonal nodes are fixed points.
        assert_eq!(p.draw(5, 16, &mut rng), 5);
    }

    #[test]
    fn hotspot_targets_one_node() {
        let p = Pattern::Hotspot(2);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.draw(0, 8, &mut rng), 2);
        assert_ne!(p.draw(2, 8, &mut rng), 2);
    }

    #[test]
    fn hotspot_self_draw_matches_random_excluding_self() {
        // The hotspot's own sends use the same uniform-over-V\{src} draw
        // as `Random`: identical RNG state must yield the identical
        // destination stream, and no draw may ever return the hotspot.
        let hotspot = Pattern::Hotspot(5);
        let random = Pattern::Random;
        let mut rng_h = StdRng::seed_from_u64(7);
        let mut rng_r = StdRng::seed_from_u64(7);
        let mut seen = [false; 16];
        for _ in 0..400 {
            let d = hotspot.draw(5, 16, &mut rng_h);
            assert_eq!(d, random.draw(5, 16, &mut rng_r));
            assert_ne!(d, 5, "hotspot drew itself");
            seen[d] = true;
        }
        // And the draw really is spread over every other node.
        for (v, &s) in seen.iter().enumerate() {
            assert_eq!(s, v != 5, "node {v}");
        }
    }

    #[test]
    fn one_node_network_draws_are_total() {
        // With a single node the only possible destination is the source;
        // draw must not panic (it used to call gen_range(0..0)).
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(Pattern::Random.draw(0, 1, &mut rng), 0);
        assert_eq!(Pattern::Hotspot(0).draw(0, 1, &mut rng), 0);
        // Two nodes: the draw is forced but well-defined.
        assert_eq!(Pattern::Random.draw(0, 2, &mut rng), 1);
        assert_eq!(Pattern::Random.draw(1, 2, &mut rng), 0);
    }

    #[test]
    fn random_permutation_is_bijection() {
        let mut rng = StdRng::seed_from_u64(3);
        if let Pattern::Map(m) = Pattern::random_permutation(32, &mut rng) {
            let mut seen = [false; 32];
            for &d in &m {
                assert!(!seen[d]);
                seen[d] = true;
            }
        } else {
            panic!("expected map");
        }
    }
}

/// Torus/grid-specific pattern constructors.
impl Pattern {
    /// Tornado on a `side × side` torus: every node sends
    /// `⌈side/2⌉ - 1` hops around its x-ring — the classic adversarial
    /// torus pattern that concentrates load in one rotational direction.
    ///
    /// A meaningful tornado needs `side >= 3`: on a 1- or 2-wide ring the
    /// shift formula degenerates to 0 (all-self traffic, and for
    /// `side = 0` it would underflow), which silently measures nothing.
    ///
    /// # Panics
    ///
    /// Panics if `side < 3`.
    pub fn tornado(side: usize) -> Self {
        assert!(
            side >= 3,
            "tornado needs side >= 3 (side {side} gives shift 0: all-self traffic)"
        );
        let shift = side.div_ceil(2) - 1; // just under half way
        Self::Map(
            (0..side * side)
                .map(|v| {
                    let (x, y) = (v % side, v / side);
                    y * side + (x + shift) % side
                })
                .collect(),
        )
    }

    /// Nearest-neighbor ring on any topology sized `num_nodes`: node `v`
    /// sends to `v + 1 mod N` (light, local traffic).
    pub fn ring_neighbor(num_nodes: usize) -> Self {
        Self::Map((0..num_nodes).map(|v| (v + 1) % num_nodes).collect())
    }

    /// Grid bit-complement: `(x, y) -> (side-1-x, side-1-y)`, the mesh
    /// analogue of the hypercube Complement (all traffic crosses the
    /// center).
    pub fn grid_complement(side: usize) -> Self {
        Self::Map(
            (0..side * side)
                .map(|v| {
                    let (x, y) = (v % side, v / side);
                    (side - 1 - y) * side + (side - 1 - x)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tornado_shifts_along_x() {
        let p = Pattern::tornado(6);
        let mut rng = StdRng::seed_from_u64(0);
        // (0,0) -> (2,0) with shift = ceil(6/2)-1 = 2.
        assert_eq!(p.draw(0, 36, &mut rng), 2);
        // Wraps: (5,1) -> (1,1).
        assert_eq!(p.draw(11, 36, &mut rng), 7);
    }

    #[test]
    fn tornado_shift_is_nonzero_for_valid_sides() {
        for side in 3..10 {
            if let Pattern::Map(m) = Pattern::tornado(side) {
                // No node sends to itself: the shift is in 1..side.
                for (v, &d) in m.iter().enumerate() {
                    assert_ne!(v, d, "side {side}");
                }
            } else {
                panic!("expected map");
            }
        }
    }

    #[test]
    #[should_panic(expected = "tornado needs side >= 3")]
    fn tornado_rejects_degenerate_side_two() {
        let _ = Pattern::tornado(2);
    }

    #[test]
    #[should_panic(expected = "tornado needs side >= 3")]
    fn tornado_rejects_side_zero() {
        // side = 0 previously underflowed in the shift computation.
        let _ = Pattern::tornado(0);
    }

    #[test]
    fn ring_neighbor_wraps() {
        let p = Pattern::ring_neighbor(8);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.draw(7, 8, &mut rng), 0);
        assert_eq!(p.draw(3, 8, &mut rng), 4);
    }

    #[test]
    fn grid_complement_is_involution() {
        let p = Pattern::grid_complement(5);
        let mut rng = StdRng::seed_from_u64(0);
        if let Pattern::Map(m) = &p {
            for v in 0..25 {
                assert_eq!(m[m[v]], v);
            }
        }
        // Center is the fixed point.
        assert_eq!(p.draw(12, 25, &mut rng), 12);
    }
}
