//! Injection models (§ 7): static backlogs and dynamic Bernoulli-λ.

use rand::Rng;

use fadr_topology::NodeId;

use crate::pattern::Pattern;

/// How packets enter the network (§ 7, "Injection Model").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionModel {
    /// Every node holds a fixed number of packets at time 0 (the paper
    /// runs 1 and `log N` packets per node).
    Static {
        /// Packets initially backlogged at each node.
        packets_per_node: usize,
    },
    /// Every node attempts an injection each cycle with probability λ
    /// (the paper runs λ = 1).
    Dynamic {
        /// Per-cycle injection probability.
        lambda: f64,
    },
}

/// Build the per-node destination backlog for a static run: node `v`
/// gets `packets_per_node` packets with destinations drawn from
/// `pattern`.
pub fn static_backlog<R: Rng>(
    pattern: &Pattern,
    num_nodes: usize,
    packets_per_node: usize,
    rng: &mut R,
) -> Vec<Vec<NodeId>> {
    (0..num_nodes)
        .map(|src| {
            (0..packets_per_node)
                .map(|_| pattern.draw(src, num_nodes, rng))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn backlog_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = static_backlog(&Pattern::Random, 16, 4, &mut rng);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|q| q.len() == 4));
        for (src, q) in b.iter().enumerate() {
            for &d in q {
                assert_ne!(d, src);
                assert!(d < 16);
            }
        }
    }

    #[test]
    fn permutation_backlog_repeats_destination() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = static_backlog(&Pattern::complement(3), 8, 3, &mut rng);
        for (src, q) in b.iter().enumerate() {
            assert!(q.iter().all(|&d| d == (!src & 7)));
        }
    }
}
