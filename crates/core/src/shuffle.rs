//! Shuffle-exchange routing (§ 5): two passes over the address bits, one
//! per phase, with Dally–Seitz breaking of the shuffle cycles.
//!
//! # The algorithm
//!
//! A message carries a **shuffle counter** `k`. After its `k`-th shuffle it
//! examines bit position `n-1-((k-1) mod n)` of the *logical word*
//! `W = ror^(k mod n)(u)` (its address un-rotated) against the destination:
//!
//! * a `0→1` mismatch **must** be fixed by the exchange link while it is
//!   examined in phase 1 (phase 2 only lowers levels);
//! * a `1→0` mismatch **must** be fixed in phase 2, and — with dynamic
//!   links enabled — **may** opportunistically be fixed in phase 1.
//!
//! A message is in phase 1 exactly while some `0→1` correction is pending;
//! shuffles never change `W`, so phases switch only on exchange hops.
//! Routes take at most `2n` shuffle plus `n` exchange hops (Theorem 3),
//! and messages are consumed as soon as they reach their destination node.
//!
//! # Queue classes and the composite-`n` correction
//!
//! Within a phase, deadlock over the shuffle cycles is broken at one node
//! per cycle ([`ShuffleExchange::is_cycle_break`]): a message's *cycle
//! class* starts at 0, increments when it shuffles out of the break node,
//! and resets on every exchange. The paper uses one class per phase pair
//! (4 queues, "break the shuffle cycles twice").
//!
//! Our model checker found that two classes per phase are only sufficient
//! when every shuffle cycle is as long as a phase residence: for
//! **composite** `n` there are short cycles (period-`L` necklaces, `L | n`)
//! that a message can wrap *several* times while waiting for its next
//! correction position, re-crossing the break node and closing a static
//! QDG cycle. We therefore provision `1 + max_{L | n, 2 <= L} (1 +
//! ⌊(n-1)/L⌋)` classes per phase — exactly 2 (the paper's 4 queues total)
//! when `n` is prime, and slightly more otherwise. See DESIGN.md.
//!
//! The degenerate one-node cycles (`0…0`, `1…1`) have self-loop shuffle
//! links; a "shuffle" there is modelled as an internal stutter that bumps
//! the counter without acquiring a new queue slot.

use fadr_qdg::sym::Symmetry;
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_topology::shuffle_exchange::{PORT_EXCHANGE, PORT_SHUFFLE};
use fadr_topology::{NodeId, Port, ShuffleExchange, Topology};

/// Message routing state for [`ShuffleExchangeRouting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeMsg {
    /// Destination node address.
    pub dst: NodeId,
    /// Shuffle hops taken so far (`0..=2n`).
    pub count: u16,
    /// Break crossings in the current cycle residence (the cycle class).
    pub cls: u8,
}

/// § 5's adaptive deadlock-free shuffle-exchange routing.
#[derive(Debug, Clone, Copy)]
pub struct ShuffleExchangeRouting {
    se: ShuffleExchange,
    /// Queue classes per phase (2 for prime `n`; see module docs).
    classes_per_phase: u8,
    dynamic_links: bool,
}

impl ShuffleExchangeRouting {
    /// The paper's adaptive scheme (with dynamic links) on the
    /// `2^dims`-node shuffle-exchange.
    pub fn new(dims: usize) -> Self {
        Self::with_options(dims, true)
    }

    /// The underlying scheme without dynamic links (every `1→0` correction
    /// deferred to phase 2).
    pub fn without_dynamic_links(dims: usize) -> Self {
        Self::with_options(dims, false)
    }

    /// The paper's *literal* § 5 provisioning: exactly two cycle classes
    /// per phase ("break the shuffle cycles twice"), regardless of `dims`.
    ///
    /// Sound for prime `dims` (where it coincides with [`Self::new`]);
    /// for composite `dims` the short-necklace re-crossings overflow the
    /// two classes and the static QDG acquires a cycle — the certifier's
    /// canonical negative example (see DESIGN.md § 5).
    pub fn paper_literal(dims: usize) -> Self {
        Self {
            se: ShuffleExchange::new(dims),
            classes_per_phase: 2,
            dynamic_links: true,
        }
    }

    fn with_options(dims: usize, dynamic_links: bool) -> Self {
        let se = ShuffleExchange::new(dims);
        Self {
            se,
            classes_per_phase: classes_per_phase(dims),
            dynamic_links,
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &ShuffleExchange {
        &self.se
    }

    /// Queue classes per phase (2 iff `dims` is prime).
    pub fn classes_per_phase(&self) -> u8 {
        self.classes_per_phase
    }

    /// Whether phase-1 `1→0` dynamic exchanges are enabled.
    pub fn dynamic_links_enabled(&self) -> bool {
        self.dynamic_links
    }

    /// The logical word of a message: its address rotated back by
    /// `count mod n`, aligning bit `i` with destination bit `i`.
    pub fn logical_word(&self, node: NodeId, count: u16) -> usize {
        let n = self.se.dims();
        let k = usize::from(count) % n;
        let mask = self.se.mask();
        if k == 0 {
            node
        } else {
            ((node >> k) | (node << (n - k))) & mask
        }
    }

    /// Positions still needing a `0→1` correction (phase-1 work).
    fn pending_zeros(&self, node: NodeId, count: u16, dst: NodeId) -> usize {
        let w = self.logical_word(node, count);
        (w ^ dst) & dst
    }

    /// Central-queue class for a message: phase base plus cycle class.
    fn class_of(&self, node: NodeId, msg: &SeMsg) -> u8 {
        let phase2 = self.pending_zeros(node, msg.count, msg.dst) == 0;
        u8::from(phase2) * self.classes_per_phase + msg.cls
    }

    /// Destination bit examined after the `count`-th shuffle.
    fn examined_bit(&self, count: u16) -> usize {
        let n = self.se.dims();
        n - 1 - ((usize::from(count) - 1) % n)
    }
}

/// Queue classes per phase needed to break every shuffle cycle, given the
/// longest possible cycle residence of `n` consecutive shuffles (see the
/// module docs): `1 + max(1, max_{L | n, 2 <= L < n} (1 + ⌊(n-1)/L⌋))`.
pub fn classes_per_phase(dims: usize) -> u8 {
    let mut max_crossings = 1usize; // full-length cycles: at most one.
    for len in 2..dims {
        if dims.is_multiple_of(len) {
            max_crossings = max_crossings.max(1 + (dims - 1) / len);
        }
    }
    u8::try_from(max_crossings + 1).expect("class count fits u8")
}

impl RoutingFunction for ShuffleExchangeRouting {
    type Msg = SeMsg;

    fn topology(&self) -> &dyn Topology {
        &self.se
    }

    fn num_classes(&self) -> usize {
        2 * usize::from(self.classes_per_phase)
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> SeMsg {
        SeMsg {
            dst,
            count: 0,
            cls: 0,
        }
    }

    fn destination(&self, msg: &SeMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &SeMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(&self, at: QueueId, msg: &SeMsg, f: &mut dyn FnMut(Transition<SeMsg>)) {
        let u = at.node;
        match at.kind {
            QueueKind::Inject => f(Transition {
                kind: LinkKind::Static,
                hop: HopKind::Internal,
                to: QueueId::central(u, self.class_of(u, msg)),
                msg: *msg,
            }),
            QueueKind::Central(_) => {
                if u == msg.dst {
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Internal,
                        to: QueueId::deliver(u),
                        msg: *msg,
                    });
                    return;
                }
                self.central_transitions(u, msg, f);
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        let cpp = self.classes_per_phase;
        match port {
            // Shuffle arrivals may land in any (phase, cycle-class) queue.
            PORT_SHUFFLE => (0..2 * cpp).map(BufferClass::Static).collect(),
            PORT_EXCHANGE => {
                if node & 1 == 0 {
                    // Upward exchange (0→1): phase-1 static traffic, which
                    // may complete phase 1 and land in a phase-2 queue.
                    vec![BufferClass::Static(0), BufferClass::Static(cpp)]
                } else {
                    // Downward exchange (1→0): phase-2 static, and the
                    // phase-1 dynamic links.
                    let mut v = vec![BufferClass::Static(cpp)];
                    if self.dynamic_links {
                        v.push(BufferClass::Dynamic);
                    }
                    v
                }
            }
            _ => Vec::new(),
        }
    }

    fn is_minimal(&self) -> bool {
        false
    }

    fn max_hops(&self) -> usize {
        3 * self.se.dims()
    }

    fn name(&self) -> String {
        format!(
            "shuffle-exchange-{}(n={})",
            if self.dynamic_links {
                "adaptive"
            } else {
                "static"
            },
            self.se.dims()
        )
    }
}

impl ShuffleExchangeRouting {
    fn central_transitions(&self, u: NodeId, msg: &SeMsg, f: &mut dyn FnMut(Transition<SeMsg>)) {
        let se = &self.se;
        let n = se.dims();
        debug_assert!(usize::from(msg.count) <= 2 * n, "shuffle budget exceeded");

        // Examine the position settled by the last shuffle (none at count 0).
        let mut must_exchange_up = false; // 0→1, mandatory in phase 1
        let mut must_exchange_down = false; // 1→0, mandatory in phase 2
        let mut may_exchange_down = false; // 1→0, dynamic in phase 1
        if msg.count > 0 {
            let bit = self.examined_bit(msg.count);
            let want = (msg.dst >> bit) & 1;
            let have = u & 1;
            if have != want {
                let phase1 = self.pending_zeros(u, msg.count, msg.dst) != 0;
                if want == 1 {
                    debug_assert!(phase1, "0->1 mismatch implies pending zeros");
                    must_exchange_up = true;
                } else if phase1 {
                    may_exchange_down = self.dynamic_links;
                } else {
                    must_exchange_down = true;
                }
            }
        }

        // Shuffle hop: forbidden only while a mandatory exchange is due.
        if !must_exchange_up && !must_exchange_down {
            let v = se.shuffle(u);
            let next = SeMsg {
                dst: msg.dst,
                count: msg.count + 1,
                cls: if v == u {
                    msg.cls
                } else if se.is_cycle_break(u) {
                    // Saturate instead of overflowing: a no-op under the
                    // correct provisioning (`classes_per_phase` bounds the
                    // crossings per residence), but keeps the under-provisioned
                    // `paper_literal` variant well-defined so the certifier
                    // can exhibit its static QDG cycle.
                    (msg.cls + 1).min(self.classes_per_phase - 1)
                } else {
                    msg.cls
                },
            };
            if v == u {
                // Degenerate one-node cycle: stutter in place.
                f(Transition {
                    kind: LinkKind::Static,
                    hop: HopKind::Internal,
                    to: QueueId::central(u, self.class_of(u, &next)),
                    msg: next,
                });
            } else {
                f(Transition {
                    kind: LinkKind::Static,
                    hop: HopKind::Link(PORT_SHUFFLE),
                    to: QueueId::central(v, self.class_of(v, &next)),
                    msg: next,
                });
            }
        }

        if must_exchange_up || must_exchange_down || may_exchange_down {
            let v = se.exchange(u);
            let next = SeMsg {
                dst: msg.dst,
                count: msg.count,
                cls: 0,
            };
            f(Transition {
                kind: if may_exchange_down {
                    LinkKind::Dynamic
                } else {
                    LinkKind::Static
                },
                hop: HopKind::Link(PORT_EXCHANGE),
                to: QueueId::central(v, self.class_of(v, &next)),
                msg: next,
            });
        }
    }
}

impl Symmetry for ShuffleExchangeRouting {
    // Identity classifier (the trait defaults): no coarse class map is
    // sound here — an exchange resets `cls` while a break-crossing shuffle
    // raises it, so any (phase, cls)-level quotient acquires spurious
    // back-edges, and necklace rotations do not fix the break nodes.
    fn symmetry(&self) -> String {
        format!(
            "none exploited: exchange resets the cycle class while break crossings raise it, so \
             no necklace quotient is invariant; concrete queues, all {} destinations",
            self.se.num_nodes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_qdg::verify;

    #[test]
    fn classes_per_phase_matches_cycle_structure() {
        assert_eq!(classes_per_phase(2), 2);
        assert_eq!(classes_per_phase(3), 2); // prime: the paper's 4 queues
        assert_eq!(classes_per_phase(4), 3); // 2-cycles can be wrapped twice
        assert_eq!(classes_per_phase(5), 2);
        assert_eq!(classes_per_phase(6), 4);
        assert_eq!(classes_per_phase(7), 2);
    }

    #[test]
    fn adaptive_passes_checks_n3() {
        let rf = ShuffleExchangeRouting::new(3);
        assert_eq!(rf.num_classes(), 4); // the paper's 4 queues
        let rep = verify::verify_all(&rf, false).unwrap();
        assert!(rep.dynamic_edges > 0);
    }

    #[test]
    fn adaptive_passes_checks_n4_with_extra_classes() {
        let rf = ShuffleExchangeRouting::new(4);
        assert_eq!(rf.num_classes(), 6);
        verify::verify_all(&rf, false).unwrap();
    }

    #[test]
    fn static_variant_passes_checks_n3() {
        let rf = ShuffleExchangeRouting::without_dynamic_links(3);
        let rep = verify::verify_all(&rf, false).unwrap();
        assert_eq!(rep.dynamic_edges, 0);
    }

    #[test]
    fn logical_word_unrotates() {
        let rf = ShuffleExchangeRouting::new(4);
        // After 1 shuffle, node rol(u) has logical word u.
        let u = 0b0110;
        let v = rf.network().shuffle(u);
        assert_eq!(rf.logical_word(v, 1), u);
        assert_eq!(rf.logical_word(u, 0), u);
        assert_eq!(rf.logical_word(u, 4), u);
    }

    #[test]
    fn routes_are_bounded_by_3n() {
        verify::verify_bounded_paths(&ShuffleExchangeRouting::new(3)).unwrap();
        verify::verify_bounded_paths(&ShuffleExchangeRouting::new(4)).unwrap();
    }

    #[test]
    fn not_fully_adaptive_is_expected() {
        // The SE scheme is adaptive but not fully adaptive (and not
        // minimal); the checker must reject full adaptivity.
        let err = verify::verify_fully_adaptive(&ShuffleExchangeRouting::new(3)).unwrap_err();
        assert_eq!(err.check, "fully-adaptive");
    }

    #[test]
    fn phase1_zero_to_one_exchange_is_mandatory() {
        let rf = ShuffleExchangeRouting::new(3);
        // u = 000 after 1 shuffle examining bit 2; dst bit 2 = 1 => the
        // only transition is the (static) exchange.
        let msg = SeMsg {
            dst: 0b100,
            count: 1,
            cls: 0,
        };
        let ts = rf.transitions(QueueId::central(0b000, 0), &msg);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].kind, LinkKind::Static);
        assert_eq!(ts[0].hop, HopKind::Link(PORT_EXCHANGE));
        assert_eq!(ts[0].to.node, 0b001);
    }

    #[test]
    fn phase1_one_to_zero_exchange_is_dynamic_and_optional() {
        let rf = ShuffleExchangeRouting::new(3);
        // u = 011, count 1 examines bit 2: have 1, want 0, and another
        // 0->1 correction is pending (dst = 010 vs logical word 101... pick
        // dst so pending zeros remain): logical word of 011 at count 1 is
        // ror(011) = 101. dst = 010: mismatches at bits 2 (1->0), 0 (1->0),
        // bit 1 (0->1 pending) => phase 1, LSB examined... examined bit is
        // 2, have u&1 = 1, want dst bit2 = 0 => dynamic exchange + shuffle.
        let msg = SeMsg {
            dst: 0b010,
            count: 1,
            cls: 0,
        };
        let ts = rf.transitions(QueueId::central(0b011, 0), &msg);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].kind, LinkKind::Static);
        assert_eq!(ts[0].hop, HopKind::Link(PORT_SHUFFLE));
        assert_eq!(ts[1].kind, LinkKind::Dynamic);
        assert_eq!(ts[1].hop, HopKind::Link(PORT_EXCHANGE));
    }

    #[test]
    fn stutter_on_degenerate_cycles() {
        let rf = ShuffleExchangeRouting::new(3);
        // Node 000 with no mandatory exchange shuffles "in place".
        let msg = SeMsg {
            dst: 0b001,
            count: 0,
            cls: 0,
        };
        let ts = rf.transitions(QueueId::central(0b000, 0), &msg);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].hop, HopKind::Internal);
        assert_eq!(ts[0].to.node, 0b000);
        assert_eq!(ts[0].msg.count, 1);
    }
}
