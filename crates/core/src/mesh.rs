//! 2-D mesh routing: the paper's § 4 fully-adaptive algorithm, the
//! partially-adaptive "hung" scheme it extends, and oblivious XY routing.

use fadr_qdg::sym::{QueueClass, Symmetry};
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_topology::{Mesh2D, NodeId, Port, Topology};

use crate::{CLASS_A, CLASS_B};

/// Classifier shared by the two-phase mesh schemes: the paper's levels —
/// phase A hangs the mesh from `(0,0)` (level `x + y` rises along static
/// links), phase B from `(w-1, h-1)` (its level rises as `x + y` falls),
/// and no static link returns from phase B to phase A.
fn mesh_class(mesh: &Mesh2D, q: QueueId) -> QueueClass {
    match q.kind {
        QueueKind::Inject => QueueClass::inject(),
        QueueKind::Deliver => QueueClass::deliver(),
        QueueKind::Central(c) => {
            let (x, y) = mesh.coords(q.node);
            let level = if c == CLASS_A {
                x + y
            } else {
                (mesh.width() - 1 - x) + (mesh.height() - 1 - y)
            };
            QueueClass::central(c, u32::try_from(level).expect("mesh level fits u32"))
        }
    }
}

/// Message routing state for the mesh algorithms: only the destination;
/// the phase is recomputed at every queue entry ("a message changes from
/// phase A to phase B if it has nothing to correct in phase A").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshMsg {
    /// Destination node id.
    pub dst: NodeId,
}

/// Mesh ports, following [`Mesh2D`]'s numbering.
const XP: Port = 0;
const XN: Port = 1;
const YP: Port = 2;
const YN: Port = 3;

/// The queue class a message entering `node` occupies: `q_A` while some
/// `+x`/`+y` correction remains (`z > x or w > y`), `q_B` afterwards.
#[inline]
pub fn entry_class(mesh: &Mesh2D, node: NodeId, dst: NodeId) -> u8 {
    let (x, y) = mesh.coords(node);
    let (z, w) = mesh.coords(dst);
    if z > x || w > y {
        CLASS_A
    } else {
        CLASS_B
    }
}

fn internal(to: QueueId, msg: MeshMsg) -> Transition<MeshMsg> {
    Transition {
        kind: LinkKind::Static,
        hop: HopKind::Internal,
        to,
        msg,
    }
}

fn link(
    kind: LinkKind,
    port: Port,
    mesh: &Mesh2D,
    from: NodeId,
    class_at: impl Fn(NodeId) -> u8,
    msg: MeshMsg,
) -> Transition<MeshMsg> {
    let v = mesh.neighbor(from, port).expect("move off the mesh");
    Transition {
        kind,
        hop: HopKind::Link(port),
        to: QueueId::central(v, class_at(v)),
        msg,
    }
}

/// § 4's fully-adaptive minimal mesh routing.
///
/// The mesh is hung from `(0,0)` for phase A (level `x + y` increasing
/// over static links) and from `(w-1, h-1)` for phase B. The dynamic
/// links let a phase-A message take *any* minimal move — also `-x`/`-y` —
/// "if it still has some descending path to pass through", i.e. while a
/// `+` correction remains. Fully adaptive, minimal, deadlock- and
/// livelock-free with two central queues per node (Theorem 2).
#[derive(Debug, Clone, Copy)]
pub struct MeshFullyAdaptive {
    mesh: Mesh2D,
}

impl MeshFullyAdaptive {
    /// Fully-adaptive routing on a `width × height` mesh.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            mesh: Mesh2D::new(width, height),
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }
}

impl RoutingFunction for MeshFullyAdaptive {
    type Msg = MeshMsg;

    fn topology(&self) -> &dyn Topology {
        &self.mesh
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> MeshMsg {
        MeshMsg { dst }
    }

    fn destination(&self, msg: &MeshMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &MeshMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &MeshMsg,
        f: &mut dyn FnMut(Transition<MeshMsg>),
    ) {
        let m = &self.mesh;
        let u = at.node;
        let dst = msg.dst;
        let class_at = |v: NodeId| entry_class(m, v, dst);
        match at.kind {
            QueueKind::Inject => f(internal(QueueId::central(u, class_at(u)), *msg)),
            QueueKind::Central(class) => {
                if u == dst {
                    f(internal(QueueId::deliver(u), *msg));
                    return;
                }
                let (x, y) = m.coords(u);
                let (z, w) = m.coords(dst);
                debug_assert_eq!(class == CLASS_A, z > x || w > y, "phase invariant");
                if class == CLASS_A {
                    // Static + moves, then dynamic minimal - moves; port
                    // order +x, -x, +y, -y matches the topology numbering.
                    if z > x {
                        f(link(LinkKind::Static, XP, m, u, class_at, *msg));
                    }
                    if z < x && w > y {
                        f(link(LinkKind::Dynamic, XN, m, u, class_at, *msg));
                    }
                    if w > y {
                        f(link(LinkKind::Static, YP, m, u, class_at, *msg));
                    }
                    if w < y && z > x {
                        f(link(LinkKind::Dynamic, YN, m, u, class_at, *msg));
                    }
                } else {
                    if z < x {
                        f(link(LinkKind::Static, XN, m, u, |_| CLASS_B, *msg));
                    }
                    if w < y {
                        f(link(LinkKind::Static, YN, m, u, |_| CLASS_B, *msg));
                    }
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, port: Port) -> Vec<BufferClass> {
        match port {
            // + channels: phase-A static traffic, possibly finishing
            // phase A on arrival.
            XP | YP => vec![BufferClass::Static(CLASS_A), BufferClass::Static(CLASS_B)],
            // - channels: phase-B static plus phase-A dynamic traffic.
            _ => vec![BufferClass::Static(CLASS_B), BufferClass::Dynamic],
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.mesh.width() + self.mesh.height() - 2
    }

    fn name(&self) -> String {
        format!(
            "mesh-fully-adaptive({}x{})",
            self.mesh.width(),
            self.mesh.height()
        )
    }
}

impl Symmetry for MeshFullyAdaptive {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        mesh_class(&self.mesh, q)
    }

    fn symmetry(&self) -> String {
        "mesh diagonal levels (A: x+y from (0,0); B: from the far corner), all destinations".into()
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

/// The first § 4 scheme: the mesh hung from `(0,0)` and `(w-1,h-1)` with
/// *no* dynamic links. Minimal and deadlock-free, but e.g. a message
/// going `-x`/`+y` has exactly one path (no adaptivity at all).
#[derive(Debug, Clone, Copy)]
pub struct MeshStaticHang {
    mesh: Mesh2D,
}

impl MeshStaticHang {
    /// Static-hang routing on a `width × height` mesh.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            mesh: Mesh2D::new(width, height),
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }
}

impl RoutingFunction for MeshStaticHang {
    type Msg = MeshMsg;

    fn topology(&self) -> &dyn Topology {
        &self.mesh
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> MeshMsg {
        MeshMsg { dst }
    }

    fn destination(&self, msg: &MeshMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &MeshMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &MeshMsg,
        f: &mut dyn FnMut(Transition<MeshMsg>),
    ) {
        let m = &self.mesh;
        let u = at.node;
        let dst = msg.dst;
        let class_at = |v: NodeId| entry_class(m, v, dst);
        match at.kind {
            QueueKind::Inject => f(internal(QueueId::central(u, class_at(u)), *msg)),
            QueueKind::Central(class) => {
                if u == dst {
                    f(internal(QueueId::deliver(u), *msg));
                    return;
                }
                let (x, y) = m.coords(u);
                let (z, w) = m.coords(dst);
                if class == CLASS_A {
                    if z > x {
                        f(link(LinkKind::Static, XP, m, u, class_at, *msg));
                    }
                    if w > y {
                        f(link(LinkKind::Static, YP, m, u, class_at, *msg));
                    }
                } else {
                    if z < x {
                        f(link(LinkKind::Static, XN, m, u, |_| CLASS_B, *msg));
                    }
                    if w < y {
                        f(link(LinkKind::Static, YN, m, u, |_| CLASS_B, *msg));
                    }
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, port: Port) -> Vec<BufferClass> {
        match port {
            XP | YP => vec![BufferClass::Static(CLASS_A), BufferClass::Static(CLASS_B)],
            _ => vec![BufferClass::Static(CLASS_B)],
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.mesh.width() + self.mesh.height() - 2
    }

    fn name(&self) -> String {
        format!(
            "mesh-static-hang({}x{})",
            self.mesh.width(),
            self.mesh.height()
        )
    }
}

impl Symmetry for MeshStaticHang {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        mesh_class(&self.mesh, q)
    }

    fn symmetry(&self) -> String {
        "mesh diagonal levels (A: x+y from (0,0); B: from the far corner), all destinations".into()
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

/// Oblivious XY (dimension-order) mesh routing with four direction-class
/// central queues (`X+`, `X-`, `Y+`, `Y-`).
///
/// With a single queue per node, store-and-forward XY routing deadlocks
/// (opposite-direction traffic forms 2-cycles in the QDG); one class per
/// travel direction restores acyclicity at the cost of *four* queues —
/// twice what the paper's fully-adaptive scheme needs.
#[derive(Debug, Clone, Copy)]
pub struct MeshXY {
    mesh: Mesh2D,
}

/// Queue classes of [`MeshXY`].
const CX_P: u8 = 0;
const CX_N: u8 = 1;
const CY_P: u8 = 2;
const CY_N: u8 = 3;

impl MeshXY {
    /// XY routing on a `width × height` mesh.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            mesh: Mesh2D::new(width, height),
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }

    fn entry_class(&self, node: NodeId, dst: NodeId) -> u8 {
        let (x, y) = self.mesh.coords(node);
        let (z, w) = self.mesh.coords(dst);
        if z > x {
            CX_P
        } else if z < x {
            CX_N
        } else if w > y {
            CY_P
        } else {
            CY_N
        }
    }
}

impl RoutingFunction for MeshXY {
    type Msg = MeshMsg;

    fn topology(&self) -> &dyn Topology {
        &self.mesh
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> MeshMsg {
        MeshMsg { dst }
    }

    fn destination(&self, msg: &MeshMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &MeshMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &MeshMsg,
        f: &mut dyn FnMut(Transition<MeshMsg>),
    ) {
        let m = &self.mesh;
        let u = at.node;
        let dst = msg.dst;
        match at.kind {
            QueueKind::Inject => f(internal(
                QueueId::central(u, self.entry_class(u, dst)),
                *msg,
            )),
            QueueKind::Central(class) => {
                if u == dst {
                    f(internal(QueueId::deliver(u), *msg));
                    return;
                }
                let (x, y) = m.coords(u);
                let (z, w) = m.coords(dst);
                let port = if z > x {
                    XP
                } else if z < x {
                    XN
                } else if w > y {
                    YP
                } else {
                    YN
                };
                // A message reaching its destination keeps its travelling
                // class for the final (internal) delivery hop.
                let class_at = |v: NodeId| {
                    if v == dst {
                        class
                    } else {
                        self.entry_class(v, dst)
                    }
                };
                f(link(LinkKind::Static, port, m, u, class_at, *msg));
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, port: Port) -> Vec<BufferClass> {
        match port {
            // X traffic may finish its x correction on arrival and enter a
            // Y class.
            XP => vec![
                BufferClass::Static(CX_P),
                BufferClass::Static(CY_P),
                BufferClass::Static(CY_N),
            ],
            XN => vec![
                BufferClass::Static(CX_N),
                BufferClass::Static(CY_P),
                BufferClass::Static(CY_N),
            ],
            YP => vec![BufferClass::Static(CY_P)],
            _ => vec![BufferClass::Static(CY_N)],
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.mesh.width() + self.mesh.height() - 2
    }

    fn name(&self) -> String {
        format!("mesh-xy({}x{})", self.mesh.width(), self.mesh.height())
    }
}

impl Symmetry for MeshXY {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        match q.kind {
            QueueKind::Inject => QueueClass::inject(),
            QueueKind::Deliver => QueueClass::deliver(),
            QueueKind::Central(c) => {
                let (x, y) = self.mesh.coords(q.node);
                // Distance already travelled in the class's direction:
                // rises along every link hop that stays in the class.
                let level = match c {
                    CX_P => x,
                    CX_N => self.mesh.width() - 1 - x,
                    CY_P => y,
                    _ => self.mesh.height() - 1 - y,
                };
                QueueClass::central(c, u32::try_from(level).expect("mesh level fits u32"))
            }
        }
    }

    fn symmetry(&self) -> String {
        "XY direction classes levelled by distance travelled; X classes feed Y classes only".into()
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_qdg::verify;

    #[test]
    fn fully_adaptive_passes_all_checks_4x4() {
        let rep = verify::verify_all(&MeshFullyAdaptive::new(4, 4), true).unwrap();
        assert!(rep.dynamic_edges > 0);
    }

    #[test]
    fn fully_adaptive_passes_all_checks_rectangular() {
        verify::verify_all(&MeshFullyAdaptive::new(5, 3), true).unwrap();
    }

    #[test]
    fn static_hang_is_deadlock_free_but_not_fully_adaptive() {
        let rf = MeshStaticHang::new(3, 3);
        verify::verify_all(&rf, false).unwrap();
        let err = verify::verify_fully_adaptive(&rf).unwrap_err();
        assert_eq!(err.check, "fully-adaptive");
    }

    #[test]
    fn xy_is_deadlock_free_and_minimal() {
        verify::verify_all(&MeshXY::new(4, 3), false).unwrap();
    }

    #[test]
    fn xy_is_not_fully_adaptive() {
        let err = verify::verify_fully_adaptive(&MeshXY::new(3, 3)).unwrap_err();
        assert_eq!(err.check, "fully-adaptive");
    }

    #[test]
    fn paper_example_pure_phase_b_message_has_one_static_path() {
        // § 4: from (x,y) to (v,w) with v < x and w < y the *hung* scheme
        // has no adaptivity at all: phase A is empty, and phase B itself
        // allows both -x and -y... the no-adaptivity example in the paper
        // is v < x, w > y: correct +y in phase A, then -x in phase B.
        let rf = MeshStaticHang::new(4, 4);
        let m = rf.mesh;
        let src = m.node_at(2, 0);
        let dst = m.node_at(0, 2);
        let sg = fadr_qdg::explore::explore_pair(&rf, src, dst);
        // Count distinct realizable node paths: must be exactly 1.
        let mut paths = 0;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((i, _)) = stack.pop() {
            if sg.is_delivered(i) {
                paths += 1;
                continue;
            }
            for &j in &sg.succ[i] {
                stack.push((j, 0));
            }
        }
        assert_eq!(paths, 1, "hung scheme must have a unique route here");

        // The fully-adaptive scheme, by contrast, realizes all C(4,2) = 6
        // shortest paths for this pair (checked globally by
        // verify_fully_adaptive; spot-check path count here).
        let rf2 = MeshFullyAdaptive::new(4, 4);
        let sg2 = fadr_qdg::explore::explore_pair(&rf2, src, dst);
        let mut complete = std::collections::HashSet::new();
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, vec![src])];
        while let Some((i, path)) = stack.pop() {
            if sg2.is_delivered(i) {
                complete.insert(path);
                continue;
            }
            for (t, &j) in sg2.transitions[i].iter().zip(&sg2.succ[i]) {
                let mut p = path.clone();
                if matches!(t.hop, fadr_qdg::HopKind::Link(_)) {
                    p.push(t.to.node);
                }
                stack.push((j, p));
            }
        }
        assert_eq!(complete.len(), 6);
    }

    #[test]
    fn phase_a_dynamic_moves_require_remaining_plus_work() {
        let rf = MeshFullyAdaptive::new(4, 4);
        let m = rf.mesh;
        // (2,1) -> (0,3): -x is minimal and +y work remains, so -x is a
        // dynamic option; -y is not minimal, +x not minimal.
        let msg = MeshMsg {
            dst: m.node_at(0, 3),
        };
        let ts = rf.transitions(QueueId::central(m.node_at(2, 1), CLASS_A), &msg);
        let kinds: Vec<_> = ts.iter().map(|t| (t.kind, t.to.node)).collect();
        assert_eq!(
            kinds,
            vec![
                (LinkKind::Dynamic, m.node_at(1, 1)),
                (LinkKind::Static, m.node_at(2, 2)),
            ]
        );
    }
}
