//! Routing algorithms of the SPAA'91 paper *"Fully-Adaptive Minimal
//! Deadlock-Free Packet Routing in Hypercubes, Meshes, and Other
//! Networks"* (Pifarré, Gravano, Felperin, Sanz), plus the baselines they
//! are compared against.
//!
//! # The paper's algorithms
//!
//! * [`HypercubeFullyAdaptive`] (§ 3) — hang the n-cube from `0…0`;
//!   phase A corrects `0→1` bits moving "down" (static links), phase B
//!   corrects `1→0` bits moving "up"; *dynamic links* additionally let a
//!   phase-A message correct a `1→0` whenever queue space allows. Fully
//!   adaptive, minimal, deadlock- and livelock-free with **two** central
//!   queues per node.
//! * [`MeshFullyAdaptive`] (§ 4) — the same two-phase idea on the 2-D
//!   mesh, with level `x + y`; phase A additionally allows *any*
//!   minimal move as a dynamic link while some `+` move remains.
//! * [`ShuffleExchangeRouting`] (§ 5) — two passes over the address bits
//!   (one per phase), shuffle cycles broken Dally–Seitz style; adaptive
//!   (not fully), paths of at most `3n` hops.
//! * [`TorusTwoPhase`] — the torus extension the paper sketches after
//!   Theorem 2 ("4 queues following \[GPS91\]"); our verified construction
//!   uses 6 central queues (see the module docs of [`torus`] for why).
//!
//! # Baselines
//!
//! * [`HypercubeStaticHang`] / [`MeshStaticHang`] — the *underlying*
//!   routing functions alone (no dynamic links): the partially-adaptive
//!   schemes of \[BGSS89\]/\[Kon90\] that the paper improves on.
//! * [`EcubeSbp`] — oblivious dimension-order (e-cube) hypercube routing
//!   made deadlock-free with a structured buffer pool (\[Gun81, MS80\]):
//!   one queue class per hop taken, i.e. `n + 1` classes — exactly the
//!   "excessive amount of hardware" the paper's introduction criticizes.
//! * [`MeshXY`] — oblivious XY routing on the mesh with four
//!   direction-class queues.
//!
//! Every algorithm implements [`fadr_qdg::RoutingFunction`]; the
//! `fadr-qdg` model checker proves deadlock freedom, minimality, bounded
//! paths, and (where claimed) full adaptivity on small instances, and the
//! `fadr-sim` simulator scales the same implementations to 16K-node
//! networks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hypercube;
pub mod mesh;
pub mod mesh_kd;
pub mod sbp;
pub mod shuffle;
pub mod snapshot;
pub mod torus;

pub use hypercube::{EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang};
pub use mesh::{MeshFullyAdaptive, MeshStaticHang, MeshXY};
pub use mesh_kd::MeshKDFullyAdaptive;
pub use sbp::AdaptiveSbp;
pub use shuffle::ShuffleExchangeRouting;
pub use torus::TorusTwoPhase;

/// Central-queue class of phase A (`q_A`) in the two-phase algorithms.
pub const CLASS_A: u8 = 0;
/// Central-queue class of phase B (`q_B`) in the two-phase algorithms.
pub const CLASS_B: u8 = 1;
