//! The structured buffer pool (\[Gun81\], \[MS80\]) as a *generic*
//! fully-adaptive baseline.
//!
//! A message that has taken `k` link hops occupies central-queue class
//! `k`; every hop strictly increases the class, so the QDG is trivially
//! acyclic **whatever the hops are** — which makes fully-adaptive
//! *minimal* routing deadlock-free on *any* topology, at the cost of
//! `diameter + 1` central queues per node. This is exactly the classical
//! alternative the paper's introduction argues against ("an excessive
//! amount of hardware necessary in a routing node"): on a 14-cube it
//! needs 15 queues per node where the paper's § 3 algorithm needs 2.
//!
//! [`AdaptiveSbp`] offers all minimal next hops at every step, so it has
//! the same path diversity as the paper's schemes; benchmarking the two
//! quantifies what the 2-queue construction gives up (nothing, § 7) and
//! saves (a factor `(diameter+1)/2` in queues).

use fadr_qdg::sym::{QueueClass, Symmetry};
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_topology::{graph, NodeId, Port, Topology};

/// Message state: destination plus hops taken (the queue class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SbpMsg {
    /// Destination node.
    pub dst: NodeId,
    /// Link hops taken so far (= current central-queue class).
    pub hops: u8,
}

/// Fully-adaptive minimal routing with hop-indexed queue classes, generic
/// over the topology. Minimal next hops are precomputed per
/// `(node, destination)` at construction (O(N²) memory: baseline-grade,
/// not for 16K-node runs — the paper's point exactly).
pub struct AdaptiveSbp<T: Topology> {
    topo: T,
    /// `dist[d][v]` = distance from `v` to `d` (BFS on the reversed...
    /// for the undirected topologies used here, plain BFS from `d`).
    dist: Vec<Vec<usize>>,
    diameter: usize,
}

impl<T: Topology> AdaptiveSbp<T> {
    /// Build the baseline on `topo`. Requires an undirected topology
    /// (every port has a reverse port), so that BFS from the destination
    /// yields distances *to* it.
    pub fn new(topo: T) -> Self {
        let n = topo.num_nodes();
        for v in 0..n {
            for p in 0..topo.max_ports() {
                if topo.neighbor(v, p).is_some() {
                    assert!(
                        topo.reverse_port(v, p).is_some(),
                        "AdaptiveSbp requires an undirected topology"
                    );
                }
            }
        }
        let dist: Vec<Vec<usize>> = (0..n)
            .map(|d| graph::bfs_distances(topo.as_dyn(), d))
            .collect();
        let diameter = dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0);
        Self {
            topo,
            dist,
            diameter,
        }
    }

    /// The network diameter (the scheme needs `diameter + 1` classes).
    pub fn diameter(&self) -> usize {
        self.diameter
    }

    /// Distance from `v` to `d`.
    #[inline]
    fn distance_to(&self, v: NodeId, d: NodeId) -> usize {
        self.dist[d][v]
    }
}

// Manual impl: a derive would put `T: Clone` on the type itself; here it
// only gates the impl, so non-Clone topologies still get the scheme.
impl<T: Topology + Clone> Clone for AdaptiveSbp<T> {
    fn clone(&self) -> Self {
        Self {
            topo: self.topo.clone(),
            dist: self.dist.clone(),
            diameter: self.diameter,
        }
    }
}

impl<T: Topology> RoutingFunction for AdaptiveSbp<T> {
    type Msg = SbpMsg;

    fn topology(&self) -> &dyn Topology {
        self.topo.as_dyn()
    }

    fn num_classes(&self) -> usize {
        self.diameter + 1
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> SbpMsg {
        SbpMsg { dst, hops: 0 }
    }

    fn destination(&self, msg: &SbpMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &SbpMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &SbpMsg,
        f: &mut dyn FnMut(Transition<SbpMsg>),
    ) {
        let u = at.node;
        match at.kind {
            QueueKind::Inject => f(Transition {
                kind: LinkKind::Static,
                hop: HopKind::Internal,
                to: QueueId::central(u, msg.hops),
                msg: *msg,
            }),
            QueueKind::Central(_) => {
                if u == msg.dst {
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Internal,
                        to: QueueId::deliver(u),
                        msg: *msg,
                    });
                    return;
                }
                let d = self.distance_to(u, msg.dst);
                let next = SbpMsg {
                    dst: msg.dst,
                    hops: msg.hops + 1,
                };
                for p in 0..self.topo.max_ports() {
                    let Some(v) = self.topo.neighbor(u, p) else {
                        continue;
                    };
                    if self.distance_to(v, msg.dst) + 1 == d {
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Link(p),
                            to: QueueId::central(v, next.hops),
                            msg: next,
                        });
                    }
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, _port: Port) -> Vec<BufferClass> {
        (1..=self.diameter as u8).map(BufferClass::Static).collect()
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.diameter
    }

    fn name(&self) -> String {
        format!("adaptive-sbp[{}]", self.topo.name())
    }
}

impl<T: Topology> Symmetry for AdaptiveSbp<T> {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        match q.kind {
            QueueKind::Inject => QueueClass::inject(),
            QueueKind::Deliver => QueueClass::deliver(),
            // The hop counter *is* the rank: every link hop moves
            // class k to class k+1, node identity is irrelevant.
            QueueKind::Central(c) => QueueClass::central(c, 0),
        }
    }

    fn symmetry(&self) -> String {
        format!(
            "hop-indexed classes on {}: class k holds exactly the messages with k hops taken",
            self.topo.name()
        )
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_qdg::verify;
    use fadr_topology::{Hypercube, Mesh2D, Torus2D};

    #[test]
    fn sbp_on_hypercube_is_fully_adaptive() {
        let rf = AdaptiveSbp::new(Hypercube::new(3));
        assert_eq!(rf.num_classes(), 4); // diameter 3 + 1
        verify::verify_all(&rf, true).unwrap();
    }

    #[test]
    fn sbp_on_mesh_is_fully_adaptive() {
        let rf = AdaptiveSbp::new(Mesh2D::new(3, 4));
        assert_eq!(rf.num_classes(), 6);
        verify::verify_all(&rf, true).unwrap();
    }

    #[test]
    fn sbp_on_torus_is_fully_adaptive() {
        // Includes wraparound minimal paths (unlike TorusTwoPhase's fixed
        // tie-breaking, SBP keeps even-ring ties adaptive).
        let rf = AdaptiveSbp::new(Torus2D::new(4, 4));
        verify::verify_all(&rf, true).unwrap();
    }

    #[test]
    fn queue_count_grows_with_diameter() {
        assert_eq!(AdaptiveSbp::new(Hypercube::new(5)).num_classes(), 6);
        assert_eq!(AdaptiveSbp::new(Mesh2D::square(6)).num_classes(), 11);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_topologies_are_rejected() {
        let _ = AdaptiveSbp::new(fadr_topology::ShuffleExchange::new(3));
    }
}

#[cfg(test)]
mod ccc_tests {
    use super::*;
    use fadr_qdg::verify;
    use fadr_topology::CubeConnectedCycles;

    /// The paper's § 1 names cube-connected cycles among the networks its
    /// methodology covers; the generic SBP router gives fully-adaptive
    /// minimal deadlock-free routing on CCC(3) out of the box.
    #[test]
    fn sbp_on_ccc_is_fully_adaptive() {
        let rf = AdaptiveSbp::new(CubeConnectedCycles::new(3));
        assert_eq!(rf.num_classes(), 7); // diameter 6 + 1
        verify::verify_deadlock_free(&rf).unwrap();
        verify::verify_minimal(&rf).unwrap();
        verify::verify_bounded_paths(&rf).unwrap();
        verify::verify_structure(&rf).unwrap();
    }
}
