//! Hypercube routing: the paper's § 3 fully-adaptive algorithm, its
//! underlying partially-adaptive "hang", and the oblivious e-cube baseline.

use fadr_qdg::sym::{QueueClass, Symmetry};
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_topology::{Hypercube, NodeId, Port, Topology};

use crate::{CLASS_A, CLASS_B};

/// Classifier shared by the hypercube hang schemes: central queues by
/// Hamming level relative to the hang root (phase-A levels rise along
/// static links, phase-B levels fall, and no static link leaves phase B
/// for phase A — so the class graph is a DAG).
fn cube_class(root: NodeId, q: QueueId) -> QueueClass {
    match q.kind {
        QueueKind::Inject => QueueClass::inject(),
        QueueKind::Deliver => QueueClass::deliver(),
        QueueKind::Central(c) => QueueClass::central(c, (q.node ^ root).count_ones()),
    }
}

/// One destination per Hamming level: `root ^ 0…01…1` with `w` ones. Any
/// destination maps onto its level representative by a dimension
/// permutation fixing `root`, which relabels routes to routes and
/// preserves [`cube_class`].
fn cube_representatives(dims: usize, root: NodeId) -> Vec<NodeId> {
    (0..=dims).map(|w| root ^ ((1usize << w) - 1)).collect()
}

/// Message routing state for the hypercube algorithms: only the
/// destination — the phase is recomputed from the current node at every
/// queue entry ("after performing the last 0→1 correction, the message
/// will enter the `q_B` queue").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubeMsg {
    /// Destination node address.
    pub dst: NodeId,
}

/// The central-queue class a message entering `node` occupies: `q_A`
/// while any `0→1` correction remains, `q_B` afterwards (§ 3).
#[inline]
pub fn entry_class(cube: &Hypercube, node: NodeId, dst: NodeId) -> u8 {
    if cube.zero_corrections(node, dst) != 0 {
        CLASS_A
    } else {
        CLASS_B
    }
}

/// Corrections of a message at `node` toward `dst` when the cube is hung
/// from `root` (\[PFGS91\]: "interconnections can be hung from an arbitrary
/// node"): relabelling every address by `x ^ root` reduces the general
/// hang to the paper's hang from `0…0`.
///
/// Returns `(phase_a_work, phase_b_work)`: the dimensions to correct
/// while moving away from `root` (the relabelled `0→1`s) and toward it.
#[inline]
pub fn hung_corrections(node: NodeId, dst: NodeId, root: NodeId) -> (usize, usize) {
    let diff = node ^ dst;
    let down = dst ^ root; // bits where dst is "below" (away from root)
    (diff & down, diff & !down)
}

fn internal<M>(to: QueueId, msg: M) -> Transition<M> {
    Transition {
        kind: LinkKind::Static,
        hop: HopKind::Internal,
        to,
        msg,
    }
}

/// § 3's fully-adaptive minimal hypercube routing.
///
/// The cube is hung from node `0…0`. In phase A (queue `q_A`, class 0) a
/// message turns incorrect 0s into 1s over *static* links, moving towards
/// `1…1`; in phase B (queue `q_B`, class 1) it turns incorrect 1s into 0s
/// moving back up. The *dynamic* links let a phase-A message also correct
/// an incorrect 1 into a 0 whenever it finds space, making every minimal
/// path available at injection time (Theorem 1) — two central queues per
/// node suffice.
#[derive(Debug, Clone, Copy)]
pub struct HypercubeFullyAdaptive {
    cube: Hypercube,
    root: NodeId,
}

impl HypercubeFullyAdaptive {
    /// Fully-adaptive routing on the n-dimensional hypercube, hung from
    /// the paper's node `0…0`.
    pub fn new(dims: usize) -> Self {
        Self::hung_from(dims, 0)
    }

    /// The \[PFGS91\] generalization: hang the cube from an arbitrary
    /// `root` node. All guarantees (Theorem 1) carry over by the
    /// relabelling `x ↦ x ^ root`.
    pub fn hung_from(dims: usize, root: NodeId) -> Self {
        let cube = Hypercube::new(dims);
        assert!(root < cube.num_nodes(), "root out of range");
        Self { cube, root }
    }

    /// The underlying hypercube.
    pub fn cube(&self) -> &Hypercube {
        &self.cube
    }

    /// The node the cube is hung from.
    pub fn root(&self) -> NodeId {
        self.root
    }

    #[inline]
    fn entry(&self, node: NodeId, dst: NodeId) -> u8 {
        u8::from(hung_corrections(node, dst, self.root).0 == 0)
    }
}

impl RoutingFunction for HypercubeFullyAdaptive {
    type Msg = CubeMsg;

    fn topology(&self) -> &dyn Topology {
        &self.cube
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> CubeMsg {
        CubeMsg { dst }
    }

    fn destination(&self, msg: &CubeMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &CubeMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &CubeMsg,
        f: &mut dyn FnMut(Transition<CubeMsg>),
    ) {
        let u = at.node;
        let dst = msg.dst;
        match at.kind {
            QueueKind::Inject => {
                f(internal(QueueId::central(u, self.entry(u, dst)), *msg));
            }
            QueueKind::Central(class) => {
                if u == dst {
                    f(internal(QueueId::deliver(u), *msg));
                    return;
                }
                let (zeros, ones) = hung_corrections(u, dst, self.root);
                debug_assert!(
                    (class == CLASS_A) == (zeros != 0),
                    "phase invariant: q_A iff a downward correction remains"
                );
                for dim in 0..self.cube.dims() {
                    let bit = 1usize << dim;
                    if class == CLASS_A && zeros & bit != 0 {
                        // Mandatory phase-A correction (static, downwards).
                        let v = u ^ bit;
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Link(dim),
                            to: QueueId::central(v, self.entry(v, dst)),
                            msg: *msg,
                        });
                    } else if class == CLASS_A && ones & bit != 0 {
                        // Opportunistic upward correction (dynamic); the
                        // message keeps its pending downward work, so a
                        // static continuation always remains (condition 3).
                        let v = u ^ bit;
                        f(Transition {
                            kind: LinkKind::Dynamic,
                            hop: HopKind::Link(dim),
                            to: QueueId::central(v, CLASS_A),
                            msg: *msg,
                        });
                    } else if class == CLASS_B && ones & bit != 0 {
                        // Phase-B correction (static, upwards).
                        let v = u ^ bit;
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Link(dim),
                            to: QueueId::central(v, CLASS_B),
                            msg: *msg,
                        });
                    }
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        if (node ^ self.root) & (1usize << port) == 0 {
            // Downward channel (away from the root): phase-A static
            // traffic, which may complete phase A on arrival and enter q_B.
            vec![BufferClass::Static(CLASS_A), BufferClass::Static(CLASS_B)]
        } else {
            // Upward channel (toward the root): phase-B static plus
            // phase-A dynamic traffic.
            vec![BufferClass::Static(CLASS_B), BufferClass::Dynamic]
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.cube.dims()
    }

    fn name(&self) -> String {
        if self.root == 0 {
            format!("hypercube-fully-adaptive(n={})", self.cube.dims())
        } else {
            format!(
                "hypercube-fully-adaptive(n={}, root={})",
                self.cube.dims(),
                self.root
            )
        }
    }
}

impl Symmetry for HypercubeFullyAdaptive {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        cube_class(self.root, q)
    }

    fn dst_representatives(&self) -> Vec<NodeId> {
        cube_representatives(self.cube.dims(), self.root)
    }

    fn symmetry(&self) -> String {
        format!(
            "dimension permutations fixing root {}: classes by Hamming level, one representative destination per level",
            self.root
        )
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

/// The *underlying* § 3 algorithm without dynamic links: hang the cube
/// from `0…0` and correct all 0→1 bits (in any order) before any 1→0 bit.
///
/// This is the partially-adaptive scheme of \[BGSS89\]/\[Kon90\] that the
/// paper starts from; it concentrates traffic near `1…1`, which the
/// dynamic links of [`HypercubeFullyAdaptive`] relieve.
#[derive(Debug, Clone, Copy)]
pub struct HypercubeStaticHang {
    cube: Hypercube,
}

impl HypercubeStaticHang {
    /// Static-hang routing on the n-dimensional hypercube.
    pub fn new(dims: usize) -> Self {
        Self {
            cube: Hypercube::new(dims),
        }
    }

    /// The underlying hypercube.
    pub fn cube(&self) -> &Hypercube {
        &self.cube
    }
}

impl RoutingFunction for HypercubeStaticHang {
    type Msg = CubeMsg;

    fn topology(&self) -> &dyn Topology {
        &self.cube
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> CubeMsg {
        CubeMsg { dst }
    }

    fn destination(&self, msg: &CubeMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &CubeMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &CubeMsg,
        f: &mut dyn FnMut(Transition<CubeMsg>),
    ) {
        let u = at.node;
        let dst = msg.dst;
        match at.kind {
            QueueKind::Inject => {
                f(internal(
                    QueueId::central(u, entry_class(&self.cube, u, dst)),
                    *msg,
                ));
            }
            QueueKind::Central(class) => {
                if u == dst {
                    f(internal(QueueId::deliver(u), *msg));
                    return;
                }
                let zeros = self.cube.zero_corrections(u, dst);
                let work = if class == CLASS_A {
                    zeros
                } else {
                    self.cube.one_corrections(u, dst)
                };
                for dim in 0..self.cube.dims() {
                    let bit = 1usize << dim;
                    if work & bit != 0 {
                        let v = u ^ bit;
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Link(dim),
                            to: QueueId::central(v, entry_class(&self.cube, v, dst)),
                            msg: *msg,
                        });
                    }
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        if node & (1usize << port) == 0 {
            vec![BufferClass::Static(CLASS_A), BufferClass::Static(CLASS_B)]
        } else {
            vec![BufferClass::Static(CLASS_B)]
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.cube.dims()
    }

    fn name(&self) -> String {
        format!("hypercube-static-hang(n={})", self.cube.dims())
    }
}

impl Symmetry for HypercubeStaticHang {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        cube_class(0, q)
    }

    fn dst_representatives(&self) -> Vec<NodeId> {
        cube_representatives(self.cube.dims(), 0)
    }

    fn symmetry(&self) -> String {
        "dimension permutations fixing root 0: classes by Hamming level, one representative destination per level".into()
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

/// Message state of [`EcubeSbp`]: destination plus hops taken (the
/// structured-buffer-pool class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EcubeMsg {
    /// Destination node address.
    pub dst: NodeId,
    /// Link hops taken so far; the message occupies queue class `hops`.
    pub hops: u8,
}

/// Oblivious e-cube (ascending dimension-order) routing, made
/// deadlock-free with a structured buffer pool (\[Gun81\], \[MS80\]): a
/// message that has taken `k` hops occupies central queue class `k`, so
/// `n + 1` classes are needed — the resource-hungry classical baseline
/// the paper's § 1 contrasts its 2-queue schemes against.
#[derive(Debug, Clone, Copy)]
pub struct EcubeSbp {
    cube: Hypercube,
}

impl EcubeSbp {
    /// E-cube + structured-buffer-pool routing on the n-cube.
    pub fn new(dims: usize) -> Self {
        Self {
            cube: Hypercube::new(dims),
        }
    }

    /// The underlying hypercube.
    pub fn cube(&self) -> &Hypercube {
        &self.cube
    }
}

impl RoutingFunction for EcubeSbp {
    type Msg = EcubeMsg;

    fn topology(&self) -> &dyn Topology {
        &self.cube
    }

    fn num_classes(&self) -> usize {
        self.cube.dims() + 1
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> EcubeMsg {
        EcubeMsg { dst, hops: 0 }
    }

    fn destination(&self, msg: &EcubeMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &EcubeMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &EcubeMsg,
        f: &mut dyn FnMut(Transition<EcubeMsg>),
    ) {
        let u = at.node;
        match at.kind {
            QueueKind::Inject => f(internal(QueueId::central(u, 0), *msg)),
            QueueKind::Central(_) => {
                if u == msg.dst {
                    f(internal(QueueId::deliver(u), *msg));
                    return;
                }
                let dim = (u ^ msg.dst).trailing_zeros() as usize;
                let next = EcubeMsg {
                    dst: msg.dst,
                    hops: msg.hops + 1,
                };
                f(Transition {
                    kind: LinkKind::Static,
                    hop: HopKind::Link(dim),
                    to: QueueId::central(u ^ (1 << dim), next.hops),
                    msg: next,
                });
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, _port: Port) -> Vec<BufferClass> {
        (1..=self.cube.dims() as u8)
            .map(BufferClass::Static)
            .collect()
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.cube.dims()
    }

    fn name(&self) -> String {
        format!("hypercube-ecube-sbp(n={})", self.cube.dims())
    }
}

impl Symmetry for EcubeSbp {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        match q.kind {
            QueueKind::Inject => QueueClass::inject(),
            QueueKind::Deliver => QueueClass::deliver(),
            // The hop counter *is* the level: every link hop increments it.
            QueueKind::Central(c) => QueueClass::central(c, 0),
        }
    }

    fn symmetry(&self) -> String {
        "structured buffer pool: classes by hop count (node-independent), all destinations".into()
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_qdg::explore::build_qdg;
    use fadr_qdg::verify;

    #[test]
    fn fully_adaptive_passes_all_checks_n3() {
        let rf = HypercubeFullyAdaptive::new(3);
        let rep = verify::verify_all(&rf, true).unwrap();
        assert!(rep.dynamic_edges > 0, "dynamic links must be present");
        assert!(rep.checked_fully_adaptive);
    }

    #[test]
    fn fully_adaptive_passes_all_checks_n4() {
        verify::verify_all(&HypercubeFullyAdaptive::new(4), true).unwrap();
    }

    #[test]
    fn static_hang_is_deadlock_free_but_not_fully_adaptive() {
        let rf = HypercubeStaticHang::new(3);
        verify::verify_all(&rf, false).unwrap();
        let err = verify::verify_fully_adaptive(&rf).unwrap_err();
        assert_eq!(err.check, "fully-adaptive");
    }

    #[test]
    fn ecube_sbp_is_deadlock_free_via_buffer_classes() {
        verify::verify_all(&EcubeSbp::new(3), false).unwrap();
    }

    #[test]
    fn ecube_sbp_uses_linear_classes() {
        let rf = EcubeSbp::new(4);
        assert_eq!(rf.num_classes(), 5);
    }

    #[test]
    fn fully_adaptive_qdg_shape_n3() {
        // Figure 1 of the paper: the 3-cube hung from 000 with dynamic
        // links. Check the expected static edge q_A[000] -> q_A[001] and
        // the dynamic edge q_A[001] -> q_A[000].
        let rf = HypercubeFullyAdaptive::new(3);
        let qdg = build_qdg(&rf);
        let a = qdg.index[&QueueId::central(0b000, CLASS_A)];
        let b = qdg.index[&QueueId::central(0b001, CLASS_A)];
        assert!(qdg.static_graph.has_edge(a, b));
        assert!(qdg.dynamic_edges.contains(&(b, a)));
        assert!(qdg.static_is_acyclic());
        // The full graph (with dynamic links) is cyclic — that is the point
        // of the dynamically-acyclic relaxation.
        assert!(!qdg.full_graph.is_acyclic());
    }

    #[test]
    fn phase_a_message_enters_qb_exactly_after_last_zero_correction() {
        let rf = HypercubeFullyAdaptive::new(4);
        // 0101 -> 1100: zeros to fix: bit 3; ones: bit 0.
        let msg = CubeMsg { dst: 0b1100 };
        let ts = rf.transitions(QueueId::central(0b0101, CLASS_A), &msg);
        // Static: dim 3 to 1101 which still has a 1->0 pending -> q_A? No:
        // zeros(1101, 1100) = 0, so it enters q_B. Dynamic: dim 0 to 0100.
        let stat: Vec<_> = ts.iter().filter(|t| t.kind == LinkKind::Static).collect();
        let dynm: Vec<_> = ts.iter().filter(|t| t.kind == LinkKind::Dynamic).collect();
        assert_eq!(stat.len(), 1);
        assert_eq!(stat[0].to, QueueId::central(0b1101, CLASS_B));
        assert_eq!(dynm.len(), 1);
        assert_eq!(dynm[0].to, QueueId::central(0b0100, CLASS_A));
    }

    #[test]
    fn transitions_emitted_in_ascending_dimension_order() {
        let rf = HypercubeFullyAdaptive::new(4);
        let msg = CubeMsg { dst: 0b1111 };
        let ts = rf.transitions(QueueId::central(0b0000, CLASS_A), &msg);
        let dims: Vec<_> = ts
            .iter()
            .map(|t| match t.hop {
                HopKind::Link(p) => p,
                _ => panic!("expected link"),
            })
            .collect();
        assert_eq!(dims, vec![0, 1, 2, 3]);
    }
}

#[cfg(test)]
mod rooted_tests {
    use super::*;
    use fadr_qdg::verify;

    #[test]
    fn arbitrary_roots_preserve_theorem_1() {
        for root in [0b001usize, 0b101, 0b111] {
            let rf = HypercubeFullyAdaptive::hung_from(3, root);
            verify::verify_all(&rf, true).unwrap_or_else(|e| panic!("root {root}: {e}"));
        }
    }

    #[test]
    fn rooted_hang_relabels_corrections() {
        // Hung from 111, a message 000 -> 011 must first move AWAY from
        // 111 (correct the relabelled zeros): down = dst ^ root = 100,
        // so... diff = 011, zeros = diff & down = 0, ones = 011: it is a
        // pure phase-B message (000 is already "below" 011 w.r.t. 111).
        let (zeros, ones) = hung_corrections(0b000, 0b011, 0b111);
        assert_eq!(zeros, 0);
        assert_eq!(ones, 0b011);
        // And from the paper's root 0 it is a pure phase-A message.
        let (zeros, ones) = hung_corrections(0b000, 0b011, 0b000);
        assert_eq!(zeros, 0b011);
        assert_eq!(ones, 0);
    }

    #[test]
    fn rooted_entry_queue_matches_relabelling() {
        let rf = HypercubeFullyAdaptive::hung_from(4, 0b1010);
        let msg = CubeMsg { dst: 0b0101 };
        // src = 1010 (= root): every differing bit moves away from the
        // root, so the message starts in q_A.
        let ts = rf.transitions(QueueId::inject(0b1010), &msg);
        assert_eq!(ts[0].to, QueueId::central(0b1010, CLASS_A));
        // src = 0101 toward 1010 under root 1010: every correction moves
        // toward the root: q_B.
        let rf2 = HypercubeFullyAdaptive::hung_from(4, 0b0101);
        let msg2 = CubeMsg {
            dst: 0b0101 ^ 0b1111,
        };
        let ts2 = rf2.transitions(QueueId::inject(0b0101), &msg2);
        assert_eq!(ts2[0].to.kind, fadr_qdg::QueueKind::Central(CLASS_A));
    }

    #[test]
    fn root_symmetry_in_simulation_name() {
        assert!(HypercubeFullyAdaptive::hung_from(3, 5)
            .name()
            .contains("root=5"));
        assert!(!HypercubeFullyAdaptive::new(3).name().contains("root"));
    }
}
