//! [`SnapshotMsg`] encodings for every routing-state type in this crate.
//!
//! The simulator's `fadr-snapshot/1` checkpoint format stores each
//! in-flight packet's routing state as a short run of `u64` words; these
//! impls define that encoding for the paper's algorithms and baselines.
//! All encodings are exact round trips — `decode(encode(m)) == Some(m)` —
//! and `decode` rejects slices of the wrong length so truncated or
//! corrupted snapshots fail loudly.

use fadr_qdg::SnapshotMsg;

use crate::hypercube::{CubeMsg, EcubeMsg};
use crate::mesh::MeshMsg;
use crate::mesh_kd::MeshKDMsg;
use crate::sbp::SbpMsg;
use crate::shuffle::SeMsg;
use crate::torus::TorusMsg;

#[allow(clippy::cast_possible_truncation)]
fn usize_from(word: u64) -> Option<usize> {
    usize::try_from(word).ok()
}

impl SnapshotMsg for CubeMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.dst as u64);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [dst] => Some(Self {
                dst: usize_from(*dst)?,
            }),
            _ => None,
        }
    }
}

impl SnapshotMsg for EcubeMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.dst as u64);
        out.push(u64::from(self.hops));
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [dst, hops] => Some(Self {
                dst: usize_from(*dst)?,
                hops: u8::try_from(*hops).ok()?,
            }),
            _ => None,
        }
    }
}

impl SnapshotMsg for MeshMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.dst as u64);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [dst] => Some(Self {
                dst: usize_from(*dst)?,
            }),
            _ => None,
        }
    }
}

impl SnapshotMsg for MeshKDMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.dst as u64);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [dst] => Some(Self {
                dst: usize_from(*dst)?,
            }),
            _ => None,
        }
    }
}

impl SnapshotMsg for SbpMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.dst as u64);
        out.push(u64::from(self.hops));
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [dst, hops] => Some(Self {
                dst: usize_from(*dst)?,
                hops: u8::try_from(*hops).ok()?,
            }),
            _ => None,
        }
    }
}

impl SnapshotMsg for SeMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.dst as u64);
        out.push(u64::from(self.count));
        out.push(u64::from(self.cls));
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [dst, count, cls] => Some(Self {
                dst: usize_from(*dst)?,
                count: u16::try_from(*count).ok()?,
                cls: u8::try_from(*cls).ok()?,
            }),
            _ => None,
        }
    }
}

/// Sign-preserving `i8 → u64` for the torus direction fields.
fn enc_i8(v: i8) -> u64 {
    i64::from(v) as u64
}

#[allow(clippy::cast_possible_truncation)]
fn dec_i8(word: u64) -> Option<i8> {
    i8::try_from(word as i64).ok()
}

impl SnapshotMsg for TorusMsg {
    fn encode(&self, out: &mut Vec<u64>) {
        out.push(self.dst as u64);
        out.push(u64::from(self.rx));
        out.push(u64::from(self.ry));
        out.push(enc_i8(self.dirx));
        out.push(enc_i8(self.diry));
        out.push(u64::from(self.wplus));
        out.push(u64::from(self.wminus));
    }

    fn decode(words: &[u64]) -> Option<Self> {
        match words {
            [dst, rx, ry, dirx, diry, wplus, wminus] => Some(Self {
                dst: usize_from(*dst)?,
                rx: u8::try_from(*rx).ok()?,
                ry: u8::try_from(*ry).ok()?,
                dirx: dec_i8(*dirx)?,
                diry: dec_i8(*diry)?,
                wplus: u8::try_from(*wplus).ok()?,
                wminus: u8::try_from(*wminus).ok()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<M: SnapshotMsg + Clone + PartialEq + std::fmt::Debug>(m: &M) {
        let mut words = Vec::new();
        m.encode(&mut words);
        assert_eq!(M::decode(&words).as_ref(), Some(m));
        // Wrong lengths must be rejected.
        assert!(M::decode(&words[..words.len() - 1]).is_none() || words.len() == 1);
        let mut longer = words.clone();
        longer.push(0);
        assert!(M::decode(&longer).is_none());
    }

    #[test]
    fn all_msgs_round_trip() {
        round_trip(&CubeMsg { dst: 13 });
        round_trip(&EcubeMsg { dst: 7, hops: 3 });
        round_trip(&MeshMsg { dst: 99 });
        round_trip(&MeshKDMsg { dst: 4 });
        round_trip(&SbpMsg { dst: 12, hops: 2 });
        round_trip(&SeMsg {
            dst: 5,
            count: 17,
            cls: 1,
        });
        round_trip(&TorusMsg {
            dst: 21,
            rx: 2,
            ry: 3,
            dirx: -1,
            diry: 1,
            wplus: 1,
            wminus: 2,
        });
    }

    #[test]
    fn torus_negative_directions_survive() {
        let m = TorusMsg {
            dst: 0,
            rx: 0,
            ry: 0,
            dirx: -1,
            diry: -1,
            wplus: 0,
            wminus: 0,
        };
        let mut words = Vec::new();
        m.encode(&mut words);
        let back = TorusMsg::decode(&words).unwrap();
        assert_eq!(back.dirx, -1);
        assert_eq!(back.diry, -1);
    }

    #[test]
    fn out_of_range_fields_rejected() {
        assert!(EcubeMsg::decode(&[1, 300]).is_none());
        assert!(TorusMsg::decode(&[1, 0, 0, u64::MAX / 2, 0, 0, 0]).is_none());
    }
}
