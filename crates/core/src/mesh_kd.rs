//! The k-dimensional generalization of the § 4 mesh algorithm.
//!
//! The paper notes its 2-D technique "can be easily generalized for
//! k-dimensional meshes, for any arbitrary k": hang the mesh from the
//! all-zeros corner (phase A, level `Σ coords` rising over static links)
//! and from the opposite corner (phase B, level falling); dynamic links
//! let a phase-A message take *any* minimal move while some `+`
//! correction remains. Still two central queues per node, for any k.

use fadr_qdg::sym::{QueueClass, Symmetry};
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_topology::{MeshKD, NodeId, Port, Topology};

use crate::{CLASS_A, CLASS_B};

/// Message routing state: only the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshKDMsg {
    /// Destination node id.
    pub dst: NodeId,
}

/// Fully-adaptive minimal routing on a k-dimensional mesh with two
/// central queues per node.
#[derive(Debug, Clone)]
pub struct MeshKDFullyAdaptive {
    mesh: MeshKD,
}

impl MeshKDFullyAdaptive {
    /// Fully-adaptive routing on the mesh with the given extents.
    pub fn new(extents: &[usize]) -> Self {
        Self {
            mesh: MeshKD::new(extents),
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &MeshKD {
        &self.mesh
    }

    /// Whether any `+`-direction correction remains (phase A membership).
    fn has_plus_work(&self, node: NodeId, dst: NodeId) -> bool {
        (0..self.mesh.dims()).any(|d| self.mesh.coord(dst, d) > self.mesh.coord(node, d))
    }

    fn entry_class(&self, node: NodeId, dst: NodeId) -> u8 {
        if self.has_plus_work(node, dst) {
            CLASS_A
        } else {
            CLASS_B
        }
    }
}

impl RoutingFunction for MeshKDFullyAdaptive {
    type Msg = MeshKDMsg;

    fn topology(&self) -> &dyn Topology {
        &self.mesh
    }

    fn num_classes(&self) -> usize {
        2
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> MeshKDMsg {
        MeshKDMsg { dst }
    }

    fn destination(&self, msg: &MeshKDMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &MeshKDMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &MeshKDMsg,
        f: &mut dyn FnMut(Transition<MeshKDMsg>),
    ) {
        let u = at.node;
        let dst = msg.dst;
        match at.kind {
            QueueKind::Inject => f(Transition {
                kind: LinkKind::Static,
                hop: HopKind::Internal,
                to: QueueId::central(u, self.entry_class(u, dst)),
                msg: *msg,
            }),
            QueueKind::Central(class) => {
                if u == dst {
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Internal,
                        to: QueueId::deliver(u),
                        msg: *msg,
                    });
                    return;
                }
                let plus_work = self.has_plus_work(u, dst);
                debug_assert_eq!(class == CLASS_A, plus_work, "phase invariant");
                for d in 0..self.mesh.dims() {
                    let (cu, cd) = (self.mesh.coord(u, d), self.mesh.coord(dst, d));
                    if cd > cu {
                        // `+` move: static in phase A (phase-B messages
                        // have no such work).
                        let v = self.mesh.neighbor(u, 2 * d).expect("+ move stays inside");
                        f(Transition {
                            kind: LinkKind::Static,
                            hop: HopKind::Link(2 * d),
                            to: QueueId::central(v, self.entry_class(v, dst)),
                            msg: *msg,
                        });
                    } else if cd < cu {
                        // `-` move: dynamic while in phase A, static in
                        // phase B.
                        let v = self
                            .mesh
                            .neighbor(u, 2 * d + 1)
                            .expect("- move stays inside");
                        let (kind, to_class) = if class == CLASS_A {
                            (LinkKind::Dynamic, CLASS_A)
                        } else {
                            (LinkKind::Static, CLASS_B)
                        };
                        f(Transition {
                            kind,
                            hop: HopKind::Link(2 * d + 1),
                            to: QueueId::central(v, to_class),
                            msg: *msg,
                        });
                    }
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, port: Port) -> Vec<BufferClass> {
        if port.is_multiple_of(2) {
            // `+` channels: phase-A static traffic, possibly completing
            // phase A on arrival.
            vec![BufferClass::Static(CLASS_A), BufferClass::Static(CLASS_B)]
        } else {
            // `-` channels: phase-B static plus phase-A dynamic traffic.
            vec![BufferClass::Static(CLASS_B), BufferClass::Dynamic]
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.mesh.extents().iter().map(|e| e - 1).sum()
    }

    fn name(&self) -> String {
        let e: Vec<String> = self
            .mesh
            .extents()
            .iter()
            .map(ToString::to_string)
            .collect();
        format!("meshkd-fully-adaptive({})", e.join("x"))
    }
}

impl Symmetry for MeshKDFullyAdaptive {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        match q.kind {
            QueueKind::Inject => QueueClass::inject(),
            QueueKind::Deliver => QueueClass::deliver(),
            QueueKind::Central(c) => {
                let level: usize = (0..self.mesh.dims())
                    .map(|d| {
                        let cu = self.mesh.coord(q.node, d);
                        if c == CLASS_A {
                            cu
                        } else {
                            self.mesh.extents()[d] - 1 - cu
                        }
                    })
                    .sum();
                QueueClass::central(c, u32::try_from(level).expect("mesh level fits u32"))
            }
        }
    }

    fn symmetry(&self) -> String {
        "k-D mesh diagonal levels (A: Σ coords from the origin corner; B: from the far corner), all destinations".into()
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_qdg::verify;

    #[test]
    fn three_d_mesh_passes_all_checks() {
        let rf = MeshKDFullyAdaptive::new(&[3, 3, 2]);
        let rep = verify::verify_all(&rf, true).unwrap();
        assert!(rep.dynamic_edges > 0);
        assert_eq!(rf.num_classes(), 2);
    }

    #[test]
    fn four_d_mesh_is_deadlock_free() {
        // Full adaptivity checking is exponential; structural +
        // deadlock + minimality checks only at 4-D.
        verify::verify_all(&MeshKDFullyAdaptive::new(&[2, 2, 2, 2]), false).unwrap();
    }

    #[test]
    fn one_d_mesh_degenerates_to_a_line() {
        let rf = MeshKDFullyAdaptive::new(&[6]);
        verify::verify_all(&rf, true).unwrap();
        assert_eq!(rf.max_hops(), 5);
    }

    #[test]
    fn two_d_instance_agrees_with_mesh2d_routing() {
        use crate::mesh::MeshFullyAdaptive;
        // Same transition sets on a 3x4 mesh for every (queue, msg).
        let kd = MeshKDFullyAdaptive::new(&[3, 4]);
        let m2 = MeshFullyAdaptive::new(3, 4);
        for src in 0..12 {
            for dst in 0..12 {
                if src == dst {
                    continue;
                }
                let sg_kd = fadr_qdg::explore::explore_pair(&kd, src, dst);
                let sg_m2 = fadr_qdg::explore::explore_pair(&m2, src, dst);
                // Same reachable queue sets (message states differ in type).
                let mut qk: Vec<_> = sg_kd.states.iter().map(|(q, _)| *q).collect();
                let mut q2: Vec<_> = sg_m2.states.iter().map(|(q, _)| *q).collect();
                qk.sort();
                qk.dedup();
                q2.sort();
                q2.dedup();
                assert_eq!(qk, q2, "{src}->{dst}");
            }
        }
    }
}
