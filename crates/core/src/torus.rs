//! Two-phase adaptive minimal routing on the 2-D torus.
//!
//! The paper remarks (after Theorem 2) that fully-adaptive minimal packet
//! routing over tori "can be achieved using 4 queues per node … following
//! an idea similar to the one presented in \[GPS91\]", without giving the
//! construction. We implement a verified scheme of the same flavour that
//! needs **6** central queues; the gap is documented in DESIGN.md.
//!
//! # The scheme
//!
//! At injection a message fixes, per dimension, the minimal travel
//! direction (`+` or `-`; ties on even rings resolved to `+`). Its route
//! then interleaves those fixed directed moves arbitrarily:
//!
//! * **Phase A** — while some `+` move remains: `+` moves are *static*
//!   links (level `x + y` rises except at a wraparound), `-` moves are
//!   *dynamic* links (the pending `+` move is the static escape,
//!   condition 3 of § 2).
//! * **Phase B** — only `-` moves remain; they are static.
//!
//! Wraparound crossings are the only level-order violations, and each
//! dimension wraps at most once, so indexing the phase-A queues by the
//! number of `+`-wraps crossed (0, 1, 2) and the phase-B queues by the
//! number of `-`-wraps crossed restores a global order
//! `(A,0) < (A,1) < (A,2) < (B,0) < (B,1) < (B,2)` — six classes — under
//! which the static QDG is acyclic (machine-checked by `fadr-qdg`).
//!
//! The scheme is minimal; on odd×odd tori (where minimal directions are
//! unique) it is *fully* adaptive, while on even rings the half-way tie is
//! fixed at injection, excluding the opposite-direction minimal paths.

use fadr_qdg::sym::{QueueClass, Symmetry};
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_topology::{NodeId, Port, Topology, Torus2D};

/// Message routing state for [`TorusTwoPhase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusMsg {
    /// Destination node id.
    pub dst: NodeId,
    /// Remaining hops in x.
    pub rx: u8,
    /// Remaining hops in y.
    pub ry: u8,
    /// Fixed x travel direction: -1, 0, or +1.
    pub dirx: i8,
    /// Fixed y travel direction: -1, 0, or +1.
    pub diry: i8,
    /// `+`-direction wraparound links crossed (0..=2).
    pub wplus: u8,
    /// `-`-direction wraparound links crossed (0..=2).
    pub wminus: u8,
}

impl TorusMsg {
    /// Whether some `+`-direction move remains (phase A).
    #[inline]
    pub fn in_phase_a(&self) -> bool {
        (self.dirx > 0 && self.rx > 0) || (self.diry > 0 && self.ry > 0)
    }

    /// The central-queue class this message occupies.
    #[inline]
    pub fn class(&self) -> u8 {
        if self.in_phase_a() {
            self.wplus
        } else {
            3 + self.wminus
        }
    }
}

/// Two-phase adaptive minimal torus routing with six central queues.
#[derive(Debug, Clone, Copy)]
pub struct TorusTwoPhase {
    torus: Torus2D,
}

impl TorusTwoPhase {
    /// Routing on a `width × height` torus.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            torus: Torus2D::new(width, height),
        }
    }

    /// The underlying torus.
    pub fn torus(&self) -> &Torus2D {
        &self.torus
    }
}

/// Torus ports, following [`Torus2D`]'s numbering.
const XP: Port = 0;
const XN: Port = 1;
const YP: Port = 2;
const YN: Port = 3;

impl RoutingFunction for TorusTwoPhase {
    type Msg = TorusMsg;

    fn topology(&self) -> &dyn Topology {
        &self.torus
    }

    fn num_classes(&self) -> usize {
        6
    }

    fn initial_msg(&self, src: NodeId, dst: NodeId) -> TorusMsg {
        let (dx, dy) = self.torus.offsets(src, dst);
        TorusMsg {
            dst,
            rx: u8::try_from(dx.unsigned_abs()).expect("torus side fits u8 travel"),
            ry: u8::try_from(dy.unsigned_abs()).expect("torus side fits u8 travel"),
            dirx: dx.signum() as i8,
            diry: dy.signum() as i8,
            wplus: 0,
            wminus: 0,
        }
    }

    fn destination(&self, msg: &TorusMsg) -> NodeId {
        msg.dst
    }

    fn deliverable(&self, node: NodeId, msg: &TorusMsg) -> bool {
        node == msg.dst
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &TorusMsg,
        f: &mut dyn FnMut(Transition<TorusMsg>),
    ) {
        let t = &self.torus;
        let u = at.node;
        match at.kind {
            QueueKind::Inject => f(Transition {
                kind: LinkKind::Static,
                hop: HopKind::Internal,
                to: QueueId::central(u, msg.class()),
                msg: *msg,
            }),
            QueueKind::Central(_) => {
                if u == msg.dst {
                    debug_assert_eq!((msg.rx, msg.ry), (0, 0));
                    f(Transition {
                        kind: LinkKind::Static,
                        hop: HopKind::Internal,
                        to: QueueId::deliver(u),
                        msg: *msg,
                    });
                    return;
                }
                let (x, y) = t.coords(u);
                let phase_a = msg.in_phase_a();
                // Ports in ascending order: +x, -x, +y, -y.
                if msg.dirx > 0 && msg.rx > 0 {
                    let wrap = x == t.width() - 1;
                    let next = TorusMsg {
                        rx: msg.rx - 1,
                        wplus: msg.wplus + u8::from(wrap),
                        ..*msg
                    };
                    self.emit(f, LinkKind::Static, u, XP, next);
                }
                if msg.dirx < 0 && msg.rx > 0 {
                    let wrap = x == 0;
                    let next = TorusMsg {
                        rx: msg.rx - 1,
                        wminus: msg.wminus + u8::from(wrap),
                        ..*msg
                    };
                    let kind = if phase_a {
                        LinkKind::Dynamic
                    } else {
                        LinkKind::Static
                    };
                    self.emit(f, kind, u, XN, next);
                }
                if msg.diry > 0 && msg.ry > 0 {
                    let wrap = y == t.height() - 1;
                    let next = TorusMsg {
                        ry: msg.ry - 1,
                        wplus: msg.wplus + u8::from(wrap),
                        ..*msg
                    };
                    self.emit(f, LinkKind::Static, u, YP, next);
                }
                if msg.diry < 0 && msg.ry > 0 {
                    let wrap = y == 0;
                    let next = TorusMsg {
                        ry: msg.ry - 1,
                        wminus: msg.wminus + u8::from(wrap),
                        ..*msg
                    };
                    let kind = if phase_a {
                        LinkKind::Dynamic
                    } else {
                        LinkKind::Static
                    };
                    self.emit(f, kind, u, YN, next);
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, port: Port) -> Vec<BufferClass> {
        match port {
            // `+` channels: phase-A static traffic that can land in any
            // class (a final `+` move switches the message to phase B).
            XP | YP => (0..6).map(BufferClass::Static).collect(),
            // `-` channels: phase-B static traffic plus phase-A dynamics.
            _ => vec![
                BufferClass::Static(3),
                BufferClass::Static(4),
                BufferClass::Static(5),
                BufferClass::Dynamic,
            ],
        }
    }

    fn is_minimal(&self) -> bool {
        true
    }

    fn max_hops(&self) -> usize {
        self.torus.width() / 2 + self.torus.height() / 2
    }

    fn name(&self) -> String {
        format!(
            "torus-two-phase({}x{})",
            self.torus.width(),
            self.torus.height()
        )
    }
}

impl TorusTwoPhase {
    fn emit(
        &self,
        f: &mut dyn FnMut(Transition<TorusMsg>),
        kind: LinkKind,
        u: NodeId,
        port: Port,
        next: TorusMsg,
    ) {
        debug_assert!(
            next.wplus <= 2 && next.wminus <= 2,
            "each dimension wraps at most once"
        );
        let v = self
            .torus
            .neighbor(u, port)
            .expect("torus ports always exist");
        f(Transition {
            kind,
            hop: HopKind::Link(port),
            to: QueueId::central(v, next.class()),
            msg: next,
        });
    }
}

impl Symmetry for TorusTwoPhase {
    fn queue_class(&self, q: QueueId) -> QueueClass {
        match q.kind {
            QueueKind::Inject => QueueClass::inject(),
            QueueKind::Deliver => QueueClass::deliver(),
            QueueKind::Central(c) => {
                // Within a wrap-count class every static link either keeps
                // the class and raises the diagonal level, or moves to a
                // strictly later class (wrap crossing or phase switch).
                let (x, y) = self.torus.coords(q.node);
                let level = if c < 3 {
                    x + y
                } else {
                    (self.torus.width() - 1 - x) + (self.torus.height() - 1 - y)
                };
                QueueClass::central(c, u32::try_from(level).expect("torus level fits u32"))
            }
        }
    }

    fn symmetry(&self) -> String {
        "wrap-count classes levelled by diagonal position (A: x+y; B: from the far corner); torus translations do not preserve levels, so all destinations are explored".into()
    }

    fn is_reduced(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_qdg::verify;

    #[test]
    fn odd_torus_passes_all_checks_including_full_adaptivity() {
        let rep = verify::verify_all(&TorusTwoPhase::new(3, 3), true).unwrap();
        assert!(rep.dynamic_edges > 0);
    }

    #[test]
    fn odd_rectangular_torus_passes() {
        verify::verify_all(&TorusTwoPhase::new(5, 3), true).unwrap();
    }

    #[test]
    fn even_torus_is_deadlock_free_but_tie_breaking_loses_paths() {
        let rf = TorusTwoPhase::new(4, 4);
        verify::verify_all(&rf, false).unwrap();
        // Even rings: the half-way tie is fixed to `+`, so the `-`-side
        // minimal paths are not realizable.
        let err = verify::verify_fully_adaptive(&rf).unwrap_err();
        assert_eq!(err.check, "fully-adaptive");
    }

    #[test]
    fn initial_directions_are_minimal() {
        let rf = TorusTwoPhase::new(5, 5);
        let t = rf.torus;
        // (0,0) -> (4,0): -x is minimal (1 hop).
        let m = rf.initial_msg(t.node_at(0, 0), t.node_at(4, 0));
        assert_eq!((m.dirx, m.rx, m.diry, m.ry), (-1, 1, 0, 0));
        assert!(!m.in_phase_a());
        assert_eq!(m.class(), 3);
    }

    #[test]
    fn wrap_crossings_advance_classes() {
        let rf = TorusTwoPhase::new(5, 5);
        let t = rf.torus;
        // (4,0) -> (1,0): +x through the wraparound (2 hops).
        let m = rf.initial_msg(t.node_at(4, 0), t.node_at(1, 0));
        assert_eq!((m.dirx, m.rx), (1, 2));
        let ts = rf.transitions(QueueId::central(t.node_at(4, 0), m.class()), &m);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].to.node, t.node_at(0, 0));
        assert_eq!(ts[0].msg.wplus, 1);
        // Still phase A (one +x hop left): class A1.
        assert_eq!(ts[0].to.kind, fadr_qdg::QueueKind::Central(1));
    }

    #[test]
    fn phase_a_minus_moves_are_dynamic() {
        let rf = TorusTwoPhase::new(5, 5);
        let t = rf.torus;
        // (2,2) -> (1,4): -x (1 hop) and +y (2 hops).
        let m = rf.initial_msg(t.node_at(2, 2), t.node_at(1, 4));
        assert!(m.in_phase_a());
        let ts = rf.transitions(QueueId::central(t.node_at(2, 2), m.class()), &m);
        let kinds: Vec<_> = ts.iter().map(|x| (x.kind, x.hop)).collect();
        assert_eq!(
            kinds,
            vec![
                (LinkKind::Dynamic, HopKind::Link(XN)),
                (LinkKind::Static, HopKind::Link(YP)),
            ]
        );
    }
}
