//! Boundary tests for the 8-bit class-id space: a scheme declaring 256
//! classes is provisionable (the last id is 255), one declaring 257 is
//! not — and the analyzer must say so with a finding, not a cast panic.
//! (Found by the fuzzer's class-inflation mutation; pinned here.)

use fadr_core::HypercubeFullyAdaptive;
use fadr_lint::{lint_scheme, LintConfig, LintId, Severity};
use fadr_qdg::{BufferClass, QueueId, RoutingFunction, Transition};
use fadr_topology::{NodeId, Port, Topology};

/// A scheme claiming `classes` central queue classes while routing with
/// the wrapped scheme's (smaller) real class set.
struct InflateClasses<R: RoutingFunction> {
    inner: R,
    classes: usize,
}

impl<R: RoutingFunction> RoutingFunction for InflateClasses<R> {
    type Msg = R::Msg;

    fn topology(&self) -> &dyn Topology {
        self.inner.topology()
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn initial_msg(&self, src: NodeId, dst: NodeId) -> Self::Msg {
        self.inner.initial_msg(src, dst)
    }

    fn destination(&self, msg: &Self::Msg) -> NodeId {
        self.inner.destination(msg)
    }

    fn deliverable(&self, node: NodeId, msg: &Self::Msg) -> bool {
        self.inner.deliverable(node, msg)
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &Self::Msg,
        f: &mut dyn FnMut(Transition<Self::Msg>),
    ) {
        self.inner.for_each_transition(at, msg, f);
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        self.inner.buffer_classes(node, port)
    }

    fn is_minimal(&self) -> bool {
        self.inner.is_minimal()
    }

    fn max_hops(&self) -> usize {
        self.inner.max_hops()
    }

    fn name(&self) -> String {
        format!("{}+inflated({})", self.inner.name(), self.classes)
    }
}

impl<R: RoutingFunction> fadr_qdg::sym::Symmetry for InflateClasses<R> {}

fn inflated(classes: usize) -> InflateClasses<HypercubeFullyAdaptive> {
    InflateClasses {
        inner: HypercubeFullyAdaptive::new(2),
        classes,
    }
}

#[test]
fn class_count_256_is_in_range() {
    let rep = lint_scheme(&inflated(256), &LintConfig::default());
    assert!(
        !rep.has(LintId::ClassCountOverflow),
        "{}",
        rep.render_text()
    );
    // The inflation itself is still flagged, as unreachable classes.
    assert!(rep.has(LintId::UnreachableClass));
}

#[test]
fn class_count_257_is_a_finding_not_a_panic() {
    let rep = lint_scheme(&inflated(257), &LintConfig::default());
    assert!(rep.has(LintId::ClassCountOverflow), "{}", rep.render_text());
    assert!(rep.errors() > 0);
    let f = rep
        .findings
        .iter()
        .find(|f| f.lint == LintId::ClassCountOverflow)
        .unwrap();
    assert_eq!(f.severity(), Severity::Error);
    assert!(f.message.contains("257"), "{}", f.message);
}

#[test]
fn overflow_lint_id_roundtrips() {
    assert_eq!(
        LintId::from_id("class-count-overflow"),
        Some(LintId::ClassCountOverflow)
    );
}
