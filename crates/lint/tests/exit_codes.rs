//! The `lint` binary's exit-code contract, part of the workspace-wide
//! convention the CI gates script against: 0 clean, 1 findings, 2 on
//! usage or I/O errors.

use std::process::Command;

fn lint(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .output()
        .expect("spawn lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn clean_scheme_exits_zero() {
    let (code, stdout, _) = lint(&["--family", "hypercube", "--n", "3"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("0 error(s)"));
}

#[test]
fn findings_exit_one() {
    let (code, stdout, _) = lint(&["--family", "se", "--n", "4", "--algo", "paper-literal"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("class-capacity-exhausted"));
}

#[test]
fn warnings_gate_only_under_deny_warnings() {
    // Hypercube FA has shadowed-buffer warnings but no errors.
    let (code, _, _) = lint(&["--family", "hypercube", "--n", "3"]);
    assert_eq!(code, Some(0));
    let (code, _, _) = lint(&["--family", "hypercube", "--n", "3", "--deny-warnings"]);
    assert_eq!(code, Some(1));
}

#[test]
fn expect_mode_flips_polarity() {
    let (code, _, _) = lint(&[
        "--family",
        "se",
        "--n",
        "4",
        "--algo",
        "paper-literal",
        "--expect",
        "class-capacity-exhausted",
    ]);
    assert_eq!(code, Some(0));
    // A clean scheme fails an expectation.
    let (code, _, stderr) = lint(&["--family", "hypercube", "--n", "3", "--expect", "dead-end"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("dead-end"), "{stderr}");
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["--bogus"][..],
        &["--family", "klein-bottle", "--n", "4"],
        &["--family", "hypercube", "--n", "notanumber"],
        &["--only", "no-such-lint"],
        &["--n"],
    ] {
        let (code, _, stderr) = lint(args);
        assert_eq!(code, Some(2), "args {args:?}: {stderr}");
    }
}

#[test]
fn io_errors_exit_two() {
    let (code, _, stderr) = lint(&[
        "--family",
        "hypercube",
        "--n",
        "3",
        "--faults",
        "/nonexistent/plan.json",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
    let (code, _, stderr) = lint(&[
        "--family",
        "hypercube",
        "--n",
        "3",
        "--json",
        "/nonexistent/dir/out.json",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
}

#[test]
fn help_and_list_exit_zero() {
    let (code, stdout, _) = lint(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage: lint"));
    let (code, stdout, _) = lint(&["--list"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("class-capacity-exhausted"));
    assert!(stdout.contains("fault-dead-end"));
}

#[test]
fn json_report_is_written_and_valid_schema() {
    let dir = std::env::temp_dir().join("fadr-lint-exit-codes");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("se4.json");
    let (code, _, _) = lint(&[
        "--family",
        "se",
        "--n",
        "4",
        "--algo",
        "paper-literal",
        "--json",
        path.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code, Some(1));
    let body = std::fs::read_to_string(&path).expect("report written");
    assert!(body.contains("\"schema\": \"fadr-lint/1\""));
    assert!(body.contains("\"lint\": \"class-capacity-exhausted\""));
    assert!(body.contains("\"clause\""));
    std::fs::remove_file(&path).ok();
}
