//! The negative corpus: known-broken schemes and plans, each pinned to
//! its specific lint with a stable diagnostic snapshot. CI's lint-gate
//! runs the same corpus through the `lint` binary with `--expect`; these
//! tests additionally pin the diagnostic *content* (exact witness
//! queues and clause text) so a refactor that silently weakens a lint's
//! localization fails here first.

use fadr_core::ShuffleExchangeRouting;
use fadr_lint::{lint_all, lint_scheme, LintConfig, LintId, Severity};
use fadr_qdg::sym::Symmetry;
use fadr_qdg::verify::test_fixtures::EcubeHypercube;
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, RoutingFunction, Transition};
use fadr_sim::FaultPlan;
use fadr_topology::{Hypercube, NodeId, Port, Topology};

/// SE(4) with the paper's literal "two classes per phase" provisioning:
/// the composite dimension count leaves the saturated class with a
/// cycle of its own, and the lint must name the exact offending queues.
#[test]
fn se4_paper_literal_flags_capacity_with_exact_queues() {
    let rf = ShuffleExchangeRouting::paper_literal(4);
    let report = lint_scheme(&rf, &LintConfig::default());
    assert!(report.errors() > 0);
    let findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == LintId::ClassCapacityExhausted)
        .collect();
    assert!(!findings.is_empty(), "{}", report.render_text());
    // Stable snapshot: the phase-1 saturated class cycles on the
    // period-2 shuffle necklace 0101 <-> 1010 (nodes 5 and 10).
    let witness: Vec<String> = findings[0].queues.iter().map(ToString::to_string).collect();
    assert_eq!(witness, vec!["q1[10]", "q1[5]"], "{}", report.render_text());
    assert_eq!(
        findings[0].lint.clause(),
        "§ 2 condition 1 via § 6 provisioning (a class cannot break its own cycle)"
    );
    // The diagnostic is machine-readable fadr-lint/1.
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"fadr-lint/1\""));
    assert!(json.contains("\"lint\": \"class-capacity-exhausted\""));
    assert!(json.contains("q1[10]"));
    // The correctly provisioned scheme is clean of errors.
    let fixed = lint_scheme(&ShuffleExchangeRouting::new(4), &LintConfig::default());
    assert_eq!(fixed.errors(), 0, "{}", fixed.render_text());
}

/// The PR 5 degraded-mode plan that cuts every channel into node 15 of
/// the 4-cube: the fault pass must name the isolated destination
/// without running any simulation.
#[test]
fn hypercube_partition_plan_flags_fault_dead_end() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/faults/hypercube_partition.json"
    ))
    .expect("corpus plan exists");
    let plan = FaultPlan::parse(&text).expect("corpus plan parses");
    let rf = fadr_core::HypercubeFullyAdaptive::new(4);
    let report = lint_all(&rf, Some(&plan), &LintConfig::default());
    let f = report
        .findings
        .iter()
        .find(|f| f.lint == LintId::FaultDeadEnd)
        .unwrap_or_else(|| panic!("no fault-dead-end finding:\n{}", report.render_text()));
    // Stable snapshot: destination 15 is isolated from all 15 surviving
    // sources (the plan downs links but no nodes).
    assert_eq!(f.dst, Some(15));
    assert_eq!(f.nodes.first(), Some(&15));
    assert!(
        f.message.contains("destination 15") && f.message.contains("15 of 15 surviving source(s)"),
        "{}",
        f.message
    );
    assert_eq!(
        f.lint.clause(),
        "§ 2 on the surviving graph (no surviving minimal path)"
    );
    let summary = report.fault_plan.expect("fault summary present");
    assert_eq!(
        (summary.events, summary.dead_nodes, summary.dead_links),
        (4, 0, 4)
    );
    // The plan's link events name real channels and in-range nodes.
    assert!(!report.has(LintId::FaultOutOfRange));
    assert!(!report.has(LintId::FaultNoopLink));
}

/// Hand-built non-minimal scheme: e-cube on the 2-cube that *claims*
/// minimality but detours 0 → 2 when routing to 1.
struct DetourEcube {
    cube: Hypercube,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Dst(NodeId);

impl RoutingFunction for DetourEcube {
    type Msg = Dst;

    fn topology(&self) -> &dyn Topology {
        &self.cube
    }

    fn num_classes(&self) -> usize {
        1
    }

    fn initial_msg(&self, _src: NodeId, dst: NodeId) -> Dst {
        Dst(dst)
    }

    fn destination(&self, msg: &Dst) -> NodeId {
        msg.0
    }

    fn deliverable(&self, node: NodeId, msg: &Dst) -> bool {
        node == msg.0
    }

    fn for_each_transition(&self, at: QueueId, msg: &Dst, f: &mut dyn FnMut(Transition<Dst>)) {
        let hop = |dim: usize| Transition {
            kind: LinkKind::Static,
            hop: HopKind::Link(dim),
            to: QueueId::central(at.node ^ (1 << dim), 0),
            msg: msg.clone(),
        };
        match at.kind {
            QueueKind::Inject => f(Transition {
                kind: LinkKind::Static,
                hop: HopKind::Internal,
                to: QueueId::central(at.node, 0),
                msg: msg.clone(),
            }),
            QueueKind::Central(_) if at.node == msg.0 => f(Transition {
                kind: LinkKind::Static,
                hop: HopKind::Internal,
                to: QueueId::deliver(at.node),
                msg: msg.clone(),
            }),
            QueueKind::Central(_) => {
                if at.node == 0 && msg.0 == 1 {
                    // The detour: walk AWAY from 1 via dimension 1.
                    f(hop(1));
                } else {
                    f(hop((at.node ^ msg.0).trailing_zeros() as usize));
                }
            }
            QueueKind::Deliver => {}
        }
    }

    fn buffer_classes(&self, _node: NodeId, _port: Port) -> Vec<BufferClass> {
        vec![BufferClass::Static(0)]
    }

    fn is_minimal(&self) -> bool {
        true // the lie the lint catches
    }

    fn max_hops(&self) -> usize {
        4
    }

    fn name(&self) -> String {
        "detour-ecube (negative corpus)".into()
    }
}

impl Symmetry for DetourEcube {}

#[test]
fn hand_built_detour_flags_non_minimal_hop() {
    let rf = DetourEcube {
        cube: Hypercube::new(2),
    };
    let report = lint_scheme(&rf, &LintConfig::default());
    let f = report
        .findings
        .iter()
        .find(|f| f.lint == LintId::NonMinimalHop)
        .unwrap_or_else(|| panic!("no non-minimal-hop finding:\n{}", report.render_text()));
    // Stable snapshot: the offending hop is q0[0] -> q0[2] toward dst 1.
    let witness: Vec<String> = f.queues.iter().map(ToString::to_string).collect();
    assert_eq!(witness, vec!["q0[0]", "q0[2]"]);
    assert_eq!(f.dst, Some(1));
    assert!(f.message.contains("distance 1 -> 2"), "{}", f.message);
    assert_eq!(f.lint.severity(), Severity::Error);
}

/// The classic single-queue store-and-forward deadlock: its static
/// cycle is confined to the only class, so the lint classifies it as
/// capacity exhaustion, not an order problem.
#[test]
fn single_queue_ecube_flags_capacity_not_order() {
    let report = lint_scheme(&EcubeHypercube::new(2), &LintConfig::default());
    assert!(
        report.has(LintId::ClassCapacityExhausted),
        "{}",
        report.render_text()
    );
    assert!(!report.has(LintId::UnrankableClassOrder));
    // Every queue in the witness cycle is a class-0 central queue.
    let f = report
        .findings
        .iter()
        .find(|f| f.lint == LintId::ClassCapacityExhausted)
        .expect("finding present");
    assert!(f.queues.len() >= 2);
    assert!(f
        .queues
        .iter()
        .all(|q| matches!(q.kind, QueueKind::Central(0))));
}

/// Toggles: `--allow`-style suppression hides a lint; `only` runs one.
#[test]
fn lint_toggles_suppress_and_select() {
    let rf = ShuffleExchangeRouting::paper_literal(4);
    let off = LintConfig {
        disabled: vec![LintId::ClassCapacityExhausted],
    };
    let report = lint_scheme(&rf, &off);
    assert!(!report.has(LintId::ClassCapacityExhausted));
    let only = lint_scheme(&rf, &LintConfig::only(&[LintId::ClassCapacityExhausted]));
    assert!(only.has(LintId::ClassCapacityExhausted));
    assert_eq!(only.warnings(), 0, "{}", only.render_text());
}
