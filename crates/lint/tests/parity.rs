//! Lint ↔ certifier parity, the contract that makes the lint gate
//! fail-closed: on every draw of scheme × topology × mutation,
//!
//! 1. a lint run with **zero errors** implies the certifier accepts
//!    (so a clean lint gate never ships a scheme the certifier would
//!    reject), and
//! 2. when the certifier rejects, the lint battery reports at least one
//!    error whose lint is consistent with the certifier's violation
//!    (so every rejection is *localized* to a named paper clause).
//!
//! Draws are seeded and deterministic; the mutation wrapper breaks
//! schemes the same two ways real implementations historically have:
//! demoting a node's static links to dynamic (violating § 2 condition 3)
//! and dropping a node's transitions outright (a dead end). Shrunk
//! minimal repros found by earlier sweeps are pinned as dedicated tests
//! at the bottom.

use fadr_core::{
    EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang, MeshFullyAdaptive, MeshStaticHang,
    MeshXY, ShuffleExchangeRouting, TorusTwoPhase,
};
use fadr_lint::{lint_scheme, LintConfig, LintId, Report};
use fadr_qdg::sym::Symmetry;
use fadr_qdg::verify::test_fixtures::EcubeHypercube;
use fadr_qdg::{BufferClass, LinkKind, QueueId, RoutingFunction, Transition};
use fadr_topology::{NodeId, Port, Topology};
use fadr_verify::{certify, Outcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a draw sabotages the wrapped scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mutation {
    /// Leave the scheme alone (parity direction 1).
    None,
    /// All static links leaving the node's queues become dynamic: every
    /// state there loses its static continuation (§ 2 condition 3).
    DemoteStatic(NodeId),
    /// The node's queues emit no transitions at all: a dead end.
    DropTransitions(NodeId),
}

/// A scheme with one node's behavior sabotaged per [`Mutation`].
struct Mutated<R: RoutingFunction> {
    inner: R,
    mutation: Mutation,
}

impl<R: RoutingFunction> RoutingFunction for Mutated<R> {
    type Msg = R::Msg;

    fn topology(&self) -> &dyn Topology {
        self.inner.topology()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn initial_msg(&self, src: NodeId, dst: NodeId) -> Self::Msg {
        self.inner.initial_msg(src, dst)
    }

    fn destination(&self, msg: &Self::Msg) -> NodeId {
        self.inner.destination(msg)
    }

    fn deliverable(&self, node: NodeId, msg: &Self::Msg) -> bool {
        self.inner.deliverable(node, msg)
    }

    fn for_each_transition(
        &self,
        at: QueueId,
        msg: &Self::Msg,
        f: &mut dyn FnMut(Transition<Self::Msg>),
    ) {
        match self.mutation {
            Mutation::DropTransitions(node) if at.node == node => {}
            Mutation::DemoteStatic(node) if at.node == node => {
                self.inner.for_each_transition(at, msg, &mut |mut t| {
                    t.kind = LinkKind::Dynamic;
                    f(t);
                });
            }
            _ => self.inner.for_each_transition(at, msg, f),
        }
    }

    fn buffer_classes(&self, node: NodeId, port: Port) -> Vec<BufferClass> {
        self.inner.buffer_classes(node, port)
    }

    fn is_minimal(&self) -> bool {
        self.inner.is_minimal()
    }

    fn max_hops(&self) -> usize {
        self.inner.max_hops()
    }

    fn name(&self) -> String {
        format!("{} [{:?}]", self.inner.name(), self.mutation)
    }
}

// Identity symmetry: sound for any scheme, and exactly what the lint
// engine uses anyway.
impl<R: RoutingFunction> Symmetry for Mutated<R> {}

/// The lints consistent with a certifier violation detail. The
/// certifier's messages are stable (`crates/verify/src/classgraph.rs`
/// and the cycle path in `lib.rs`), so substring matching is exact.
fn consistent_lints(detail: &str) -> Vec<LintId> {
    if detail.contains("dead end") {
        vec![LintId::DeadEnd]
    } else if detail.contains("condition 3") {
        vec![LintId::NoStaticEscape]
    } else if detail.contains("stutter cycle") {
        vec![LintId::StutterCycle]
    } else if detail.contains("delivered at wrong node") {
        vec![LintId::WrongDelivery]
    } else if detail.contains("cycle") {
        vec![LintId::ClassCapacityExhausted, LintId::UnrankableClassOrder]
    } else {
        Vec::new()
    }
}

/// The parity oracle run on one draw.
fn check_parity<R: Symmetry>(rf: &R) {
    let report = lint_scheme(rf, &LintConfig::default());
    let outcome = certify(rf);
    match outcome {
        Outcome::Certified(_) => {
            assert_eq!(
                report.errors(),
                0,
                "{}: certifier accepted but lint found errors:\n{}",
                rf.name(),
                report.render_text()
            );
        }
        Outcome::Rejected(rej) => {
            assert!(
                report.errors() > 0,
                "{}: certifier rejected ({}) but lint is clean",
                rf.name(),
                rej.violation.detail
            );
            let expected = consistent_lints(&rej.violation.detail);
            assert!(
                !expected.is_empty(),
                "{}: unmapped certifier violation: {}",
                rf.name(),
                rej.violation.detail
            );
            assert!(
                expected.iter().any(|&l| report.has(l)),
                "{}: certifier violation `{}` expects one of {:?}, lint found:\n{}",
                rf.name(),
                rej.violation.detail,
                expected,
                report.render_text()
            );
        }
    }
}

fn mutations(rng: &mut StdRng, nodes: usize) -> Vec<Mutation> {
    // Mutated nodes > 0 so injection at node 0 still seeds exploration.
    let v = rng.gen_range(1..nodes);
    vec![
        Mutation::None,
        Mutation::DemoteStatic(v),
        Mutation::DropTransitions(v),
    ]
}

fn check_family(rng: &mut StdRng, family: usize) {
    match family {
        0 => {
            let n = rng.gen_range(2..=3usize);
            for m in mutations(rng, 1 << n) {
                check_parity(&Mutated {
                    inner: HypercubeFullyAdaptive::new(n),
                    mutation: m,
                });
            }
        }
        1 => {
            let n = rng.gen_range(2..=3usize);
            for m in mutations(rng, 1 << n) {
                check_parity(&Mutated {
                    inner: HypercubeStaticHang::new(n),
                    mutation: m,
                });
            }
        }
        2 => {
            let n = rng.gen_range(2..=3usize);
            for m in mutations(rng, 1 << n) {
                check_parity(&Mutated {
                    inner: EcubeSbp::new(n),
                    mutation: m,
                });
            }
        }
        3 => {
            let (w, h) = (rng.gen_range(2..=3usize), rng.gen_range(2..=3usize));
            for m in mutations(rng, w * h) {
                check_parity(&Mutated {
                    inner: MeshFullyAdaptive::new(w, h),
                    mutation: m,
                });
            }
        }
        4 => {
            let (w, h) = (rng.gen_range(2..=3usize), rng.gen_range(2..=3usize));
            for m in mutations(rng, w * h) {
                check_parity(&Mutated {
                    inner: MeshStaticHang::new(w, h),
                    mutation: m,
                });
            }
        }
        5 => {
            let (w, h) = (rng.gen_range(2..=3usize), rng.gen_range(2..=3usize));
            for m in mutations(rng, w * h) {
                check_parity(&Mutated {
                    inner: MeshXY::new(w, h),
                    mutation: m,
                });
            }
        }
        6 => {
            let (w, h) = (rng.gen_range(3..=4usize), rng.gen_range(3..=4usize));
            for m in mutations(rng, w * h) {
                check_parity(&Mutated {
                    inner: TorusTwoPhase::new(w, h),
                    mutation: m,
                });
            }
        }
        _ => {
            let n = rng.gen_range(2..=3usize);
            for m in mutations(rng, 1 << n) {
                check_parity(&Mutated {
                    inner: ShuffleExchangeRouting::new(n),
                    mutation: m,
                });
            }
        }
    }
}

#[test]
fn randomized_draws_hold_parity() {
    // 2 seeds x 8 families x 3 mutations = 48 draws, all deterministic.
    for seed in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(0xFAD2_0000 + seed);
        for family in 0..8 {
            check_family(&mut rng, family);
        }
    }
}

#[test]
fn rejected_paper_literal_se4_maps_to_capacity_lint() {
    // The known real-world rejection: § 6's literal "two classes per
    // phase" provisioning on composite n. The certifier's static-cycle
    // counterexample and the capacity lint must agree.
    check_parity(&ShuffleExchangeRouting::paper_literal(4));
}

// --- Shrunk minimal repros, pinned as regressions ---------------------

fn errors_of<R: Symmetry>(rf: &R) -> Report {
    lint_scheme(rf, &LintConfig::default())
}

/// Smallest demotion repro: 2-cube fully-adaptive, node 1 demoted.
/// Certifier: "condition 3 violated"; lint: no-static-escape.
#[test]
fn regression_demoted_node_is_condition_3() {
    let rf = Mutated {
        inner: HypercubeFullyAdaptive::new(2),
        mutation: Mutation::DemoteStatic(1),
    };
    check_parity(&rf);
    let report = errors_of(&rf);
    assert!(
        report.has(LintId::NoStaticEscape),
        "{}",
        report.render_text()
    );
}

/// Smallest drop repro: 2x2 mesh XY, node 3 silenced. Certifier: "dead
/// end"; lint: dead-end.
#[test]
fn regression_dropped_node_is_dead_end() {
    let rf = Mutated {
        inner: MeshXY::new(2, 2),
        mutation: Mutation::DropTransitions(3),
    };
    check_parity(&rf);
    let report = errors_of(&rf);
    assert!(report.has(LintId::DeadEnd), "{}", report.render_text());
}

/// The classic store-and-forward deadlock (single-queue e-cube on the
/// 2-cube): its static cycle is confined to the one class, so the lint
/// classifies it as a provisioning bug, consistent with the certifier's
/// cycle counterexample.
#[test]
fn regression_single_queue_ecube_is_capacity_exhausted() {
    let rf = EcubeHypercube::new(2);
    check_parity(&rf);
    let report = errors_of(&rf);
    assert!(
        report.has(LintId::ClassCapacityExhausted),
        "{}",
        report.render_text()
    );
}
