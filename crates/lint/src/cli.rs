//! The `lint` command-line front end.
//!
//! ```text
//! lint --family hypercube --n 8
//! lint --family se --n 4 --algo paper-literal --json out.json
//! lint --family hypercube --n 4 --faults plan.json --expect fault-dead-end
//! lint --family mesh --width 16 --height 16 --algo xy --deny-warnings
//! lint --list
//! ```
//!
//! Families and sizes mirror the `certify` bin. Exit status: 0 when the
//! battery is clean (no errors; warnings tolerated unless
//! `--deny-warnings`), 1 when findings gate, 2 on usage or I/O errors.
//! With `--expect ID...` the polarity flips to corpus mode: exit 0 iff
//! every expected lint fired (the fail-closed negative-corpus check).

use std::path::PathBuf;
use std::process::ExitCode;

use fadr_core::{
    EcubeSbp, HypercubeFullyAdaptive, HypercubeStaticHang, MeshFullyAdaptive, MeshStaticHang,
    MeshXY, ShuffleExchangeRouting, TorusTwoPhase,
};
use fadr_qdg::sym::Symmetry;
use fadr_sim::FaultPlan;

use crate::{lint_all, LintConfig, LintId, Report, ALL_LINTS};

#[derive(Debug)]
struct Opts {
    family: String,
    algo: String,
    n: usize,
    width: usize,
    height: usize,
    faults: Option<PathBuf>,
    json: Option<PathBuf>,
    allow: Vec<LintId>,
    only: Vec<LintId>,
    deny_warnings: bool,
    expect: Vec<LintId>,
}

fn usage() -> &'static str {
    "usage: lint --family <hypercube|mesh|torus|se> [options]\n\
     \n\
     --family hypercube  --n DIMS   --algo fully-adaptive|static-hang|ecube-sbp\n\
     --family mesh       --width W --height H (or --n for square)\n\
     \x20                           --algo fully-adaptive|static-hang|xy\n\
     --family torus      --width W --height H (or --n for square)\n\
     --family se         --n DIMS   --algo adaptive|static|paper-literal\n\
     \n\
     --faults FILE     also lint FILE's fadr-faults/1 plan against the instance\n\
     --json FILE       write the fadr-lint/1 report to FILE\n\
     --allow ID        disable a lint (repeatable)\n\
     --only ID         run only the named lint(s) (repeatable)\n\
     --deny-warnings   gate on warnings too, not just errors\n\
     --expect ID       corpus mode: exit 0 iff every expected lint fired (repeatable)\n\
     --list            print the lint registry and exit"
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Opts, String> {
    let mut o = Opts {
        family: String::new(),
        algo: "fully-adaptive".into(),
        n: 0,
        width: 0,
        height: 0,
        faults: None,
        json: None,
        allow: Vec::new(),
        only: Vec::new(),
        deny_warnings: false,
        expect: Vec::new(),
    };
    let want = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    let lint_id =
        |s: String| LintId::from_id(&s).ok_or(format!("unknown lint id {s} (see lint --list)"));
    while let Some(a) = args.next() {
        match a.as_str() {
            "--family" => o.family = want(&mut args, "--family")?,
            "--algo" => o.algo = want(&mut args, "--algo")?,
            "--n" => o.n = parse_num(&want(&mut args, "--n")?)?,
            "--width" => o.width = parse_num(&want(&mut args, "--width")?)?,
            "--height" => o.height = parse_num(&want(&mut args, "--height")?)?,
            "--faults" => o.faults = Some(PathBuf::from(want(&mut args, "--faults")?)),
            "--json" => o.json = Some(PathBuf::from(want(&mut args, "--json")?)),
            "--allow" => o.allow.push(lint_id(want(&mut args, "--allow")?)?),
            "--only" => o.only.push(lint_id(want(&mut args, "--only")?)?),
            "--deny-warnings" => o.deny_warnings = true,
            "--expect" => o.expect.push(lint_id(want(&mut args, "--expect")?)?),
            "--list" => return Err(registry()),
            "--help" | "-h" => return Err(usage().into()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if o.width == 0 {
        o.width = o.n;
    }
    if o.height == 0 {
        o.height = o.width;
    }
    Ok(o)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

/// The `--list` output: every lint with severity and clause.
fn registry() -> String {
    let mut s = String::from("the fadr-lint battery:\n");
    for &l in ALL_LINTS {
        s.push_str(&format!(
            "  {:<26} {:<8} {}\n",
            l.id(),
            l.severity().as_str(),
            l.clause()
        ));
    }
    s.pop();
    s
}

/// Parse `std::env::args`, lint the requested instance, and return the
/// process exit code.
pub fn main() -> ExitCode {
    let opts = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            // `--help` and `--list` surface through the same path but are
            // not errors.
            let informational = e == usage() || e.starts_with("the fadr-lint battery");
            if informational {
                println!("{e}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let code = match (opts.family.as_str(), opts.algo.as_str()) {
        ("hypercube", "fully-adaptive") => run(&HypercubeFullyAdaptive::new(opts.n), &opts),
        ("hypercube", "static-hang") => run(&HypercubeStaticHang::new(opts.n), &opts),
        ("hypercube", "ecube-sbp") => run(&EcubeSbp::new(opts.n), &opts),
        ("mesh", "fully-adaptive") => run(&MeshFullyAdaptive::new(opts.width, opts.height), &opts),
        ("mesh", "static-hang") => run(&MeshStaticHang::new(opts.width, opts.height), &opts),
        ("mesh", "xy") => run(&MeshXY::new(opts.width, opts.height), &opts),
        ("torus", "fully-adaptive") => run(&TorusTwoPhase::new(opts.width, opts.height), &opts),
        ("se", "adaptive" | "fully-adaptive") => run(&ShuffleExchangeRouting::new(opts.n), &opts),
        ("se", "static") => run(
            &ShuffleExchangeRouting::without_dynamic_links(opts.n),
            &opts,
        ),
        ("se", "paper-literal") => run(&ShuffleExchangeRouting::paper_literal(opts.n), &opts),
        (fam, algo) => {
            eprintln!("unsupported family/algo: {fam}/{algo}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    ExitCode::from(code)
}

fn run<R: Symmetry>(rf: &R, opts: &Opts) -> u8 {
    let plan = match &opts.faults {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    return 2;
                }
            };
            match FaultPlan::parse(&text) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("bad fault plan {}: {e}", path.display());
                    return 2;
                }
            }
        }
    };
    let cfg = if opts.only.is_empty() {
        LintConfig {
            disabled: opts.allow.clone(),
        }
    } else {
        LintConfig::only(&opts.only)
    };
    let started = std::time::Instant::now();
    let report = lint_all(rf, plan.as_ref(), &cfg);
    print!("{}", report.render_text());
    println!("completed in {:.2?}", started.elapsed());
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return 2;
        }
        println!("report: {}", path.display());
    }
    verdict(&report, opts)
}

/// Gate: normally 0 iff no errors (and no warnings under
/// `--deny-warnings`); with `--expect`, 0 iff every expected lint fired.
fn verdict(report: &Report, opts: &Opts) -> u8 {
    if !opts.expect.is_empty() {
        let missing: Vec<&str> = opts
            .expect
            .iter()
            .filter(|&&l| !report.has(l))
            .map(|l| l.id())
            .collect();
        return if missing.is_empty() {
            println!("expected lint(s) fired");
            0
        } else {
            eprintln!("expected lint(s) did not fire: {}", missing.join(", "));
            1
        };
    }
    let gated = report.errors()
        + if opts.deny_warnings {
            report.warnings()
        } else {
            0
        };
    u8::from(gated > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Opts, String> {
        parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parse_family_size_and_lists() {
        let o = opts(&[
            "--family",
            "se",
            "--n",
            "4",
            "--algo",
            "paper-literal",
            "--expect",
            "class-capacity-exhausted",
            "--allow",
            "shadowed-buffer-class",
        ])
        .unwrap();
        assert_eq!(o.family, "se");
        assert_eq!(o.n, 4);
        assert_eq!(o.expect, vec![LintId::ClassCapacityExhausted]);
        assert_eq!(o.allow, vec![LintId::ShadowedBufferClass]);
    }

    #[test]
    fn square_defaults_from_n() {
        let o = opts(&["--family", "mesh", "--n", "7"]).unwrap();
        assert_eq!((o.width, o.height), (7, 7));
    }

    #[test]
    fn unknown_lint_id_is_a_usage_error() {
        assert!(opts(&["--only", "bogus"]).unwrap_err().contains("bogus"));
    }

    #[test]
    fn registry_names_every_lint() {
        let r = registry();
        for &l in ALL_LINTS {
            assert!(r.contains(l.id()), "registry missing {}", l.id());
        }
    }
}
