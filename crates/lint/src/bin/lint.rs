//! Static scheme analyzer: run the paper-condition lint battery over a
//! scheme × topology (and optionally a fault plan). See `lint --help`
//! and `lint --list`.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    fadr_lint::cli::main()
}
