//! `fadr-lint`: a static scheme analyzer running a battery of named,
//! individually toggleable lints over a routing scheme × topology (and
//! optionally a fault plan), *before* any simulation or certification.
//!
//! The paper's deadlock-freedom argument (§ 2) is a set of statically
//! checkable conditions on the buffer-class graph. The certifier
//! (`fadr-verify`) decides accept/reject; the watchdog catches the
//! fallout at runtime. This crate sits in front of both and *localizes*
//! the violated clause instead: every [`Finding`] names its lint, the
//! paper clause it mechanizes, a concrete witness (queues, nodes, the
//! destination and message state that exhibit it), and a suggested fix.
//! Findings serialize as `fadr-lint/1` JSON ([`Report::to_json`]) so CI
//! can gate on them fail-closed.
//!
//! The battery (see [`LintId`]):
//!
//! * **Errors** — conditions whose violation the certifier would also
//!   reject (the parity suite in `tests/parity.rs` pins *lint-clean ⇒
//!   certifier accepts*): dead ends, delivery at the wrong node, missing
//!   static escapes (§ 2 condition 3), static stutter cycles, and static
//!   QDG cycles — split into [`LintId::ClassCapacityExhausted`] (the
//!   cycle is confined to one buffer class, so the class order can never
//!   break it: a *provisioning* bug, e.g.
//!   `ShuffleExchangeRouting::paper_literal` on composite `n`) and
//!   [`LintId::UnrankableClassOrder`] (the cycle spans classes: the
//!   class *order* itself is broken). Minimality violations and
//!   undeclared buffer classes are errors the certifier does not check.
//! * **Warnings** — provisioning smells that cost hardware or trust but
//!   not correctness: declared-but-unused buffer classes, central
//!   classes never occupied, and a declared symmetry quotient that is
//!   unrankable even though the concrete order is fine.
//! * **Fault-plan lints** — static dead-end analysis of a
//!   `fadr-faults/1` plan: destinations with no surviving minimal path,
//!   plus well-formedness of the plan against the instance.
//!
//! The analysis is exact: one BFS per destination seeded with every
//! source's injection state (the same source-elimination the certifier
//! uses), always over *all* destinations with the identity classifier —
//! lints never trust a scheme's symmetry declaration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
mod engine;
mod faultpass;

use std::collections::BTreeMap;
use std::fmt::Write as _;

use fadr_qdg::sym::Symmetry;
use fadr_qdg::{QueueId, RoutingFunction};
use fadr_sim::FaultPlan;
use fadr_topology::NodeId;

/// Diagnostic schema identifier.
pub const SCHEMA: &str = "fadr-lint/1";

/// Witnesses kept per lint before further findings are only counted.
pub const MAX_WITNESSES_PER_LINT: usize = 16;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: costs hardware or trust, not correctness.
    Warning,
    /// The scheme (or plan) violates a correctness condition.
    Error,
}

impl Severity {
    /// Lowercase name used in JSON and text output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// The lint battery. Each lint has a stable kebab-case id (used by CI
/// and the `--allow`/`--only`/`--expect` flags), a fixed severity, and
/// the paper clause it mechanizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// A route option's link hop fails to decrease the distance to the
    /// destination although the scheme claims minimality.
    NonMinimalHop,
    /// A reachable, non-delivered state has no transition at all.
    DeadEnd,
    /// A route delivers at a node other than its destination.
    WrongDelivery,
    /// A reachable state has no *static* continuation, so a message that
    /// arrived over a dynamic link may have no escape (§ 2 condition 3).
    NoStaticEscape,
    /// A static same-queue stutter cycle: states cycle in place without
    /// acquiring a new queue, invisible to the QDG rank argument.
    StutterCycle,
    /// The static QDG has a cycle spanning several buffer classes: no
    /// rank function over the static class order exists.
    UnrankableClassOrder,
    /// The static QDG has a cycle confined to a single buffer class:
    /// however the classes are ordered, this class can never break its
    /// own cycle — a provisioning bug (add a class).
    ClassCapacityExhausted,
    /// A link hop lands in a buffer class the channel does not declare.
    UndeclaredBufferClass,
    /// A channel declares a buffer class no route ever uses.
    ShadowedBufferClass,
    /// A central queue class below `num_classes()` is never occupied.
    UnreachableClass,
    /// The scheme declares more than 256 central queue classes: class
    /// ids are 8-bit throughout the § 6 buffer encoding, so such a
    /// declaration cannot be provisioned (and would previously panic
    /// the analyzer instead of producing a finding).
    ClassCountOverflow,
    /// The scheme's declared symmetry quotient is cyclic although the
    /// concrete static QDG is acyclic: the certifier must fall back.
    NonMonotoneClassOrder,
    /// A fault plan leaves a destination with no surviving minimal path
    /// from some surviving source.
    FaultDeadEnd,
    /// A fault event references a node, link endpoint, or queue class
    /// outside the instance.
    FaultOutOfRange,
    /// A link fault names a node pair that is not a channel (no-op).
    FaultNoopLink,
}

/// Every lint, in reporting order.
pub const ALL_LINTS: &[LintId] = &[
    LintId::NonMinimalHop,
    LintId::DeadEnd,
    LintId::WrongDelivery,
    LintId::NoStaticEscape,
    LintId::StutterCycle,
    LintId::UnrankableClassOrder,
    LintId::ClassCapacityExhausted,
    LintId::UndeclaredBufferClass,
    LintId::ShadowedBufferClass,
    LintId::UnreachableClass,
    LintId::ClassCountOverflow,
    LintId::NonMonotoneClassOrder,
    LintId::FaultDeadEnd,
    LintId::FaultOutOfRange,
    LintId::FaultNoopLink,
];

impl LintId {
    /// Stable kebab-case identifier.
    pub fn id(self) -> &'static str {
        match self {
            LintId::NonMinimalHop => "non-minimal-hop",
            LintId::DeadEnd => "dead-end",
            LintId::WrongDelivery => "wrong-delivery",
            LintId::NoStaticEscape => "no-static-escape",
            LintId::StutterCycle => "stutter-cycle",
            LintId::UnrankableClassOrder => "unrankable-class-order",
            LintId::ClassCapacityExhausted => "class-capacity-exhausted",
            LintId::UndeclaredBufferClass => "undeclared-buffer-class",
            LintId::ShadowedBufferClass => "shadowed-buffer-class",
            LintId::UnreachableClass => "unreachable-class",
            LintId::ClassCountOverflow => "class-count-overflow",
            LintId::NonMonotoneClassOrder => "non-monotone-class-order",
            LintId::FaultDeadEnd => "fault-dead-end",
            LintId::FaultOutOfRange => "fault-out-of-range",
            LintId::FaultNoopLink => "fault-noop-link",
        }
    }

    /// Parse a stable identifier back into a lint.
    pub fn from_id(s: &str) -> Option<Self> {
        ALL_LINTS.iter().copied().find(|l| l.id() == s)
    }

    /// Fixed severity of the lint's findings.
    pub fn severity(self) -> Severity {
        match self {
            LintId::NonMinimalHop
            | LintId::DeadEnd
            | LintId::WrongDelivery
            | LintId::NoStaticEscape
            | LintId::StutterCycle
            | LintId::UnrankableClassOrder
            | LintId::ClassCapacityExhausted
            | LintId::UndeclaredBufferClass
            | LintId::ClassCountOverflow
            | LintId::FaultDeadEnd
            | LintId::FaultOutOfRange => Severity::Error,
            LintId::ShadowedBufferClass
            | LintId::UnreachableClass
            | LintId::NonMonotoneClassOrder
            | LintId::FaultNoopLink => Severity::Warning,
        }
    }

    /// The paper clause (or plan invariant) the lint mechanizes — see
    /// DESIGN.md § 14 for the full mapping.
    pub fn clause(self) -> &'static str {
        match self {
            LintId::NonMinimalHop => "Theorems 1-2 (minimal-path restriction)",
            LintId::DeadEnd => "§ 2 (R̃ total: every reachable state keeps a continuation)",
            LintId::WrongDelivery => "§ 2 (delivery only at the destination)",
            LintId::NoStaticEscape => "§ 2 condition 3 (static escape always available)",
            LintId::StutterCycle => "§ 2 condition 1 (acyclic static QDG; stutter cycles)",
            LintId::UnrankableClassOrder => "§ 2 condition 1 (acyclic static QDG)",
            LintId::ClassCapacityExhausted => {
                "§ 2 condition 1 via § 6 provisioning (a class cannot break its own cycle)"
            }
            LintId::UndeclaredBufferClass => "§ 6 (buffer provisioning: undeclared class in use)",
            LintId::ShadowedBufferClass => "§ 6 (buffer provisioning: declared class never used)",
            LintId::UnreachableClass => "§ 6 (central queue class never occupied)",
            LintId::ClassCountOverflow => "§ 6 (class ids are 8-bit; num_classes must be ≤ 256)",
            LintId::NonMonotoneClassOrder => {
                "§ 2 condition 1 (declared symmetry quotient unrankable)"
            }
            LintId::FaultDeadEnd => "§ 2 on the surviving graph (no surviving minimal path)",
            LintId::FaultOutOfRange | LintId::FaultNoopLink => {
                "fadr-faults/1 well-formedness against the instance"
            }
        }
    }

    /// Generic suggested fix for the lint's findings.
    pub fn suggestion(self) -> &'static str {
        match self {
            LintId::NonMinimalHop => {
                "drop the hop from R̃, or stop claiming minimality (is_minimal)"
            }
            LintId::DeadEnd => "give the state a static continuation or make it deliverable",
            LintId::WrongDelivery => "gate the delivery hop on node == destination",
            LintId::NoStaticEscape => {
                "keep at least one static link in R̃ at this state (condition 3)"
            }
            LintId::StutterCycle => "bound the stutter counter so in-place states cannot cycle",
            LintId::UnrankableClassOrder => {
                "reorder the classes so every static hop ascends (Kahn-rankable)"
            }
            LintId::ClassCapacityExhausted => {
                "provision an additional class to break this cycle (cf. classes_per_phase)"
            }
            LintId::UndeclaredBufferClass => "declare the class in buffer_classes for this channel",
            LintId::ShadowedBufferClass => {
                "remove the declared class from this channel (unused buffers cost hardware)"
            }
            LintId::UnreachableClass => "lower num_classes or route traffic through the class",
            LintId::ClassCountOverflow => "declare at most 256 central queue classes",
            LintId::NonMonotoneClassOrder => {
                "refine queue_class so static class edges ascend (avoids the exact fallback pass)"
            }
            LintId::FaultDeadEnd => {
                "drop the disconnecting events or accept a Partitioned verdict for these flows"
            }
            LintId::FaultOutOfRange => "fix the event's node/class against this instance",
            LintId::FaultNoopLink => "name an existing directed channel (from, to)",
        }
    }
}

/// One diagnostic: a lint, its concrete witness, and a suggested fix.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which lint fired.
    pub lint: LintId,
    /// What went wrong, rendered for humans.
    pub message: String,
    /// The queues implicated (a cycle in order, or the offending queue).
    pub queues: Vec<QueueId>,
    /// The nodes implicated when no queue is (fault-plan findings).
    pub nodes: Vec<NodeId>,
    /// The destination whose routes exhibit the finding, if any.
    pub dst: Option<NodeId>,
    /// Debug rendering of the message state taking the offending hop.
    pub state: Option<String>,
}

impl Finding {
    /// Severity, inherited from the lint.
    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }
}

/// Which lints to run. Default: all of them.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Lints to skip entirely.
    pub disabled: Vec<LintId>,
}

impl LintConfig {
    /// Enable only the given lints.
    pub fn only(lints: &[LintId]) -> Self {
        Self {
            disabled: ALL_LINTS
                .iter()
                .copied()
                .filter(|l| !lints.contains(l))
                .collect(),
        }
    }

    /// Whether `lint` should run.
    pub fn enabled(&self, lint: LintId) -> bool {
        !self.disabled.contains(&lint)
    }
}

/// Collects findings with a per-lint witness cap (further findings are
/// only counted, so a badly broken scheme cannot flood the report).
pub(crate) struct Collector<'c> {
    cfg: &'c LintConfig,
    findings: Vec<Finding>,
    per_lint: BTreeMap<LintId, usize>,
}

impl<'c> Collector<'c> {
    pub(crate) fn new(cfg: &'c LintConfig) -> Self {
        Self {
            cfg,
            findings: Vec::new(),
            per_lint: BTreeMap::new(),
        }
    }

    pub(crate) fn enabled(&self, lint: LintId) -> bool {
        self.cfg.enabled(lint)
    }

    pub(crate) fn emit(&mut self, f: Finding) {
        if !self.cfg.enabled(f.lint) {
            return;
        }
        let n = self.per_lint.entry(f.lint).or_insert(0);
        *n += 1;
        if *n <= MAX_WITNESSES_PER_LINT {
            self.findings.push(f);
        }
    }
}

/// Summary of the fault plan a report was produced against.
#[derive(Debug, Clone, Copy)]
pub struct FaultSummary {
    /// Total scheduled events.
    pub events: usize,
    /// Permanently dead nodes after all events fired.
    pub dead_nodes: usize,
    /// Permanently dead directed links (excluding dead-node incidences).
    pub dead_links: usize,
}

/// The result of a lint run: all findings plus instance metadata,
/// serializable as `fadr-lint/1` JSON.
#[derive(Debug)]
pub struct Report {
    /// Scheme name (`RoutingFunction::name`).
    pub scheme: String,
    /// Topology name.
    pub topology: String,
    /// Node count of the instance.
    pub nodes: usize,
    /// Total `(queue, message)` states explored.
    pub states_explored: usize,
    /// Distinct concrete queues with outgoing transitions.
    pub queues_seen: usize,
    /// Present when the run included fault-plan lints.
    pub fault_plan: Option<FaultSummary>,
    /// The findings, in battery order of first occurrence.
    pub findings: Vec<Finding>,
    /// Findings beyond [`MAX_WITNESSES_PER_LINT`], counted per lint.
    pub suppressed: Vec<(LintId, usize)>,
}

impl Report {
    fn from_collector(
        scheme: String,
        topology: String,
        nodes: usize,
        states_explored: usize,
        queues_seen: usize,
        fault_plan: Option<FaultSummary>,
        col: Collector<'_>,
    ) -> Self {
        let suppressed = col
            .per_lint
            .iter()
            .filter(|&(_, &n)| n > MAX_WITNESSES_PER_LINT)
            .map(|(&l, &n)| (l, n - MAX_WITNESSES_PER_LINT))
            .collect();
        Self {
            scheme,
            topology,
            nodes,
            states_explored,
            queues_seen,
            fault_plan,
            findings: col.findings,
            suppressed,
        }
    }

    /// Number of error findings (suppressed witnesses included).
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning findings (suppressed witnesses included).
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity() == sev).count()
            + self
                .suppressed
                .iter()
                .filter(|(l, _)| l.severity() == sev)
                .map(|&(_, n)| n)
                .sum::<usize>()
    }

    /// Whether a finding of the given lint is present.
    pub fn has(&self, lint: LintId) -> bool {
        self.findings.iter().any(|f| f.lint == lint)
    }

    /// Serialize as a `fadr-lint/1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"scheme\": \"{}\",", esc(&self.scheme));
        let _ = writeln!(s, "  \"topology\": \"{}\",", esc(&self.topology));
        let _ = writeln!(s, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(s, "  \"states_explored\": {},", self.states_explored);
        let _ = writeln!(s, "  \"queues_seen\": {},", self.queues_seen);
        match &self.fault_plan {
            Some(fp) => {
                let _ = writeln!(
                    s,
                    "  \"fault_plan\": {{\"events\": {}, \"dead_nodes\": {}, \"dead_links\": {}}},",
                    fp.events, fp.dead_nodes, fp.dead_links
                );
            }
            None => s.push_str("  \"fault_plan\": null,\n"),
        }
        s.push_str("  \"findings\": [\n");
        for (k, f) in self.findings.iter().enumerate() {
            let comma = if k + 1 == self.findings.len() {
                ""
            } else {
                ","
            };
            let queues: Vec<String> = f.queues.iter().map(|q| format!("\"{q}\"")).collect();
            let nodes: Vec<String> = f.nodes.iter().map(ToString::to_string).collect();
            let dst = f.dst.map_or("null".into(), |d| d.to_string());
            let state = f
                .state
                .as_deref()
                .map_or("null".into(), |m| format!("\"{}\"", esc(m)));
            let _ = writeln!(
                s,
                "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"clause\": \"{}\", \
                 \"message\": \"{}\", \"witness\": {{\"queues\": [{}], \"nodes\": [{}], \
                 \"dst\": {dst}, \"state\": {state}}}, \"suggestion\": \"{}\"}}{comma}",
                f.lint.id(),
                f.severity().as_str(),
                esc(f.lint.clause()),
                esc(&f.message),
                queues.join(", "),
                nodes.join(", "),
                esc(f.lint.suggestion()),
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"suppressed\": [");
        for (k, (l, n)) in self.suppressed.iter().enumerate() {
            let comma = if k + 1 == self.suppressed.len() {
                ""
            } else {
                ", "
            };
            let _ = write!(s, "{{\"lint\": \"{}\", \"count\": {n}}}{comma}", l.id());
        }
        s.push_str("],\n");
        let _ = writeln!(s, "  \"errors\": {},", self.errors());
        let _ = writeln!(s, "  \"warnings\": {}", self.warnings());
        s.push_str("}\n");
        s
    }

    /// Render the findings as compiler-style text.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "lint {} on {} ({} nodes): {} error(s), {} warning(s) \
             [{} states explored, {} queues]",
            self.scheme,
            self.topology,
            self.nodes,
            self.errors(),
            self.warnings(),
            self.states_explored,
            self.queues_seen
        );
        for f in &self.findings {
            let _ = writeln!(
                s,
                "{}[{}]: {}",
                f.severity().as_str(),
                f.lint.id(),
                f.message
            );
            let _ = writeln!(s, "  clause: {}", f.lint.clause());
            if !f.queues.is_empty() {
                let qs: Vec<String> = f.queues.iter().map(ToString::to_string).collect();
                let _ = writeln!(s, "  queues: {}", qs.join(" -> "));
            }
            if let (Some(dst), Some(state)) = (f.dst, f.state.as_deref()) {
                let _ = writeln!(s, "  witness: route to dst {dst} in state {state}");
            } else if let Some(dst) = f.dst {
                let _ = writeln!(s, "  witness: routes to dst {dst}");
            }
            let _ = writeln!(s, "  fix: {}", f.lint.suggestion());
        }
        for (l, n) in &self.suppressed {
            let _ = writeln!(
                s,
                "note: {n} further {} finding(s) suppressed (cap {MAX_WITNESSES_PER_LINT})",
                l.id()
            );
        }
        s
    }
}

/// Escape a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Run the scheme lints over every destination of the concrete instance.
pub fn lint_scheme<R: Symmetry + ?Sized>(rf: &R, cfg: &LintConfig) -> Report {
    let mut col = Collector::new(cfg);
    let stats = engine::run(rf, &mut col);
    Report::from_collector(
        rf.name(),
        rf.topology().name(),
        rf.topology().num_nodes(),
        stats.states_explored,
        stats.queues_seen,
        None,
        col,
    )
}

/// Run only the fault-plan lints of `plan` against the scheme's instance
/// (no route exploration).
pub fn lint_fault_plan<R: RoutingFunction + ?Sized>(
    rf: &R,
    plan: &FaultPlan,
    cfg: &LintConfig,
) -> Report {
    let mut col = Collector::new(cfg);
    let summary = faultpass::run(rf, plan, &mut col);
    Report::from_collector(
        rf.name(),
        rf.topology().name(),
        rf.topology().num_nodes(),
        0,
        0,
        Some(summary),
        col,
    )
}

/// Run the full battery: scheme lints plus, when a plan is given, the
/// fault-plan lints, merged into one report.
pub fn lint_all<R: Symmetry + ?Sized>(
    rf: &R,
    plan: Option<&FaultPlan>,
    cfg: &LintConfig,
) -> Report {
    let mut col = Collector::new(cfg);
    let stats = engine::run(rf, &mut col);
    let summary = plan.map(|p| faultpass::run(rf, p, &mut col));
    Report::from_collector(
        rf.name(),
        rf.topology().name(),
        rf.topology().num_nodes(),
        stats.states_explored,
        stats.queues_seen,
        summary,
        col,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_roundtrip() {
        for &l in ALL_LINTS {
            assert_eq!(LintId::from_id(l.id()), Some(l));
        }
        assert_eq!(LintId::from_id("no-such-lint"), None);
    }

    #[test]
    fn config_only_disables_the_rest() {
        let cfg = LintConfig::only(&[LintId::DeadEnd]);
        assert!(cfg.enabled(LintId::DeadEnd));
        assert!(!cfg.enabled(LintId::NonMinimalHop));
    }

    #[test]
    fn collector_caps_witnesses_per_lint() {
        let cfg = LintConfig::default();
        let mut col = Collector::new(&cfg);
        for i in 0..MAX_WITNESSES_PER_LINT + 5 {
            col.emit(Finding {
                lint: LintId::DeadEnd,
                message: format!("f{i}"),
                queues: Vec::new(),
                nodes: Vec::new(),
                dst: None,
                state: None,
            });
        }
        let rep = Report::from_collector("s".into(), "t".into(), 1, 0, 0, None, col);
        assert_eq!(rep.findings.len(), MAX_WITNESSES_PER_LINT);
        assert_eq!(rep.suppressed, vec![(LintId::DeadEnd, 5)]);
        assert_eq!(rep.errors(), MAX_WITNESSES_PER_LINT + 5);
    }

    #[test]
    fn esc_escapes_json_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
