//! Fault-plan lints: well-formedness of a `fadr-faults/1` plan against
//! the instance, plus static dead-end analysis of the surviving graph.
//!
//! A destination survives a plan's permanent faults iff every surviving
//! source can still reach it over surviving directed channels — and any
//! such path's shortest form *is* a surviving minimal path, so plain
//! reverse reachability is the exact check. One reverse BFS per
//! surviving destination, mirroring the degraded-mode certifier's
//! per-destination distance tables, finds every `(source, destination)`
//! flow the plan silently kills before any simulation is attempted.

use std::collections::HashSet;

use fadr_qdg::RoutingFunction;
use fadr_sim::{FaultKind, FaultPlan};
use fadr_topology::graph::reverse_adjacency;
use fadr_topology::NodeId;

use crate::{Collector, FaultSummary, Finding, LintId};

pub(crate) fn run<R: RoutingFunction + ?Sized>(
    rf: &R,
    plan: &FaultPlan,
    col: &mut Collector<'_>,
) -> FaultSummary {
    let topo = rf.topology();
    let n = topo.num_nodes();
    validate_events(rf, plan, col);

    let dead_nodes = plan.final_dead_nodes(n);
    let dead_links: HashSet<(u32, u32)> = plan.final_dead_links().into_iter().collect();
    let summary = FaultSummary {
        events: plan.events.len(),
        dead_nodes: dead_nodes.iter().filter(|&&d| d).count(),
        dead_links: dead_links.len(),
    };

    if col.enabled(LintId::FaultDeadEnd) {
        // Surviving reverse adjacency: keep a directed channel v -> u iff
        // both endpoints are alive and the link is not itself down.
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (v, targets) in reverse_adjacency(topo).into_iter().enumerate() {
            // `reverse_adjacency[v]` lists the sources u with u -> v.
            for u in targets {
                let alive = !dead_nodes[u]
                    && !dead_nodes[v]
                    && !dead_links.contains(&(as_u32(u), as_u32(v)));
                if alive {
                    rev[v].push(u);
                }
            }
        }
        for dst in 0..n {
            if dead_nodes[dst] {
                continue;
            }
            let mut reached = vec![false; n];
            reached[dst] = true;
            let mut frontier = vec![dst];
            while let Some(v) = frontier.pop() {
                for &u in &rev[v] {
                    if !reached[u] {
                        reached[u] = true;
                        frontier.push(u);
                    }
                }
            }
            let cut: Vec<NodeId> = (0..n)
                .filter(|&s| s != dst && !dead_nodes[s] && !reached[s])
                .collect();
            if cut.is_empty() {
                continue;
            }
            let survivors = n - summary.dead_nodes - 1;
            col.emit(Finding {
                lint: LintId::FaultDeadEnd,
                message: format!(
                    "destination {dst}: no surviving minimal path from {} of {survivors} \
                     surviving source(s) (e.g. source {}) once the plan's permanent \
                     faults have fired",
                    cut.len(),
                    cut[0],
                ),
                queues: Vec::new(),
                nodes: std::iter::once(dst)
                    .chain(cut.into_iter().take(8))
                    .collect(),
                dst: Some(dst),
                state: None,
            });
        }
    }
    summary
}

/// Well-formedness of each event against the instance: node and class
/// ranges, and link events naming actual directed channels.
fn validate_events<R: RoutingFunction + ?Sized>(rf: &R, plan: &FaultPlan, col: &mut Collector<'_>) {
    let topo = rf.topology();
    let n = topo.num_nodes();
    let in_range = |node: u32| (node as usize) < n;
    for (i, e) in plan.events.iter().enumerate() {
        let describe = |what: &str| format!("event #{i} (cycle {}): {what}", e.cycle);
        match e.kind {
            FaultKind::NodeDown { node } => {
                if !in_range(node) {
                    emit_range(col, describe(&format!("node {node} >= {n} nodes")), &[]);
                }
            }
            FaultKind::QueueFreeze { node, class, .. } => {
                if !in_range(node) {
                    emit_range(col, describe(&format!("node {node} >= {n} nodes")), &[]);
                } else if (class as usize) >= rf.num_classes() {
                    emit_range(
                        col,
                        describe(&format!(
                            "queue class {class} >= num_classes = {}",
                            rf.num_classes()
                        )),
                        &[node as usize],
                    );
                }
            }
            FaultKind::LinkDown { from, to } | FaultKind::FlakyLink { from, to, .. } => {
                if !in_range(from) || !in_range(to) {
                    emit_range(
                        col,
                        describe(&format!("link {from} -> {to} exceeds {n} nodes")),
                        &[],
                    );
                } else if !has_channel(topo, from as usize, to as usize)
                    && col.enabled(LintId::FaultNoopLink)
                {
                    col.emit(Finding {
                        lint: LintId::FaultNoopLink,
                        message: describe(&format!(
                            "{from} -> {to} is not a channel of {}: the event is a no-op",
                            topo.name()
                        )),
                        queues: Vec::new(),
                        nodes: vec![from as usize, to as usize],
                        dst: None,
                        state: None,
                    });
                }
            }
        }
    }
}

fn emit_range(col: &mut Collector<'_>, message: String, nodes: &[NodeId]) {
    col.emit(Finding {
        lint: LintId::FaultOutOfRange,
        message,
        queues: Vec::new(),
        nodes: nodes.to_vec(),
        dst: None,
        state: None,
    });
}

fn has_channel(topo: &dyn fadr_topology::Topology, from: NodeId, to: NodeId) -> bool {
    fadr_topology::out_edges(topo, from)
        .iter()
        .any(|&(_, u)| u == to)
}

fn as_u32(n: usize) -> u32 {
    u32::try_from(n).expect("node id fits u32")
}
