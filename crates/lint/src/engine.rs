//! The scheme-lint engine: one exact BFS per destination over the
//! concrete instance (identity classifier, all destinations — lints
//! never trust a scheme's symmetry declaration), accumulating per-state
//! findings and the concrete static QDG for the order lints.
//!
//! The exploration mirrors the certifier's source-eliminated form: a
//! route's transitions depend only on the `(queue, message)` state, so
//! one BFS per destination seeded with *every* source's injection state
//! visits exactly the union of the per-pair state graphs in O(N)
//! explorations instead of O(N²).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use fadr_qdg::graph::Digraph;
use fadr_qdg::sym::Symmetry;
use fadr_qdg::{BufferClass, HopKind, LinkKind, QueueId, QueueKind, Transition};
use fadr_topology::graph::reverse_adjacency;
use fadr_topology::NodeId;

use crate::{Collector, Finding, LintId};

/// Exploration statistics surfaced in the [`crate::Report`].
pub(crate) struct Stats {
    pub states_explored: usize,
    pub queues_seen: usize,
}

/// A concrete witness for a static QDG edge: some route to `dst` in
/// message state `msg` takes the hop (the edge's endpoints are already
/// named by the enclosing cycle finding).
struct EdgeWitness {
    dst: NodeId,
    msg: String,
}

/// Queue interner: dense vertex indices for the static [`Digraph`].
#[derive(Default)]
struct Interner {
    queues: Vec<QueueId>,
    index: HashMap<QueueId, usize>,
}

impl Interner {
    fn intern(&mut self, q: QueueId) -> usize {
        if let Some(&i) = self.index.get(&q) {
            return i;
        }
        let i = self.queues.len();
        self.queues.push(q);
        self.index.insert(q, i);
        i
    }
}

pub(crate) fn run<R: Symmetry + ?Sized>(rf: &R, col: &mut Collector<'_>) -> Stats {
    let topo = rf.topology();
    let n = topo.num_nodes();
    // Reverse adjacency once; per-destination reverse BFS gives exact
    // distance-to-dst tables even on directed topologies (the shuffle
    // part of SE is one-way), without O(states) `Topology::distance`
    // calls whose default implementation BFSes per query.
    let check_minimal = rf.is_minimal() && col.enabled(LintId::NonMinimalHop);
    let rev = if check_minimal {
        Some(reverse_adjacency(topo))
    } else {
        None
    };

    let mut intern = Interner::default();
    let mut static_g = Digraph::default();
    let mut witnesses: HashMap<(usize, usize), EdgeWitness> = HashMap::new();
    let mut stats = Stats {
        states_explored: 0,
        queues_seen: 0,
    };
    // Dedup sets so a violation reported once per queue (or queue pair)
    // does not recur for every destination exhibiting it.
    let mut dead_end_seen: HashSet<QueueId> = HashSet::new();
    let mut wrong_delivery_seen: HashSet<QueueId> = HashSet::new();
    let mut no_escape_seen: HashSet<QueueId> = HashSet::new();
    let mut stutter_seen: HashSet<QueueId> = HashSet::new();
    let mut nonminimal_seen: HashSet<(QueueId, QueueId)> = HashSet::new();
    let mut queues_seen: HashSet<QueueId> = HashSet::new();
    // (node, port) → buffer classes actually exercised by some route.
    let mut used_buffers: HashMap<(NodeId, usize), BTreeSet<BufferClass>> = HashMap::new();
    let mut used_central_classes: BTreeSet<u8> = BTreeSet::new();

    let mut buf: Vec<Transition<R::Msg>> = Vec::new();
    for dst in 0..n {
        let dist_to_dst = rev.as_deref().map(|rev| reverse_bfs(rev, dst));
        // BFS seeded with every source's injection state.
        let mut index: HashMap<(QueueId, R::Msg), u32> = HashMap::new();
        let mut states: Vec<(QueueId, R::Msg)> = Vec::new();
        for src in 0..n {
            if src == dst {
                continue;
            }
            let key = (QueueId::inject(src), rf.initial_msg(src, dst));
            if !index.contains_key(&key) {
                index.insert(key.clone(), as_u32(states.len()));
                states.push(key);
            }
        }
        let mut stutter: Vec<(u32, u32)> = Vec::new();
        let mut i = 0usize;
        while i < states.len() {
            let (q, msg) = states[i].clone();
            let cur = as_u32(i);
            i += 1;
            if q.kind == QueueKind::Deliver {
                if q.node != dst && wrong_delivery_seen.insert(q) {
                    col.emit(Finding {
                        lint: LintId::WrongDelivery,
                        message: format!("delivered at node {} instead of {dst}", q.node),
                        queues: vec![q],
                        nodes: vec![q.node],
                        dst: Some(dst),
                        state: Some(format!("{msg:?}")),
                    });
                }
                continue;
            }
            buf.clear();
            rf.for_each_transition(q, &msg, &mut |t| buf.push(t));
            if buf.is_empty() {
                if dead_end_seen.insert(q) {
                    col.emit(Finding {
                        lint: LintId::DeadEnd,
                        message: format!("no transition at {q}: the message is stuck"),
                        queues: vec![q],
                        nodes: vec![q.node],
                        dst: Some(dst),
                        state: Some(format!("{msg:?}")),
                    });
                }
                continue;
            }
            queues_seen.insert(q);
            if let QueueKind::Central(c) = q.kind {
                used_central_classes.insert(c);
            }
            let a = intern.intern(q);
            let mut has_static = false;
            for t in &buf {
                let key = (t.to, t.msg.clone());
                let j = match index.get(&key) {
                    Some(&j) => j,
                    None => {
                        let j = as_u32(states.len());
                        index.insert(key.clone(), j);
                        states.push(key);
                        j
                    }
                };
                if let HopKind::Link(port) = t.hop {
                    if let Some(used) = buffer_class_of(t) {
                        used_buffers.entry((q.node, port)).or_default().insert(used);
                        check_declared(rf, col, q, port, used, t, dst);
                    }
                    if let Some(dist) = &dist_to_dst {
                        let (du, dv) = (dist[q.node], dist[t.to.node]);
                        if dv.checked_add(1) != Some(du) && nonminimal_seen.insert((q, t.to)) {
                            col.emit(Finding {
                                lint: LintId::NonMinimalHop,
                                message: format!(
                                    "hop {q} -> {} does not approach dst {dst} \
                                     (distance {} -> {}) though the scheme claims minimality",
                                    t.to,
                                    fmt_dist(du),
                                    fmt_dist(dv),
                                ),
                                queues: vec![q, t.to],
                                nodes: vec![q.node, t.to.node],
                                dst: Some(dst),
                                state: Some(format!("{msg:?}")),
                            });
                        }
                    }
                }
                if t.to == q {
                    // A stutter holds its queue slot: no QDG edge, but a
                    // possible state-level cycle the rank argument misses.
                    if t.kind == LinkKind::Static {
                        has_static = true;
                        stutter.push((cur, j));
                    }
                    continue;
                }
                if t.kind == LinkKind::Static {
                    has_static = true;
                    let b = intern.intern(t.to);
                    if !static_g.has_edge(a, b) {
                        static_g.add_edge(a, b);
                        witnesses.insert(
                            (a, b),
                            EdgeWitness {
                                dst,
                                msg: format!("{msg:?}"),
                            },
                        );
                    }
                }
            }
            if !has_static && no_escape_seen.insert(q) {
                col.emit(Finding {
                    lint: LintId::NoStaticEscape,
                    message: format!(
                        "state at {q} has only dynamic continuations: a message that \
                         arrived over a dynamic link may never regain the static DAG"
                    ),
                    queues: vec![q],
                    nodes: vec![q.node],
                    dst: Some(dst),
                    state: Some(format!("{msg:?}")),
                });
            }
        }
        stats.states_explored += states.len();
        if let Some(s) = stutter_cycle(&stutter) {
            let (q, msg) = &states[s as usize];
            if stutter_seen.insert(*q) {
                col.emit(Finding {
                    lint: LintId::StutterCycle,
                    message: format!(
                        "static stutter cycle at {q}: states cycle in place without \
                         acquiring a new queue, invisible to the QDG rank argument"
                    ),
                    queues: vec![*q],
                    nodes: vec![q.node],
                    dst: Some(dst),
                    state: Some(format!("{msg:?}")),
                });
            }
        }
    }
    stats.queues_seen = queues_seen.len();

    order_lints(col, &intern, &static_g, &witnesses, rf);
    provisioning_lints(rf, col, &used_buffers, &used_central_classes);
    stats
}

// Cast audit: state indices are dense positions in the per-destination
// exploration, which is itself bounded far below `u32::MAX` states by
// memory long before this cast could fail.
fn as_u32(n: usize) -> u32 {
    u32::try_from(n).expect("state count fits u32")
}

fn fmt_dist(d: usize) -> String {
    if d == usize::MAX {
        "unreachable".into()
    } else {
        d.to_string()
    }
}

/// Distances *to* `dst` over the reversed adjacency (`usize::MAX` =
/// cannot reach `dst` at all).
fn reverse_bfs(rev: &[Vec<NodeId>], dst: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; rev.len()];
    dist[dst] = 0;
    let mut frontier = vec![dst];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in &rev[v] {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// The § 6 buffer a link hop occupies on its channel: static traffic has
/// one buffer pair per target central class, dynamic traffic one per
/// channel. Hops landing in non-central queues use no § 6 buffer.
fn buffer_class_of<M>(t: &Transition<M>) -> Option<BufferClass> {
    match (t.kind, t.to.kind) {
        (LinkKind::Dynamic, _) => Some(BufferClass::Dynamic),
        (LinkKind::Static, QueueKind::Central(c)) => Some(BufferClass::Static(c)),
        (LinkKind::Static, _) => None,
    }
}

fn check_declared<R: Symmetry + ?Sized>(
    rf: &R,
    col: &mut Collector<'_>,
    q: QueueId,
    port: usize,
    used: BufferClass,
    t: &Transition<R::Msg>,
    dst: NodeId,
) {
    if !col.enabled(LintId::UndeclaredBufferClass) {
        return;
    }
    if rf.buffer_classes(q.node, port).contains(&used) {
        return;
    }
    col.emit(Finding {
        lint: LintId::UndeclaredBufferClass,
        message: format!(
            "hop {q} -> {} uses {used:?} on channel {}--port {port}-->, \
             which the channel does not declare",
            t.to, q.node
        ),
        queues: vec![q, t.to],
        nodes: vec![q.node],
        dst: Some(dst),
        state: Some(format!("{:?}", t.msg)),
    });
}

/// The class-order lints over the accumulated concrete static QDG.
///
/// A cyclic static QDG is split by *where* the cycle lives: a cycle
/// confined to a single central class is a provisioning bug (however the
/// classes are ordered, the class cannot break its own cycle — add one,
/// cf. `classes_per_phase`), while a cycle spanning classes means the
/// class order itself admits no rank function.
fn order_lints<R: Symmetry + ?Sized>(
    col: &mut Collector<'_>,
    intern: &Interner,
    static_g: &Digraph,
    witnesses: &HashMap<(usize, usize), EdgeWitness>,
    rf: &R,
) {
    if static_g.is_acyclic() {
        quotient_lint(col, intern, static_g, rf);
        return;
    }
    let mut classes: BTreeSet<u8> = BTreeSet::new();
    for q in &intern.queues {
        if let QueueKind::Central(c) = q.kind {
            classes.insert(c);
        }
    }
    let mut confined = false;
    for &c in &classes {
        if !col.enabled(LintId::ClassCapacityExhausted) {
            break;
        }
        let within = static_g.restricted(&|v| intern.queues[v].kind == QueueKind::Central(c));
        let Some(cycle) = within.shortest_cycle() else {
            continue;
        };
        confined = true;
        let queues: Vec<QueueId> = cycle.iter().map(|&v| intern.queues[v]).collect();
        let w = witnesses.get(&(cycle[0], cycle[1 % cycle.len()]));
        col.emit(Finding {
            lint: LintId::ClassCapacityExhausted,
            message: format!(
                "static cycle of {} queue(s) confined to central class {c}: no \
                 ordering of the classes can break it — the class is under-provisioned",
                cycle.len()
            ),
            nodes: queues.iter().map(|q| q.node).collect(),
            queues,
            dst: w.map(|w| w.dst),
            state: w.map(|w| w.msg.clone()),
        });
    }
    if !confined && col.enabled(LintId::UnrankableClassOrder) {
        let cycle = static_g
            .shortest_cycle()
            .expect("cyclic graph has a shortest cycle");
        let queues: Vec<QueueId> = cycle.iter().map(|&v| intern.queues[v]).collect();
        let w = witnesses.get(&(cycle[0], cycle[1 % cycle.len()]));
        col.emit(Finding {
            lint: LintId::UnrankableClassOrder,
            message: format!(
                "static QDG cycle of {} queue(s) spanning several buffer classes: \
                 no rank function over the static class order exists",
                cycle.len()
            ),
            nodes: queues.iter().map(|q| q.node).collect(),
            queues,
            dst: w.map(|w| w.dst),
            state: w.map(|w| w.msg.clone()),
        });
    }
}

/// With a concrete static QDG that is acyclic, check the scheme's
/// *declared* quotient: if the declared classifier folds the DAG into a
/// cyclic class graph, the certifier will be forced into its exact
/// concrete fallback — legal, but the declared symmetry buys nothing.
fn quotient_lint<R: Symmetry + ?Sized>(
    col: &mut Collector<'_>,
    intern: &Interner,
    static_g: &Digraph,
    rf: &R,
) {
    if !rf.is_reduced() || !col.enabled(LintId::NonMonotoneClassOrder) {
        return;
    }
    let mut class_index: BTreeMap<fadr_qdg::sym::QueueClass, usize> = BTreeMap::new();
    let mut class_of = Vec::with_capacity(intern.queues.len());
    for &q in &intern.queues {
        let c = rf.queue_class(q);
        let next = class_index.len();
        class_of.push(*class_index.entry(c).or_insert(next));
    }
    let mut quotient = Digraph::new(class_index.len());
    let mut sample: HashMap<(usize, usize), (QueueId, QueueId)> = HashMap::new();
    for (v, q) in intern.queues.iter().enumerate() {
        for &u in static_g.successors(v) {
            let (a, b) = (class_of[v], class_of[u]);
            // Unlike the concrete graph, a class-level self-loop IS a
            // cycle: two distinct queues of one class depend on each other.
            quotient.add_edge(a, b);
            sample.entry((a, b)).or_insert((*q, intern.queues[u]));
        }
    }
    let Some(cycle) = quotient.shortest_cycle() else {
        return;
    };
    let classes: Vec<String> = {
        let rev: BTreeMap<usize, String> = class_index
            .iter()
            .map(|(c, &i)| (i, c.to_string()))
            .collect();
        cycle.iter().map(|v| rev[v].clone()).collect()
    };
    let (from, to) = sample[&(cycle[0], cycle[1 % cycle.len()])];
    col.emit(Finding {
        lint: LintId::NonMonotoneClassOrder,
        message: format!(
            "declared symmetry quotient is cyclic ({}) although the concrete \
             static QDG is acyclic: the certifier must fall back to the exact pass",
            classes.join(" -> ")
        ),
        queues: vec![from, to],
        nodes: vec![from.node, to.node],
        dst: None,
        state: None,
    });
}

/// The § 6 provisioning warnings: declared-but-unused channel buffers
/// and never-occupied central classes.
fn provisioning_lints<R: Symmetry + ?Sized>(
    rf: &R,
    col: &mut Collector<'_>,
    used_buffers: &HashMap<(NodeId, usize), BTreeSet<BufferClass>>,
    used_central_classes: &BTreeSet<u8>,
) {
    let topo = rf.topology();
    if col.enabled(LintId::ShadowedBufferClass) {
        // Aggregate per buffer class: one warning naming the count of
        // channels shadowing it plus a sample, not one per channel.
        let mut shadowed: BTreeMap<BufferClass, (usize, (NodeId, usize))> = BTreeMap::new();
        for node in 0..topo.num_nodes() {
            for (port, _) in fadr_topology::out_edges(topo, node) {
                let used = used_buffers.get(&(node, port));
                for declared in rf.buffer_classes(node, port) {
                    if used.is_some_and(|u| u.contains(&declared)) {
                        continue;
                    }
                    shadowed.entry(declared).or_insert((0, (node, port))).0 += 1;
                }
            }
        }
        for (class, (count, (node, port))) in shadowed {
            col.emit(Finding {
                lint: LintId::ShadowedBufferClass,
                message: format!(
                    "{class:?} is declared but never used on {count} channel(s) \
                     (e.g. {node}--port {port}-->): the buffers cost hardware for nothing"
                ),
                queues: Vec::new(),
                nodes: vec![node],
                dst: None,
                state: None,
            });
        }
    }
    // Class ids are 8-bit throughout the § 6 buffer encoding; a scheme
    // declaring more classes than fit is a structural finding, not a
    // cast panic (the fuzzer's mutation axis constructs exactly this).
    if rf.num_classes() > 256 {
        col.emit(Finding {
            lint: LintId::ClassCountOverflow,
            message: format!(
                "num_classes = {} exceeds the 256-class id space of the \
                 § 6 buffer encoding",
                rf.num_classes()
            ),
            queues: Vec::new(),
            nodes: Vec::new(),
            dst: None,
            state: None,
        });
    }
    if col.enabled(LintId::UnreachableClass) {
        for c in 0..rf.num_classes().min(256) {
            let c = u8::try_from(c).expect("class index bounded to 256 above");
            if !used_central_classes.contains(&c) {
                col.emit(Finding {
                    lint: LintId::UnreachableClass,
                    message: format!(
                        "central queue class {c} (of num_classes = {}) is never \
                         occupied by any route",
                        rf.num_classes()
                    ),
                    queues: Vec::new(),
                    nodes: Vec::new(),
                    dst: None,
                    state: None,
                });
            }
        }
    }
}

/// Cycle detection over one destination's static stutter transitions
/// (iterative three-color DFS; returns a state index on some cycle).
fn stutter_cycle(edges: &[(u32, u32)]) -> Option<u32> {
    let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut roots: Vec<u32> = adj.keys().copied().collect();
    roots.sort_unstable();
    let mut color: HashMap<u32, u8> = HashMap::new(); // 1 = gray, 2 = black
    for &start in &roots {
        if color.contains_key(&start) {
            continue;
        }
        color.insert(start, 1);
        let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
        while let Some(frame) = stack.last_mut() {
            let v = frame.0;
            let next = adj.get(&v).and_then(|s| s.get(frame.1).copied());
            frame.1 += 1;
            match next {
                Some(w) => match color.get(&w).copied() {
                    Some(1) => return Some(w),
                    Some(_) => {}
                    None => {
                        color.insert(w, 1);
                        stack.push((w, 0));
                    }
                },
                None => {
                    color.insert(v, 2);
                    stack.pop();
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_bfs_on_a_directed_path() {
        // 0 -> 1 -> 2: distances TO 2 are [2, 1, 0]; TO 0 only from 0.
        let rev = vec![vec![], vec![0], vec![1]];
        assert_eq!(reverse_bfs(&rev, 2), vec![2, 1, 0]);
        assert_eq!(reverse_bfs(&rev, 0), vec![0, usize::MAX, usize::MAX]);
    }

    #[test]
    fn stutter_cycle_detects_self_loop_and_two_cycle() {
        assert!(stutter_cycle(&[(3, 3)]).is_some());
        assert!(stutter_cycle(&[(0, 1), (1, 0)]).is_some());
        assert_eq!(stutter_cycle(&[(0, 1), (1, 2)]), None);
    }

    #[test]
    fn buffer_class_of_link_hops() {
        use fadr_qdg::Transition;
        let t = |kind, to: QueueId| Transition {
            kind,
            hop: HopKind::Link(0),
            to,
            msg: (),
        };
        assert_eq!(
            buffer_class_of(&t(LinkKind::Static, QueueId::central(1, 2))),
            Some(BufferClass::Static(2))
        );
        assert_eq!(
            buffer_class_of(&t(LinkKind::Dynamic, QueueId::central(1, 0))),
            Some(BufferClass::Dynamic)
        );
        assert_eq!(
            buffer_class_of(&t(LinkKind::Static, QueueId::deliver(1))),
            None
        );
    }
}
