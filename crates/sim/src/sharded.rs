//! Intra-simulation sharding: one simulation, many threads, bit-identical
//! results.
//!
//! [`ShardedSimulator`] partitions the nodes across shards with a
//! topology-aware [`Partition`] (Hamming-prefix subcubes on hypercubes,
//! coordinate bisection on grids, BFS growth elsewhere — see
//! [`PartitionStrategy`]; the partition only changes how much cross-shard
//! traffic the mailboxes carry, never the results) and runs the
//! fill/link/read cycle of § 7.1 shard-locally, one thread per shard.
//! The only state a cycle moves between nodes is a packet crossing a
//! directed channel, so the shards exchange exactly that — **offers**
//! (packets staged on a cross-shard channel) and **acks** (the receiver
//! took the packet) — through per-pair mailboxes, with a barrier on each
//! side of the link pass.
//!
//! # Why the result is bit-identical to [`Simulator`]
//!
//! Every phase of the sequential engine decomposes into per-node or
//! per-channel transitions that touch disjoint state:
//!
//! * **fill** reads and writes only the node's queues and output
//!   buffers — shard-local by the node partition;
//! * **link** moves at most one packet per channel from its output
//!   buffer (sender side) to its input buffer (receiver side); the
//!   receiving shard executes it, seeing intra-shard channels directly
//!   and cross-shard ones through the sender's offers. The round-robin
//!   scan over a channel's class buffers is the same code either way;
//! * **read** reads only the node's input/injection buffers and queues —
//!   shard-local again (input buffers of node `v` are filled by the
//!   link pass of `v`'s own shard).
//!
//! Cross-cycle global state is reduced to three replicated scalars
//! (delivered count, next packet uid, watchdog progress), which every
//! worker recomputes identically from the per-cycle summaries all
//! shards publish — no shard waits on another's decision. Packet uids
//! stay dense and equal to the sequential injection order because each
//! shard pre-plans its next cycle's injections a phase early and
//! publishes the *node ids* it will inject at: the sequential engine
//! injects in ascending node order within a cycle, so every worker
//! merge-ranks its own (ascending) list against its siblings' to
//! recover each packet's global rank ([`rank_uids`]) — correct under
//! any node partition, where the old contiguous-range prefix-sum would
//! misnumber interleaved shards. Dynamic-injection draws come from
//! per-node RNG streams ([`crate::SimConfig::seed`] ⊕ node id), so
//! partitioning the node loop across threads cannot reorder anyone's
//! stream. Statistics merge exactly (integer accumulators), and
//! recorders merge in fixed shard order via
//! [`ShardRecorder`](fadr_metrics::ShardRecorder).
//!
//! # Watchdog
//!
//! A per-shard [`WatchdogSink`](fadr_metrics::WatchdogSink) would see
//! only its shard's deliveries and misfire, so sharded runs use
//! [`ShardedSimulator::with_watchdog`]: the same `k`-cycle no-progress
//! rule evaluated on the replicated global counters, with the
//! [`StallReport`] synthesized from all shards after the run.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::Rng;

use fadr_metrics::{
    Control, LatencyStats, NoRecorder, PartitionStats, ShardRecorder, StallReport, TimeSeries,
};
use fadr_qdg::{RoutingFunction, SnapshotMsg};
use fadr_topology::NodeId;

use crate::engine::{draw, node_rng, OfferItem, Simulator};
use crate::fault::FaultPlan;
use crate::layout::Layout;
use crate::partition::{OwnedNodes, Partition, PartitionStrategy};
use crate::snapshot::{self, Loc, ParsedSnapshot};
use crate::{
    DynamicOutcome, DynamicResult, OccupancyProbe, RunProgress, SimConfig, StaticOutcome,
    StaticResult, StopReason,
};

/// Locks a mutex, ignoring poisoning: mailbox state is phase-owned (a
/// panicking sibling is surfaced through the barrier instead).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Held guards on the remote mailbox slots for one phase (`None` at the
/// worker's own index).
type HeldBoxes<'a, T> = Vec<Option<MutexGuard<'a, Vec<T>>>>;

/// Node partition and channel ownership, precomputed from a
/// [`Partition`] over the layout.
struct ShardPlan {
    /// Owned node ids per shard, ascending (the ascending order is what
    /// lets [`rank_uids`] merge injection lists with one cursor each).
    nodes: Vec<Vec<u32>>,
    /// The same sets as membership structures for the engine's
    /// node-subset entry points (`apply_faults`, `sample_occupancy`).
    owned: Vec<OwnedNodes>,
    /// Node → owning shard.
    node_shard: Vec<u32>,
    /// Per shard: the channels it executes in the link pass — every
    /// channel whose *target* node it owns — as `(chan, source_shard)`
    /// in ascending channel order.
    exec: Vec<Vec<(u32, u32)>>,
    /// Per shard: its outgoing cross-shard channels (source owned here,
    /// target elsewhere), ascending.
    cross_out: Vec<Vec<u32>>,
}

impl ShardPlan {
    fn new(layout: &Layout, part: Partition) -> Self {
        let Partition {
            shard_nodes: nodes,
            node_shard,
            ..
        } = part;
        let shards = nodes.len();
        let owned = nodes
            .iter()
            .map(|ids| OwnedNodes::from_sorted(ids, layout.num_nodes))
            .collect();
        let mut exec = vec![Vec::new(); shards];
        let mut cross_out = vec![Vec::new(); shards];
        for chan in 0..layout.num_channels() {
            let sf = node_shard[layout.chan_from[chan] as usize];
            let st = node_shard[layout.chan_to[chan] as usize];
            exec[st as usize].push((chan as u32, sf));
            if sf != st {
                cross_out[sf as usize].push(chan as u32);
            }
        }
        Self {
            nodes,
            owned,
            node_shard,
            exec,
            cross_out,
        }
    }
}

/// What each shard publishes at the end of its link/read phase; every
/// worker folds all summaries into the same replicated global state.
#[derive(Clone, Copy, Default)]
struct CycleSummary {
    /// Packets this shard delivered this cycle.
    delivered: u64,
    /// Link traversals this shard executed this cycle.
    links: u64,
    /// Packets node-down faults destroyed on this shard this cycle.
    dropped: u64,
    /// Backlog entries this shard's planner wrote off this cycle
    /// because their source node died (published with the cycle the
    /// injections would have happened in, matching when the sequential
    /// engine's loop condition first sees them).
    lost: u64,
    /// This shard found some destination unreachable (cumulative).
    partitioned: bool,
    /// This shard's recorder voted to stop.
    stop: bool,
}

/// Stall evidence captured by the replicated watchdog (identical on
/// every worker); the full [`StallReport`] is synthesized after join.
#[derive(Clone, Copy)]
struct StallInfo {
    cycle: u64,
    window: u64,
    links_in_window: u64,
    in_flight: u64,
}

struct WorkerOut {
    attempts: u64,
    injected: u64,
    /// Replicated global count of backlog entries lost to dead source
    /// nodes (identical on every worker).
    lost: u64,
    aborted: bool,
    stall: Option<StallInfo>,
    /// The worker stopped at the requested pause cycle (all workers
    /// agree: the pause condition is evaluated on replicated state).
    paused: bool,
    /// This shard's `(node, next_idx)` backlog cursors at the pause
    /// (empty for dynamic runs).
    progress: Vec<(u32, usize)>,
    /// Backlog entries this shard wrote off in the pause cycle itself —
    /// published but never folded into `lost` (the loop exited first).
    lost_pending: u64,
}

/// Replicated global counters a resumed run starts from (identical on
/// every worker; derived from the restored shard state by the driver).
#[derive(Clone, Copy)]
struct ResumeBase {
    delivered: u64,
    dropped: u64,
    lost: u64,
}

/// A shard's injection planner: decides, one cycle ahead, which owned
/// nodes inject what. A trait rather than a closure so a pausing worker
/// can extract the cursor state a checkpoint must carry.
trait Planner<R: RoutingFunction, Rec: ShardRecorder> {
    /// Plan next cycle's injections into `pending` (ascending node id);
    /// returns `(attempts, lost)` for the cycle.
    fn plan(&mut self, sim: &Simulator<R, Rec>, pending: &mut Vec<(u32, u32)>) -> (u64, u64);

    /// This shard's `(node, next_idx)` backlog cursors (empty for
    /// planners without cursor state, i.e. dynamic injection).
    fn pause_progress(&self) -> Vec<(u32, usize)>;
}

/// Static-injection planner: per-node backlog cursors, the sharded
/// mirror of the sequential engine's `static_loop` injection pass.
struct StaticPlanner<'a> {
    backlog: &'a [Vec<NodeId>],
    nodes: Vec<u32>,
    next_idx: Vec<usize>,
}

impl<R: RoutingFunction, Rec: ShardRecorder> Planner<R, Rec> for StaticPlanner<'_> {
    fn plan(&mut self, sim: &Simulator<R, Rec>, pending: &mut Vec<(u32, u32)>) -> (u64, u64) {
        let mut lost = 0u64;
        for (i, &v32) in self.nodes.iter().enumerate() {
            let v = v32 as usize;
            if self.next_idx[i] >= self.backlog[v].len() {
                continue;
            }
            if !sim.node_alive(v) {
                // Same write-off as the sequential loop: a dead node's
                // remaining backlog is never offered.
                lost += (self.backlog[v].len() - self.next_idx[i]) as u64;
                self.next_idx[i] = self.backlog[v].len();
            } else if sim.inj_free(v) {
                pending.push((v32, self.backlog[v][self.next_idx[i]] as u32));
                self.next_idx[i] += 1;
            }
        }
        (0, lost)
    }

    fn pause_progress(&self) -> Vec<(u32, usize)> {
        self.nodes
            .iter()
            .copied()
            .zip(self.next_idx.iter().copied())
            .collect()
    }
}

/// Dynamic-injection planner: Bernoulli(λ) per owned node with the same
/// per-node RNG streams as the sequential engine.
struct DynPlanner<'a, F> {
    lambda: f64,
    dest: &'a F,
    nodes: Vec<u32>,
    rngs: Vec<StdRng>,
}

impl<F, R, Rec> Planner<R, Rec> for DynPlanner<'_, F>
where
    F: Fn(NodeId, &mut StdRng) -> NodeId,
    R: RoutingFunction,
    Rec: ShardRecorder,
{
    fn plan(&mut self, sim: &Simulator<R, Rec>, pending: &mut Vec<(u32, u32)>) -> (u64, u64) {
        let mut att = 0u64;
        for (i, &v32) in self.nodes.iter().enumerate() {
            let v = v32 as usize;
            let rng = &mut self.rngs[i];
            if self.lambda < 1.0 && !rng.gen_bool(self.lambda) {
                continue;
            }
            att += 1;
            // Drawn unconditionally, like the sequential engine: a dead
            // node keeps drawing and discarding so the per-node stream
            // is fault-independent.
            let dst = (self.dest)(v, rng);
            if sim.inj_free(v) && sim.node_alive(v) {
                pending.push((v32, dst as u32));
            }
        }
        (att, 0)
    }

    fn pause_progress(&self) -> Vec<(u32, usize)> {
        Vec::new()
    }
}

/// Panic message of a worker woken by a poisoned barrier (as opposed to
/// the worker that panicked first): [`run_shards`] filters these out
/// when deciding which shard to blame in [`ShardPanicked`].
const SIBLING_PANIC: &str = "sibling shard worker panicked";

/// A shard worker thread panicked during a run.
///
/// The error names the shard whose worker unwound *first* (siblings
/// woken by the poisoned phase barrier are filtered out) and carries
/// the stringified panic payload. After this error the simulator's
/// shard state is mid-cycle and unspecified — drop it or build a fresh
/// one; the error exists so a long-lived harness (the fuzzer,
/// `fadr-serve`) can report the failure instead of aborting with the
/// worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanicked {
    /// Shard whose worker panicked first.
    pub shard: usize,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim,
    /// anything else a placeholder).
    pub payload: String,
}

impl std::fmt::Display for ShardPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} worker panicked: {}", self.shard, self.payload)
    }
}

impl std::error::Error for ShardPanicked {}

/// Stringify a worker's panic payload.
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A barrier that propagates panics: a worker that unwinds poisons it
/// (via [`PoisonGuard`]), waking every sibling into a panic instead of
/// leaving them blocked forever.
struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Default)]
struct BarrierState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        Self {
            n,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut s = lock(&self.state);
        assert!(!s.poisoned, "{SIBLING_PANIC}");
        let generation = s.generation;
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
            return;
        }
        while s.generation == generation && !s.poisoned {
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        assert!(!s.poisoned, "{SIBLING_PANIC}");
    }

    fn poison(&self) {
        lock(&self.state).poisoned = true;
        self.cv.notify_all();
    }
}

struct PoisonGuard<'a>(&'a PoisonBarrier);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Per-pair mailboxes (`[from][to]`) plus the phase barrier. Each slot
/// has exactly one writer phase and one reader phase per cycle, strictly
/// ordered by the barrier, so every lock below is uncontended; readers
/// `clear()` instead of taking the buffer, preserving its capacity
/// across cycles.
struct Mailboxes<M> {
    offers: Vec<Vec<Mutex<Vec<OfferItem<M>>>>>,
    acks: Vec<Vec<Mutex<Vec<u32>>>>,
    summaries: Vec<Mutex<CycleSummary>>,
    /// Per shard: the ascending node ids it will inject at next cycle
    /// (written by the owner each planning phase, read by everyone in
    /// [`rank_uids`]; the owner overwrites, readers never clear).
    inj_nodes: Vec<Mutex<Vec<u32>>>,
    barrier: PoisonBarrier,
}

impl<M> Mailboxes<M> {
    fn new(shards: usize) -> Self {
        Self {
            offers: (0..shards)
                .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            acks: (0..shards)
                .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            summaries: (0..shards).map(|_| Mutex::default()).collect(),
            inj_nodes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            barrier: PoisonBarrier::new(shards),
        }
    }
}

/// How a run decides it is finished (the sequential engine's loop
/// condition, evaluated on replicated global state).
#[derive(Clone, Copy)]
enum Horizon {
    /// Static run: until all `total` packets are delivered (or the
    /// `max_cycles` cap).
    Drain { total: u64 },
    /// Dynamic run: a fixed number of cycles.
    Cycles(u64),
}

/// Assigns global uids to this shard's planned injections by ranking
/// them in the all-shards ascending-node-id order the sequential engine
/// injects in. Every shard's published [`Mailboxes::inj_nodes`] list is
/// ascending and the lists are disjoint, so one monotone cursor per
/// sibling recovers, for each own entry, how many remote injections
/// precede it. Returns the next uid after this cycle's injections
/// (`base` + the total injection count across all shards) — every
/// worker computes the same value.
fn rank_uids(
    sid: usize,
    boxes: &[Mutex<Vec<u32>>],
    pending: &[(u32, u32)],
    base: u64,
    uids: &mut Vec<u64>,
    cursors: &mut [usize],
) -> u64 {
    uids.clear();
    cursors.fill(0);
    let guards: Vec<Option<MutexGuard<'_, Vec<u32>>>> = boxes
        .iter()
        .enumerate()
        .map(|(f, m)| (f != sid).then(|| lock(m)))
        .collect();
    for (i, &(v, _)) in pending.iter().enumerate() {
        let mut before = i;
        for (f, g) in guards.iter().enumerate() {
            let Some(g) = g else { continue };
            while cursors[f] < g.len() && g[cursors[f]] < v {
                cursors[f] += 1;
            }
            before += cursors[f];
        }
        uids.push(base + before as u64);
    }
    let remote: u64 = guards.iter().flatten().map(|g| g.len() as u64).sum();
    base + pending.len() as u64 + remote
}

/// The per-shard worker: runs the full simulation loop on its node
/// set, synchronizing with siblings twice per cycle. Control flow
/// mirrors `Simulator::run_static`/`run_dynamic` exactly — same loop
/// conditions, evaluated on identically-replicated state.
///
/// With `pause_at = Some(p)` every worker stops in lockstep at cycle
/// `p`, post-injection and pre-fault-application — the checkpointable
/// pause point — before that iteration's first barrier, so no sibling
/// is left waiting. A `resume` base restarts from restored shard state:
/// the pre-loop planning pass is skipped (the pause cycle's injections
/// are already in the snapshot) and the replicated counters start from
/// the restored globals.
#[allow(clippy::too_many_arguments)]
fn run_worker<R: RoutingFunction, Rec: ShardRecorder, P: Planner<R, Rec>>(
    sim: &mut Simulator<R, Rec>,
    sid: usize,
    plan: &ShardPlan,
    layout: &Layout,
    mb: &Mailboxes<R::Msg>,
    horizon: Horizon,
    watchdog: Option<u64>,
    max_cycles: u64,
    track_occupancy: bool,
    mut planner: P,
    pause_at: Option<u64>,
    resume: Option<ResumeBase>,
) -> WorkerOut {
    let _guard = PoisonGuard(&mb.barrier);
    let shards = plan.nodes.len();
    let nodes = &plan.nodes[sid];
    let owned = &plan.owned[sid];
    let mut pending: Vec<(u32, u32)> = Vec::new();
    let mut uids: Vec<u64> = Vec::new();
    let mut cursors = vec![0usize; shards];

    // Replicated global state (every worker computes the same values).
    let mut resumed = resume.is_some();
    let mut att_next = 0u64;
    let mut lost_next = 0u64;
    let (mut next_uid_global, mut delivered_global, mut dropped_global, mut lost_global) =
        if let Some(rb) = resume {
            // The restored engines all carry the global uid frontier;
            // the first loop iteration re-executes the pause cycle's
            // routing step, so nothing is planned or ranked here.
            (sim.next_uid(), rb.delivered, rb.dropped, rb.lost)
        } else {
            // Plan cycle 0's injections, publish their node ids, and
            // rank them into the global injection order before starting.
            let next = planner.plan(sim, &mut pending);
            att_next = next.0;
            lost_next = next.1;
            {
                let mut b = lock(&mb.inj_nodes[sid]);
                b.clear();
                b.extend(pending.iter().map(|&(v, _)| v));
            }
            mb.barrier.wait();
            let frontier = rank_uids(sid, &mb.inj_nodes, &pending, 0, &mut uids, &mut cursors);
            (frontier, 0, 0, 0)
        };
    let mut last_delivery: u64 = sim.cycle();
    let mut links_since_delivery: u64 = 0;

    let mut attempts = 0u64;
    let mut injected = 0u64;
    let mut prev_delivered = sim.delivered_count();
    let mut prev_dropped = sim.dropped_count();
    let mut aborted = false;
    let mut stall: Option<StallInfo> = None;

    loop {
        match horizon {
            Horizon::Drain { total } => {
                if delivered_global + dropped_global + lost_global >= total
                    || sim.cycle() >= max_cycles
                {
                    break;
                }
            }
            Horizon::Cycles(n) => {
                if sim.cycle() >= n {
                    break;
                }
            }
        }

        // --- Phase 1: acks, inject, fill, publish offers -------------
        for f in 0..shards {
            if f == sid {
                continue;
            }
            let mut inbox = lock(&mb.acks[f][sid]);
            sim.apply_acks(&inbox);
            inbox.clear();
        }
        attempts += att_next;
        injected += pending.len() as u64;
        let lost_cycle = lost_next;
        for (j, &(v, dst)) in pending.iter().enumerate() {
            sim.set_next_uid(uids[j]);
            sim.inject(v as usize, dst as usize);
        }
        pending.clear();
        if resumed {
            // First iteration after a resume re-executes the pause
            // cycle's routing step; its injections were restored, and
            // pausing again at the same cycle would checkpoint nothing.
            resumed = false;
        } else if pause_at == Some(sim.cycle()) {
            // Align every shard's uid frontier with the replicated
            // global one so any shard's engine serializes the run's
            // `next_uid` (and resume can read it back from any shard).
            sim.set_next_uid(next_uid_global);
            return WorkerOut {
                attempts,
                injected,
                lost: lost_global,
                aborted: false,
                stall: None,
                paused: true,
                progress: planner.pause_progress(),
                lost_pending: lost_cycle,
            };
        }
        // Faults fire after this cycle's injections and before its fill
        // pass, exactly where the sequential `step` applies them. The
        // ack drain above must precede this: a packet that crossed last
        // cycle but whose ack is still in the mailbox would otherwise be
        // reabsorbed a second time from the sender's output buffer.
        sim.apply_faults(owned);
        for &v in nodes {
            sim.fill_node(v as usize);
        }
        {
            let mut outboxes: HeldBoxes<'_, OfferItem<R::Msg>> = (0..shards)
                .map(|t| (t != sid).then(|| lock(&mb.offers[sid][t])))
                .collect();
            for &chan in &plan.cross_out[sid] {
                let t = plan.node_shard[layout.chan_to[chan as usize] as usize] as usize;
                sim.collect_offers(
                    chan as usize,
                    outboxes[t].as_mut().expect("cross target is remote"),
                );
            }
        }
        mb.barrier.wait();

        // --- Phase 2: link (intra + cross), read, publish summary ----
        let mut links_cycle = 0u64;
        {
            let mut inboxes: HeldBoxes<'_, OfferItem<R::Msg>> = (0..shards)
                .map(|f| (f != sid).then(|| lock(&mb.offers[f][sid])))
                .collect();
            let mut ack_out: HeldBoxes<'_, u32> = (0..shards)
                .map(|f| (f != sid).then(|| lock(&mb.acks[sid][f])))
                .collect();
            let mut cursor = vec![0usize; shards];
            for &(chan, sf) in &plan.exec[sid] {
                if sf as usize == sid {
                    if sim.link_chan(chan as usize) {
                        links_cycle += 1;
                    }
                    continue;
                }
                let f = sf as usize;
                let items = inboxes[f].as_mut().expect("cross source is remote");
                // Offers arrive in ascending channel order, as does the
                // exec list: a single cursor pairs them up.
                let start = cursor[f];
                if start >= items.len() || items[start].chan != chan {
                    continue;
                }
                let mut end = start + 1;
                while end < items.len() && items[end].chan == chan {
                    end += 1;
                }
                cursor[f] = end;
                if let Some(buf) = sim.take_cross(chan as usize, &mut items[start..end]) {
                    links_cycle += 1;
                    ack_out[f].as_mut().expect("ack target is remote").push(buf);
                }
            }
            for inbox in inboxes.iter_mut().flatten() {
                inbox.clear();
            }
        }
        for &v in nodes {
            sim.read_node(v as usize);
        }
        if track_occupancy {
            sim.sample_occupancy(owned);
        }
        let delivered_cycle = sim.delivered_count() - prev_delivered;
        prev_delivered = sim.delivered_count();
        let dropped_cycle = sim.dropped_count() - prev_dropped;
        prev_dropped = sim.dropped_count();
        let ctl = sim.end_cycle();
        let next = planner.plan(sim, &mut pending);
        att_next = next.0;
        lost_next = next.1;
        {
            let mut b = lock(&mb.inj_nodes[sid]);
            b.clear();
            b.extend(pending.iter().map(|&(v, _)| v));
        }
        *lock(&mb.summaries[sid]) = CycleSummary {
            delivered: delivered_cycle,
            links: links_cycle,
            dropped: dropped_cycle,
            lost: lost_cycle,
            partitioned: sim.has_partition(),
            stop: ctl == Control::Stop,
        };
        mb.barrier.wait();

        // --- Phase 3: fold summaries into replicated global state ----
        let sums: Vec<CycleSummary> = mb.summaries.iter().map(|m| *lock(m)).collect();
        let d: u64 = sums.iter().map(|s| s.delivered).sum();
        delivered_global += d;
        dropped_global += sums.iter().map(|s| s.dropped).sum::<u64>();
        lost_global += sums.iter().map(|s| s.lost).sum::<u64>();
        let cycle = sim.cycle();
        if d > 0 {
            last_delivery = cycle;
            links_since_delivery = 0;
        } else {
            links_since_delivery += sums.iter().map(|s| s.links).sum::<u64>();
        }
        if let Some(k) = watchdog {
            // Same rule as `WatchdogSink::on_cycle_end`: all link
            // traversals of a cycle precede its deliveries, so the
            // per-cycle folding above is exact. Dropped packets are no
            // longer in flight.
            let in_flight = next_uid_global - delivered_global - dropped_global;
            if stall.is_none() && in_flight > 0 && cycle - last_delivery >= k {
                stall = Some(StallInfo {
                    cycle,
                    window: cycle - last_delivery,
                    links_in_window: links_since_delivery,
                    in_flight,
                });
                aborted = true;
            }
        }
        if sums.iter().any(|s| s.partitioned) {
            // A partitioned destination can never drain: abort at the
            // end of the cycle that detected it (the sequential engine
            // forces `Control::Stop` the same way), synthesizing stall
            // evidence if the watchdog hasn't already.
            aborted = true;
            if stall.is_none() {
                stall = Some(StallInfo {
                    cycle,
                    window: cycle - last_delivery,
                    links_in_window: links_since_delivery,
                    in_flight: next_uid_global - delivered_global - dropped_global,
                });
            }
        }
        if sums.iter().any(|s| s.stop) {
            aborted = true;
        }
        // Rank next cycle's injections after the watchdog logic above:
        // the watchdog's in-flight count must see the uid frontier as of
        // the injections already performed, not the planned ones.
        next_uid_global = rank_uids(
            sid,
            &mb.inj_nodes,
            &pending,
            next_uid_global,
            &mut uids,
            &mut cursors,
        );
        sim.advance_cycle();
        if aborted {
            break;
        }
    }

    // Final cycle's acks were published before the last barrier but
    // never drained (the loop exited first); apply them so sender-side
    // slabs and trace state match the sequential engine's.
    for f in 0..shards {
        if f == sid {
            continue;
        }
        let mut inbox = lock(&mb.acks[f][sid]);
        sim.apply_acks(&inbox);
        inbox.clear();
    }

    WorkerOut {
        attempts,
        injected,
        lost: lost_global,
        aborted,
        stall,
        paused: false,
        progress: Vec::new(),
        lost_pending: 0,
    }
}

/// A sharded drop-in for [`Simulator`]: same experiments, same results,
/// one thread per shard. See the module docs for the equivalence
/// argument; the shard-equivalence test suite asserts bit-identity of
/// statistics, traces, occupancy, and throughput against the sequential
/// engine for every routing family in the table set.
///
/// ```
/// use fadr_core::HypercubeFullyAdaptive;
/// use fadr_sim::{ShardedSimulator, SimConfig, Simulator};
///
/// let cfg = SimConfig::default();
/// let backlog: Vec<Vec<usize>> = (0..16).map(|v| vec![v ^ 0xF]).collect();
/// let seq = Simulator::new(HypercubeFullyAdaptive::new(4), cfg).run_static(&backlog);
/// let shr = ShardedSimulator::new(HypercubeFullyAdaptive::new(4), cfg, 3).run_static(&backlog);
/// assert_eq!(seq.stats, shr.stats);
/// assert_eq!(seq.cycles, shr.cycles);
/// ```
pub struct ShardedSimulator<R: RoutingFunction, Rec: ShardRecorder = NoRecorder> {
    cfg: SimConfig,
    layout: Arc<Layout>,
    plan: ShardPlan,
    stats: PartitionStats,
    shards: Vec<Simulator<R, Rec>>,
    watchdog: Option<u64>,
    stall: Option<StallReport>,
}

impl<R: RoutingFunction + Clone> ShardedSimulator<R> {
    /// Build a sharded simulator with `shards` worker shards (clamped to
    /// `1..=num_nodes`), no recorder, and the topology's preferred
    /// partition ([`PartitionStrategy::Auto`]).
    pub fn new(rf: R, cfg: SimConfig, shards: usize) -> Self {
        Self::with_recorders(rf, cfg, shards, |_| NoRecorder)
    }

    /// [`ShardedSimulator::new`] with an explicit [`PartitionStrategy`].
    pub fn with_strategy(
        rf: R,
        cfg: SimConfig,
        shards: usize,
        strategy: PartitionStrategy,
    ) -> Self {
        Self::with_recorders_strategy(rf, cfg, shards, strategy, |_| NoRecorder)
    }
}

impl<R: RoutingFunction + Clone, Rec: ShardRecorder> ShardedSimulator<R, Rec> {
    /// Build a sharded simulator with one recorder per shard (`mk` is
    /// called with each shard index) and the topology's preferred
    /// partition. Recorders must be shardable —
    /// see [`ShardRecorder::shardable`]; notably a
    /// [`fadr_metrics::SinkSet`] carrying a watchdog is not (use
    /// [`ShardedSimulator::with_watchdog`] instead).
    ///
    /// # Panics
    ///
    /// Panics if `mk` yields a non-shardable recorder.
    pub fn with_recorders(
        rf: R,
        cfg: SimConfig,
        shards: usize,
        mk: impl FnMut(usize) -> Rec,
    ) -> Self {
        Self::with_recorders_strategy(rf, cfg, shards, PartitionStrategy::Auto, mk)
    }

    /// [`ShardedSimulator::with_recorders`] with an explicit
    /// [`PartitionStrategy`]. The partition only changes how much
    /// cross-shard traffic the workers exchange (reported by
    /// [`ShardedSimulator::partition_stats`]); results are bit-identical
    /// under every strategy.
    ///
    /// # Panics
    ///
    /// Panics if `mk` yields a non-shardable recorder.
    pub fn with_recorders_strategy(
        rf: R,
        cfg: SimConfig,
        shards: usize,
        strategy: PartitionStrategy,
        mut mk: impl FnMut(usize) -> Rec,
    ) -> Self {
        let layout = Arc::new(Layout::new(&rf));
        let shards = shards.clamp(1, layout.num_nodes.max(1));
        let part = Partition::new(strategy, rf.topology(), &layout, shards)
            .expect("shard count was clamped to at least 1");
        let stats = part.stats.clone();
        let plan = ShardPlan::new(&layout, part);
        let shards: Vec<Simulator<R, Rec>> = (0..shards)
            .map(|s| {
                let rec = mk(s);
                assert!(
                    rec.shardable(),
                    "recorder for shard {s} is not shardable (per-shard watchdogs \
                     would misfire; use ShardedSimulator::with_watchdog)"
                );
                Simulator::with_shared_layout(rf.clone(), cfg, rec, Arc::clone(&layout))
            })
            .collect();
        Self {
            cfg,
            layout,
            plan,
            stats,
            shards,
            watchdog: None,
            stall: None,
        }
    }

    /// How the nodes were split across shards: strategy, shard count,
    /// and the measured cut (cross-shard channel fraction). Lower cut
    /// means less mailbox traffic per cycle; it never affects results.
    pub fn partition_stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// Abort runs after `k` consecutive cycles without a delivery while
    /// packets are in flight — the engine-level equivalent of attaching
    /// a [`fadr_metrics::WatchdogSink`], evaluated on global (all-shard)
    /// progress. The resulting [`StallReport`] is available from
    /// [`ShardedSimulator::stall_report`] after the run.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0.
    #[must_use]
    pub fn with_watchdog(mut self, k: u64) -> Self {
        assert!(k >= 1, "watchdog window must be at least 1 cycle");
        self.watchdog = Some(k);
        self
    }

    /// Attach a fault plan (see [`crate::fault`]): every shard shares
    /// the same normalized schedule, applies its flag state identically,
    /// and performs packet surgery only on the nodes it owns — the
    /// differential suite asserts runs stay bit-identical to a faulted
    /// sequential [`Simulator`].
    #[must_use]
    pub fn with_faults(mut self, mut plan: FaultPlan) -> Self {
        plan.normalize();
        let plan = Arc::new(plan);
        for sim in &mut self.shards {
            sim.set_fault_plan(Arc::clone(&plan));
        }
        self
    }

    /// Destinations a fault made unreachable in the last run, sorted and
    /// deduplicated across shards. Non-empty exactly when the run
    /// stopped with [`StopReason::Partitioned`].
    pub fn partitioned_destinations(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .shards
            .iter()
            .flat_map(Simulator::partitioned_destinations)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of shards (threads) the simulation runs on.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.layout.num_nodes
    }

    /// Sharded equivalent of [`Simulator::run_static`]: node `v` injects
    /// the packets of `backlog[v]` (in order) as fast as its injection
    /// buffer frees up, until the network drains.
    pub fn run_static(&mut self, backlog: &[Vec<NodeId>]) -> StaticResult
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        self.try_run_static(backlog)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ShardedSimulator::run_static`], but a worker panic is returned
    /// as [`ShardPanicked`] instead of aborting the caller. The
    /// simulator's shard state is unspecified after an error — drop it.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPanicked`] naming the first shard whose worker
    /// panicked, with its stringified panic payload.
    pub fn try_run_static(&mut self, backlog: &[Vec<NodeId>]) -> Result<StaticResult, ShardPanicked>
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        match self.try_run_static_until(backlog, None)? {
            StaticOutcome::Finished(res) => Ok(res),
            StaticOutcome::Paused(_) => unreachable!("no pause cycle was requested"),
        }
    }

    /// Sharded equivalent of [`Simulator::run_static_until`]: run from a
    /// fresh network, pausing every shard in lockstep at cycle `pause_at`
    /// (post-injection, the checkpointable pause point).
    pub fn run_static_until(
        &mut self,
        backlog: &[Vec<NodeId>],
        pause_at: Option<u64>,
    ) -> StaticOutcome
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        self.try_run_static_until(backlog, pause_at)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ShardedSimulator::run_static_until`], but a worker panic is
    /// returned as [`ShardPanicked`] instead of aborting the caller.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPanicked`] naming the first shard whose worker
    /// panicked, with its stringified panic payload.
    pub fn try_run_static_until(
        &mut self,
        backlog: &[Vec<NodeId>],
        pause_at: Option<u64>,
    ) -> Result<StaticOutcome, ShardPanicked>
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        assert_eq!(backlog.len(), self.num_nodes());
        let total: u64 = backlog.iter().map(|b| b.len() as u64).sum();
        let outs = self.run_shards(
            Horizon::Drain { total },
            |sid, plan| StaticPlanner {
                backlog,
                nodes: plan.nodes[sid].clone(),
                next_idx: vec![0usize; plan.nodes[sid].len()],
            },
            pause_at,
            None,
        )?;
        Ok(self.finish_static(total, &outs))
    }

    /// Sharded equivalent of [`Simulator::resume_static`]: continue a
    /// static run from restored shard state (see
    /// [`ShardedSimulator::restore`]). `backlog` must be the original
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics if `progress` is not [`RunProgress::Static`].
    pub fn resume_static(
        &mut self,
        backlog: &[Vec<NodeId>],
        progress: RunProgress,
        pause_at: Option<u64>,
    ) -> StaticOutcome
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        assert_eq!(backlog.len(), self.num_nodes());
        let RunProgress::Static { next_idx, lost } = progress else {
            panic!("resume_static needs static progress");
        };
        assert_eq!(next_idx.len(), backlog.len(), "progress/backlog mismatch");
        let total: u64 = backlog.iter().map(|b| b.len() as u64).sum();
        let resume = ResumeBase {
            delivered: self.delivered(),
            dropped: self.dropped(),
            lost,
        };
        let next_idx = &next_idx;
        let outs = self
            .run_shards(
                Horizon::Drain { total },
                |sid, plan| StaticPlanner {
                    backlog,
                    nodes: plan.nodes[sid].clone(),
                    next_idx: plan.nodes[sid]
                        .iter()
                        .map(|&v| next_idx[v as usize])
                        .collect(),
                },
                pause_at,
                Some(resume),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        self.finish_static(total, &outs)
    }

    fn finish_static(&mut self, total: u64, outs: &[WorkerOut]) -> StaticOutcome {
        if outs[0].paused {
            // The pause cycle's own write-offs were published but never
            // folded into the replicated `lost` (the workers returned
            // before phase 3); the per-shard pending counts carry them.
            let mut next_idx = vec![0usize; self.num_nodes()];
            for out in outs {
                for &(v, idx) in &out.progress {
                    next_idx[v as usize] = idx;
                }
            }
            let lost = outs[0].lost + outs.iter().map(|o| o.lost_pending).sum::<u64>();
            return StaticOutcome::Paused(RunProgress::Static { next_idx, lost });
        }
        let delivered = self.delivered();
        let dropped = self.dropped();
        let lost = outs[0].lost;
        let accounted = delivered + dropped + lost == total;
        let stop = if accounted {
            StopReason::Drained
        } else if !self.partitioned_destinations().is_empty() {
            StopReason::Partitioned
        } else if outs.iter().any(|o| o.aborted) {
            StopReason::Aborted
        } else {
            StopReason::MaxCycles
        };
        self.stall = outs[0].stall.map(|info| self.build_stall_report(info));
        StaticOutcome::Finished(StaticResult {
            stats: self.merged_stats(),
            cycles: self.shards[0].cycle(),
            delivered,
            total,
            drained: stop == StopReason::Drained,
            dropped,
            lost,
            stop,
        })
    }

    /// Sharded equivalent of [`Simulator::run_dynamic`]: each node
    /// attempts an injection each cycle with probability `lambda`,
    /// drawing destinations from `dest` with its per-node RNG stream.
    /// `dest` is shared across shard threads, hence `Fn + Sync` rather
    /// than the sequential engine's `FnMut`.
    pub fn run_dynamic(
        &mut self,
        lambda: f64,
        dest: impl Fn(NodeId, &mut StdRng) -> NodeId + Sync,
        cycles: u64,
    ) -> DynamicResult
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        self.try_run_dynamic(lambda, dest, cycles)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ShardedSimulator::run_dynamic`], but a worker panic is returned
    /// as [`ShardPanicked`] instead of aborting the caller. The
    /// simulator's shard state is unspecified after an error — drop it.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPanicked`] naming the first shard whose worker
    /// panicked, with its stringified panic payload.
    pub fn try_run_dynamic(
        &mut self,
        lambda: f64,
        dest: impl Fn(NodeId, &mut StdRng) -> NodeId + Sync,
        cycles: u64,
    ) -> Result<DynamicResult, ShardPanicked>
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        match self.try_run_dynamic_until(lambda, dest, cycles, None)? {
            DynamicOutcome::Finished(res) => Ok(res),
            DynamicOutcome::Paused(_) => unreachable!("no pause cycle was requested"),
        }
    }

    /// Sharded equivalent of [`Simulator::run_dynamic_until`]: run from
    /// a fresh network, pausing every shard in lockstep at cycle
    /// `pause_at` (post-injection).
    pub fn run_dynamic_until(
        &mut self,
        lambda: f64,
        dest: impl Fn(NodeId, &mut StdRng) -> NodeId + Sync,
        cycles: u64,
        pause_at: Option<u64>,
    ) -> DynamicOutcome
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        self.try_run_dynamic_until(lambda, dest, cycles, pause_at)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ShardedSimulator::run_dynamic_until`], but a worker panic is
    /// returned as [`ShardPanicked`] instead of aborting the caller.
    ///
    /// # Errors
    ///
    /// Returns [`ShardPanicked`] naming the first shard whose worker
    /// panicked, with its stringified panic payload.
    pub fn try_run_dynamic_until(
        &mut self,
        lambda: f64,
        dest: impl Fn(NodeId, &mut StdRng) -> NodeId + Sync,
        cycles: u64,
        pause_at: Option<u64>,
    ) -> Result<DynamicOutcome, ShardPanicked>
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        assert!((0.0..=1.0).contains(&lambda));
        let seed = self.cfg.seed;
        let dest = &dest;
        let outs = self.run_shards(
            Horizon::Cycles(cycles),
            |sid, plan| {
                let nodes = plan.nodes[sid].clone();
                let rngs = nodes.iter().map(|&v| node_rng(seed, v as usize)).collect();
                DynPlanner {
                    lambda,
                    dest,
                    nodes,
                    rngs,
                }
            },
            pause_at,
            None,
        )?;
        Ok(self.finish_dynamic(0, 0, &outs))
    }

    /// Sharded equivalent of [`Simulator::resume_dynamic`]: continue a
    /// dynamic run from restored shard state. `lambda`, `dest`, and
    /// `cycles` must be the original workload parameters — the per-node
    /// RNG streams are fast-forwarded through the draws the paused run
    /// already consumed, exactly as in the sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if `progress` is not [`RunProgress::Dynamic`].
    pub fn resume_dynamic(
        &mut self,
        lambda: f64,
        dest: impl Fn(NodeId, &mut StdRng) -> NodeId + Sync,
        cycles: u64,
        progress: RunProgress,
        pause_at: Option<u64>,
    ) -> DynamicOutcome
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
    {
        assert!((0.0..=1.0).contains(&lambda));
        let RunProgress::Dynamic { attempts, injected } = progress else {
            panic!("resume_dynamic needs dynamic progress");
        };
        let seed = self.cfg.seed;
        // The pause point is post-injection at cycle P, so each stream
        // has consumed exactly P + 1 per-cycle draw rounds.
        let rounds = self.shards[0].cycle() + 1;
        let dest = &dest;
        let resume = ResumeBase {
            delivered: self.delivered(),
            dropped: self.dropped(),
            lost: 0,
        };
        let outs = self
            .run_shards(
                Horizon::Cycles(cycles),
                |sid, plan| {
                    let nodes = plan.nodes[sid].clone();
                    let rngs = nodes
                        .iter()
                        .map(|&v| {
                            let mut rng = node_rng(seed, v as usize);
                            for _ in 0..rounds {
                                let _ = draw(&mut rng, lambda, v as usize, &mut |w, r| dest(w, r));
                            }
                            rng
                        })
                        .collect();
                    DynPlanner {
                        lambda,
                        dest,
                        nodes,
                        rngs,
                    }
                },
                pause_at,
                Some(resume),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        self.finish_dynamic(attempts, injected, &outs)
    }

    fn finish_dynamic(
        &mut self,
        base_attempts: u64,
        base_injected: u64,
        outs: &[WorkerOut],
    ) -> DynamicOutcome {
        let attempts = base_attempts + outs.iter().map(|o| o.attempts).sum::<u64>();
        let injected = base_injected + outs.iter().map(|o| o.injected).sum::<u64>();
        if outs[0].paused {
            return DynamicOutcome::Paused(RunProgress::Dynamic { attempts, injected });
        }
        self.stall = outs[0].stall.map(|info| self.build_stall_report(info));
        let stop = if !self.partitioned_destinations().is_empty() {
            StopReason::Partitioned
        } else if outs.iter().any(|o| o.aborted) {
            StopReason::Aborted
        } else {
            StopReason::HorizonReached
        };
        DynamicOutcome::Finished(DynamicResult {
            stats: self.merged_stats(),
            attempts,
            injected,
            delivered: self.delivered(),
            cycles: self.shards[0].cycle(),
            dropped: self.dropped(),
            stop,
        })
    }

    /// Spawn one worker per shard and run the common cycle loop;
    /// `mk_planner` builds each shard's injection planner. A `resume`
    /// base skips the reset (the shards carry restored state).
    fn run_shards<'a, P>(
        &mut self,
        horizon: Horizon,
        mk_planner: impl Fn(usize, &ShardPlan) -> P + Sync,
        pause_at: Option<u64>,
        resume: Option<ResumeBase>,
        // The planner borrows per-worker state created inside the scope.
    ) -> Result<Vec<WorkerOut>, ShardPanicked>
    where
        R: Send,
        R::Msg: Send,
        Rec: Send,
        P: Planner<R, Rec> + 'a,
    {
        if resume.is_none() {
            for sim in &mut self.shards {
                sim.reset();
            }
        }
        self.stall = None;
        let mb: Mailboxes<R::Msg> = Mailboxes::new(self.shards.len());
        let plan = &self.plan;
        let layout = &self.layout;
        let (watchdog, max_cycles, track) =
            (self.watchdog, self.cfg.max_cycles, self.cfg.track_occupancy);
        let mk_planner = &mk_planner;
        let mb_ref = &mb;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(sid, sim)| {
                    scope.spawn(move || {
                        let planner = mk_planner(sid, plan);
                        run_worker(
                            sim, sid, plan, layout, mb_ref, horizon, watchdog, max_cycles, track,
                            planner, pause_at, resume,
                        )
                    })
                })
                .collect();
            // Join every worker before classifying: a panicking worker
            // poisons the phase barrier (see `PoisonGuard`), which wakes
            // all siblings into their own `SIBLING_PANIC` panics, so no
            // join here can block forever. Blame the first shard whose
            // payload is *not* the sibling echo — that worker unwound
            // first and carries the actual failure.
            let joined: Vec<_> = handles
                .into_iter()
                .map(std::thread::ScopedJoinHandle::join)
                .collect();
            let mut first_sibling = None;
            let mut outs = Vec::with_capacity(joined.len());
            for (shard, res) in joined.into_iter().enumerate() {
                match res {
                    Ok(out) => outs.push(out),
                    Err(p) => {
                        let payload = panic_payload(p.as_ref());
                        let e = ShardPanicked { shard, payload };
                        if e.payload == SIBLING_PANIC {
                            if first_sibling.is_none() {
                                first_sibling = Some(e);
                            }
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
            match first_sibling {
                Some(e) => Err(e),
                None => Ok(outs),
            }
        })
    }

    fn delivered(&self) -> u64 {
        self.shards.iter().map(Simulator::delivered_count).sum()
    }

    fn dropped(&self) -> u64 {
        self.shards.iter().map(Simulator::dropped_count).sum()
    }

    fn merged_stats(&self) -> LatencyStats {
        let mut stats = self.shards[0].latency_stats().clone();
        for sim in &self.shards[1..] {
            stats.merge(sim.latency_stats());
        }
        stats
    }

    fn build_stall_report(&self, info: StallInfo) -> StallReport {
        let mut queues = Vec::new();
        for (sid, sim) in self.shards.iter().enumerate() {
            queues.extend(sim.nonempty_queues(&self.plan.nodes[sid]));
        }
        // Shards own interleaved node sets under non-contiguous
        // partitions; restore the sequential report's (node, class)
        // order.
        queues.sort_unstable_by_key(|&(node, class, _)| (node, class));
        let oldest = self
            .shards
            .iter()
            .filter_map(Simulator::oldest_live)
            .min_by_key(|&(uid, ..)| uid);
        // Wait-for edges need the *global* queue-full table: a blocked
        // head's target queue may live on another shard.
        let nc = self.shards[0].classes();
        let cap = self.cfg.queue_capacity;
        let mut full = vec![false; self.num_nodes() * nc];
        for (sid, sim) in self.shards.iter().enumerate() {
            for &v in &self.plan.nodes[sid] {
                for c in 0..nc {
                    let q = v as usize * nc + c;
                    full[q] = sim.queue_len_at(q) as usize >= cap;
                }
            }
        }
        let is_full = move |w: u32, c: u8| full[w as usize * nc + usize::from(c)];
        let mut waits = Vec::new();
        for (sid, sim) in self.shards.iter().enumerate() {
            waits.extend(sim.wait_edges(&self.plan.owned[sid], &is_full));
        }
        waits.sort_unstable();
        waits.dedup();
        StallReport {
            cycle: info.cycle,
            in_flight: info.in_flight,
            window: info.window,
            links_in_window: info.links_in_window,
            partitioned: self.partitioned_destinations(),
            oldest,
            queues,
            waits,
        }
    }

    /// The stall report of the last run, if the engine-level watchdog
    /// ([`ShardedSimulator::with_watchdog`]) aborted it.
    pub fn stall_report(&self) -> Option<&StallReport> {
        self.stall.as_ref()
    }

    /// Merged occupancy statistics of the last run (empty unless
    /// [`crate::SimConfig::track_occupancy`] was set). Each queue is
    /// sampled by exactly one shard, so the merge is exact.
    pub fn occupancy(&self) -> OccupancyProbe {
        let mut probe = self.shards[0].occupancy().clone();
        for sim in &self.shards[1..] {
            probe.merge_shard(sim.occupancy());
        }
        probe
    }

    /// Total minimality violations across shards (only counted when
    /// [`crate::SimConfig::check_minimality`] is set).
    pub fn minimality_violations(&self) -> u64 {
        self.shards
            .iter()
            .map(Simulator::minimality_violations)
            .sum()
    }

    /// Merged delivered-packets time series of the last run, if
    /// [`crate::SimConfig::throughput_window`] was non-zero. Per-shard
    /// windows hold integer delivery counts, so the merge is exact.
    pub fn throughput(&self) -> Option<TimeSeries> {
        let mut merged: Option<TimeSeries> = None;
        for sim in &self.shards {
            if let Some(ts) = sim.throughput() {
                match &mut merged {
                    Some(m) => m.merge(ts),
                    None => merged = Some(ts.clone()),
                }
            }
        }
        merged
    }

    /// Consume the simulator and merge the per-shard recorders in fixed
    /// shard order, yielding deterministic
    /// merged sinks — equal to the sequential engine's single recorder
    /// for order-insensitive sinks (counters) and for sorted trace
    /// output.
    pub fn into_recorder(self) -> Rec {
        let mut sims = self.shards.into_iter();
        let mut rec = sims.next().expect("at least one shard").into_recorder();
        for sim in sims {
            rec.merge_shard(&sim.into_recorder());
        }
        rec
    }
}

/// Checkpoint/restore for sharded runs. The snapshot text is assembled
/// piecewise from the shard that owns each piece of state, in the same
/// canonical order the sequential engine writes — so a sharded
/// checkpoint is byte-identical to a sequential one of the same run,
/// and either engine can restore the other's snapshot.
impl<R: RoutingFunction + Clone, Rec: ShardRecorder> ShardedSimulator<R, Rec>
where
    R::Msg: SnapshotMsg,
{
    /// Which shard executes channel `c`'s link pass (and owns its
    /// round-robin pointer and input buffers).
    fn chan_exec_shard(&self, c: usize) -> usize {
        self.plan.node_shard[self.layout.chan_to[c] as usize] as usize
    }

    /// Which shard owns channel `c`'s source node (and its output
    /// buffers and flaky retry counters).
    fn chan_src_shard(&self, c: usize) -> usize {
        self.plan.node_shard[self.layout.chan_from[c] as usize] as usize
    }

    /// Buffer id → channel id, derived from the shared layout.
    fn buf_chan_map(&self) -> Vec<u32> {
        let mut buf_chan = vec![0u32; self.layout.num_buffers()];
        for c in 0..self.layout.num_channels() {
            let start = self.layout.chan_buf_start[c] as usize;
            let len = usize::from(self.layout.chan_buf_len[c]);
            // Cast audit: unreachable in practice — `NetLayout` already
            // stores `chan_from`/`chan_to` as `u32`, so a layout with
            // more than `u32::MAX` channels cannot be built.
            buf_chan[start..start + len].fill(u32::try_from(c).expect("channel id fits u32"));
        }
        buf_chan
    }

    /// Sharded equivalent of [`Simulator::checkpoint`]: serialize the
    /// merged engine state as a `fadr-snapshot/1` document, byte-for-byte
    /// equal to what a sequential engine paused at the same cycle writes.
    #[must_use]
    pub fn checkpoint(&self, meta: &str, progress: &RunProgress) -> String {
        let n = self.num_nodes();
        let nb = self.layout.num_buffers();
        let nch = self.layout.num_channels();
        let buf_chan = self.buf_chan_map();
        let mut lines = String::new();
        let mut count = 0usize;
        for v in 0..n {
            let s = self.plan.node_shard[v] as usize;
            count += self.shards[s].push_queued_packets(v, &mut lines);
        }
        for v in 0..n {
            let s = self.plan.node_shard[v] as usize;
            count += self.shards[s].push_inj_packet(v, &mut lines);
        }
        for (b, &bc) in buf_chan.iter().enumerate() {
            let s = self.chan_src_shard(bc as usize);
            count += self.shards[s].push_out_packet(b, &mut lines);
        }
        for (b, &bc) in buf_chan.iter().enumerate() {
            let s = self.chan_exec_shard(bc as usize);
            count += self.shards[s].push_in_packet(b, &mut lines);
        }
        let chan_rr: Vec<u16> = (0..nch)
            .map(|c| self.shards[self.chan_exec_shard(c)].chan_rr_at(c))
            .collect();
        let mut fail: Vec<(u32, u32)> = Vec::new();
        for (sid, sim) in self.shards.iter().enumerate() {
            fail.extend(
                sim.flaky_fail_counts()
                    .into_iter()
                    .filter(|&(chan, _)| self.chan_src_shard(chan as usize) == sid),
            );
        }
        fail.sort_unstable();
        let stats = self.merged_stats();
        let occupancy = self.cfg.track_occupancy.then(|| self.occupancy());
        let throughput = self.throughput();
        let g = snapshot::Globals {
            cfg: &self.cfg,
            dims: (n, self.shards[0].classes(), nb, nch),
            cycle: self.shards[0].cycle(),
            next_uid: self.shards[0].next_uid(),
            delivered: self.delivered(),
            dropped: self.dropped(),
            minviol: self.minimality_violations(),
            chan_rr,
            fail,
            stats: &stats,
            occupancy: occupancy.as_ref(),
            throughput: throughput.as_ref(),
        };
        snapshot::assemble(meta, &g, count, &lines, progress)
    }

    /// Sharded equivalent of [`Simulator::restore`]: load a
    /// `fadr-snapshot/1` document (from either engine), scattering each
    /// packet to the shard that owns its location. Merged global state
    /// (latency statistics, occupancy, throughput, delivered/dropped
    /// totals) is carried by shard 0 — the merge accessors and the
    /// resumed workers' replicated counters reassemble the totals.
    pub fn restore(&mut self, text: &str) -> Result<(String, RunProgress), String> {
        let snap: ParsedSnapshot<R::Msg> = snapshot::parse(text)?;
        let buf_chan = self.buf_chan_map();
        let nb = self.layout.num_buffers();
        for sid in 0..self.shards.len() {
            let packets: Vec<_> = snap
                .packets
                .iter()
                .filter(|r| {
                    let owner = match r.loc {
                        Loc::Queue(v) | Loc::Inj(v) => {
                            self.plan.node_shard.get(v as usize).copied().unwrap_or(0) as usize
                        }
                        Loc::Out(b) if (b as usize) < nb => {
                            self.chan_src_shard(buf_chan[b as usize] as usize)
                        }
                        Loc::In(b) if (b as usize) < nb => {
                            self.chan_exec_shard(buf_chan[b as usize] as usize)
                        }
                        // Out-of-range locations go to shard 0, whose
                        // `restore_from` rejects them with a real error.
                        Loc::Out(_) | Loc::In(_) => 0,
                    };
                    owner == sid
                })
                .cloned()
                .collect();
            let first = sid == 0;
            let shard_snap = ParsedSnapshot {
                meta: String::new(),
                cfg: snap.cfg,
                dims: snap.dims,
                cycle: snap.cycle,
                next_uid: snap.next_uid,
                delivered: if first { snap.delivered } else { 0 },
                dropped: if first { snap.dropped } else { 0 },
                minviol: if first { snap.minviol } else { 0 },
                packets,
                chan_rr: snap.chan_rr.clone(),
                fail: snap.fail.clone(),
                stats: if first {
                    snap.stats.clone()
                } else {
                    LatencyStats::new()
                },
                occupancy: if first { snap.occupancy.clone() } else { None },
                throughput: if first { snap.throughput.clone() } else { None },
                progress: snap.progress.clone(),
            };
            self.shards[sid].restore_from(&shard_snap)?;
        }
        Ok((snap.meta, snap.progress))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_core::HypercubeFullyAdaptive;

    #[test]
    fn plan_partitions_nodes_and_channels() {
        let rf = HypercubeFullyAdaptive::new(3);
        let layout = Layout::new(&rf);
        let part = Partition::new(PartitionStrategy::Contiguous, rf.topology(), &layout, 3)
            .expect("3 shards is valid");
        let plan = ShardPlan::new(&layout, part);
        // Contiguous shard node sets tile 0..8.
        assert_eq!(plan.nodes[0], vec![0, 1]);
        assert_eq!(plan.nodes[1], vec![2, 3, 4]);
        assert_eq!(plan.nodes[2], vec![5, 6, 7]);
        for (s, ids) in plan.nodes.iter().enumerate() {
            for &v in ids {
                assert_eq!(plan.node_shard[v as usize] as usize, s);
                assert!(plan.owned[s].contains(v as usize));
            }
        }
        // Every channel is executed by exactly one shard (its target's).
        let execs: usize = plan.exec.iter().map(Vec::len).sum();
        assert_eq!(execs, layout.num_channels());
        // Cross lists agree with the exec lists' remote entries.
        let cross: usize = plan.cross_out.iter().map(Vec::len).sum();
        let remote: usize = plan
            .exec
            .iter()
            .enumerate()
            .map(|(s, v)| v.iter().filter(|&&(_, sf)| sf as usize != s).count())
            .sum();
        assert_eq!(cross, remote);
        // Exec and cross lists are ascending (the mailbox cursor relies
        // on it).
        for v in &plan.exec {
            assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        }
        for c in &plan.cross_out {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn rank_uids_recovers_global_injection_order() {
        // Shards own interleaved nodes {0,2,5} and {1,3,4}; all six
        // inject this cycle. Sequential order is ascending node id, so
        // from base 10 the uids are 10..16 in node order.
        let boxes = vec![Mutex::new(vec![0, 2, 5]), Mutex::new(vec![1, 3, 4])];
        let mut uids = Vec::new();
        let mut cursors = vec![0usize; 2];
        let pending0: Vec<(u32, u32)> = vec![(0, 0), (2, 0), (5, 0)];
        let next0 = rank_uids(0, &boxes, &pending0, 10, &mut uids, &mut cursors);
        assert_eq!(uids, vec![10, 12, 15]);
        let pending1: Vec<(u32, u32)> = vec![(1, 0), (3, 0), (4, 0)];
        let next1 = rank_uids(1, &boxes, &pending1, 10, &mut uids, &mut cursors);
        assert_eq!(uids, vec![11, 13, 14]);
        // Every worker agrees on the next free uid, even one with an
        // empty pending list.
        assert_eq!(next0, 16);
        assert_eq!(next1, 16);
        assert_eq!(rank_uids(0, &boxes, &[], 16, &mut uids, &mut cursors), 19);
    }

    #[test]
    fn shard_count_is_clamped() {
        let sim = ShardedSimulator::new(HypercubeFullyAdaptive::new(2), SimConfig::default(), 64);
        assert_eq!(sim.num_shards(), 4); // clamped to num_nodes
        let sim = ShardedSimulator::new(HypercubeFullyAdaptive::new(2), SimConfig::default(), 0);
        assert_eq!(sim.num_shards(), 1);
    }

    #[test]
    fn poison_barrier_wakes_waiters_on_panic() {
        let barrier = Arc::new(PoisonBarrier::new(2));
        let b = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait()));
            result.is_err()
        });
        // Simulate a sibling panicking before reaching the barrier.
        barrier.poison();
        assert!(waiter.join().expect("waiter thread itself must not die"));
    }
}
