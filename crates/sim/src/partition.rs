//! Topology-aware node → shard partitioning for the sharded engine.
//!
//! The sharded simulator's per-cycle cost has two parts: shard-local
//! work (proportional to owned nodes) and cross-shard mailbox traffic
//! (proportional to the number of *cut* channels — channels whose
//! endpoints live on different shards). A structure-blind contiguous
//! split of the node-id space cuts far more channels than necessary on
//! every topology whose id encoding interleaves dimensions, so the
//! partitioner here is pluggable: each [`PartitionStrategy`] trades the
//! same node count per shard for a smaller cut, and reports the measured
//! cut fraction through [`fadr_metrics::PartitionStats`] so benchmarks
//! can print it next to the speedup.
//!
//! Correctness never depends on the strategy: the sharded engine is
//! bit-identical to the sequential one under *any* node partition (the
//! equivalence suites run every strategy). Only the thread-communication
//! volume changes.

use std::str::FromStr;

use fadr_metrics::PartitionStats;
use fadr_topology::{PartitionHint, Topology};

use crate::layout::Layout;

/// How to assign nodes to shards. The default, [`PartitionStrategy::Auto`],
/// resolves per topology via [`Topology::partition_hint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Resolve per topology: Hamming-prefix on hypercubes, coordinate
    /// bisection on grids (meshes, tori), BFS growth otherwise.
    #[default]
    Auto,
    /// Legacy structure-blind contiguous node-id ranges
    /// (`s*n/shards..(s+1)*n/shards`).
    Contiguous,
    /// Recursive top-bit subcube split: every shard is a subcube (an
    /// address-prefix class), so only the `ceil(log2 shards)` split
    /// dimensions carry cut channels — cut fraction at most
    /// `ceil(log2 shards) / dims`. Falls back to BFS growth on
    /// non-hypercube topologies.
    HammingPrefix,
    /// Recursive coordinate bisection: cut the widest dimension of the
    /// current box near its middle and split the shard budget in
    /// proportion to the node counts of the two halves. Hypercubes are
    /// treated as `2 × 2 × …` grids; irregular topologies fall back to
    /// BFS growth.
    Bisection,
    /// Chunk a breadth-first traversal of the channel graph (from node
    /// 0) into equal contiguous runs: neighbours tend to land in the
    /// same shard even when node ids encode no geometry (e.g. the
    /// shuffle-exchange).
    BfsGrowth,
}

impl PartitionStrategy {
    /// Canonical name (the string [`FromStr`] accepts, and the one a
    /// resolved partition reports in its [`PartitionStats`]).
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Contiguous => "contiguous",
            Self::HammingPrefix => "hamming-prefix",
            Self::Bisection => "bisection",
            Self::BfsGrowth => "bfs-growth",
        }
    }
}

impl FromStr for PartitionStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Self::Auto),
            "contiguous" => Ok(Self::Contiguous),
            "hamming" | "hamming-prefix" => Ok(Self::HammingPrefix),
            "bisection" => Ok(Self::Bisection),
            "bfs" | "bfs-growth" => Ok(Self::BfsGrowth),
            other => Err(format!(
                "unknown partition strategy '{other}' \
                 (expected auto|contiguous|hamming-prefix|bisection|bfs-growth)"
            )),
        }
    }
}

/// Why a partition could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// `shards == 0` was requested: there is no zero-shard simulation
    /// (a shard count *above* the node count is clamped instead, since
    /// an empty shard is harmless to ask for but useless to run).
    ZeroShards,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroShards => write!(f, "cannot partition into 0 shards"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A node → shard assignment plus its measured cut statistics.
///
/// Invariants (asserted by the partition property suite): the shard
/// node lists are each sorted ascending, collectively tile `0..n`
/// exactly once, are all non-empty (shard counts are clamped to the
/// node count), and agree with `node_shard`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Per shard: the node ids it owns, ascending.
    pub shard_nodes: Vec<Vec<u32>>,
    /// Node id → owning shard.
    pub node_shard: Vec<u32>,
    /// Strategy actually used (after `Auto`/fallback resolution) and the
    /// measured cut.
    pub stats: PartitionStats,
}

/// Strategy after `Auto` resolution and topology-validity fallbacks.
enum Resolved {
    Contiguous,
    Hamming { dims: usize },
    Bisect { extents: Vec<usize> },
    Bfs,
}

impl Partition {
    /// Partition the `layout`'s nodes into at most `shards` shards
    /// (clamped to the node count so no shard is empty).
    ///
    /// # Errors
    ///
    /// [`PartitionError::ZeroShards`] if `shards == 0`.
    pub fn new(
        strategy: PartitionStrategy,
        topo: &dyn Topology,
        layout: &Layout,
        shards: usize,
    ) -> Result<Self, PartitionError> {
        if shards == 0 {
            return Err(PartitionError::ZeroShards);
        }
        let n = layout.num_nodes;
        let shards = shards.min(n.max(1));
        let resolved = resolve(strategy, &topo.partition_hint(), n);
        let name = match resolved {
            Resolved::Contiguous => PartitionStrategy::Contiguous.name(),
            Resolved::Hamming { .. } => PartitionStrategy::HammingPrefix.name(),
            Resolved::Bisect { .. } => PartitionStrategy::Bisection.name(),
            Resolved::Bfs => PartitionStrategy::BfsGrowth.name(),
        };
        let shard_nodes = match resolved {
            Resolved::Contiguous => contiguous(n, shards),
            Resolved::Hamming { dims } => {
                let mut out = Vec::with_capacity(shards);
                hamming_rec(0, dims, shards, &mut out);
                out
            }
            Resolved::Bisect { extents } => bisect(&extents, shards),
            Resolved::Bfs => bfs_growth(layout, shards),
        };
        let mut node_shard = vec![0u32; n];
        for (s, nodes) in shard_nodes.iter().enumerate() {
            for &v in nodes {
                node_shard[v as usize] = s as u32;
            }
        }
        let cut_channels = (0..layout.num_channels())
            .filter(|&c| {
                node_shard[layout.chan_from[c] as usize] != node_shard[layout.chan_to[c] as usize]
            })
            .count();
        Ok(Self {
            stats: PartitionStats {
                strategy: name,
                shards: shard_nodes.len(),
                cut_channels,
                total_channels: layout.num_channels(),
            },
            shard_nodes,
            node_shard,
        })
    }
}

/// Resolve `Auto` through the topology hint, and fall back when a
/// requested strategy does not fit the topology (Hamming needs a
/// power-of-two hypercube, bisection needs grid extents).
fn resolve(strategy: PartitionStrategy, hint: &PartitionHint, n: usize) -> Resolved {
    let hamming = |dims: usize| {
        if n == 1usize << dims {
            Resolved::Hamming { dims }
        } else {
            Resolved::Bfs
        }
    };
    let bisect = |extents: &Vec<usize>| {
        if extents.iter().product::<usize>() == n && n > 0 {
            Resolved::Bisect {
                extents: extents.clone(),
            }
        } else {
            Resolved::Bfs
        }
    };
    match (strategy, hint) {
        (PartitionStrategy::Contiguous, _) => Resolved::Contiguous,
        (
            PartitionStrategy::Auto | PartitionStrategy::HammingPrefix,
            PartitionHint::Hypercube { dims },
        ) => hamming(*dims),
        (
            PartitionStrategy::Auto | PartitionStrategy::Bisection,
            PartitionHint::Grid { extents },
        ) => bisect(extents),
        // A hypercube is a 2×2×…×2 grid; bisecting it halves subcubes.
        (PartitionStrategy::Bisection, PartitionHint::Hypercube { dims }) => {
            bisect(&vec![2usize; *dims])
        }
        // Hamming prefixes only make sense on hypercube addressing.
        (PartitionStrategy::HammingPrefix | PartitionStrategy::BfsGrowth, _)
        | (PartitionStrategy::Bisection | PartitionStrategy::Auto, PartitionHint::Irregular) => {
            Resolved::Bfs
        }
    }
}

/// The legacy split: shard `s` owns `s*n/shards..(s+1)*n/shards`.
fn contiguous(n: usize, shards: usize) -> Vec<Vec<u32>> {
    (0..shards)
        .map(|s| ((s * n / shards) as u32..((s + 1) * n / shards) as u32).collect())
        .collect()
}

/// Recursive top-bit split of the subcube `base..base + 2^dims`: the
/// 0-half gets `ceil(shards/2)` shards, the 1-half the rest. Every
/// leaf is a subcube, i.e. an address-prefix equivalence class, so a
/// channel is cut only if its dimension is one of the `ceil(log2
/// shards)` split dimensions.
fn hamming_rec(base: u32, dims: usize, shards: usize, out: &mut Vec<Vec<u32>>) {
    debug_assert!(shards <= 1usize << dims);
    if shards <= 1 {
        out.push((base..base + (1u32 << dims)).collect());
        return;
    }
    let half = 1u32 << (dims - 1);
    let sl = shards.div_ceil(2);
    hamming_rec(base, dims - 1, sl, out);
    hamming_rec(base + half, dims - 1, shards - sl, out);
}

/// Recursive coordinate bisection over mixed-radix boxes (dimension 0
/// fastest, matching grid id encoding).
fn bisect(extents: &[usize], shards: usize) -> Vec<Vec<u32>> {
    let mut strides = Vec::with_capacity(extents.len());
    let mut acc = 1usize;
    for &e in extents {
        strides.push(acc);
        acc *= e;
    }
    let mut out = Vec::with_capacity(shards);
    bisect_rec(
        &strides,
        vec![0; extents.len()],
        extents.to_vec(),
        shards,
        &mut out,
    );
    out
}

fn bisect_rec(
    strides: &[usize],
    lo: Vec<usize>,
    hi: Vec<usize>,
    shards: usize,
    out: &mut Vec<Vec<u32>>,
) {
    if shards <= 1 {
        out.push(box_nodes(strides, &lo, &hi));
        return;
    }
    let total: usize = lo.iter().zip(&hi).map(|(&l, &h)| h - l).product();
    debug_assert!(shards <= total, "shard budget exceeds box population");
    // Cut the widest dimension at its midpoint, then split the shard
    // budget in proportion to the actual node counts. A fixed
    // ceil/floor shard split can be infeasible (extents [3,2] with 6
    // shards leaves no valid cut), so the proportional choice is
    // clamped into the feasible interval — which is non-empty whenever
    // `shards <= total`, an invariant this recursion maintains.
    let d = (0..lo.len())
        .max_by_key(|&d| hi[d] - lo[d])
        .expect("non-empty box");
    let mid = lo[d] + (hi[d] - lo[d]) / 2;
    let left = total / (hi[d] - lo[d]) * (mid - lo[d]);
    let right = total - left;
    let ideal = (2 * shards * left + total) / (2 * total);
    let sl = ideal.clamp(shards.saturating_sub(right).max(1), (shards - 1).min(left));
    let mut hi_left = hi.clone();
    hi_left[d] = mid;
    let mut lo_right = lo.clone();
    lo_right[d] = mid;
    bisect_rec(strides, lo, hi_left, sl, out);
    bisect_rec(strides, lo_right, hi, shards - sl, out);
}

/// All node ids in the box `[lo, hi)`, ascending. The odometer counts
/// mixed-radix with dimension 0 least significant, which already yields
/// ascending ids; the sort documents (and insures) the invariant.
fn box_nodes(strides: &[usize], lo: &[usize], hi: &[usize]) -> Vec<u32> {
    let size: usize = lo.iter().zip(hi).map(|(&l, &h)| h - l).product();
    let mut ids = Vec::with_capacity(size);
    let mut coords = lo.to_vec();
    for _ in 0..size {
        ids.push(
            coords
                .iter()
                .zip(strides)
                .map(|(&c, &s)| c * s)
                .sum::<usize>() as u32,
        );
        for d in 0..coords.len() {
            coords[d] += 1;
            if coords[d] < hi[d] {
                break;
            }
            coords[d] = lo[d];
        }
    }
    ids.sort_unstable();
    ids
}

/// Chunk a breadth-first traversal of the channel graph (treated as
/// undirected, rooted at node 0, unreached components appended in id
/// order) into `shards` contiguous runs of the traversal order, then
/// sort each shard's ids. BFS keeps graph neighbourhoods together, so
/// the chunk boundaries cut roughly one "frontier" of channels each
/// even when node ids encode no geometry.
fn bfs_growth(layout: &Layout, shards: usize) -> Vec<Vec<u32>> {
    let n = layout.num_nodes;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for c in 0..layout.num_channels() {
        let (f, t) = (layout.chan_from[c], layout.chan_to[c]);
        adj[f as usize].push(t);
        adj[t as usize].push(f);
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in &adj[v as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    (0..shards)
        .map(|s| {
            let mut ids: Vec<u32> = order[s * n / shards..(s + 1) * n / shards].to_vec();
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// A worker's owned node set: either the whole network (the sequential
/// engine and single-shard runs, allocation-free) or a sorted subset
/// with a membership bitmask (sharded workers under any partition).
pub(crate) enum OwnedNodes {
    /// All of `0..n`.
    All(usize),
    /// A sorted, deduplicated subset of `0..n`.
    Subset {
        /// Owned node ids, ascending.
        ids: Vec<u32>,
        /// Membership bitmask over all `n` node ids.
        mask: Vec<u64>,
    },
}

impl OwnedNodes {
    pub(crate) fn all(n: usize) -> Self {
        Self::All(n)
    }

    /// Build from a sorted id list out of `0..n` (collapses to
    /// [`OwnedNodes::All`] when complete).
    pub(crate) fn from_sorted(ids: &[u32], n: usize) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        if ids.len() == n {
            return Self::All(n);
        }
        let mut mask = vec![0u64; n.div_ceil(64)];
        for &v in ids {
            mask[v as usize / 64] |= 1u64 << (v % 64);
        }
        Self::Subset {
            ids: ids.to_vec(),
            mask,
        }
    }

    pub(crate) fn contains(&self, v: usize) -> bool {
        match self {
            Self::All(n) => v < *n,
            Self::Subset { mask, .. } => mask.get(v / 64).is_some_and(|w| w >> (v % 64) & 1 == 1),
        }
    }

    pub(crate) fn iter(&self) -> OwnedIter<'_> {
        match self {
            Self::All(n) => OwnedIter::All(0..*n),
            Self::Subset { ids, .. } => OwnedIter::Subset(ids.iter()),
        }
    }
}

/// Iterator over an [`OwnedNodes`], ascending.
pub(crate) enum OwnedIter<'a> {
    All(std::ops::Range<usize>),
    Subset(std::slice::Iter<'a, u32>),
}

impl Iterator for OwnedIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            Self::All(r) => r.next(),
            Self::Subset(it) => it.next().map(|&v| v as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_core::HypercubeFullyAdaptive;
    use fadr_qdg::RoutingFunction;

    fn hypercube_parts(dims: usize, shards: usize, strategy: PartitionStrategy) -> Partition {
        let rf = HypercubeFullyAdaptive::new(dims);
        let layout = Layout::new(&rf);
        Partition::new(strategy, rf.topology(), &layout, shards).expect("nonzero shards")
    }

    fn assert_tiles(p: &Partition, n: usize) {
        let mut seen = vec![false; n];
        for (s, nodes) in p.shard_nodes.iter().enumerate() {
            assert!(!nodes.is_empty(), "shard {s} is empty");
            assert!(nodes.windows(2).all(|w| w[0] < w[1]), "shard {s} unsorted");
            for &v in nodes {
                assert!(!seen[v as usize], "node {v} owned twice");
                seen[v as usize] = true;
                assert_eq!(p.node_shard[v as usize] as usize, s);
            }
        }
        assert!(seen.iter().all(|&s| s), "some node unowned");
    }

    #[test]
    fn zero_shards_is_an_error() {
        let rf = HypercubeFullyAdaptive::new(2);
        let layout = Layout::new(&rf);
        assert_eq!(
            Partition::new(PartitionStrategy::Auto, rf.topology(), &layout, 0),
            Err(PartitionError::ZeroShards)
        );
    }

    #[test]
    fn oversized_shard_count_is_clamped() {
        let p = hypercube_parts(2, 64, PartitionStrategy::Auto);
        assert_eq!(p.shard_nodes.len(), 4);
        assert_tiles(&p, 4);
    }

    #[test]
    fn hamming_prefix_shards_are_subcubes() {
        let p = hypercube_parts(4, 4, PartitionStrategy::HammingPrefix);
        assert_eq!(p.stats.strategy, "hamming-prefix");
        assert_tiles(&p, 16);
        // 4 shards on 4 dims: 2 split dimensions cut, cut fraction 2/4.
        assert!((p.stats.cut_fraction() - 0.5).abs() < 1e-12);
        // Power-of-two shard counts coincide with aligned contiguous
        // quarters.
        assert_eq!(p.shard_nodes[0], (0..4).collect::<Vec<u32>>());
        assert_eq!(p.shard_nodes[3], (12..16).collect::<Vec<u32>>());
    }

    #[test]
    fn hamming_beats_contiguous_on_odd_shard_counts() {
        let hamming = hypercube_parts(8, 3, PartitionStrategy::HammingPrefix);
        let contiguous = hypercube_parts(8, 3, PartitionStrategy::Contiguous);
        assert!(hamming.stats.cut_fraction() < contiguous.stats.cut_fraction());
        // ceil(log2 3) = 2 split dimensions out of 8.
        assert!(hamming.stats.cut_fraction() <= 2.0 / 8.0 + 1e-12);
    }

    #[test]
    fn auto_resolves_per_topology() {
        assert_eq!(
            hypercube_parts(3, 2, PartitionStrategy::Auto)
                .stats
                .strategy,
            "hamming-prefix"
        );
    }

    #[test]
    fn bisection_handles_awkward_extent_shard_combinations() {
        // extents [3,2] with 6 shards: a fixed ceil/floor budget split
        // has no feasible cut; the proportional split must still tile.
        for shards in 1..=6 {
            let parts = bisect(&[3, 2], shards);
            let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..6).collect::<Vec<u32>>(), "shards={shards}");
            assert_eq!(parts.len(), shards);
            assert!(parts.iter().all(|p| !p.is_empty()), "shards={shards}");
        }
    }

    #[test]
    fn bisection_on_hypercube_splits_subcube_halves() {
        let p = hypercube_parts(3, 2, PartitionStrategy::Bisection);
        assert_eq!(p.stats.strategy, "bisection");
        assert_tiles(&p, 8);
        // One split dimension cut: 2*4 directed channels of 24.
        assert_eq!(p.stats.cut_channels, 8);
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            PartitionStrategy::Auto,
            PartitionStrategy::Contiguous,
            PartitionStrategy::HammingPrefix,
            PartitionStrategy::Bisection,
            PartitionStrategy::BfsGrowth,
        ] {
            assert_eq!(s.name().parse::<PartitionStrategy>(), Ok(s));
        }
        assert!("strip".parse::<PartitionStrategy>().is_err());
    }

    #[test]
    fn owned_nodes_subset_iterates_and_tests_membership() {
        let o = OwnedNodes::from_sorted(&[1, 5, 6], 8);
        assert!(o.contains(1) && o.contains(6));
        assert!(!o.contains(0) && !o.contains(7) && !o.contains(100));
        assert_eq!(o.iter().collect::<Vec<usize>>(), vec![1, 5, 6]);
        let all = OwnedNodes::from_sorted(&[0, 1, 2, 3], 4);
        assert!(matches!(all, OwnedNodes::All(4)));
    }
}
