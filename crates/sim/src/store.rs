//! Data-oriented storage for the engine core: a struct-of-arrays packet
//! store, an arena for per-packet routing-option lists, and dense
//! bitsets over buffers and channels.
//!
//! The hot phases of the routing cycle each touch a narrow slice of
//! per-packet state — the fill pass reads option buffers and `moved_at`,
//! the link pass reads buffer occupancy, the read pass reads
//! `next_class`/`dst` — so the packet slab is stored as parallel arrays
//! ([`PacketStore`]) instead of an array of structs: a phase streams
//! through only the fields it uses. Option lists, which the old engine
//! kept as one `Vec` allocation per packet slot, live in a shared
//! [`OptionArena`] with exact-fit segment recycling, and buffer/channel
//! occupancy is mirrored in [`BitSet`]s so the link pass can test a
//! whole channel's "staged and far side empty" condition with two word
//! fetches.

/// One possible move of a queued packet: an output buffer (or
/// [`crate::layout::NONE`] for an internal stutter), the central-queue
/// class on arrival, and the routing state after the hop.
pub(crate) struct MoveOpt<M> {
    pub(crate) buf: u32,
    pub(crate) to_class: u8,
    pub(crate) next: M,
    /// Degraded-mode escape hop (see [`crate::fault`]): `next` is a
    /// placeholder; the receiving node restarts the routing state.
    pub(crate) escape: bool,
}

/// Struct-of-arrays slab of in-flight packets, indexed by recycled slot
/// id. Slot lifecycle matches the old `Vec<Packet>`: [`PacketStore::insert`]
/// pops the free list or grows every column, [`PacketStore::release`]
/// frees the slot and returns its option segment to the arena (uids are
/// never recycled, slots are).
pub(crate) struct PacketStore<M> {
    pub(crate) src: Vec<u32>,
    pub(crate) dst: Vec<u32>,
    /// Run-unique id in injection order; this is the `pkt` handed to the
    /// [`fadr_metrics::Recorder`] hooks.
    pub(crate) uid: Vec<u64>,
    /// Link hops taken so far (for the minimality check).
    pub(crate) hops: Vec<u16>,
    pub(crate) inject_cycle: Vec<u64>,
    /// Cycle the packet entered its current central queue; FIFO priority
    /// *across* a node's queues is by this timestamp (§ 7.1's "taking
    /// messages from the queues in FIFO order").
    pub(crate) enqueued_at: Vec<u64>,
    /// Cycle of the packet's last move (enforces one move per cycle).
    pub(crate) moved_at: Vec<u64>,
    /// Central-queue class of the current residence (valid while queued).
    pub(crate) class: Vec<u8>,
    /// Central-queue class on arrival (valid while staged).
    pub(crate) next_class: Vec<u8>,
    /// Set while the packet sits in an output/input buffer, pending
    /// removal from its queue after the fill pass.
    pub(crate) staged: Vec<bool>,
    /// The packet's current hop is a degraded-mode escape move (see
    /// [`crate::fault`]).
    pub(crate) escape: Vec<bool>,
    /// Routing state; updated to the post-hop state when staged.
    pub(crate) msg: Vec<M>,
    /// Start of the packet's option segment in the [`OptionArena`].
    pub(crate) opt_start: Vec<u32>,
    /// Length of the packet's option segment (0 = none cached).
    pub(crate) opt_len: Vec<u32>,
    /// Recycled slot ids.
    pub(crate) free: Vec<u32>,
}

/// Initial field values for [`PacketStore::insert`] (everything except
/// the option segment, which starts empty).
pub(crate) struct PacketInit<M> {
    pub(crate) src: u32,
    pub(crate) dst: u32,
    pub(crate) uid: u64,
    pub(crate) hops: u16,
    pub(crate) inject_cycle: u64,
    pub(crate) enqueued_at: u64,
    pub(crate) moved_at: u64,
    pub(crate) class: u8,
    pub(crate) next_class: u8,
    pub(crate) staged: bool,
    pub(crate) escape: bool,
    pub(crate) msg: M,
}

impl<M> PacketStore<M> {
    pub(crate) fn new() -> Self {
        Self {
            src: Vec::new(),
            dst: Vec::new(),
            uid: Vec::new(),
            hops: Vec::new(),
            inject_cycle: Vec::new(),
            enqueued_at: Vec::new(),
            moved_at: Vec::new(),
            class: Vec::new(),
            next_class: Vec::new(),
            staged: Vec::new(),
            escape: Vec::new(),
            msg: Vec::new(),
            opt_start: Vec::new(),
            opt_len: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of slots (live + free).
    pub(crate) fn len(&self) -> usize {
        self.src.len()
    }

    /// Place a packet, recycling a free slot if available.
    pub(crate) fn insert(&mut self, init: PacketInit<M>) -> u32 {
        if let Some(i) = self.free.pop() {
            let p = i as usize;
            self.src[p] = init.src;
            self.dst[p] = init.dst;
            self.uid[p] = init.uid;
            self.hops[p] = init.hops;
            self.inject_cycle[p] = init.inject_cycle;
            self.enqueued_at[p] = init.enqueued_at;
            self.moved_at[p] = init.moved_at;
            self.class[p] = init.class;
            self.next_class[p] = init.next_class;
            self.staged[p] = init.staged;
            self.escape[p] = init.escape;
            self.msg[p] = init.msg;
            debug_assert_eq!(self.opt_len[p], 0, "freed slot kept an option segment");
            i
        } else {
            self.src.push(init.src);
            self.dst.push(init.dst);
            self.uid.push(init.uid);
            self.hops.push(init.hops);
            self.inject_cycle.push(init.inject_cycle);
            self.enqueued_at.push(init.enqueued_at);
            self.moved_at.push(init.moved_at);
            self.class.push(init.class);
            self.next_class.push(init.next_class);
            self.staged.push(init.staged);
            self.escape.push(init.escape);
            self.msg.push(init.msg);
            self.opt_start.push(0);
            self.opt_len.push(0);
            (self.src.len() - 1) as u32
        }
    }

    /// Free slot `p`: return its option segment to `arena` and push the
    /// slot onto the free list.
    pub(crate) fn release(&mut self, p: u32, arena: &mut OptionArena<M>) {
        let pi = p as usize;
        arena.release(self.opt_start[pi], self.opt_len[pi]);
        self.opt_len[pi] = 0;
        self.free.push(p);
    }

    /// Replace slot `p`'s cached option segment, recycling the old one.
    pub(crate) fn set_options(
        &mut self,
        p: u32,
        arena: &mut OptionArena<M>,
        opts: &mut Vec<MoveOpt<M>>,
    ) {
        let pi = p as usize;
        arena.release(self.opt_start[pi], self.opt_len[pi]);
        let (start, len) = arena.store(opts);
        self.opt_start[pi] = start;
        self.opt_len[pi] = len;
    }

    /// The option segment of slot `p` as an arena index range.
    #[inline]
    pub(crate) fn opt_range(&self, p: u32) -> std::ops::Range<usize> {
        let pi = p as usize;
        let s = self.opt_start[pi] as usize;
        s..s + self.opt_len[pi] as usize
    }

    pub(crate) fn clear(&mut self) {
        self.src.clear();
        self.dst.clear();
        self.uid.clear();
        self.hops.clear();
        self.inject_cycle.clear();
        self.enqueued_at.clear();
        self.moved_at.clear();
        self.class.clear();
        self.next_class.clear();
        self.staged.clear();
        self.escape.clear();
        self.msg.clear();
        self.opt_start.clear();
        self.opt_len.clear();
        self.free.clear();
    }
}

/// Shared struct-of-arrays storage for every packet's cached option
/// list. Segments are allocated contiguously and recycled through
/// exact-length free lists: a packet that recomputes an option set of
/// the same size gets its old segment back, so steady-state simulation
/// performs no allocator traffic at all (the old design re-grew a
/// per-slot `Vec` instead).
pub(crate) struct OptionArena<M> {
    pub(crate) buf: Vec<u32>,
    pub(crate) to_class: Vec<u8>,
    pub(crate) escape: Vec<bool>,
    pub(crate) next: Vec<M>,
    /// `free[len]` holds start offsets of recycled segments of exactly
    /// `len` entries. Option-set sizes are bounded by the routing
    /// function's fan-out (a handful), so the outer Vec stays tiny.
    free: Vec<Vec<u32>>,
}

impl<M> OptionArena<M> {
    pub(crate) fn new() -> Self {
        Self {
            buf: Vec::new(),
            to_class: Vec::new(),
            escape: Vec::new(),
            next: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Move `opts` into a segment (recycled exact-fit or freshly grown)
    /// and return `(start, len)`. `opts` is drained, keeping its
    /// capacity for reuse as scratch.
    pub(crate) fn store(&mut self, opts: &mut Vec<MoveOpt<M>>) -> (u32, u32) {
        let len = opts.len();
        if len == 0 {
            return (0, 0);
        }
        if let Some(start) = self.free.get_mut(len).and_then(Vec::pop) {
            let s = start as usize;
            for (i, opt) in opts.drain(..).enumerate() {
                self.buf[s + i] = opt.buf;
                self.to_class[s + i] = opt.to_class;
                self.escape[s + i] = opt.escape;
                self.next[s + i] = opt.next;
            }
            (start, len as u32)
        } else {
            let start = self.buf.len() as u32;
            for opt in opts.drain(..) {
                self.buf.push(opt.buf);
                self.to_class.push(opt.to_class);
                self.escape.push(opt.escape);
                self.next.push(opt.next);
            }
            (start, len as u32)
        }
    }

    /// Return a segment to the free lists (no-op for `len == 0`). The
    /// segment's contents stay resident until overwritten by a reuse.
    pub(crate) fn release(&mut self, start: u32, len: u32) {
        if len == 0 {
            return;
        }
        let l = len as usize;
        if self.free.len() <= l {
            self.free.resize_with(l + 1, Vec::new);
        }
        self.free[l].push(start);
    }

    pub(crate) fn clear(&mut self) {
        self.buf.clear();
        self.to_class.clear();
        self.escape.clear();
        self.next.clear();
        for f in &mut self.free {
            f.clear();
        }
    }
}

/// Fixed-capacity dense bitset. The engine keeps three: output-buffer
/// occupancy, input-buffer occupancy, and channels-with-staged-traffic;
/// [`BitSet::extract`] is the link pass's two-word channel probe.
#[derive(Debug, Clone)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn new(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub(crate) fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    #[inline]
    #[cfg(test)]
    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    pub(crate) fn clear_all(&mut self) {
        self.words.fill(0);
    }

    #[inline]
    pub(crate) fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    #[inline]
    pub(crate) fn num_words(&self) -> usize {
        self.words.len()
    }

    /// The `len <= 64` bits starting at bit `start`, as the low bits of
    /// the returned word (at most two word fetches).
    #[inline]
    pub(crate) fn extract(&self, start: usize, len: usize) -> u64 {
        debug_assert!(len <= 64);
        let w = start / 64;
        let off = start % 64;
        let mut v = self.words[w] >> off;
        if off != 0 && w + 1 < self.words.len() {
            v |= self.words[w + 1] << (64 - off);
        }
        if len == 64 {
            v
        } else {
            v & ((1u64 << len) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_clear_get() {
        let mut b = BitSet::new(130);
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65));
        b.clear(64);
        assert!(!b.get(64));
        b.clear_all();
        assert!(!b.get(0) && !b.get(129));
    }

    #[test]
    fn bitset_extract_spans_word_boundaries() {
        let mut b = BitSet::new(200);
        for i in [60usize, 61, 64, 70, 127, 128] {
            b.set(i);
        }
        // Bits 60..124: set positions 60,61,64,70 → offsets 0,1,4,10.
        assert_eq!(b.extract(60, 64), 1 | 2 | (1 << 4) | (1 << 10));
        // Bits 126..130: set positions 127,128 → offsets 1,2.
        assert_eq!(b.extract(126, 4), 0b110);
        // Aligned full word.
        assert_eq!(b.extract(64, 64), 1 | (1 << 6) | (1 << 63));
        // Zero-length probe.
        assert_eq!(b.extract(10, 0), 0);
    }

    #[test]
    fn arena_recycles_exact_fit_segments() {
        let mut a: OptionArena<u32> = OptionArena::new();
        let mut scratch = vec![
            MoveOpt {
                buf: 1,
                to_class: 0,
                next: 10,
                escape: false,
            },
            MoveOpt {
                buf: 2,
                to_class: 1,
                next: 20,
                escape: false,
            },
        ];
        let (s0, l0) = a.store(&mut scratch);
        assert_eq!((s0, l0), (0, 2));
        assert!(scratch.is_empty());
        a.release(s0, l0);
        // Same-size segment reuses the freed storage…
        scratch.push(MoveOpt {
            buf: 7,
            to_class: 0,
            next: 70,
            escape: true,
        });
        scratch.push(MoveOpt {
            buf: 8,
            to_class: 1,
            next: 80,
            escape: false,
        });
        let (s1, l1) = a.store(&mut scratch);
        assert_eq!((s1, l1), (0, 2));
        assert_eq!(&a.buf[0..2], &[7, 8]);
        assert_eq!(&a.next[0..2], &[70, 80]);
        assert!(a.escape[0]);
        // …while a different size grows fresh storage.
        scratch.push(MoveOpt {
            buf: 9,
            to_class: 0,
            next: 90,
            escape: false,
        });
        let (s2, l2) = a.store(&mut scratch);
        assert_eq!((s2, l2), (2, 1));
    }

    #[test]
    fn packet_store_recycles_slots() {
        let mut a: OptionArena<u8> = OptionArena::new();
        let mut s: PacketStore<u8> = PacketStore::new();
        let init = |uid| PacketInit {
            src: 0,
            dst: 1,
            uid,
            hops: 0,
            inject_cycle: 0,
            enqueued_at: 0,
            moved_at: u64::MAX,
            class: 0,
            next_class: 0,
            staged: false,
            escape: false,
            msg: 0u8,
        };
        let p0 = s.insert(init(0));
        let p1 = s.insert(init(1));
        assert_eq!((p0, p1), (0, 1));
        let mut opts = vec![MoveOpt {
            buf: 3,
            to_class: 0,
            next: 0u8,
            escape: false,
        }];
        s.set_options(p0, &mut a, &mut opts);
        assert_eq!(s.opt_range(p0), 0..1);
        s.release(p0, &mut a);
        // The freed slot (and its arena segment) are recycled.
        let p2 = s.insert(init(2));
        assert_eq!(p2, 0);
        assert_eq!(s.uid[0], 2);
        assert_eq!(s.opt_range(p2), 0..0);
        assert_eq!(s.len(), 2);
    }
}
