//! Textual rendering of the § 6 node designs (the paper's Figures 4–6).
//!
//! For a routing function and a node, lists the node's queues and, per
//! physical channel, the input/output buffers of each traffic class —
//! the same information Figures 4 ("Node 0101 of the 4-Hypercube"),
//! 5 ("The node for the Mesh"), and 6 ("The node for the
//! Shuffle-Exchange") convey graphically.

use std::fmt::Write as _;

use fadr_qdg::{BufferClass, RoutingFunction};
use fadr_topology::NodeId;

/// Render the § 6 design of `node` under `rf` as text.
pub fn describe_node<R: RoutingFunction + ?Sized>(
    rf: &R,
    node: NodeId,
    queue_capacity: usize,
) -> String {
    let topo = rf.topology();
    let mut out = String::new();
    let _ = writeln!(out, "Node {} of {}", node, rf.name());
    let _ = writeln!(
        out,
        "  injection queue (size 1), delivery queue (unbounded)"
    );
    for c in 0..rf.num_classes() {
        let _ = writeln!(out, "  central queue q{c} (size {queue_capacity})");
    }
    for port in 0..topo.max_ports() {
        if let Some(to) = topo.neighbor(node, port) {
            let classes = rf.buffer_classes(node, port);
            if !classes.is_empty() {
                let _ = writeln!(
                    out,
                    "  out port {port} -> node {to}: output buffers {}",
                    fmt_classes(&classes)
                );
            }
        }
    }
    // Input buffers: every channel of a neighbor pointing back here.
    for from in 0..topo.num_nodes() {
        for port in 0..topo.max_ports() {
            if topo.neighbor(from, port) == Some(node) && from != node {
                let classes = rf.buffer_classes(from, port);
                if !classes.is_empty() {
                    let _ = writeln!(
                        out,
                        "  in  port {port} <- node {from}: input buffers {}",
                        fmt_classes(&classes)
                    );
                }
            }
        }
    }
    out
}

fn fmt_classes(classes: &[BufferClass]) -> String {
    let parts: Vec<String> = classes
        .iter()
        .map(|c| match c {
            BufferClass::Static(q) => format!("static->q{q}"),
            BufferClass::Dynamic => "dynamic".to_string(),
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_core::HypercubeFullyAdaptive;

    #[test]
    fn figure4_node_0101_of_the_4_cube() {
        let rf = HypercubeFullyAdaptive::new(4);
        let s = describe_node(&rf, 0b0101, 5);
        assert!(s.contains("Node 5 of hypercube-fully-adaptive(n=4)"));
        assert!(s.contains("central queue q0 (size 5)"));
        assert!(s.contains("central queue q1 (size 5)"));
        // Port 0 of 0101 is a downward channel (bit 0 set): B-static + dynamic.
        assert!(s.contains("out port 0 -> node 4: output buffers [static->q1, dynamic]"));
        // Port 1 is upward: A- and B-static.
        assert!(s.contains("out port 1 -> node 7: output buffers [static->q0, static->q1]"));
        // Symmetric incoming buffers exist.
        assert!(s.contains("in  port 1 <- node 7"));
    }
}
