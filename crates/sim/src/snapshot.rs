//! The `fadr-snapshot/1` checkpoint format: a line-oriented ASCII
//! serialization of the complete engine state at a pause point.
//!
//! # Format
//!
//! A snapshot is taken at the deterministic pause point "cycle `P`,
//! post-injection, pre-fault-application". At that point the engine
//! state is *minimal*: cross-shard mailboxes are empty, every in-flight
//! packet exists exactly once (in a central queue, an injection buffer,
//! or an output/input buffer), and all derived state (queue lengths,
//! channel-pending counts, occupancy bitsets, cached routing options)
//! is a pure function of the packet placement plus the fault flags —
//! so none of it is stored; restore recomputes it.
//!
//! One record per line, space-separated decimal fields:
//!
//! ```text
//! fadr-snapshot/1
//! meta <free-form single-line label>
//! cfg <capacity> <seed> <max_cycles> <fill_order> <track_occ> <check_min> <tw>
//! layout <num_nodes> <num_classes> <num_buffers> <num_channels>
//! state <cycle> <next_uid> <delivered> <dropped> <minviol>
//! packets <count>
//! p <loc> <arg> <src> <dst> <uid> <hops> <inject> <enq> <moved> <class> <next_class> <esc> <msg words…>
//! chan_rr <count> <values…>
//! fail <count> [<chan> <count>]…
//! stats <count> <sum> <min|-> <max|-> <saturated> <npairs> [<latency> <count>]…
//! occupancy <samples> <nqueues> <max…> <sum…>        (only when tracked)
//! throughput <window> <saturated> <nwindows> <f64-bits-hex…>   (optional)
//! progress static <lost> <n> <next_idx…>
//! progress dynamic <attempts> <injected>
//! end
//! ```
//!
//! Packet `<loc>` is `q` (central queue of node `arg`, lines in FIFO
//! order), `i` (injection buffer of node `arg`), `o`/`n` (output/input
//! buffer `arg`). Packet lines appear in a canonical order — all queued
//! packets by node, then injection buffers by node, then output and
//! input buffers by ascending buffer id — so a sharded checkpoint
//! (assembled piecewise from the owning shards) is **byte-identical**
//! to the sequential engine's at the same cycle. Message routing state
//! is encoded via [`fadr_qdg::SnapshotMsg`] words.
//!
//! The parser validates lengths and field ranges and fails loudly on
//! mismatch: resuming from a corrupted snapshot must not silently turn
//! into a different run.

use fadr_metrics::{Histogram, LatencyStats, TimeSeries};
use fadr_qdg::SnapshotMsg;

use crate::engine::{OccupancyProbe, RunProgress};
use crate::{FillOrder, SimConfig};

/// Format magic of the only supported version.
pub(crate) const MAGIC: &str = "fadr-snapshot/1";

/// Where a serialized packet sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Loc {
    /// Central queue of the node (class is the packet's `class` field);
    /// records restore in FIFO order.
    Queue(u32),
    /// Injection buffer of the node.
    Inj(u32),
    /// Output buffer by global buffer id.
    Out(u32),
    /// Input buffer by global buffer id.
    In(u32),
}

/// One in-flight packet, location plus full per-packet state.
#[derive(Debug, Clone)]
pub(crate) struct PacketRec<M> {
    pub(crate) loc: Loc,
    pub(crate) src: u32,
    pub(crate) dst: u32,
    pub(crate) uid: u64,
    pub(crate) hops: u16,
    pub(crate) inject_cycle: u64,
    pub(crate) enqueued_at: u64,
    pub(crate) moved_at: u64,
    pub(crate) class: u8,
    pub(crate) next_class: u8,
    pub(crate) escape: bool,
    pub(crate) msg: M,
}

/// A fully parsed snapshot, ready to load into an engine.
#[derive(Debug)]
pub(crate) struct ParsedSnapshot<M> {
    pub(crate) meta: String,
    pub(crate) cfg: SimConfig,
    /// `(num_nodes, num_classes, num_buffers, num_channels)` the
    /// snapshot was taken against.
    pub(crate) dims: (usize, usize, usize, usize),
    pub(crate) cycle: u64,
    pub(crate) next_uid: u64,
    pub(crate) delivered: u64,
    pub(crate) dropped: u64,
    pub(crate) minviol: u64,
    pub(crate) packets: Vec<PacketRec<M>>,
    pub(crate) chan_rr: Vec<u16>,
    /// Sparse flaky-link consecutive-down counters.
    pub(crate) fail: Vec<(u32, u32)>,
    pub(crate) stats: LatencyStats,
    pub(crate) occupancy: Option<OccupancyProbe>,
    pub(crate) throughput: Option<TimeSeries>,
    pub(crate) progress: RunProgress,
}

/// Everything the writer needs beyond the packet lines (the caller —
/// sequential engine or sharded driver — computes these; for a sharded
/// run they are the *merged* totals, which is what makes the output
/// byte-identical to the sequential engine's).
pub(crate) struct Globals<'a> {
    pub(crate) cfg: &'a SimConfig,
    pub(crate) dims: (usize, usize, usize, usize),
    pub(crate) cycle: u64,
    pub(crate) next_uid: u64,
    pub(crate) delivered: u64,
    pub(crate) dropped: u64,
    pub(crate) minviol: u64,
    pub(crate) chan_rr: Vec<u16>,
    pub(crate) fail: Vec<(u32, u32)>,
    pub(crate) stats: &'a LatencyStats,
    pub(crate) occupancy: Option<&'a OccupancyProbe>,
    pub(crate) throughput: Option<&'a TimeSeries>,
}

fn fill_order_code(f: FillOrder) -> u8 {
    match f {
        FillOrder::LowToHigh => 0,
        FillOrder::HighToLow => 1,
        FillOrder::Rotating => 2,
    }
}

fn fill_order_from(code: u64) -> Option<FillOrder> {
    match code {
        0 => Some(FillOrder::LowToHigh),
        1 => Some(FillOrder::HighToLow),
        2 => Some(FillOrder::Rotating),
        _ => None,
    }
}

/// Assemble the full snapshot text around pre-rendered packet lines.
pub(crate) fn assemble(
    meta: &str,
    g: &Globals<'_>,
    packet_count: usize,
    packet_lines: &str,
    progress: &RunProgress,
) -> String {
    assert!(!meta.contains('\n'), "snapshot meta must be a single line");
    let mut out = String::with_capacity(packet_lines.len() + 1024);
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("meta {meta}\n"));
    let c = g.cfg;
    out.push_str(&format!(
        "cfg {} {} {} {} {} {} {}\n",
        c.queue_capacity,
        c.seed,
        c.max_cycles,
        fill_order_code(c.fill_order),
        u8::from(c.track_occupancy),
        u8::from(c.check_minimality),
        c.throughput_window,
    ));
    let (n, nc, nb, nch) = g.dims;
    out.push_str(&format!("layout {n} {nc} {nb} {nch}\n"));
    out.push_str(&format!(
        "state {} {} {} {} {}\n",
        g.cycle, g.next_uid, g.delivered, g.dropped, g.minviol
    ));
    out.push_str(&format!("packets {packet_count}\n"));
    out.push_str(packet_lines);
    out.push_str(&format!("chan_rr {}", g.chan_rr.len()));
    for &v in &g.chan_rr {
        out.push_str(&format!(" {v}"));
    }
    out.push('\n');
    out.push_str(&format!("fail {}", g.fail.len()));
    for &(chan, cnt) in &g.fail {
        out.push_str(&format!(" {chan} {cnt}"));
    }
    out.push('\n');
    write_stats(&mut out, g.stats);
    if let Some(occ) = g.occupancy {
        out.push_str(&format!("occupancy {} {}", occ.samples, occ.max.len()));
        for &m in &occ.max {
            out.push_str(&format!(" {m}"));
        }
        for &s in &occ.sum {
            out.push_str(&format!(" {s}"));
        }
        out.push('\n');
    }
    if let Some(ts) = g.throughput {
        out.push_str(&format!(
            "throughput {} {} {}",
            ts.window(),
            u8::from(ts.saturated()),
            ts.windows().len()
        ));
        for &w in ts.windows() {
            out.push_str(&format!(" {:x}", w.to_bits()));
        }
        out.push('\n');
    }
    match progress {
        RunProgress::Static { next_idx, lost } => {
            out.push_str(&format!("progress static {lost} {}", next_idx.len()));
            for &i in next_idx {
                out.push_str(&format!(" {i}"));
            }
            out.push('\n');
        }
        RunProgress::Dynamic { attempts, injected } => {
            out.push_str(&format!("progress dynamic {attempts} {injected}\n"));
        }
    }
    out.push_str("end\n");
    out
}

fn write_stats(out: &mut String, stats: &LatencyStats) {
    let hist = stats.histogram();
    let pairs: Vec<(u64, u64)> = hist.iter().collect();
    out.push_str(&format!(
        "stats {} {} {} {} {} {}",
        stats.count(),
        stats.sum(),
        stats
            .min_opt()
            .map_or_else(|| "-".to_string(), |v| v.to_string()),
        stats
            .max_opt()
            .map_or_else(|| "-".to_string(), |v| v.to_string()),
        u8::from(hist.saturated()),
        pairs.len(),
    ));
    for (v, c) in pairs {
        out.push_str(&format!(" {v} {c}"));
    }
    out.push('\n');
}

/// Render one packet line (shared by both engines so their bytes agree).
pub(crate) fn push_packet_line<M: SnapshotMsg>(out: &mut String, r: &PacketRec<M>) {
    let (loc, arg) = match r.loc {
        Loc::Queue(v) => ('q', v),
        Loc::Inj(v) => ('i', v),
        Loc::Out(b) => ('o', b),
        Loc::In(b) => ('n', b),
    };
    out.push_str(&format!(
        "p {loc} {arg} {} {} {} {} {} {} {} {} {} {}",
        r.src,
        r.dst,
        r.uid,
        r.hops,
        r.inject_cycle,
        r.enqueued_at,
        r.moved_at,
        r.class,
        r.next_class,
        u8::from(r.escape),
    ));
    let mut words = Vec::new();
    r.msg.encode(&mut words);
    for w in words {
        out.push_str(&format!(" {w}"));
    }
    out.push('\n');
}

// --- Parsing ----------------------------------------------------------

struct Cursor<'a> {
    lines: std::str::Lines<'a>,
    lineno: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Result<&'a str, String> {
        self.lineno += 1;
        self.lines
            .next()
            .ok_or_else(|| format!("snapshot truncated at line {}", self.lineno))
    }

    fn err(&self, msg: &str) -> String {
        format!("snapshot line {}: {}", self.lineno, msg)
    }
}

fn parse_u64(tok: Option<&str>, cur: &Cursor<'_>, what: &str) -> Result<u64, String> {
    tok.ok_or_else(|| cur.err(&format!("missing {what}")))?
        .parse::<u64>()
        .map_err(|_| cur.err(&format!("bad {what}")))
}

fn parse_usize(tok: Option<&str>, cur: &Cursor<'_>, what: &str) -> Result<usize, String> {
    usize::try_from(parse_u64(tok, cur, what)?).map_err(|_| cur.err(&format!("bad {what}")))
}

fn parse_flag(tok: Option<&str>, cur: &Cursor<'_>, what: &str) -> Result<bool, String> {
    match parse_u64(tok, cur, what)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(cur.err(&format!("bad {what}"))),
    }
}

/// Expect `line` to start with `keyword` and return its remaining tokens.
fn fields<'a>(
    line: &'a str,
    keyword: &str,
    cur: &Cursor<'_>,
) -> Result<std::str::SplitWhitespace<'a>, String> {
    let mut toks = line.split_whitespace();
    if toks.next() != Some(keyword) {
        return Err(cur.err(&format!("expected `{keyword}` record")));
    }
    Ok(toks)
}

/// Parse a full `fadr-snapshot/1` document.
#[allow(clippy::too_many_lines)]
pub(crate) fn parse<M: SnapshotMsg>(text: &str) -> Result<ParsedSnapshot<M>, String> {
    let mut cur = Cursor {
        lines: text.lines(),
        lineno: 0,
    };
    if cur.next()? != MAGIC {
        return Err(format!("not a {MAGIC} snapshot"));
    }

    let meta_line = cur.next()?;
    let meta = meta_line
        .strip_prefix("meta")
        .ok_or_else(|| cur.err("expected `meta` record"))?
        .trim_start()
        .to_string();

    let line = cur.next()?;
    let mut t = fields(line, "cfg", &cur)?;
    let cfg = SimConfig {
        queue_capacity: parse_usize(t.next(), &cur, "queue capacity")?,
        seed: parse_u64(t.next(), &cur, "seed")?,
        max_cycles: parse_u64(t.next(), &cur, "max cycles")?,
        fill_order: fill_order_from(parse_u64(t.next(), &cur, "fill order")?)
            .ok_or_else(|| cur.err("bad fill order"))?,
        track_occupancy: parse_flag(t.next(), &cur, "track_occupancy")?,
        check_minimality: parse_flag(t.next(), &cur, "check_minimality")?,
        throughput_window: parse_u64(t.next(), &cur, "throughput window")?,
    };

    let line = cur.next()?;
    let mut t = fields(line, "layout", &cur)?;
    let dims = (
        parse_usize(t.next(), &cur, "num nodes")?,
        parse_usize(t.next(), &cur, "num classes")?,
        parse_usize(t.next(), &cur, "num buffers")?,
        parse_usize(t.next(), &cur, "num channels")?,
    );

    let line = cur.next()?;
    let mut t = fields(line, "state", &cur)?;
    let cycle = parse_u64(t.next(), &cur, "cycle")?;
    let next_uid = parse_u64(t.next(), &cur, "next uid")?;
    let delivered = parse_u64(t.next(), &cur, "delivered")?;
    let dropped = parse_u64(t.next(), &cur, "dropped")?;
    let minviol = parse_u64(t.next(), &cur, "minimality violations")?;

    let line = cur.next()?;
    let mut t = fields(line, "packets", &cur)?;
    let n_packets = parse_usize(t.next(), &cur, "packet count")?;
    let mut packets = Vec::with_capacity(n_packets);
    for _ in 0..n_packets {
        let line = cur.next()?;
        packets.push(parse_packet(line, &cur)?);
    }

    let line = cur.next()?;
    let mut t = fields(line, "chan_rr", &cur)?;
    let n_rr = parse_usize(t.next(), &cur, "chan_rr count")?;
    let mut chan_rr = Vec::with_capacity(n_rr);
    for _ in 0..n_rr {
        let v = parse_u64(t.next(), &cur, "chan_rr value")?;
        chan_rr.push(u16::try_from(v).map_err(|_| cur.err("chan_rr value overflows u16"))?);
    }

    let line = cur.next()?;
    let mut t = fields(line, "fail", &cur)?;
    let n_fail = parse_usize(t.next(), &cur, "fail count")?;
    let mut fail = Vec::with_capacity(n_fail);
    for _ in 0..n_fail {
        let chan = parse_u64(t.next(), &cur, "fail channel")?;
        let cnt = parse_u64(t.next(), &cur, "fail counter")?;
        fail.push((
            u32::try_from(chan).map_err(|_| cur.err("fail channel overflows u32"))?,
            u32::try_from(cnt).map_err(|_| cur.err("fail counter overflows u32"))?,
        ));
    }

    let line = cur.next()?;
    let stats = parse_stats(line, &cur)?;

    let mut line = cur.next()?;
    let mut occupancy = None;
    if line.starts_with("occupancy ") {
        occupancy = Some(parse_occupancy(line, &cur)?);
        line = cur.next()?;
    }
    let mut throughput = None;
    if line.starts_with("throughput ") {
        throughput = Some(parse_throughput(line, &cur)?);
        line = cur.next()?;
    }

    let mut t = fields(line, "progress", &cur)?;
    let progress = match t.next() {
        Some("static") => {
            let lost = parse_u64(t.next(), &cur, "lost")?;
            let n = parse_usize(t.next(), &cur, "next_idx count")?;
            let mut next_idx = Vec::with_capacity(n);
            for _ in 0..n {
                next_idx.push(parse_usize(t.next(), &cur, "next_idx value")?);
            }
            RunProgress::Static { next_idx, lost }
        }
        Some("dynamic") => RunProgress::Dynamic {
            attempts: parse_u64(t.next(), &cur, "attempts")?,
            injected: parse_u64(t.next(), &cur, "injected")?,
        },
        _ => return Err(cur.err("bad progress kind")),
    };

    if cur.next()? != "end" {
        return Err(cur.err("expected `end` record"));
    }

    Ok(ParsedSnapshot {
        meta,
        cfg,
        dims,
        cycle,
        next_uid,
        delivered,
        dropped,
        minviol,
        packets,
        chan_rr,
        fail,
        stats,
        occupancy,
        throughput,
        progress,
    })
}

fn parse_packet<M: SnapshotMsg>(line: &str, cur: &Cursor<'_>) -> Result<PacketRec<M>, String> {
    let mut t = fields(line, "p", cur)?;
    let loc_tok = t.next().ok_or_else(|| cur.err("missing packet loc"))?;
    let arg = parse_u64(t.next(), cur, "packet loc arg")?;
    let arg = u32::try_from(arg).map_err(|_| cur.err("packet loc arg overflows u32"))?;
    let loc = match loc_tok {
        "q" => Loc::Queue(arg),
        "i" => Loc::Inj(arg),
        "o" => Loc::Out(arg),
        "n" => Loc::In(arg),
        _ => return Err(cur.err("bad packet loc")),
    };
    let src = parse_u64(t.next(), cur, "src")?;
    let dst = parse_u64(t.next(), cur, "dst")?;
    let uid = parse_u64(t.next(), cur, "uid")?;
    let hops = parse_u64(t.next(), cur, "hops")?;
    let inject_cycle = parse_u64(t.next(), cur, "inject cycle")?;
    let enqueued_at = parse_u64(t.next(), cur, "enqueued_at")?;
    let moved_at = parse_u64(t.next(), cur, "moved_at")?;
    let class = parse_u64(t.next(), cur, "class")?;
    let next_class = parse_u64(t.next(), cur, "next class")?;
    let escape = parse_flag(t.next(), cur, "escape flag")?;
    let words: Vec<u64> = t
        .map(|w| w.parse::<u64>().map_err(|_| cur.err("bad msg word")))
        .collect::<Result<_, _>>()?;
    let msg = M::decode(&words).ok_or_else(|| cur.err("bad msg encoding"))?;
    Ok(PacketRec {
        loc,
        src: u32::try_from(src).map_err(|_| cur.err("src overflows u32"))?,
        dst: u32::try_from(dst).map_err(|_| cur.err("dst overflows u32"))?,
        uid,
        hops: u16::try_from(hops).map_err(|_| cur.err("hops overflows u16"))?,
        inject_cycle,
        enqueued_at,
        moved_at,
        class: u8::try_from(class).map_err(|_| cur.err("class overflows u8"))?,
        next_class: u8::try_from(next_class).map_err(|_| cur.err("next class overflows u8"))?,
        escape,
        msg,
    })
}

fn parse_stats(line: &str, cur: &Cursor<'_>) -> Result<LatencyStats, String> {
    let mut t = fields(line, "stats", cur)?;
    let count = parse_u64(t.next(), cur, "stats count")?;
    let sum = t
        .next()
        .ok_or_else(|| cur.err("missing stats sum"))?
        .parse::<u128>()
        .map_err(|_| cur.err("bad stats sum"))?;
    let parse_opt = |tok: Option<&str>, what: &str| -> Result<Option<u64>, String> {
        match tok {
            Some("-") => Ok(None),
            Some(s) => s
                .parse::<u64>()
                .map(Some)
                .map_err(|_| cur.err(&format!("bad {what}"))),
            None => Err(cur.err(&format!("missing {what}"))),
        }
    };
    let min = parse_opt(t.next(), "stats min")?;
    let max = parse_opt(t.next(), "stats max")?;
    let saturated = parse_flag(t.next(), cur, "stats saturation flag")?;
    let npairs = parse_usize(t.next(), cur, "stats pair count")?;
    let mut pairs = Vec::with_capacity(npairs);
    for _ in 0..npairs {
        let v = parse_u64(t.next(), cur, "stats latency")?;
        let c = parse_u64(t.next(), cur, "stats latency count")?;
        pairs.push((v, c));
    }
    Ok(LatencyStats::from_raw(
        count,
        sum,
        min,
        max,
        Histogram::from_counts(pairs, saturated),
    ))
}

fn parse_occupancy(line: &str, cur: &Cursor<'_>) -> Result<OccupancyProbe, String> {
    let mut t = fields(line, "occupancy", cur)?;
    let samples = parse_u64(t.next(), cur, "occupancy samples")?;
    let n = parse_usize(t.next(), cur, "occupancy queue count")?;
    let mut max = Vec::with_capacity(n);
    for _ in 0..n {
        let v = parse_u64(t.next(), cur, "occupancy max")?;
        max.push(u16::try_from(v).map_err(|_| cur.err("occupancy max overflows u16"))?);
    }
    let mut sum = Vec::with_capacity(n);
    for _ in 0..n {
        sum.push(parse_u64(t.next(), cur, "occupancy sum")?);
    }
    Ok(OccupancyProbe { max, sum, samples })
}

fn parse_throughput(line: &str, cur: &Cursor<'_>) -> Result<TimeSeries, String> {
    let mut t = fields(line, "throughput", cur)?;
    let window = parse_u64(t.next(), cur, "throughput window")?;
    if window == 0 {
        return Err(cur.err("zero throughput window"));
    }
    let saturated = parse_flag(t.next(), cur, "throughput saturation flag")?;
    let n = parse_usize(t.next(), cur, "throughput window count")?;
    if n > TimeSeries::MAX_WINDOWS {
        return Err(cur.err("too many throughput windows"));
    }
    let mut sums = Vec::with_capacity(n);
    for _ in 0..n {
        let bits = u64::from_str_radix(
            t.next().ok_or_else(|| cur.err("missing throughput sum"))?,
            16,
        )
        .map_err(|_| cur.err("bad throughput sum"))?;
        sums.push(f64::from_bits(bits));
    }
    Ok(TimeSeries::from_raw(window, sums, saturated))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny stand-in message: one word, value must be < 100.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct TestMsg(u64);

    impl SnapshotMsg for TestMsg {
        fn encode(&self, out: &mut Vec<u64>) {
            out.push(self.0);
        }
        fn decode(words: &[u64]) -> Option<Self> {
            match words {
                [v] if *v < 100 => Some(Self(*v)),
                _ => None,
            }
        }
    }

    fn sample_text() -> String {
        let mut stats = LatencyStats::new();
        stats.record(7);
        stats.record(11);
        let mut pkts = String::new();
        push_packet_line(
            &mut pkts,
            &PacketRec {
                loc: Loc::Queue(3),
                src: 1,
                dst: 5,
                uid: 42,
                hops: 2,
                inject_cycle: 10,
                enqueued_at: 12,
                moved_at: u64::MAX,
                class: 1,
                next_class: 0,
                escape: false,
                msg: TestMsg(9),
            },
        );
        let cfg = SimConfig::default();
        let g = Globals {
            cfg: &cfg,
            dims: (8, 2, 64, 24),
            cycle: 13,
            next_uid: 43,
            delivered: 40,
            dropped: 1,
            minviol: 0,
            chan_rr: vec![0, 3, 1],
            fail: vec![(2, 1)],
            stats: &stats,
            occupancy: None,
            throughput: None,
        };
        assemble(
            "test snapshot",
            &g,
            1,
            &pkts,
            &RunProgress::Static {
                next_idx: vec![5, 5, 6],
                lost: 2,
            },
        )
    }

    #[test]
    fn round_trips_through_text() {
        let text = sample_text();
        let snap: ParsedSnapshot<TestMsg> = parse(&text).expect("parses");
        assert_eq!(snap.meta, "test snapshot");
        assert_eq!(snap.cycle, 13);
        assert_eq!(snap.next_uid, 43);
        assert_eq!(snap.dims, (8, 2, 64, 24));
        assert_eq!(snap.packets.len(), 1);
        let p = &snap.packets[0];
        assert_eq!(p.loc, Loc::Queue(3));
        assert_eq!(p.uid, 42);
        assert_eq!(p.moved_at, u64::MAX);
        assert_eq!(p.msg, TestMsg(9));
        assert_eq!(snap.chan_rr, vec![0, 3, 1]);
        assert_eq!(snap.fail, vec![(2, 1)]);
        assert_eq!(snap.stats.count(), 2);
        assert_eq!(snap.stats.min_opt(), Some(7));
        assert_eq!(
            snap.progress,
            RunProgress::Static {
                next_idx: vec![5, 5, 6],
                lost: 2
            }
        );
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let text = sample_text();
        // Drop the trailing `end` line.
        let cut = text.rsplit_once("end\n").unwrap().0;
        assert!(parse::<TestMsg>(cut).is_err());
    }

    #[test]
    fn corrupt_msg_words_rejected() {
        let text = sample_text().replace(" 9\n", " 999\n");
        let err = parse::<TestMsg>(&text).unwrap_err();
        assert!(err.contains("msg"), "unexpected error: {err}");
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(parse::<TestMsg>("fadr-snapshot/9\n").is_err());
    }

    #[test]
    fn throughput_sums_round_trip_bitwise() {
        let mut ts = TimeSeries::new(10);
        ts.record(3, 1.0);
        ts.record(17, 0.1 + 0.2); // not exactly representable — bit fidelity matters
        let stats = LatencyStats::new();
        let cfg = SimConfig {
            throughput_window: 10,
            ..SimConfig::default()
        };
        let g = Globals {
            cfg: &cfg,
            dims: (2, 1, 4, 2),
            cycle: 20,
            next_uid: 0,
            delivered: 0,
            dropped: 0,
            minviol: 0,
            chan_rr: vec![0, 0],
            fail: vec![],
            stats: &stats,
            occupancy: None,
            throughput: Some(&ts),
        };
        let text = assemble(
            "ts",
            &g,
            0,
            "",
            &RunProgress::Dynamic {
                attempts: 5,
                injected: 4,
            },
        );
        let snap: ParsedSnapshot<TestMsg> = parse(&text).expect("parses");
        assert_eq!(snap.throughput.as_ref(), Some(&ts));
        assert_eq!(
            snap.progress,
            RunProgress::Dynamic {
                attempts: 5,
                injected: 4
            }
        );
    }
}
