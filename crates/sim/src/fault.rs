//! Deterministic, seeded fault injection: scheduled link/node/queue
//! failures applied identically by the sequential and sharded engines.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s, each firing at a fixed
//! routing cycle:
//!
//! * [`FaultKind::LinkDown`] — a directed channel dies permanently;
//!   packets staged on it are reabsorbed into the sender's central queue
//!   and rerouted;
//! * [`FaultKind::NodeDown`] — a node dies permanently with all incident
//!   channels; every packet resident at the node (queued, staged, in an
//!   input or injection buffer) is dropped, and packets staged *toward*
//!   it at live senders are reabsorbed;
//! * [`FaultKind::QueueFreeze`] — a central queue refuses all movement
//!   (in and out) for a bounded number of cycles, then thaws;
//! * [`FaultKind::FlakyLink`] — a directed channel drops a deterministic
//!   pseudo-random fraction of cycles until a deadline; a packet staged
//!   on it for [`FaultPlan::retry_limit`] consecutive down-cycles is
//!   reabsorbed and rerouted (bounded retry with re-queue backoff).
//!
//! All fault state is a pure function of `(plan, cycle)` plus
//! sender-local buffer occupancy, so a sharded run applies the exact
//! same faults at the exact same cycles as a sequential one — the
//! differential suite (`tests/fault_equivalence.rs`) asserts
//! bit-identical results.
//!
//! Plans serialize as JSON (schema `fadr-faults/1`); see
//! [`FaultPlan::to_json`] / [`FaultPlan::parse`].

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::layout::Layout;

/// Recorder kind code for a link-down event (see `Recorder::on_fault`).
pub const FAULT_LINK_DOWN: u8 = 0;
/// Recorder kind code for a node-down event.
pub const FAULT_NODE_DOWN: u8 = 1;
/// Recorder kind code for a queue-freeze event.
pub const FAULT_QUEUE_FREEZE: u8 = 2;
/// Recorder kind code for a flaky-link event.
pub const FAULT_FLAKY_LINK: u8 = 3;

/// One kind of scheduled fault; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The directed channel `from → to` dies permanently.
    LinkDown {
        /// Source node of the channel.
        from: u32,
        /// Target node of the channel.
        to: u32,
    },
    /// `node` dies permanently, with every incident channel.
    NodeDown {
        /// The failing node.
        node: u32,
    },
    /// Central queue `(node, class)` freezes for `duration` cycles.
    QueueFreeze {
        /// Node of the frozen queue.
        node: u32,
        /// Class of the frozen queue.
        class: u8,
        /// Cycles until the queue thaws.
        duration: u64,
    },
    /// The directed channel `from → to` drops ~`threshold`% of cycles
    /// (deterministically, from the plan seed) until cycle `until`.
    FlakyLink {
        /// Source node of the channel.
        from: u32,
        /// Target node of the channel.
        to: u32,
        /// First cycle at which the channel is reliable again.
        until: u64,
        /// Percentage (0..=100) of cycles the channel is down.
        threshold: u8,
    },
}

impl FaultKind {
    /// Recorder kind code (`FAULT_*`).
    pub fn code(self) -> u8 {
        match self {
            FaultKind::LinkDown { .. } => FAULT_LINK_DOWN,
            FaultKind::NodeDown { .. } => FAULT_NODE_DOWN,
            FaultKind::QueueFreeze { .. } => FAULT_QUEUE_FREEZE,
            FaultKind::FlakyLink { .. } => FAULT_FLAKY_LINK,
        }
    }

    /// The node whose shard applies this event's packet surgery and
    /// records it (the channel source for link faults).
    pub(crate) fn primary_node(self) -> u32 {
        match self {
            FaultKind::LinkDown { from, .. } | FaultKind::FlakyLink { from, .. } => from,
            FaultKind::NodeDown { node } | FaultKind::QueueFreeze { node, .. } => node,
        }
    }
}

/// A fault scheduled at a routing cycle. Events at cycle `c` take effect
/// after cycle `c`'s injections and before its fill pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Routing cycle the fault fires at.
    pub cycle: u64,
    /// What fails.
    pub kind: FaultKind,
}

/// A deterministic, seeded fault schedule (schema `fadr-faults/1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the flaky-link down-cycle hash (independent of the
    /// simulation's workload seed).
    pub seed: u64,
    /// Consecutive flaky down-cycles a staged packet waits before being
    /// reabsorbed and rerouted; 0 disables the retry bound (packets wait
    /// out the flaky window in place).
    pub retry_limit: u32,
    /// The scheduled faults (sorted by cycle on construction/parse).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given flaky seed and retry limit.
    pub fn new(seed: u64, retry_limit: u32) -> Self {
        Self {
            seed,
            retry_limit,
            events: Vec::new(),
        }
    }

    /// Append an event (re-sorting is deferred to [`FaultPlan::normalize`],
    /// which the engines call when the plan is attached).
    pub fn push(&mut self, cycle: u64, kind: FaultKind) {
        self.events.push(FaultEvent { cycle, kind });
    }

    /// Sort events by cycle (stable: same-cycle events keep insertion
    /// order, which both engines then process identically).
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.cycle);
    }

    /// Nodes dead after every event has fired.
    pub fn final_dead_nodes(&self, num_nodes: usize) -> Vec<bool> {
        let mut dead = vec![false; num_nodes];
        for e in &self.events {
            if let FaultKind::NodeDown { node } = e.kind {
                if (node as usize) < num_nodes {
                    dead[node as usize] = true;
                }
            }
        }
        dead
    }

    /// Directed `(from, to)` pairs permanently killed by `LinkDown`
    /// events (channels incident to dead nodes are additionally dead;
    /// combine with [`FaultPlan::final_dead_nodes`]).
    pub fn final_dead_links(&self) -> Vec<(u32, u32)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::LinkDown { from, to } => Some((from, to)),
                _ => None,
            })
            .collect()
    }

    /// Serialize as JSON (schema `fadr-faults/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\": \"fadr-faults/1\", ");
        let _ = write!(
            out,
            "\"seed\": {}, \"retry_limit\": {}, \"events\": [",
            self.seed, self.retry_limit
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"cycle\": {}, ", e.cycle);
            match e.kind {
                FaultKind::LinkDown { from, to } => {
                    let _ = write!(
                        out,
                        "\"kind\": \"link_down\", \"from\": {from}, \"to\": {to}"
                    );
                }
                FaultKind::NodeDown { node } => {
                    let _ = write!(out, "\"kind\": \"node_down\", \"node\": {node}");
                }
                FaultKind::QueueFreeze {
                    node,
                    class,
                    duration,
                } => {
                    let _ = write!(
                        out,
                        "\"kind\": \"queue_freeze\", \"node\": {node}, \"class\": {class}, \"duration\": {duration}"
                    );
                }
                FaultKind::FlakyLink {
                    from,
                    to,
                    until,
                    threshold,
                } => {
                    let _ = write!(
                        out,
                        "\"kind\": \"flaky_link\", \"from\": {from}, \"to\": {to}, \"until\": {until}, \"threshold\": {threshold}"
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parse a `fadr-faults/1` JSON document. Events are sorted by cycle.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        let mut plan = FaultPlan::new(0, 0);
        let mut saw_schema = false;
        p.expect(b'{')?;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => {
                    let s = p.string()?;
                    if s != "fadr-faults/1" {
                        return Err(format!("unsupported schema {s:?} (want fadr-faults/1)"));
                    }
                    saw_schema = true;
                }
                "seed" => plan.seed = p.u64()?,
                "retry_limit" => {
                    plan.retry_limit = u32::try_from(p.u64()?)
                        .map_err(|_| "retry_limit out of range".to_string())?;
                }
                "events" => {
                    p.expect(b'[')?;
                    p.skip_ws();
                    if !p.eat(b']') {
                        loop {
                            plan.events.push(parse_event(&mut p)?);
                            p.skip_ws();
                            if p.eat(b']') {
                                break;
                            }
                            p.expect(b',')?;
                        }
                    }
                }
                other => return Err(format!("unknown key {other:?}")),
            }
            p.skip_ws();
            if !p.eat(b',') {
                p.expect(b'}')?;
                break;
            }
        }
        p.skip_ws();
        if p.i != p.b.len() {
            return Err("trailing data after fault plan".into());
        }
        if !saw_schema {
            return Err("missing \"schema\" key".into());
        }
        plan.normalize();
        Ok(plan)
    }
}

fn parse_event(p: &mut Parser<'_>) -> Result<FaultEvent, String> {
    let mut cycle: Option<u64> = None;
    let mut kind: Option<String> = None;
    let mut fields: HashMap<String, u64> = HashMap::new();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "cycle" => cycle = Some(p.u64()?),
            "kind" => kind = Some(p.string()?),
            _ => {
                fields.insert(key, p.u64()?);
            }
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.expect(b'}')?;
            break;
        }
    }
    let cycle = cycle.ok_or("event missing \"cycle\"")?;
    let kind = kind.ok_or("event missing \"kind\"")?;
    let get = |name: &str| -> Result<u64, String> {
        fields
            .get(name)
            .copied()
            .ok_or_else(|| format!("{kind} event missing {name:?}"))
    };
    let get32 = |name: &str| -> Result<u32, String> {
        u32::try_from(get(name)?).map_err(|_| format!("{name} out of range"))
    };
    let get8 = |name: &str| -> Result<u8, String> {
        u8::try_from(get(name)?).map_err(|_| format!("{name} out of range"))
    };
    let kind = match kind.as_str() {
        "link_down" => FaultKind::LinkDown {
            from: get32("from")?,
            to: get32("to")?,
        },
        "node_down" => FaultKind::NodeDown {
            node: get32("node")?,
        },
        "queue_freeze" => FaultKind::QueueFreeze {
            node: get32("node")?,
            class: get8("class")?,
            duration: get("duration")?,
        },
        "flaky_link" => {
            let threshold = get8("threshold")?;
            if threshold > 100 {
                return Err("flaky_link threshold must be 0..=100".into());
            }
            FaultKind::FlakyLink {
                from: get32("from")?,
                to: get32("to")?,
                until: get("until")?,
                threshold,
            }
        }
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    Ok(FaultEvent { cycle, kind })
}

/// Minimal JSON scanner for the flat `fadr-faults/1` shape (objects,
/// arrays, strings without escapes, unsigned integers).
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, ch: u8) -> bool {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == ch {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        if self.eat(ch) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} of fault plan",
                char::from(ch),
                self.i
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            if self.b[self.i] == b'\\' {
                return Err("escape sequences are not supported in fault plans".into());
            }
            self.i += 1;
        }
        if self.i == self.b.len() {
            return Err("unterminated string".into());
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "invalid UTF-8 in string".to_string())?
            .to_string();
        self.i += 1;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "number out of range".to_string())
    }
}

/// Whether flaky channel `chan` is down at `cycle`: a pure hash of
/// `(seed, chan, cycle)` compared against the percentage threshold, so
/// every shard (and both engines) agree without communication.
fn flaky_down(seed: u64, chan: u32, cycle: u64, threshold: u8) -> bool {
    // SplitMix64 over the mixed inputs.
    let mut z = seed
        ^ u64::from(chan).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ cycle.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 100) < u64::from(threshold)
}

/// Per-run mutable fault state, rebuilt from the plan on every
/// `Simulator::reset`. One instance per (shard) simulator; all flag
/// state (dead channels/nodes, freezes, flaky windows) is replicated
/// identically across shards, while packet surgery is gated on node
/// ownership by the caller.
pub(crate) struct FaultState {
    pub(crate) plan: Arc<FaultPlan>,
    /// Index of the next unapplied event (events are cycle-sorted).
    pub(crate) next_event: usize,
    chan_dead: Vec<bool>,
    node_dead: Vec<bool>,
    /// Queue `node * num_classes + class` is frozen while
    /// `cycle < frozen_until[q]`.
    frozen_until: Vec<u64>,
    /// Active flaky window per channel: `(until, threshold)`.
    flaky: Vec<Option<(u64, u8)>>,
    /// Channels that ever had a flaky window (small; scanned per cycle).
    pub(crate) flaky_chans: Vec<u32>,
    /// Consecutive flaky down-cycles a packet has been staged on each
    /// channel (meaningful only on the shard owning the channel source).
    fail_count: Vec<u32>,
    /// Fast path: no channel is permanently dead yet.
    has_dead: bool,
    /// dst → distance-to-dst over the surviving graph (`u32::MAX` =
    /// unreachable), computed lazily and invalidated on permanent
    /// topology changes.
    dist: HashMap<u32, Vec<u32>>,
    /// Per node: incoming channel ids (reverse adjacency for the BFS).
    in_chans: Vec<Vec<u32>>,
}

impl FaultState {
    pub(crate) fn new(plan: Arc<FaultPlan>, layout: &Layout, num_classes: usize) -> Self {
        let n = layout.num_nodes;
        let mut in_chans = vec![Vec::new(); n];
        for chan in 0..layout.num_channels() {
            in_chans[layout.chan_to[chan] as usize].push(chan as u32);
        }
        Self {
            plan,
            next_event: 0,
            chan_dead: vec![false; layout.num_channels()],
            node_dead: vec![false; n],
            frozen_until: vec![0; n * num_classes],
            flaky: vec![None; layout.num_channels()],
            flaky_chans: Vec::new(),
            fail_count: vec![0; layout.num_channels()],
            has_dead: false,
            dist: HashMap::new(),
            in_chans,
        }
    }

    /// Whether any channel is permanently dead (gates option filtering).
    pub(crate) fn has_dead(&self) -> bool {
        self.has_dead
    }

    pub(crate) fn chan_dead(&self, chan: u32) -> bool {
        self.chan_dead[chan as usize]
    }

    /// Mark a channel permanently dead; returns whether it was alive.
    pub(crate) fn kill_chan(&mut self, chan: u32) -> bool {
        let was_alive = !self.chan_dead[chan as usize];
        self.chan_dead[chan as usize] = true;
        self.has_dead = true;
        was_alive
    }

    pub(crate) fn is_node_dead(&self, v: usize) -> bool {
        self.node_dead[v]
    }

    /// Mark a node permanently dead; returns whether it was alive.
    pub(crate) fn kill_node(&mut self, v: usize) -> bool {
        let was_alive = !self.node_dead[v];
        self.node_dead[v] = true;
        was_alive
    }

    /// Freeze queue `q` until `until` (extends an active freeze).
    pub(crate) fn freeze(&mut self, q: usize, until: u64) {
        self.frozen_until[q] = self.frozen_until[q].max(until);
    }

    pub(crate) fn frozen(&self, q: usize, cycle: u64) -> bool {
        cycle < self.frozen_until[q]
    }

    /// Open (or extend) a flaky window on a channel.
    pub(crate) fn set_flaky(&mut self, chan: u32, until: u64, threshold: u8) {
        if self.flaky[chan as usize].is_none() && !self.flaky_chans.contains(&chan) {
            self.flaky_chans.push(chan);
        }
        self.flaky[chan as usize] = Some((until, threshold));
    }

    /// Expire a flaky window whose deadline passed; returns the active
    /// window otherwise.
    pub(crate) fn flaky_window(&mut self, chan: u32, cycle: u64) -> Option<(u64, u8)> {
        match self.flaky[chan as usize] {
            Some((until, _)) if cycle >= until => {
                self.flaky[chan as usize] = None;
                self.fail_count[chan as usize] = 0;
                None
            }
            w => w,
        }
    }

    /// Whether the flaky hash declares `chan` down at `cycle` (only
    /// meaningful while a window is active).
    pub(crate) fn flaky_down_at(&self, chan: u32, cycle: u64, threshold: u8) -> bool {
        flaky_down(self.plan.seed, chan, cycle, threshold)
    }

    /// Whether `chan` refuses traffic at `cycle` (dead, or flaky-down).
    pub(crate) fn link_blocked(&self, chan: u32, cycle: u64) -> bool {
        if self.chan_dead[chan as usize] {
            return true;
        }
        match self.flaky[chan as usize] {
            Some((until, threshold)) if cycle < until => self.flaky_down_at(chan, cycle, threshold),
            _ => false,
        }
    }

    /// Bump the consecutive-down counter for a staged channel; returns
    /// true when the retry limit is reached (and resets the counter).
    pub(crate) fn count_fail(&mut self, chan: u32) -> bool {
        self.fail_count[chan as usize] += 1;
        if self.fail_count[chan as usize] >= self.plan.retry_limit {
            self.fail_count[chan as usize] = 0;
            true
        } else {
            false
        }
    }

    /// Reset the consecutive-down counter (channel drained or crossed).
    pub(crate) fn reset_fail(&mut self, chan: u32) {
        self.fail_count[chan as usize] = 0;
    }

    /// Non-zero consecutive-down counters as `(chan, count)`, ascending
    /// by channel — the only per-run fault state a checkpoint must carry
    /// (dead/frozen/flaky flags are replayed from the plan on restore).
    pub(crate) fn fail_counts(&self) -> Vec<(u32, u32)> {
        self.fail_count
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(chan, &c)| (chan as u32, c))
            .collect()
    }

    /// Restore one consecutive-down counter from a checkpoint; false if
    /// the channel id is out of range.
    pub(crate) fn set_fail_count(&mut self, chan: u32, count: u32) -> bool {
        match self.fail_count.get_mut(chan as usize) {
            Some(slot) => {
                *slot = count;
                true
            }
            None => false,
        }
    }

    /// Invalidate the surviving-graph distance cache (call on any
    /// permanent topology change).
    pub(crate) fn clear_distances(&mut self) {
        self.dist.clear();
    }

    /// Ensure the distance-to-`dst` table over the surviving graph is
    /// cached (reverse BFS from `dst` over live channels between live
    /// nodes).
    pub(crate) fn ensure_distances(&mut self, dst: u32, layout: &Layout) {
        if self.dist.contains_key(&dst) {
            return;
        }
        let n = layout.num_nodes;
        let mut d = vec![u32::MAX; n];
        if !self.node_dead[dst as usize] {
            d[dst as usize] = 0;
            let mut frontier = vec![dst as usize];
            let mut next = Vec::new();
            let mut depth = 0u32;
            while !frontier.is_empty() {
                depth += 1;
                for &v in &frontier {
                    for &c in &self.in_chans[v] {
                        if self.chan_dead[c as usize] {
                            continue;
                        }
                        let u = layout.chan_from[c as usize] as usize;
                        if self.node_dead[u] || d[u] != u32::MAX {
                            continue;
                        }
                        d[u] = depth;
                        next.push(u);
                    }
                }
                frontier.clear();
                std::mem::swap(&mut frontier, &mut next);
            }
        }
        self.dist.insert(dst, d);
    }

    /// The cached distance table for `dst` ([`FaultState::ensure_distances`]
    /// must have run).
    pub(crate) fn distances(&self, dst: u32) -> &[u32] {
        self.dist.get(&dst).expect("distance table ensured")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        let mut plan = FaultPlan::new(42, 3);
        plan.push(10, FaultKind::LinkDown { from: 0, to: 1 });
        plan.push(
            4,
            FaultKind::QueueFreeze {
                node: 2,
                class: 0,
                duration: 8,
            },
        );
        plan.push(12, FaultKind::NodeDown { node: 5 });
        plan.push(
            0,
            FaultKind::FlakyLink {
                from: 3,
                to: 2,
                until: 40,
                threshold: 30,
            },
        );
        plan.normalize();
        plan
    }

    #[test]
    fn json_round_trip() {
        let plan = sample_plan();
        let json = plan.to_json();
        let back = FaultPlan::parse(&json).expect("round trip parses");
        assert_eq!(plan, back);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("{}").is_err(), "schema key is required");
        assert!(FaultPlan::parse("{\"schema\": \"fadr-faults/2\"}").is_err());
        assert!(FaultPlan::parse(
            "{\"schema\": \"fadr-faults/1\", \"events\": [{\"cycle\": 1, \"kind\": \"melt\"}]}"
        )
        .is_err());
        assert!(
            FaultPlan::parse(
                "{\"schema\": \"fadr-faults/1\", \"events\": [{\"cycle\": 1, \"kind\": \"link_down\", \"from\": 0}]}"
            )
            .is_err(),
            "link_down needs both endpoints"
        );
    }

    #[test]
    fn parse_sorts_events_by_cycle() {
        let json = "{\"schema\": \"fadr-faults/1\", \"seed\": 1, \"retry_limit\": 2, \"events\": [\
                    {\"cycle\": 9, \"kind\": \"node_down\", \"node\": 1}, \
                    {\"cycle\": 3, \"kind\": \"link_down\", \"from\": 0, \"to\": 1}]}";
        let plan = FaultPlan::parse(json).unwrap();
        assert_eq!(plan.events[0].cycle, 3);
        assert_eq!(plan.events[1].cycle, 9);
    }

    #[test]
    fn flaky_hash_is_deterministic_and_threshold_scaled() {
        let down = |t: u8| (0..1000u64).filter(|&c| flaky_down(7, 3, c, t)).count();
        assert_eq!(down(0), 0);
        assert_eq!(down(100), 1000);
        let half = down(50);
        assert!(
            (350..=650).contains(&half),
            "50% threshold should down roughly half the cycles, got {half}"
        );
        // Pure function: same inputs, same answer.
        assert_eq!(flaky_down(7, 3, 123, 50), flaky_down(7, 3, 123, 50));
    }

    #[test]
    fn final_state_helpers() {
        let plan = sample_plan();
        let dead = plan.final_dead_nodes(8);
        assert!(dead[5]);
        assert_eq!(dead.iter().filter(|&&d| d).count(), 1);
        assert_eq!(plan.final_dead_links(), vec![(0, 1)]);
    }
}
