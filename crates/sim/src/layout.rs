//! Flat channel/buffer layout derived from a routing function's topology
//! and per-channel buffer-class declarations (§ 6).

use fadr_qdg::{BufferClass, RoutingFunction};

/// Sentinel for "no channel" / "empty buffer slot".
pub(crate) const NONE: u32 = u32::MAX;

/// Dense indexing of directed channels and their traffic-class buffers.
///
/// A *channel* is a directed `(node, port)` edge with at least one buffer
/// class; each of its classes owns one output-buffer slot (at the source
/// node) and one input-buffer slot (at the target node), which the engine
/// stores in two flat arrays indexed by the same *buffer id*.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Number of nodes.
    pub num_nodes: usize,
    /// `max_ports` of the topology.
    pub max_ports: usize,
    /// `(node * max_ports + port) -> channel id` (or `NONE`).
    pub chan_of: Vec<u32>,
    /// Channel id → source node.
    pub chan_from: Vec<u32>,
    /// Channel id → target node.
    pub chan_to: Vec<u32>,
    /// Channel id → first buffer id.
    pub chan_buf_start: Vec<u32>,
    /// Channel id → number of buffer classes. `u16` because a channel may
    /// declare up to 257 classes (256 `Static` levels plus `Dynamic`),
    /// which overflows `u8`.
    pub chan_buf_len: Vec<u16>,
    /// Buffer id → traffic class.
    pub buf_class: Vec<BufferClass>,
    /// Per node: its output-buffer ids in fill order
    /// (port ascending, classes in declared order).
    pub node_out_bufs: Vec<Vec<u32>>,
    /// Per node: incoming buffer ids (input buffers located at this node).
    pub node_in_bufs: Vec<Vec<u32>>,
    /// Buffer id → position within its source node's `node_out_bufs`.
    pub buf_out_pos: Vec<u32>,
}

impl Layout {
    /// Build the layout for a routing function.
    pub fn new<R: RoutingFunction + ?Sized>(rf: &R) -> Self {
        let topo = rf.topology();
        let n = topo.num_nodes();
        let mp = topo.max_ports();
        let mut layout = Layout {
            num_nodes: n,
            max_ports: mp,
            chan_of: vec![NONE; n * mp],
            chan_from: Vec::new(),
            chan_to: Vec::new(),
            chan_buf_start: Vec::new(),
            chan_buf_len: Vec::new(),
            buf_class: Vec::new(),
            node_out_bufs: vec![Vec::new(); n],
            node_in_bufs: vec![Vec::new(); n],
            buf_out_pos: Vec::new(),
        };
        for node in 0..n {
            for port in 0..mp {
                let Some(to) = topo.neighbor(node, port) else {
                    continue;
                };
                let classes = rf.buffer_classes(node, port);
                if classes.is_empty() {
                    continue;
                }
                let chan = layout.chan_to.len() as u32;
                layout.chan_of[node * mp + port] = chan;
                layout.chan_from.push(node as u32);
                layout.chan_to.push(to as u32);
                layout.chan_buf_start.push(layout.buf_class.len() as u32);
                layout
                    .chan_buf_len
                    .push(u16::try_from(classes.len()).expect("BufferClass bounds class count"));
                for class in classes {
                    let buf = layout.buf_class.len() as u32;
                    layout.buf_class.push(class);
                    layout
                        .buf_out_pos
                        .push(layout.node_out_bufs[node].len() as u32);
                    layout.node_out_bufs[node].push(buf);
                    layout.node_in_bufs[to].push(buf);
                }
            }
        }
        layout
    }

    /// Total buffer count.
    pub fn num_buffers(&self) -> usize {
        self.buf_class.len()
    }

    /// Total channel count.
    pub fn num_channels(&self) -> usize {
        self.chan_to.len()
    }

    /// Channel id of `(node, port)`, if it exists.
    #[inline]
    pub fn chan(&self, node: usize, port: usize) -> Option<u32> {
        let c = self.chan_of[node * self.max_ports + port];
        (c != NONE).then_some(c)
    }

    /// Buffer id for `(node, port)` and traffic class `class`.
    ///
    /// Panics if the channel or class is not declared — the model checker
    /// (`fadr_qdg::verify::verify_structure`) guarantees declared classes
    /// cover every transition.
    #[inline]
    pub fn buffer(&self, node: usize, port: usize, class: BufferClass) -> u32 {
        let chan = self.chan_of[node * self.max_ports + port];
        debug_assert_ne!(chan, NONE, "no channel at ({node}, {port})");
        let start = self.chan_buf_start[chan as usize] as usize;
        let len = self.chan_buf_len[chan as usize] as usize;
        for (i, &c) in self.buf_class[start..start + len].iter().enumerate() {
            if c == class {
                return (start + i) as u32;
            }
        }
        panic!("buffer class {class:?} not declared on ({node}, {port})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadr_core::HypercubeFullyAdaptive;

    #[test]
    fn hypercube_layout_counts() {
        let rf = HypercubeFullyAdaptive::new(3);
        let l = Layout::new(&rf);
        assert_eq!(l.num_nodes, 8);
        // Every directed edge is a channel: 3 * 8 = 24.
        assert_eq!(l.num_channels(), 24);
        // Two buffer classes per channel (up: A+B static; down: B + dyn).
        assert_eq!(l.num_buffers(), 48);
        // Each node: 3 out-channels x 2 classes, and same incoming.
        for v in 0..8 {
            assert_eq!(l.node_out_bufs[v].len(), 6);
            assert_eq!(l.node_in_bufs[v].len(), 6);
        }
    }

    #[test]
    fn buffer_resolution_matches_declared_classes() {
        use fadr_qdg::BufferClass::{Dynamic, Static};
        let rf = HypercubeFullyAdaptive::new(3);
        let l = Layout::new(&rf);
        // Node 0, port 1 is an upward channel: Static(0) and Static(1).
        let b0 = l.buffer(0, 1, Static(0));
        let b1 = l.buffer(0, 1, Static(1));
        assert_ne!(b0, b1);
        // Node 7, port 0 is downward: Static(1) and Dynamic.
        let _ = l.buffer(7, 0, Static(1));
        let _ = l.buffer(7, 0, Dynamic);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_class_panics() {
        use fadr_qdg::BufferClass::Static;
        let rf = HypercubeFullyAdaptive::new(3);
        let l = Layout::new(&rf);
        // Downward channel has no Static(0).
        let _ = l.buffer(7, 0, Static(0));
    }

    #[test]
    fn layout_supports_more_than_255_classes_per_channel() {
        use fadr_qdg::{QueueId, Transition};
        use fadr_topology::{Hypercube, NodeId, Port, Topology};

        // Degenerate routing function declaring the maximum possible number
        // of buffer classes on every channel: all 256 `Static` levels plus
        // `Dynamic` = 257, which overflowed the former `u8` channel width.
        struct ManyClasses(Hypercube);
        impl RoutingFunction for ManyClasses {
            type Msg = NodeId;
            fn topology(&self) -> &dyn Topology {
                &self.0
            }
            fn num_classes(&self) -> usize {
                256
            }
            fn initial_msg(&self, _src: NodeId, dst: NodeId) -> NodeId {
                dst
            }
            fn destination(&self, msg: &NodeId) -> NodeId {
                *msg
            }
            fn deliverable(&self, node: NodeId, msg: &NodeId) -> bool {
                node == *msg
            }
            fn for_each_transition(
                &self,
                _at: QueueId,
                _msg: &NodeId,
                _f: &mut dyn FnMut(Transition<NodeId>),
            ) {
            }
            fn buffer_classes(&self, _node: NodeId, _port: Port) -> Vec<BufferClass> {
                let mut classes: Vec<BufferClass> =
                    (0..=u8::MAX).map(BufferClass::Static).collect();
                classes.push(BufferClass::Dynamic);
                classes
            }
            fn is_minimal(&self) -> bool {
                false
            }
            fn max_hops(&self) -> usize {
                1
            }
            fn name(&self) -> String {
                "many-classes".into()
            }
        }

        let rf = ManyClasses(Hypercube::new(1));
        let l = Layout::new(&rf);
        assert_eq!(l.num_channels(), 2);
        assert_eq!(l.chan_buf_len, vec![257, 257]);
        assert_eq!(l.num_buffers(), 2 * 257);
        assert_eq!(l.buffer(0, 0, BufferClass::Static(255)), 255);
        assert_eq!(l.buffer(0, 0, BufferClass::Dynamic), 256);
    }

    #[test]
    fn out_positions_invert_out_lists() {
        let rf = HypercubeFullyAdaptive::new(4);
        let l = Layout::new(&rf);
        for v in 0..l.num_nodes {
            for (pos, &b) in l.node_out_bufs[v].iter().enumerate() {
                assert_eq!(l.buf_out_pos[b as usize] as usize, pos);
            }
        }
    }
}
