//! Cycle-accurate packet-routing simulator implementing the node model of
//! the paper's § 6 and the simulation methodology of § 7.1.
//!
//! # The node model
//!
//! Every node has a size-1 **injection buffer**, an unbounded **delivery
//! queue**, and one bounded **central queue** per class of the routing
//! algorithm (size 5 in the paper). Every directed physical channel
//! carries one **output buffer** (at the sender) and one **input buffer**
//! (at the receiver) *per traffic class*: one pair per target queue class
//! for static links, plus a single pair for dynamic traffic (§ 6).
//!
//! # The routing cycle (§ 7.1)
//!
//! Each routing cycle consists of a node cycle and a link cycle:
//!
//! 1. **node fill** — each node fills its empty output buffers from low to
//!    high dimensions, taking messages from the central queues in FIFO
//!    order (the first message in FIFO order wanting a buffer gets it);
//!    a message moves at most once per cycle;
//! 2. **link** — each directed channel forwards one packet whose
//!    corresponding input buffer on the far side is empty, round-robin
//!    among its traffic-class buffers;
//! 3. **node read** — each node moves packets from its input buffers and
//!    its injection buffer into the required central queue if there is
//!    room, with rotating (fair) priority; packets whose routing state
//!    says "deliver" go straight to the delivery queue.
//!
//! It therefore takes a message two routing steps to traverse a node
//! (input buffer → queue, then queue → output buffer), and the paper
//! counts node activities as two time cycles: reported latency is
//! `2 · (delivery_cycle − injection_cycle) + 1` time cycles, which equals
//! `2 · hops + 1` for an uncontended route — matching Table 2's exact
//! `2n + 1` for Complement with one packet per node.
//!
//! The simulator is deterministic given the RNG seed; randomness is used
//! only for Bernoulli injection (λ < 1) and workload destination draws.
//!
//! # Observability
//!
//! The engine is generic over a [`Recorder`] — an event listener invoked
//! at every packet injection, queue entry/exit, link traversal (tagged
//! static/dynamic with its `q_A`/`q_B` class transition), stutter, block,
//! and delivery, plus an end-of-cycle hook that can abort a run. The
//! default [`NoRecorder`] is a zero-sized no-op whose empty inline hooks
//! compile away entirely, so an uninstrumented `Simulator::new(..)` pays
//! nothing. Attach sinks with [`Simulator::with_recorder`] — see
//! [`SinkSet`] for the stock counter/trace/watchdog sinks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod fault;
mod lanes;
mod layout;
pub mod node_design;
mod partition;
mod sharded;
pub mod snapshot;
mod store;

pub use engine::{
    DynamicOutcome, DynamicResult, OccupancyProbe, RunProgress, Simulator, StaticOutcome,
    StaticResult, StopReason,
};
pub use fadr_metrics::{
    Control, CounterSink, NoRecorder, PartitionStats, Recorder, ShardRecorder, SinkSet,
    StallReport, TraceSink, TraceState, WatchdogSink,
};
pub use fadr_qdg::SnapshotMsg;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use lanes::{lane_seed, lane_seeds, LaneSim};
pub use layout::Layout;
pub use partition::{Partition, PartitionError, PartitionStrategy};
pub use sharded::{ShardPanicked, ShardedSimulator};

/// Simulator configuration (§ 7.1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Capacity of each central queue (`q_A`/`q_B` size; the paper
    /// fixes 5). A capacity of 0 deliberately wedges the network —
    /// packets can never leave their injection buffers — which is useful
    /// for exercising the no-progress watchdog ([`WatchdogSink`]); any
    /// run without a watchdog will spin to `max_cycles`.
    pub queue_capacity: usize,
    /// RNG seed (workload draws and Bernoulli injection).
    pub seed: u64,
    /// Safety horizon for static runs (a deadlock-free algorithm always
    /// drains; hitting this cap indicates a bug and fails the run).
    pub max_cycles: u64,
    /// Order in which a node's output buffers are filled (ablation knob;
    /// the paper specifies low-to-high dimensions).
    pub fill_order: FillOrder,
    /// Sample per-queue occupancy each cycle (small overhead; powers the
    /// congestion-profile experiments).
    pub track_occupancy: bool,
    /// Count each packet's link hops and compare with the topology
    /// distance at delivery, exposing `minimality_violations()` — an
    /// at-scale check of the algorithms' minimality claims.
    pub check_minimality: bool,
    /// Record a delivered-packets time series with this window length
    /// (in routing cycles); 0 disables it.
    pub throughput_window: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 5,
            seed: 0x5EED,
            max_cycles: 10_000_000,
            fill_order: FillOrder::LowToHigh,
            track_occupancy: false,
            check_minimality: false,
            throughput_window: 0,
        }
    }
}

/// Output-buffer fill order within a node (§ 7.1 specifies
/// [`FillOrder::LowToHigh`]; the others exist for ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOrder {
    /// Low dimensions first (the paper's rule).
    LowToHigh,
    /// High dimensions first.
    HighToLow,
    /// Start position rotates by one each cycle, phase-offset per node
    /// (a hash of the node id) so the network doesn't prefer one
    /// dimension in lockstep.
    Rotating,
}
