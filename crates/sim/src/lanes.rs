//! `LaneSim`: a batched replication engine that runs R independent RNG
//! **lanes** of the same experiment over one shared topology.
//!
//! A λ-sweep point or a table row is only statistically meaningful when
//! replicated, and the naive way to replicate — R fresh [`Simulator`]s —
//! pays R times for everything that is actually *identical* across
//! replications. For a fixed routing function and layout, a packet's
//! whole routing future is a pure function of its `(node, class, msg)`
//! state (see [`crate::engine::push_move_options`]), and the set of such
//! states reachable from any injection is finite and small. `LaneSim`
//! therefore **precomputes the entire reachable state graph once** at
//! construction: every state's move options, each option's successor
//! *state index* (or a terminal marker when the hop delivers), and the
//! state's fill summary. The per-cycle engine then never hashes a key,
//! never clones a routing message, and never calls the routing function
//! at all — a packet is a dense `u32` state index, a hop is a table
//! lookup, and all R lanes share the one immutable table.
//!
//! # Layout and execution model
//!
//! Mutable state is **lane-major**: each lane owns a full [`LaneState`]
//! (packet store, queue counters, buffer occupancy, per-lane
//! latency/throughput sinks) while the routing function, the [`Layout`],
//! and the state table are shared and immutable. Per-packet state that
//! the fill/link/read phases touch every cycle is packed into one
//! 32-byte row ([`Hot`]) so a queue scan costs one cache line per
//! packet. Lanes run to completion one after another — on the
//! single-core target this keeps one lane's working set hot instead of
//! interleaving R of them — but nothing in the state layout prevents a
//! future interleaved or parallel schedule.
//!
//! # Bit-identity contract
//!
//! Lane `k` of a batched run is **bit-identical** to a standalone
//! sequential [`Simulator`] run configured with seed
//! [`lane_seed`]`(master, k)`: same delivered-packet journal, same
//! histograms, same occupancy probe. The lane step core re-implements
//! the engine's fill/link/read cycle with exactness-preserving
//! optimizations — the precomputed transition table above, and bitmask
//! iteration of fill candidates and occupied read slots, which visits
//! exactly the positions the sequential scan would visit, in the same
//! order, skipping only the no-op ones. The differential suite in
//! `tests/lane_equivalence.rs` and the fuzzer's lane axis enforce the
//! contract event-for-event.
//!
//! Lanes deliberately support no fault plans and no checkpoint/resume:
//! replication batches are for statistics, and both features interact
//! with global mutable state (escape routing, snapshot cursors) that
//! has no per-lane meaning. Use a plain [`Simulator`] for those.
//!
//! [`Simulator`]: crate::Simulator

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::Arc;

use rand::rngs::StdRng;

use fadr_metrics::{Control, LatencyStats, NoRecorder, Recorder, TimeSeries};
use fadr_qdg::{BufferClass, RoutingFunction};
use fadr_topology::NodeId;

use crate::engine::{
    draw, entry_class_of, node_rng, push_move_options, rotating_start, DynamicResult,
    OccupancyProbe, StaticResult, StopReason,
};
use crate::layout::{Layout, NONE};
use crate::store::{BitSet, MoveOpt};
use crate::{FillOrder, SimConfig};

/// Derive lane `k`'s RNG seed from a master seed.
///
/// The lane index is golden-ratio-spread and then passed through a full
/// SplitMix64 finalizer. The extra scramble matters: the engine's
/// per-node streams are seeded as `seed ^ golden(v)`, so a lane seed of
/// the bare form `master ^ golden(k)` could collide lane `k`'s node `v`
/// stream with lane `k'`'s node `v'` stream whenever
/// `golden(k) ^ golden(v) == golden(k') ^ golden(v')`. The finalizer
/// breaks that linear structure; the stream-independence tests check
/// the first 1024 draws of every pair.
pub fn lane_seed(master: u64, lane: usize) -> u64 {
    let mut z = master ^ (lane as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-lane seeds [`LaneSim::new`] derives from a master seed:
/// `lane_seed(master, k)` for `k` in `0..lanes`.
pub fn lane_seeds(master: u64, lanes: usize) -> Vec<u64> {
    (0..lanes).map(|k| lane_seed(master, k)).collect()
}

/// FxHash-style multiply-rotate hasher for the construction-time state
/// interner. The keys are tiny (`(node, class, msg)` tuples of
/// integers), so the default SipHash would dominate the build; this is
/// the classic compiler-style replacement — not DoS-resistant, which is
/// fine for keys the simulator itself generates.
#[derive(Clone, Copy, Default)]
struct FxBuild;

impl BuildHasher for FxBuild {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: 0 }
    }
}

struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Successor marker for "this hop delivers at the target node" (also
/// the pre-enqueue placeholder in a fresh packet's hot row).
const TERMINAL: u32 = u32::MAX;

/// One move option of a routing state: the output buffer it stages onto
/// (or [`NONE`] for an internal stutter), the successor state index
/// after the hop (or [`TERMINAL`]), the central-queue class on arrival —
/// and the successor state's row, denormalized inline so staging a
/// packet rewrites its hot row from this one record and the arrival
/// enqueue touches no table at all.
#[derive(Clone, Copy)]
#[repr(C)]
struct PackedOpt {
    /// Successor state's fill-position want mask (zero for [`TERMINAL`]).
    succ_wants: u64,
    next: u32,
    buf: u32,
    succ_opt_start: u32,
    succ_opt_len: u8,
    succ_stutters: u8,
    to_class: u8,
    _pad: u8,
}

/// Per-state row of the shared table: the option segment reference, the
/// state's central-queue class, and its memoized fill summary — the
/// mask of fill positions its options target at the owning node (valid
/// whenever the engine's `fast_fill` precondition holds) and the number
/// of internal (stutter) options.
#[derive(Clone, Copy)]
#[repr(C)]
struct StateRow {
    wants: u64,
    opt_start: u32,
    opt_len: u8,
    class: u8,
    stutters: u8,
    _pad: u8,
}

/// The shared immutable routing table: every `(node, class, msg)` state
/// reachable from any injection, enumerated by breadth-first closure at
/// construction. Rows and option segments are struct-of-arrays indexed
/// by dense state id; `inj[src * n + dst]` is the entry state of a
/// fresh `src → dst` packet. Everything here is a pure function of the
/// routing function and layout (fault-free engine), so all lanes — and
/// all runs — share one table with no synchronization or growth.
struct StateTable {
    rows: Vec<StateRow>,
    opts: Vec<PackedOpt>,
    inj: Vec<u32>,
    /// True when every state's link options sit in ascending
    /// fill-position order with one option per position (always, in
    /// practice): the option for want-bit `pos` is then
    /// `opts[opt_start + popcount(wants below pos)]` — one indexed load
    /// instead of a scan. Falls back to the scan otherwise.
    rank_ok: bool,
}

/// Construction-time interner: dense ids in first-sight order, with the
/// key list doubling as the BFS work queue (rows are expanded in id
/// order, and ids are only ever appended).
fn intern_state<M: Clone + Eq + Hash>(
    idx: &mut HashMap<(u32, u8, M), u32, FxBuild>,
    keys: &mut Vec<(u32, u8, M)>,
    node: u32,
    class: u8,
    msg: M,
) -> u32 {
    let fresh = keys.len() as u32;
    match idx.entry((node, class, msg)) {
        Entry::Occupied(e) => *e.get(),
        Entry::Vacant(e) => {
            keys.push(e.key().clone());
            e.insert(fresh);
            fresh
        }
    }
}

impl StateTable {
    fn build<R: RoutingFunction>(rf: &R, layout: &Layout, buf_chan: &[u32]) -> Self {
        let n = layout.num_nodes;
        let mut idx: HashMap<(u32, u8, R::Msg), u32, FxBuild> = HashMap::with_hasher(FxBuild);
        let mut keys: Vec<(u32, u8, R::Msg)> = Vec::new();
        let mut inj = vec![TERMINAL; n * n];
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let msg = rf.initial_msg(src, dst);
                let class = entry_class_of(rf, src, &msg);
                inj[src * n + dst] = intern_state(&mut idx, &mut keys, src as u32, class, msg);
            }
        }
        let mut rows: Vec<StateRow> = Vec::new();
        let mut opts: Vec<PackedOpt> = Vec::new();
        let mut scratch: Vec<MoveOpt<R::Msg>> = Vec::new();
        let mut rank_ok = true;
        // `keys` grows while we walk it: each expansion may intern new
        // successor states, which are expanded in turn (BFS order).
        let mut i = 0;
        while i < keys.len() {
            let (node, class, msg) = keys[i].clone();
            scratch.clear();
            push_move_options(rf, layout, node as usize, class, &msg, &mut scratch);
            assert!(
                !scratch.is_empty(),
                "queued packet with no moves (dead end)"
            );
            // Stable-sort link options into ascending fill-position
            // order, internal options last. This changes no observable
            // behavior — staging matches options by buffer, wanting
            // lists are per-position, and internals keep their relative
            // order — but makes the want mask's bit ranks line up with
            // the option segment for the indexed fast path.
            scratch.sort_by_key(|o| {
                if o.buf == NONE {
                    u32::MAX
                } else {
                    layout.buf_out_pos[o.buf as usize]
                }
            });
            rank_ok &= scratch
                .iter()
                .filter(|o| o.buf != NONE)
                .map(|o| layout.buf_out_pos[o.buf as usize])
                .try_fold(None::<u32>, |prev, pos| {
                    (pos < 64 && prev.is_none_or(|q| pos > q)).then_some(Some(pos))
                })
                .is_some();
            let opt_start = u32::try_from(opts.len()).expect("option table fits u32");
            let opt_len = u8::try_from(scratch.len()).expect("per-state fan-out fits u8");
            let mut wants = 0u64;
            let mut stutters = 0u8;
            for opt in scratch.drain(..) {
                debug_assert!(!opt.escape, "escape options only exist under faults");
                let next = if opt.buf == NONE {
                    // Internal stutter: stays at the node, may change
                    // class. The sequential engine recomputes options
                    // without a deliverability check here, so neither
                    // do we.
                    stutters += 1;
                    intern_state(&mut idx, &mut keys, node, opt.to_class, opt.next)
                } else {
                    let pos = layout.buf_out_pos[opt.buf as usize];
                    // Positions ≥ 64 only occur when the engine falls
                    // back to the slow fill scan, which never reads
                    // `wants`.
                    if pos < 64 {
                        wants |= 1u64 << pos;
                    }
                    let to = layout.chan_to[buf_chan[opt.buf as usize] as usize];
                    if rf.deliverable(to as usize, &opt.next) {
                        TERMINAL
                    } else {
                        intern_state(&mut idx, &mut keys, to, opt.to_class, opt.next)
                    }
                };
                opts.push(PackedOpt {
                    succ_wants: 0,
                    next,
                    buf: opt.buf,
                    succ_opt_start: 0,
                    succ_opt_len: 0,
                    succ_stutters: 0,
                    to_class: opt.to_class,
                    _pad: 0,
                });
            }
            rows.push(StateRow {
                wants,
                opt_start,
                opt_len,
                class,
                stutters,
                _pad: 0,
            });
            i += 1;
        }
        // Denormalization pass: successor rows exist only once the BFS
        // closes, so the inline copies are patched in afterwards.
        for o in &mut opts {
            if o.next != TERMINAL {
                let r = rows[o.next as usize];
                o.succ_wants = r.wants;
                o.succ_opt_start = r.opt_start;
                o.succ_opt_len = r.opt_len;
                o.succ_stutters = r.stutters;
            }
        }
        Self {
            rows,
            opts,
            inj,
            rank_ok,
        }
    }
}

/// Per-packet state touched by the fill/link/read phases every cycle,
/// packed into one 32-byte row. While the packet is queued, `state` is
/// its current routing state and `opt_*`/`wants`/`stutters` mirror that
/// state's row; once staged, `state` and `next_class` describe the
/// post-hop residence ([`TERMINAL`] = deliver on arrival) while the
/// option fields keep describing the old residence until re-enqueue.
#[derive(Clone, Copy)]
#[repr(C)]
struct Hot {
    wants: u64,
    /// Cycle of the packet's last move (enforces one move per cycle).
    moved_at: u64,
    opt_start: u32,
    state: u32,
    opt_len: u8,
    /// Central-queue class of the current residence (valid while
    /// queued; stale after staging, exactly like the sequential store).
    class: u8,
    /// Central-queue class on arrival (valid while staged).
    next_class: u8,
    /// Set while the packet sits in an output buffer, pending removal
    /// from its queue after the fill pass.
    staged: bool,
    /// Internal-option count of the current state (stutter multiplicity).
    stutters: u8,
    _pad: u8,
    /// Link hops taken so far (for the minimality check).
    hops: u16,
}

/// Struct-of-arrays slab of one lane's in-flight packets: the packed
/// hot row, plus cold columns touched only at injection and delivery.
/// Slots are recycled LIFO; uids are never recycled.
struct LaneStore {
    hot: Vec<Hot>,
    uid: Vec<u64>,
    src: Vec<u32>,
    dst: Vec<u32>,
    inject_cycle: Vec<u64>,
    free: Vec<u32>,
}

impl LaneStore {
    fn new() -> Self {
        Self {
            hot: Vec::new(),
            uid: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            inject_cycle: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, src: u32, dst: u32, uid: u64, cycle: u64) -> u32 {
        let hot = Hot {
            wants: 0,
            moved_at: u64::MAX,
            opt_start: 0,
            state: TERMINAL,
            opt_len: 0,
            class: 0,
            next_class: 0,
            staged: false,
            stutters: 0,
            _pad: 0,
            hops: 0,
        };
        if let Some(i) = self.free.pop() {
            let p = i as usize;
            self.hot[p] = hot;
            self.uid[p] = uid;
            self.src[p] = src;
            self.dst[p] = dst;
            self.inject_cycle[p] = cycle;
            i
        } else {
            self.hot.push(hot);
            self.uid.push(uid);
            self.src.push(src);
            self.dst.push(dst);
            self.inject_cycle.push(cycle);
            (self.hot.len() - 1) as u32
        }
    }

    fn release(&mut self, p: u32) {
        self.free.push(p);
    }

    fn clear(&mut self) {
        self.hot.clear();
        self.uid.clear();
        self.src.clear();
        self.dst.clear();
        self.inject_cycle.clear();
        self.free.clear();
    }
}

/// One lane's complete mutable state: a full replica of the sequential
/// engine's run state (lane-major — every column here is per-lane,
/// everything shared lives on [`LaneSim`]).
struct LaneState {
    queue_len: Vec<u32>,
    node_fifo: Vec<Vec<u32>>,
    /// Per-node count of queued packets whose current state has at
    /// least one internal (stutter) option — lets the fill pass skip
    /// stutter collection entirely at nodes with none, and stop its
    /// queue scan as soon as every available position is filled.
    stutter_cnt: Vec<u32>,
    outbuf: Vec<u32>,
    inbuf: Vec<u32>,
    in_occupied: Vec<u32>,
    /// Per-node bitmask of occupied input-buffer slots (bit `i` ⇔
    /// `inbuf[node_in_bufs[node][i]] != NONE`), maintained only when
    /// every node has at most 63 input buffers; the read pass then
    /// visits exactly the occupied slots in rotating order.
    arr_mask: Vec<u64>,
    chan_rr: Vec<u16>,
    chan_pending: Vec<u16>,
    inj_buf: Vec<u32>,
    store: LaneStore,
    out_occ: BitSet,
    in_occ: BitSet,
    chan_live: BitSet,
    cycle: u64,
    next_uid: u64,
    stats: LatencyStats,
    delivered: u64,
    occupancy: OccupancyProbe,
    minimality_violations: u64,
    throughput: Option<TimeSeries>,
}

impl LaneState {
    fn new(layout: &Layout, num_classes: usize) -> Self {
        let n = layout.num_nodes;
        Self {
            queue_len: vec![0; n * num_classes],
            node_fifo: vec![Vec::new(); n],
            stutter_cnt: vec![0; n],
            outbuf: vec![NONE; layout.num_buffers()],
            inbuf: vec![NONE; layout.num_buffers()],
            in_occupied: vec![0; n],
            arr_mask: vec![0; n],
            chan_rr: vec![0; layout.num_channels()],
            chan_pending: vec![0; layout.num_channels()],
            inj_buf: vec![NONE; n],
            store: LaneStore::new(),
            out_occ: BitSet::new(layout.num_buffers()),
            in_occ: BitSet::new(layout.num_buffers()),
            chan_live: BitSet::new(layout.num_channels()),
            cycle: 0,
            next_uid: 0,
            stats: LatencyStats::new(),
            delivered: 0,
            occupancy: OccupancyProbe::default(),
            minimality_violations: 0,
            throughput: None,
        }
    }

    /// Empty stand-in swapped into `LaneSim::lanes` while a lane's state
    /// is checked out into a run (a lane is only ever run by value to
    /// keep its borrows disjoint from the shared table's).
    fn placeholder() -> Self {
        Self {
            queue_len: Vec::new(),
            node_fifo: Vec::new(),
            stutter_cnt: Vec::new(),
            outbuf: Vec::new(),
            inbuf: Vec::new(),
            in_occupied: Vec::new(),
            arr_mask: Vec::new(),
            chan_rr: Vec::new(),
            chan_pending: Vec::new(),
            inj_buf: Vec::new(),
            store: LaneStore::new(),
            out_occ: BitSet::new(0),
            in_occ: BitSet::new(0),
            chan_live: BitSet::new(0),
            cycle: 0,
            next_uid: 0,
            stats: LatencyStats::new(),
            delivered: 0,
            occupancy: OccupancyProbe::default(),
            minimality_violations: 0,
            throughput: None,
        }
    }
}

/// Batched replication engine: R independent RNG lanes of the same
/// experiment over one shared precomputed routing table. See the module
/// docs for the layout, execution model, and bit-identity contract.
pub struct LaneSim<R: RoutingFunction> {
    rf: R,
    cfg: SimConfig,
    layout: Arc<Layout>,
    num_classes: usize,
    /// Buffer id → channel id (as in the sequential engine).
    buf_chan: Vec<u32>,
    /// Buffer id → its slot index in the *target* node's input-buffer
    /// list (feeds `arr_mask` maintenance in the link pass).
    buf_in_slot: Vec<u32>,
    /// Node → its first output buffer id (with `fast_fill`, fill
    /// position `pos` maps to buffer `first_out[node] + pos`).
    first_out: Vec<u32>,
    /// `node_in_bufs` flattened (`in_flat[in_start[node]..in_start[node + 1]]`),
    /// sparing the read pass a pointer chase per slot.
    in_flat: Vec<u32>,
    in_start: Vec<u32>,
    /// Every node's output buffers form a contiguous ascending id range
    /// of ≤ 64 buffers, so the fill pass can mask-iterate candidates.
    fast_fill: bool,
    /// Every node has ≤ 63 input buffers, so the read pass can
    /// mask-iterate occupied slots (bit `n_in` is the injection buffer).
    fast_read: bool,
    table: StateTable,
    seeds: Vec<u64>,
    lanes: Vec<LaneState>,
    // Scratch shared across lanes (lanes run one at a time). `wanting`
    // is only used by the slow fill path; the fast path selects stage
    // candidates by mask scan and needs no lists. `staging` holds one
    // node's (packet, position) fill decisions between the scan and the
    // mutation pass.
    wanting: Vec<Vec<u32>>,
    stutters: Vec<u32>,
    staging: Vec<(u32, u32)>,
}

impl<R: RoutingFunction> LaneSim<R> {
    /// Build a lane engine with `lanes` replication lanes whose seeds
    /// derive from `cfg.seed` via [`lane_seed`].
    pub fn new(rf: R, cfg: SimConfig, lanes: usize) -> Self {
        let seeds = lane_seeds(cfg.seed, lanes);
        Self::with_lane_seeds(rf, cfg, seeds)
    }

    /// Build a lane engine with explicit per-lane seeds (one lane per
    /// seed) — the hook that lets existing harness seed formulas (e.g.
    /// the table runner's per-rep seeds) map onto lanes bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn with_lane_seeds(rf: R, cfg: SimConfig, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "at least one lane");
        let layout = Arc::new(Layout::new(&rf));
        let num_classes = rf.num_classes();
        let max_out = layout.node_out_bufs.iter().map(Vec::len).max().unwrap_or(0);
        let mut buf_chan = vec![0u32; layout.num_buffers()];
        for chan in 0..layout.num_channels() {
            let start = layout.chan_buf_start[chan] as usize;
            let len = layout.chan_buf_len[chan] as usize;
            buf_chan[start..start + len].fill(chan as u32);
        }
        let mut buf_in_slot = vec![0u32; layout.num_buffers()];
        for bufs in &layout.node_in_bufs {
            for (i, &b) in bufs.iter().enumerate() {
                buf_in_slot[b as usize] = i as u32;
            }
        }
        let fast_fill = layout
            .node_out_bufs
            .iter()
            .all(|bufs| bufs.len() <= 64 && bufs.windows(2).all(|w| w[1] == w[0] + 1));
        let fast_read = layout.node_in_bufs.iter().all(|bufs| bufs.len() < 64);
        let first_out = layout
            .node_out_bufs
            .iter()
            .map(|bufs| bufs.first().copied().unwrap_or(0))
            .collect();
        let mut in_flat = Vec::new();
        let mut in_start = Vec::with_capacity(layout.num_nodes + 1);
        for bufs in &layout.node_in_bufs {
            in_start.push(in_flat.len() as u32);
            in_flat.extend_from_slice(bufs);
        }
        in_start.push(in_flat.len() as u32);
        let table = StateTable::build(&rf, &layout, &buf_chan);
        let lanes = (0..seeds.len())
            .map(|_| LaneState::new(&layout, num_classes))
            .collect();
        Self {
            rf,
            cfg,
            num_classes,
            buf_chan,
            buf_in_slot,
            first_out,
            in_flat,
            in_start,
            fast_fill,
            fast_read,
            table,
            seeds,
            lanes,
            wanting: vec![Vec::new(); max_out],
            stutters: Vec::new(),
            staging: Vec::new(),
            layout,
        }
    }

    /// Number of replication lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Number of nodes in the shared topology.
    pub fn num_nodes(&self) -> usize {
        self.layout.num_nodes
    }

    /// The routing function the lanes share.
    pub fn routing(&self) -> &R {
        &self.rf
    }

    /// The per-lane RNG seeds (lane `k`'s standalone-equivalent
    /// [`crate::SimConfig::seed`]).
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Distinct reachable `(node, class, msg)` routing states in the
    /// shared precomputed table (fixed at construction; a diagnostic
    /// for table size and precompute coverage).
    pub fn memo_entries(&self) -> usize {
        self.table.rows.len()
    }

    /// Lane `k`'s occupancy probe from its last run (empty unless
    /// [`crate::SimConfig::track_occupancy`] is set).
    pub fn lane_occupancy(&self, k: usize) -> &OccupancyProbe {
        &self.lanes[k].occupancy
    }

    /// Lane `k`'s minimality violations from its last run (only counted
    /// when [`crate::SimConfig::check_minimality`] is set).
    pub fn lane_minimality_violations(&self, k: usize) -> u64 {
        self.lanes[k].minimality_violations
    }

    /// Lane `k`'s delivered-packets time series from its last run, if
    /// [`crate::SimConfig::throughput_window`] was non-zero.
    pub fn lane_throughput(&self, k: usize) -> Option<&TimeSeries> {
        self.lanes[k].throughput.as_ref()
    }

    /// Run every lane's dynamic-injection experiment (the lane-batched
    /// analogue of [`Simulator::run_dynamic`]): lane `k` runs with the
    /// per-node RNG streams a sequential simulator seeded
    /// `self.seeds()[k]` would use, and the results are returned in lane
    /// order. `dest` must be memoryless (a pure function of its
    /// arguments and the RNG), as each lane evaluates it independently.
    ///
    /// [`Simulator::run_dynamic`]: crate::Simulator::run_dynamic
    pub fn run_dynamic(
        &mut self,
        lambda: f64,
        dest: impl FnMut(NodeId, &mut StdRng) -> NodeId,
        cycles: u64,
    ) -> Vec<DynamicResult> {
        let mut recs = vec![NoRecorder; self.lanes.len()];
        self.run_dynamic_recorded(lambda, dest, cycles, &mut recs)
    }

    /// [`LaneSim::run_dynamic`] with one attached [`Recorder`] per lane
    /// (`recs[k]` observes lane `k`, and only lane `k`).
    ///
    /// # Panics
    ///
    /// Panics if λ is outside `[0, 1]` or `recs.len() != num_lanes()`.
    pub fn run_dynamic_recorded<Rec: Recorder>(
        &mut self,
        lambda: f64,
        mut dest: impl FnMut(NodeId, &mut StdRng) -> NodeId,
        cycles: u64,
        recs: &mut [Rec],
    ) -> Vec<DynamicResult> {
        assert!((0.0..=1.0).contains(&lambda));
        assert_eq!(recs.len(), self.lanes.len(), "one recorder per lane");
        let mut out = Vec::with_capacity(self.lanes.len());
        for (k, rec) in recs.iter_mut().enumerate() {
            out.push(self.run_lane_dynamic(k, lambda, &mut dest, cycles, rec));
        }
        out
    }

    /// [`LaneSim::run_dynamic`] with a lane-aware destination function:
    /// `dest(k, src, rng)` draws lane `k`'s destination for an injection
    /// at `src`. This is the hook for workloads compiled per replication
    /// seed (e.g. the table runner's seeded leveled permutations), where
    /// each lane must draw from its own compiled pattern to stay
    /// bit-identical to the standalone sequential run.
    ///
    /// # Panics
    ///
    /// Panics if λ is outside `[0, 1]`.
    pub fn run_dynamic_indexed(
        &mut self,
        lambda: f64,
        mut dest: impl FnMut(usize, NodeId, &mut StdRng) -> NodeId,
        cycles: u64,
    ) -> Vec<DynamicResult> {
        assert!((0.0..=1.0).contains(&lambda));
        let mut out = Vec::with_capacity(self.lanes.len());
        for k in 0..self.lanes.len() {
            let mut lane_dest = |src: NodeId, rng: &mut StdRng| dest(k, src, rng);
            out.push(self.run_lane_dynamic(k, lambda, &mut lane_dest, cycles, &mut NoRecorder));
        }
        out
    }

    /// Run every lane's static-injection experiment (the lane-batched
    /// analogue of [`Simulator::run_static`]): lane `k` drains
    /// `backlogs[k]` (one per-node backlog per lane; static runs consume
    /// no engine RNG, so lanes differ only through their backlogs).
    ///
    /// # Panics
    ///
    /// Panics if `backlogs.len() != num_lanes()`.
    ///
    /// [`Simulator::run_static`]: crate::Simulator::run_static
    pub fn run_static(&mut self, backlogs: &[Vec<Vec<NodeId>>]) -> Vec<StaticResult> {
        let mut recs = vec![NoRecorder; self.lanes.len()];
        self.run_static_recorded(backlogs, &mut recs)
    }

    /// [`LaneSim::run_static`] with one attached [`Recorder`] per lane.
    ///
    /// # Panics
    ///
    /// Panics if `backlogs.len()` or `recs.len()` is not `num_lanes()`.
    pub fn run_static_recorded<Rec: Recorder>(
        &mut self,
        backlogs: &[Vec<Vec<NodeId>>],
        recs: &mut [Rec],
    ) -> Vec<StaticResult> {
        assert_eq!(backlogs.len(), self.lanes.len(), "one backlog per lane");
        assert_eq!(recs.len(), self.lanes.len(), "one recorder per lane");
        let mut out = Vec::with_capacity(self.lanes.len());
        for (k, (backlog, rec)) in backlogs.iter().zip(recs.iter_mut()).enumerate() {
            out.push(self.run_lane_static(k, backlog, rec));
        }
        out
    }

    fn take_lane(&mut self, k: usize) -> LaneState {
        std::mem::replace(&mut self.lanes[k], LaneState::placeholder())
    }

    fn reset_lane(&self, ls: &mut LaneState) {
        ls.queue_len.fill(0);
        for f in &mut ls.node_fifo {
            f.clear();
        }
        ls.stutter_cnt.fill(0);
        ls.outbuf.fill(NONE);
        ls.inbuf.fill(NONE);
        ls.in_occupied.fill(0);
        ls.arr_mask.fill(0);
        ls.chan_rr.fill(0);
        ls.chan_pending.fill(0);
        ls.inj_buf.fill(NONE);
        ls.store.clear();
        ls.out_occ.clear_all();
        ls.in_occ.clear_all();
        ls.chan_live.clear_all();
        ls.cycle = 0;
        ls.next_uid = 0;
        ls.stats = LatencyStats::new();
        ls.delivered = 0;
        ls.occupancy = OccupancyProbe::default();
        ls.minimality_violations = 0;
        ls.throughput =
            (self.cfg.throughput_window > 0).then(|| TimeSeries::new(self.cfg.throughput_window));
        if self.cfg.track_occupancy {
            ls.occupancy.max = vec![0; ls.queue_len.len()];
            ls.occupancy.sum = vec![0; ls.queue_len.len()];
        }
    }

    fn run_lane_dynamic<Rec: Recorder>(
        &mut self,
        k: usize,
        lambda: f64,
        dest: &mut impl FnMut(NodeId, &mut StdRng) -> NodeId,
        cycles: u64,
        rec: &mut Rec,
    ) -> DynamicResult {
        let mut ls = self.take_lane(k);
        self.reset_lane(&mut ls);
        let seed = self.seeds[k];
        let mut rngs: Vec<StdRng> = (0..self.num_nodes()).map(|v| node_rng(seed, v)).collect();
        let mut attempts = 0u64;
        let mut injected = 0u64;
        let mut stop = StopReason::HorizonReached;
        while ls.cycle < cycles {
            for (v, rng) in rngs.iter_mut().enumerate() {
                // Same draw discipline as the sequential loop:
                // destinations drawn unconditionally, blocked attempts
                // discarded (see `engine::draw`).
                let Some(dst) = draw(rng, lambda, v, dest) else {
                    continue;
                };
                attempts += 1;
                if ls.inj_buf[v] == NONE {
                    ls.inj_buf[v] = self.alloc_packet(&mut ls, v, dst, rec);
                    injected += 1;
                }
            }
            if self.step(&mut ls, rec) == Control::Stop {
                stop = StopReason::Aborted;
                break;
            }
        }
        let res = DynamicResult {
            stats: ls.stats.clone(),
            attempts,
            injected,
            delivered: ls.delivered,
            cycles: ls.cycle,
            dropped: 0,
            stop,
        };
        self.lanes[k] = ls;
        res
    }

    fn run_lane_static<Rec: Recorder>(
        &mut self,
        k: usize,
        backlog: &[Vec<NodeId>],
        rec: &mut Rec,
    ) -> StaticResult {
        assert_eq!(backlog.len(), self.num_nodes());
        let mut ls = self.take_lane(k);
        self.reset_lane(&mut ls);
        let total: u64 = backlog.iter().map(|b| b.len() as u64).sum();
        let mut next_idx = vec![0usize; backlog.len()];
        let mut aborted = false;
        while ls.delivered < total && ls.cycle < self.cfg.max_cycles {
            for v in 0..backlog.len() {
                if next_idx[v] >= backlog[v].len() {
                    continue;
                }
                if ls.inj_buf[v] == NONE {
                    let dst = backlog[v][next_idx[v]];
                    next_idx[v] += 1;
                    ls.inj_buf[v] = self.alloc_packet(&mut ls, v, dst, rec);
                }
            }
            if self.step(&mut ls, rec) == Control::Stop {
                aborted = true;
                break;
            }
        }
        let drained = ls.delivered == total;
        let stop = if drained {
            StopReason::Drained
        } else if aborted {
            StopReason::Aborted
        } else {
            StopReason::MaxCycles
        };
        let res = StaticResult {
            stats: ls.stats.clone(),
            cycles: ls.cycle,
            delivered: ls.delivered,
            total,
            drained,
            dropped: 0,
            lost: 0,
            stop,
        };
        self.lanes[k] = ls;
        res
    }

    fn alloc_packet<Rec: Recorder>(
        &self,
        ls: &mut LaneState,
        src: NodeId,
        dst: NodeId,
        rec: &mut Rec,
    ) -> u32 {
        let uid = ls.next_uid;
        ls.next_uid += 1;
        if Rec::ENABLED {
            rec.on_inject(ls.cycle, uid, src as u32, dst as u32);
        }
        ls.store.insert(src as u32, dst as u32, uid, ls.cycle)
    }

    /// One routing cycle of one lane — the same fill/link/read sequence
    /// as the sequential engine's `step`, minus the fault hook.
    fn step<Rec: Recorder>(&mut self, ls: &mut LaneState, rec: &mut Rec) -> Control {
        for node in 0..self.layout.num_nodes {
            self.fill_node(ls, node, rec);
        }
        self.link_phase(ls, rec);
        for node in 0..self.layout.num_nodes {
            self.read_node(ls, node, rec);
        }
        if self.cfg.track_occupancy {
            self.sample_occupancy(ls);
        }
        if Rec::ENABLED && rec.want_waitgraph() {
            let edges = self.wait_edges(ls);
            rec.on_wait_probe(ls.cycle, &edges);
        }
        let ctl = if Rec::ENABLED {
            rec.on_cycle_end(ls.cycle)
        } else {
            Control::Continue
        };
        if Rec::ENABLED && ctl == Control::Stop {
            let edges = self.wait_edges(ls);
            rec.on_stall_waits(&edges);
        }
        ls.cycle += 1;
        ctl
    }

    fn fill_node<Rec: Recorder>(&mut self, ls: &mut LaneState, node: usize, rec: &mut Rec) {
        if ls.node_fifo[node].is_empty() {
            return;
        }
        let n_out = self.layout.node_out_bufs[node].len();
        self.stutters.clear();
        let mut staged_any = false;
        let mut stutter_any = false;
        if self.fast_fill {
            stutter_any = ls.stutter_cnt[node] != 0;
            let first_buf = self.first_out[node] as usize;
            let ones = if n_out == 64 { !0 } else { (1u64 << n_out) - 1 };
            let mut avail = !ls.out_occ.extract(first_buf, n_out) & ones;
            if avail != 0 {
                // Single FIFO pass: each packet takes the fill-order-first
                // available position it wants. This computes the same
                // matching as the sequential per-position scan (each
                // position in fill order taking its first FIFO wanter):
                // both are the greedy matching under consistent priority
                // orders — the first position with any wanter gets its
                // first wanter in either procedure, and induction on the
                // residual does the rest. The want sets are static during
                // the pass (stutters run after), so once every position is
                // taken the scan can stop.
                let start = match self.cfg.fill_order {
                    FillOrder::LowToHigh | FillOrder::HighToLow => 0,
                    FillOrder::Rotating => rotating_start(ls.cycle, node, n_out),
                };
                // Scan first, mutate after: the decisions depend only on
                // the (per-pass-constant) want masks and the shrinking
                // `avail`, so splitting lets the scan run over plain
                // slices and batches the staging writes.
                self.staging.clear();
                for (&p, h) in ls.node_fifo[node]
                    .iter()
                    .map(|p| (p, &ls.store.hot[*p as usize]))
                {
                    let m = h.wants & avail;
                    if m == 0 {
                        continue;
                    }
                    let pos = match self.cfg.fill_order {
                        FillOrder::LowToHigh => m.trailing_zeros() as usize,
                        FillOrder::HighToLow => 63 - m.leading_zeros() as usize,
                        FillOrder::Rotating => {
                            let hi = m >> start;
                            if hi != 0 {
                                start + hi.trailing_zeros() as usize
                            } else {
                                m.trailing_zeros() as usize
                            }
                        }
                    };
                    self.staging.push((p, pos as u32));
                    avail &= !(1u64 << pos);
                    if avail == 0 {
                        break;
                    }
                }
                let mut staging = std::mem::take(&mut self.staging);
                for &(p, pos) in &staging {
                    self.stage_packet(ls, node, p, pos as usize, first_buf + pos as usize);
                }
                staged_any = !staging.is_empty();
                staging.clear();
                self.staging = staging;
            } else if !stutter_any {
                return;
            }
        } else {
            // Slow path (> 64 output buffers or a non-contiguous id
            // range): the sequential engine's wanting-list scan,
            // verbatim, against the shared option table.
            for w in self.wanting.iter_mut().take(n_out) {
                w.clear();
            }
            for &p in &ls.node_fifo[node] {
                let h = &ls.store.hot[p as usize];
                stutter_any |= h.stutters != 0;
                let s = h.opt_start as usize;
                for o in &self.table.opts[s..s + h.opt_len as usize] {
                    if o.buf != NONE {
                        let pos = self.layout.buf_out_pos[o.buf as usize] as usize;
                        self.wanting[pos].push(p);
                    }
                }
            }
            let start = match self.cfg.fill_order {
                FillOrder::LowToHigh | FillOrder::HighToLow => 0,
                FillOrder::Rotating => rotating_start(ls.cycle, node, n_out),
            };
            for i in 0..n_out {
                let pos = match self.cfg.fill_order {
                    FillOrder::LowToHigh => i,
                    FillOrder::HighToLow => n_out - 1 - i,
                    FillOrder::Rotating => (start + i) % n_out,
                };
                let buf = self.layout.node_out_bufs[node][pos] as usize;
                if ls.outbuf[buf] != NONE {
                    continue;
                }
                let Some(&p) = self.wanting[pos]
                    .iter()
                    .find(|&&p| ls.store.hot[p as usize].moved_at != ls.cycle)
                else {
                    continue;
                };
                self.stage_packet(ls, node, p, pos, buf);
                staged_any = true;
            }
        }
        if staged_any {
            self.drain_staged(ls, node, rec);
        }
        if stutter_any {
            // Stutter candidates in the sequential scan's order: FIFO,
            // with one entry per internal option. Collected after
            // staging — a staged packet's option fields still describe
            // its pre-stage residence, and its extra entries would be
            // skipped by the once-per-cycle rule anyway.
            for &p in &ls.node_fifo[node] {
                for _ in 0..ls.store.hot[p as usize].stutters {
                    self.stutters.push(p);
                }
            }
            self.stutter_pass(ls, node, rec);
        }
    }

    /// Move packet `p` onto output buffer `buf` (at `node`): rewrite
    /// its hot row to the chosen option's successor state — inlined in
    /// the option record, so the later arrival enqueue is table-free —
    /// and mark the channel live. Only `class` keeps describing the old
    /// residence, for the drain pass's queue accounting.
    fn stage_packet(&self, ls: &mut LaneState, node: usize, p: u32, pos: usize, buf: usize) {
        let pi = p as usize;
        let h = &ls.store.hot[pi];
        let s = h.opt_start as usize;
        let o = if self.table.rank_ok {
            let rank = (h.wants & ((1u64 << pos) - 1)).count_ones() as usize;
            let o = self.table.opts[s + rank];
            debug_assert_eq!(o.buf as usize, buf, "rank-indexed option mismatch");
            o
        } else {
            *self.table.opts[s..s + h.opt_len as usize]
                .iter()
                .find(|o| o.buf as usize == buf)
                .expect("wanting packet has the option")
        };
        let h = &mut ls.store.hot[pi];
        if h.stutters != 0 {
            // Leaving its residence for good (staged packets always
            // drain this same cycle).
            ls.stutter_cnt[node] -= 1;
        }
        h.state = o.next;
        h.next_class = o.to_class;
        h.wants = o.succ_wants;
        h.opt_start = o.succ_opt_start;
        h.opt_len = o.succ_opt_len;
        h.stutters = o.succ_stutters;
        h.moved_at = ls.cycle;
        h.staged = true;
        ls.outbuf[buf] = p;
        ls.out_occ.set(buf);
        let chan = self.buf_chan[buf] as usize;
        ls.chan_pending[chan] += 1;
        ls.chan_live.set(chan);
    }

    /// Remove staged packets from the node's FIFO (order preserved),
    /// firing `on_queue_leave` in FIFO order as the sequential engine
    /// does.
    fn drain_staged<Rec: Recorder>(&self, ls: &mut LaneState, node: usize, rec: &mut Rec) {
        let store = &mut ls.store;
        let queue_len = &mut ls.queue_len;
        let num_classes = self.num_classes;
        let cycle = ls.cycle;
        ls.node_fifo[node].retain(|&p| {
            let h = &mut store.hot[p as usize];
            if h.staged {
                h.staged = false;
                let class = h.class;
                let q = node * num_classes + usize::from(class);
                queue_len[q] -= 1;
                if Rec::ENABLED {
                    rec.on_queue_leave(
                        cycle,
                        store.uid[p as usize],
                        node as u32,
                        class,
                        queue_len[q],
                    );
                }
                false
            } else {
                true
            }
        });
    }

    /// Internal stutters, exactly as in the sequential engine (minus
    /// the freeze check): a blocked stutter stays put and retries next
    /// cycle; a successful one re-enqueues at the back of the FIFO.
    fn stutter_pass<Rec: Recorder>(&mut self, ls: &mut LaneState, node: usize, rec: &mut Rec) {
        for i in 0..self.stutters.len() {
            let p = self.stutters[i];
            let pi = p as usize;
            let h = ls.store.hot[pi];
            if h.moved_at == ls.cycle {
                continue;
            }
            let s = h.opt_start as usize;
            let o = self.table.opts[s..s + h.opt_len as usize]
                .iter()
                .find(|o| o.buf == NONE)
                .expect("stutter option");
            let (next, to_class) = (o.next, o.to_class);
            let from_class = h.class;
            if to_class != from_class {
                let qt = node * self.num_classes + usize::from(to_class);
                if ls.queue_len[qt] as usize >= self.cfg.queue_capacity {
                    continue;
                }
            }
            ls.store.hot[pi].moved_at = ls.cycle;
            let uid = ls.store.uid[pi];
            if Rec::ENABLED {
                rec.on_stutter(ls.cycle, uid, node as u32, from_class, to_class);
            }
            if to_class != from_class {
                let qf = node * self.num_classes + usize::from(from_class);
                let qt = node * self.num_classes + usize::from(to_class);
                ls.queue_len[qf] -= 1;
                ls.queue_len[qt] += 1;
                if Rec::ENABLED {
                    rec.on_queue_leave(ls.cycle, uid, node as u32, from_class, ls.queue_len[qf]);
                    rec.on_queue_enter(ls.cycle, uid, node as u32, to_class, ls.queue_len[qt]);
                }
            }
            let fifo = &mut ls.node_fifo[node];
            let pos = fifo
                .iter()
                .position(|&x| x == p)
                .expect("stuttering packet is queued at its node");
            fifo.remove(pos);
            fifo.push(p);
            // Land in the successor state (same node, new class).
            let row = self.table.rows[next as usize];
            if row.stutters == 0 {
                // The packet had an internal option (it's in the stutter
                // list); its successor state may not.
                ls.stutter_cnt[node] -= 1;
            }
            let h = &mut ls.store.hot[pi];
            h.state = next;
            h.class = to_class;
            h.opt_start = row.opt_start;
            h.opt_len = row.opt_len;
            h.wants = row.wants;
            h.stutters = row.stutters;
        }
    }

    /// Link cycle over one lane's live channels (identical to the
    /// sequential engine's; no fault guard).
    fn link_phase<Rec: Recorder>(&self, ls: &mut LaneState, rec: &mut Rec) {
        for w in 0..ls.chan_live.num_words() {
            let mut bits = ls.chan_live.word(w);
            while bits != 0 {
                let chan = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.link_chan(ls, chan, rec);
            }
        }
    }

    fn link_chan<Rec: Recorder>(&self, ls: &mut LaneState, chan: usize, rec: &mut Rec) {
        if ls.chan_pending[chan] == 0 {
            return;
        }
        let start = self.layout.chan_buf_start[chan] as usize;
        let len = self.layout.chan_buf_len[chan] as usize;
        let rr = ls.chan_rr[chan] as usize;
        let pos = if len <= 64 {
            let avail = ls.out_occ.extract(start, len) & !ls.in_occ.extract(start, len);
            if avail == 0 {
                return;
            }
            let hi = avail >> rr;
            if hi != 0 {
                rr + hi.trailing_zeros() as usize
            } else {
                avail.trailing_zeros() as usize
            }
        } else {
            let Some(pos) = (0..len)
                .map(|i| (rr + i) % len)
                .find(|&pos| ls.outbuf[start + pos] != NONE && ls.inbuf[start + pos] == NONE)
            else {
                return;
            };
            pos
        };
        let b = start + pos;
        let p = ls.outbuf[b];
        let pi = p as usize;
        ls.store.hot[pi].hops += 1;
        if Rec::ENABLED {
            rec.on_link(
                ls.cycle,
                ls.store.uid[pi],
                self.layout.chan_from[chan],
                self.layout.chan_to[chan],
                matches!(self.layout.buf_class[b], BufferClass::Dynamic),
                ls.store.hot[pi].class,
                ls.store.hot[pi].next_class,
            );
        }
        ls.outbuf[b] = NONE;
        ls.out_occ.clear(b);
        ls.chan_pending[chan] -= 1;
        if ls.chan_pending[chan] == 0 {
            ls.chan_live.clear(chan);
        }
        ls.chan_rr[chan] = ((pos + 1) % len) as u16;
        if !Rec::ENABLED && ls.store.hot[pi].state == TERMINAL {
            // Arriving at its destination: delivery never blocks, and
            // within a cycle the latency sinks are insertion-order
            // invariant, so an unrecorded run can deliver here and spare
            // the read pass the whole input-buffer round trip. Recorded
            // runs take the buffer path below so the event journal keeps
            // the sequential order.
            self.deliver(ls, p, rec);
            return;
        }
        ls.inbuf[b] = p;
        ls.in_occ.set(b);
        let to = self.layout.chan_to[chan] as usize;
        ls.in_occupied[to] += 1;
        if self.fast_read {
            ls.arr_mask[to] |= 1u64 << self.buf_in_slot[b];
        }
    }

    /// Read pass for one node of one lane. With `fast_read`, the
    /// occupied-slot bitmask is walked in the same rotating order the
    /// sequential slot scan uses — empty slots it skips are no-ops
    /// there.
    fn read_node<Rec: Recorder>(&mut self, ls: &mut LaneState, node: usize, rec: &mut Rec) {
        let n_in = (self.in_start[node + 1] - self.in_start[node]) as usize;
        if self.fast_read {
            let mut m = ls.arr_mask[node];
            if ls.inj_buf[node] != NONE {
                m |= 1u64 << n_in;
            }
            if m == 0 {
                return;
            }
            let slots = n_in + 1;
            let start = (ls.cycle as usize) % slots;
            let mut hi = m >> start;
            while hi != 0 {
                let slot = start + hi.trailing_zeros() as usize;
                hi &= hi - 1;
                self.read_slot(ls, node, slot, n_in, rec);
            }
            let mut lo = m & ((1u64 << start) - 1);
            while lo != 0 {
                let slot = lo.trailing_zeros() as usize;
                lo &= lo - 1;
                self.read_slot(ls, node, slot, n_in, rec);
            }
        } else {
            if ls.in_occupied[node] == 0 && ls.inj_buf[node] == NONE {
                return;
            }
            let slots = n_in + 1;
            let start = (ls.cycle as usize) % slots;
            for i in 0..slots {
                let slot = (start + i) % slots;
                if slot < n_in {
                    if ls.inbuf[self.layout.node_in_bufs[node][slot] as usize] == NONE {
                        continue;
                    }
                    self.read_slot(ls, node, slot, n_in, rec);
                } else if ls.inj_buf[node] != NONE {
                    self.read_slot(ls, node, slot, n_in, rec);
                }
            }
        }
    }

    /// Process one occupied read slot: an input buffer below `n_in`, the
    /// injection buffer at `n_in`.
    fn read_slot<Rec: Recorder>(
        &mut self,
        ls: &mut LaneState,
        node: usize,
        slot: usize,
        n_in: usize,
        rec: &mut Rec,
    ) {
        if slot < n_in {
            let b = self.in_flat[self.in_start[node] as usize + slot] as usize;
            let p = ls.inbuf[b];
            debug_assert_ne!(p, NONE, "read slot marked occupied but empty");
            if self.accept_arrival(ls, node, p, rec) {
                ls.inbuf[b] = NONE;
                ls.in_occ.clear(b);
                ls.in_occupied[node] -= 1;
                if self.fast_read {
                    ls.arr_mask[node] &= !(1u64 << slot);
                }
            }
        } else {
            let p = ls.inj_buf[node];
            if self.accept_injection(ls, node, p, rec) {
                ls.inj_buf[node] = NONE;
            }
        }
    }

    fn accept_arrival<Rec: Recorder>(
        &mut self,
        ls: &mut LaneState,
        node: usize,
        p: u32,
        rec: &mut Rec,
    ) -> bool {
        let h = ls.store.hot[p as usize];
        if h.state == TERMINAL {
            debug_assert_eq!(ls.store.dst[p as usize] as usize, node);
            self.deliver(ls, p, rec);
            return true;
        }
        // The hot row already describes the successor residence (staged
        // in from the option record); only the class field lags.
        self.enqueue_central(ls, node, p, h.next_class, rec)
    }

    fn accept_injection<Rec: Recorder>(
        &mut self,
        ls: &mut LaneState,
        node: usize,
        p: u32,
        rec: &mut Rec,
    ) -> bool {
        let pi = p as usize;
        let dst = ls.store.dst[pi] as usize;
        if dst == node {
            self.deliver(ls, p, rec);
            return true;
        }
        let s = self.table.inj[node * self.layout.num_nodes + dst];
        let row = self.table.rows[s as usize];
        let h = &mut ls.store.hot[pi];
        h.state = s;
        h.opt_start = row.opt_start;
        h.opt_len = row.opt_len;
        h.wants = row.wants;
        h.stutters = row.stutters;
        self.enqueue_central(ls, node, p, row.class, rec)
    }

    /// Insert packet `p` into `node`'s central queue `class`. The hot
    /// row's residence fields (`wants`/`opt_*`/`stutters`) must already
    /// be loaded; a capacity block leaves them in place for the retry.
    fn enqueue_central<Rec: Recorder>(
        &mut self,
        ls: &mut LaneState,
        node: usize,
        p: u32,
        class: u8,
        rec: &mut Rec,
    ) -> bool {
        let q = node * self.num_classes + usize::from(class);
        if ls.queue_len[q] as usize >= self.cfg.queue_capacity {
            if Rec::ENABLED {
                rec.on_block(ls.cycle, ls.store.uid[p as usize], node as u32, class);
            }
            return false;
        }
        let stutters = {
            let h = &mut ls.store.hot[p as usize];
            h.class = class;
            h.stutters
        };
        if stutters != 0 {
            ls.stutter_cnt[node] += 1;
        }
        ls.queue_len[q] += 1;
        if Rec::ENABLED {
            rec.on_queue_enter(
                ls.cycle,
                ls.store.uid[p as usize],
                node as u32,
                class,
                ls.queue_len[q],
            );
        }
        ls.node_fifo[node].push(p);
        true
    }

    fn deliver<Rec: Recorder>(&self, ls: &mut LaneState, p: u32, rec: &mut Rec) {
        let pi = p as usize;
        let latency = 2 * (ls.cycle - ls.store.inject_cycle[pi]) + 1;
        if Rec::ENABLED {
            rec.on_deliver(
                ls.cycle,
                ls.store.uid[pi],
                latency,
                u32::from(ls.store.hot[pi].hops),
                ls.store.hot[pi].class,
            );
        }
        if self.cfg.check_minimality {
            let d = self
                .rf
                .topology()
                .distance(ls.store.src[pi] as usize, ls.store.dst[pi] as usize);
            if usize::from(ls.store.hot[pi].hops) != d {
                ls.minimality_violations += 1;
            }
        }
        ls.stats.record(latency);
        if let Some(ts) = &mut ls.throughput {
            ts.record(ls.cycle, 1.0);
        }
        ls.delivered += 1;
        ls.store.release(p);
    }

    fn sample_occupancy(&self, ls: &mut LaneState) {
        for q in 0..ls.queue_len.len() {
            let len = ls.queue_len[q] as u16;
            ls.occupancy.max[q] = ls.occupancy.max[q].max(len);
            ls.occupancy.sum[q] += u64::from(len);
        }
        ls.occupancy.samples += 1;
    }

    /// The lane's blocked wait-for relation (the sequential engine's
    /// `local_wait_edges`, read against the shared state table).
    fn wait_edges(&self, ls: &LaneState) -> Vec<(u32, u8, u32, u8)> {
        let cap = self.cfg.queue_capacity;
        let mut edges = Vec::new();
        for v in 0..self.layout.num_nodes {
            for &p in &ls.node_fifo[v] {
                let h = &ls.store.hot[p as usize];
                let s = h.opt_start as usize;
                for o in &self.table.opts[s..s + h.opt_len as usize] {
                    if o.buf == NONE {
                        continue;
                    }
                    let chan = self.buf_chan[o.buf as usize] as usize;
                    let w = self.layout.chan_to[chan];
                    let c2 = o.to_class;
                    if ls.queue_len[w as usize * self.num_classes + usize::from(c2)] as usize >= cap
                    {
                        edges.push((v as u32, h.class, w, c2));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }
}
